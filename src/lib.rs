#![forbid(unsafe_code)]
//! # F-IVM — learning over fast-evolving relational data
//!
//! A Rust reproduction of *F-IVM: Learning over Fast-Evolving Relational
//! Data* (SIGMOD 2020): incremental maintenance of analytics — count
//! aggregates, COVAR matrices for ridge regression, mutual-information
//! matrices for model selection and Chow-Liu trees — over natural-join
//! queries under inserts and deletes.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`common`] | `fivm-common` | values, hashing, errors |
//! | [`ring`] | `fivm-ring` | the ring abstraction (incl. in-place `mul_into`/`fma_scaled`) and the concrete rings |
//! | [`relation`] | `fivm-relation` | schemas, tuples, keyed relations, databases, updates |
//! | [`query`] | `fivm-query` | query specs, variable orders, view trees, M3 rendering |
//! | [`core`] | `fivm-core` | the maintenance engine (batched, allocation-free hot path) and per-application constructors |
//! | [`ml`] | `fivm-ml` | regression, mutual information, model selection, Chow-Liu trees |
//! | [`data`] | `fivm-data` | Figure-1 toy data, Retailer/Favorita generators, update streams |
//! | [`baselines`] | `fivm-baselines` | naive re-evaluation, join maintenance, unshared aggregates |
//! | [`shard`] | `fivm-shard` | partition-aware sharded maintenance (N engines on worker threads, ring-merged results) |
//! | [`cdc`] | `fivm-cdc` | durability: write-ahead changelog, engine snapshots, crash recovery by replay |
//! | [`dag`] | `fivm-dag` | multi-query maintenance DAG: shared view-tree prefixes, one propagation pass, runtime register/unregister |
//!
//! Two crates are not re-exported: `fivm-bench` (experiment binaries and
//! Criterion benchmarks; `exp_throughput` also emits the machine-readable
//! `BENCH_ivm.json` perf baseline) and the offline dependency shims under
//! `crates/shims/` (see `crates/shims/README.md`).
//!
//! ## Performance model
//!
//! Updates are applied in batches: each batch is grouped by key into one
//! delta entry per distinct key, and the delta is propagated along a single
//! leaf-to-root path using the in-place ring operations
//! ([`ring::Ring::mul_into`], [`ring::Ring::fma_scaled`]) and per-level
//! buffers that persist across updates — the dense-payload hot path
//! performs no heap allocation (see `crates/ring/tests/alloc_fma.rs` and
//! the "performance notes" section of `ROADMAP.md` for the exact API
//! contract).
//!
//! ## Quickstart
//!
//! ```
//! use fivm::core::apps;
//! use fivm::data::{figure1_database, figure1_tree};
//! use fivm::relation::{tuple, Update};
//! use fivm::common::Value;
//!
//! // COUNT(*) over R(A,B) ⋈ S(A,C,D), maintained under updates.
//! let mut engine = apps::count_engine(figure1_tree(false)).unwrap();
//! engine.load_database(&figure1_database()).unwrap();
//! assert_eq!(engine.result(), 3);
//!
//! engine.apply_update(&Update::inserts(
//!     "R",
//!     vec![tuple([Value::int(1), Value::int(5)])],
//! )).unwrap();
//! assert_eq!(engine.result(), 5);
//! ```
//!
//! See the `examples/` directory for the regression, model-selection and
//! Chow-Liu walkthroughs, and `crates/bench` for the experiment harnesses
//! that regenerate the paper's figures.

pub use fivm_baselines as baselines;
pub use fivm_cdc as cdc;
pub use fivm_common as common;
pub use fivm_core as core;
pub use fivm_dag as dag;
pub use fivm_data as data;
pub use fivm_ml as ml;
pub use fivm_query as query;
pub use fivm_relation as relation;
pub use fivm_ring as ring;
pub use fivm_shard as shard;
