# Developer entry points.  `just ci` is the gate the CI workflow runs —
# build, tests, the contract lint, clippy-as-errors, and bench compilation
# so bench code cannot rot.

default: ci

# The full CI gate.
ci: build test lint clippy bench-build

build:
    cargo build --release

test:
    cargo test -q

# The in-tree contract lint (fivm-xlint): unsafe boundary, find_idx-first
# upserts, dict-lock discipline, byte-denominated thresholds, panic-free
# public surfaces, lift-name uniqueness, is_zero discipline.  See the
# "Static-analysis contract" section of ROADMAP.md.
lint:
    cargo run -q --release -p fivm-xlint -- .

# One clippy pass over every crate and target; the per-gate bench recipes
# below rely on this instead of re-running clippy per crate.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Compile (but do not run) every benchmark target.
bench-build:
    cargo bench --no-run

# Regenerate the machine-readable perf baseline (writes BENCH_ivm.json,
# including the encoded-vs-boxed probe-key ablation records and the
# paired single-vs-sharded PAR-* records).
bench-ivm:
    cargo build --release --bin exp_throughput
    ./target/release/exp_throughput --shards 4

# Sharding gate: the seeded sharded-vs-single differential suite, then the
# paired 1-vs-4-shard throughput runs.  (`just clippy` covers the lint.)
bench-shards: clippy
    cargo test -p fivm-shard -q
    cargo build --release --bin exp_throughput
    ./target/release/exp_throughput --shards 4

# Ring gate: the encoded-vs-boxed relation-ring differential suite and
# allocation guarantees, then a quick run emitting the RING-* ablation
# records (encoded vs boxed ring-interior keys).
bench-ring: clippy
    cargo test -p fivm-ring -q
    cargo build --release --bin exp_throughput
    ./target/release/exp_throughput --quick --json /tmp/bench_ring_smoke.json

# Memory gate: the bytes-per-entry regression gate and the churn-under-drop
# storage suite, then a quick run emitting the MEM-* ablation records
# (bytes/entry boxed vs option-slot vs the discriminant-free layout, plus
# the Favorita gen-COVAR engine footprint).
bench-mem: clippy
    cargo test -p fivm-ring -q --test mem_gate
    cargo test -p fivm-common -q --test rawtable_differential
    cargo build --release --bin exp_throughput
    ./target/release/exp_throughput --quick --json /tmp/bench_mem_smoke.json

# Durability gate: the crash-recovery fault-injection differential suite,
# then the durability cost run — merges REC-* records (logged-ingest and
# replay rows/s, snapshot bytes and save/restore times) into
# BENCH_ivm.json without touching other records.
bench-recover: clippy
    cargo test -p fivm-cdc -q
    cargo test -p fivm-cdc --test service_faults -q
    cargo build --release --bin exp_recovery
    ./target/release/exp_recovery

# Multi-query DAG gate: the shared-vs-standalone differential suite and
# registration-churn tests, then the shared-pass experiment — merges DAG-*
# records (K-query fleet through one DagEngine vs K independent engines,
# medians of interleaved paired rounds) into BENCH_ivm.json without
# touching other records.
bench-dag: clippy
    cargo test -p fivm-dag -q
    cargo build --release --bin exp_dag
    ./target/release/exp_dag

# Kernel gate: the columnar/scalar seeded differential suite and the
# batch-lift allocation assertions, then the per-kernel ablation
# experiment — merges RING-kernel-* records (dense accumulate,
# continuous/categorical lift, paired scalar-vs-columnar engine runs;
# medians of interleaved paired rounds) into BENCH_ivm.json without
# touching other records.
bench-kernels: clippy
    cargo test -p fivm-bench -q --test kernel_differential
    cargo test -p fivm-ring -q --test alloc_fma
    cargo build --release --bin exp_ring
    ./target/release/exp_ring

# Quick hot-path diagnostic: allocations/row, ns/row and probe counters per
# engine, plus allocs/probe and ns/probe for both key representations
# (boxed Value tuples vs dictionary-encoded keys).
profile:
    cargo build --release --bin profile_hotpath
    ./target/release/profile_hotpath --quick

# Full-length hot-path diagnostic (100 bulks, 100 ablation passes).
profile-full:
    cargo build --release --bin profile_hotpath
    ./target/release/profile_hotpath
