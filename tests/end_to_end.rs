//! End-to-end integration tests spanning every crate: datasets → query
//! compilation → incremental maintenance → ML applications, checked against
//! the baselines.

use fivm::baselines::{JoinMaintenance, NaiveReevaluation};
use fivm::core::{apps, AggregateLayout, Engine};
use fivm::data::{retailer, FavoritaConfig, RetailerConfig, StreamConfig};
use fivm::ml::{chow_liu_tree, mi_matrix, rank_by_mi, DenseCovar, RidgeSolver};
use fivm::query::{EliminationHeuristic, VariableOrder, ViewTree};
use fivm::ring::{ApproxEq, Cofactor, LiftFn};

fn retailer_workload() -> (fivm::relation::Database, Vec<fivm::relation::Update>) {
    let cfg = RetailerConfig::tiny();
    let db = cfg.generate();
    let stream = cfg.update_stream(StreamConfig {
        bulks: 4,
        bulk_size: 50,
        delete_fraction: 0.3,
        seed: 2,
    });
    (db, stream.into_bulks())
}

fn covar_lifts(spec: &fivm::query::QuerySpec) -> Vec<LiftFn<Cofactor>> {
    let layout = AggregateLayout::of(spec);
    let mut lifts = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        lifts[v] =
            fivm::ring::lift::cofactor_continuous_lift(layout.dim(), idx, &layout.names[idx]);
    }
    lifts
}

#[test]
fn retailer_covar_agrees_with_both_baselines_under_update_stream() {
    let (db, updates) = retailer_workload();
    let spec = retailer::retailer_query_continuous();
    let tree = retailer::retailer_tree(spec.clone());

    let mut engine = apps::covar_engine(tree).unwrap();
    engine.load_database(&db).unwrap();
    let mut naive = NaiveReevaluation::new(spec.clone(), covar_lifts(&spec)).unwrap();
    naive.load_database(&db).unwrap();
    let mut join_ivm = JoinMaintenance::new(spec.clone(), covar_lifts(&spec)).unwrap();
    join_ivm.load_database(&db).unwrap();

    assert!(engine.result().approx_eq(&naive.result(), 1e-6));
    for bulk in &updates {
        engine.apply_update(bulk).unwrap();
        naive.apply_update(bulk).unwrap();
        join_ivm.apply_update(bulk).unwrap();
        assert!(engine.result().approx_eq(&naive.result(), 1e-6));
        assert!(engine.result().approx_eq(&join_ivm.result(), 1e-6));
    }
}

#[test]
fn retailer_covar_is_order_independent_and_heuristic_agnostic() {
    let (db, updates) = retailer_workload();
    let spec = retailer::retailer_query_continuous();
    let mut engines: Vec<Engine<Cofactor>> = Vec::new();
    engines.push(apps::covar_engine(retailer::retailer_tree(spec.clone())).unwrap());
    for h in [EliminationHeuristic::MinDegree, EliminationHeuristic::MinFill] {
        let vo = VariableOrder::heuristic(&spec, h).unwrap();
        engines.push(apps::covar_engine(ViewTree::new(spec.clone(), vo).unwrap()).unwrap());
    }
    for e in &mut engines {
        e.load_database(&db).unwrap();
    }
    for bulk in &updates {
        for e in &mut engines {
            e.apply_update(bulk).unwrap();
        }
    }
    let reference = engines[0].result();
    for e in &engines[1..] {
        assert!(e.result().approx_eq(&reference, 1e-6));
    }
}

#[test]
fn regression_model_trained_on_maintained_covar_is_sane() {
    let (db, updates) = retailer_workload();
    let spec = retailer::retailer_query_continuous();
    let layout = AggregateLayout::of(&spec);
    let mut engine = apps::covar_engine(retailer::retailer_tree(spec)).unwrap();
    engine.load_database(&db).unwrap();
    for bulk in &updates {
        engine.apply_update(bulk).unwrap();
    }
    let covar =
        DenseCovar::from_cofactor(&engine.result(), &layout.names, layout.label.unwrap()).unwrap();
    assert!(covar.count > 0.0);
    let solver = RidgeSolver::with_lambda(1e-2);
    let exact = solver.solve_closed_form(&covar).unwrap();
    let gd = solver.solve_gradient_descent(&covar, None).unwrap();
    assert_eq!(exact.params.len(), covar.features.len());
    for p in &exact.params {
        assert!(p.is_finite());
    }
    // BGD's objective cannot be much better than the exact solution's.
    assert!(gd.objective + 1e-6 >= exact.objective - 1e-6);
}

#[test]
fn mi_model_selection_and_chow_liu_run_on_favorita() {
    let cfg = FavoritaConfig::tiny();
    let db = cfg.generate();
    let spec = fivm::data::favorita::favorita_query();
    let layout = AggregateLayout::of(&spec);
    let tree = fivm::data::favorita::favorita_tree(spec.clone());
    let mut bins = std::collections::HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, fivm::core::BinSpec::new(0.0, 5_000.0, 8));
        }
    }
    let mut engine = apps::mi_engine(tree, &bins).unwrap();
    engine.load_database(&db).unwrap();
    let stream = cfg.update_stream(StreamConfig {
        bulks: 2,
        bulk_size: 40,
        delete_fraction: 0.25,
        seed: 5,
    });
    for bulk in stream.bulks() {
        engine.apply_update(bulk).unwrap();
    }
    let payload = engine.result();
    assert!(payload.count() > 0.0);

    let matrix = mi_matrix(&payload, layout.dim());
    // Symmetric, non-negative, diagonal = entropy ≥ off-diagonal pair MI.
    #[allow(clippy::needless_range_loop)]
    for i in 0..layout.dim() {
        for j in 0..layout.dim() {
            assert!(matrix[i][j] >= 0.0);
            assert!((matrix[i][j] - matrix[j][i]).abs() < 1e-12);
        }
    }
    let label = layout.label.unwrap();
    let selection = rank_by_mi(&payload, layout.dim(), label, 0.0);
    assert_eq!(selection.ranking.len(), layout.dim() - 1);
    let tree = chow_liu_tree(&matrix, label).unwrap();
    assert_eq!(tree.edges.len(), layout.dim() - 1);
    assert_eq!(tree.parent[label], None);
}

#[test]
fn deleting_the_whole_stream_restores_the_initial_result() {
    let (db, updates) = retailer_workload();
    let spec = retailer::retailer_query_continuous();
    let mut engine = apps::covar_engine(retailer::retailer_tree(spec)).unwrap();
    engine.load_database(&db).unwrap();
    let before = engine.result();
    for bulk in &updates {
        engine.apply_update(bulk).unwrap();
    }
    for bulk in updates.iter().rev() {
        engine.apply_update(&bulk.inverse()).unwrap();
    }
    assert!(engine.result().approx_eq(&before, 1e-6));
}

#[test]
fn count_engine_matches_naive_on_favorita() {
    let cfg = FavoritaConfig::tiny();
    let db = cfg.generate();
    let spec = fivm::data::favorita::favorita_query();
    let tree = fivm::data::favorita::favorita_tree(spec.clone());
    let mut engine = apps::count_engine(tree).unwrap();
    engine.load_database(&db).unwrap();
    let mut naive =
        NaiveReevaluation::<i64>::new(spec.clone(), vec![LiftFn::identity(); spec.num_vars()])
            .unwrap();
    naive.load_database(&db).unwrap();
    assert_eq!(engine.result(), naive.result());
    assert!(engine.result() > 0);

    let stream = cfg.update_stream(StreamConfig {
        bulks: 3,
        bulk_size: 30,
        delete_fraction: 0.3,
        seed: 8,
    });
    for bulk in stream.bulks() {
        engine.apply_update(bulk).unwrap();
        naive.apply_update(bulk).unwrap();
        assert_eq!(engine.result(), naive.result());
    }
}

#[test]
fn engine_reports_errors_for_malformed_inputs() {
    let spec = retailer::retailer_query_continuous();
    let tree = retailer::retailer_tree(spec.clone());
    let mut engine = apps::covar_engine(tree).unwrap();
    // Unknown table in an update.
    let bad = fivm::relation::Update::inserts("NoSuchTable", vec![]);
    assert!(engine.apply_update(&bad).is_err());
    // Database missing one of the query's tables.
    let mut db = fivm::relation::Database::new();
    db.add_table(fivm::relation::BaseTable::new(
        "Inventory",
        RetailerConfig::inventory_schema(),
    ))
    .unwrap();
    assert!(engine.load_database(&db).is_err());
    // Wrong number of lifts.
    assert!(Engine::<i64>::new(
        retailer::retailer_tree(spec),
        vec![LiftFn::identity(); 2]
    )
    .is_err());
}
