//! Walks through Figure 1 of the paper: the same join maintained under four
//! different rings (count, COVAR continuous, COVAR with a categorical
//! attribute, mutual information).
//!
//! Run with `cargo run --example figure1`.

use fivm::core::apps;
use fivm::data::{figure1_database, figure1_tree};
use fivm::ml;
use std::collections::HashMap;

fn main() {
    let db = figure1_database();

    // Z ring: tuple multiplicities.
    let mut count = apps::count_engine(figure1_tree(false)).unwrap();
    count.load_database(&db).unwrap();
    println!("count payload:   Q() = {}", count.result());

    // Degree-3 matrix ring: COVAR over continuous B, C, D.
    let mut covar = apps::covar_engine(figure1_tree(false)).unwrap();
    covar.load_database(&db).unwrap();
    let q = covar.result();
    println!("\nCOVAR (continuous B, C, D):");
    println!("  count = {}", q.count());
    println!("  s     = [{}, {}, {}]", q.sum(0), q.sum(1), q.sum(2));
    for i in 0..3 {
        println!(
            "  Q[{i}] = [{:5.1} {:5.1} {:5.1}]",
            q.prod(i, 0),
            q.prod(i, 1),
            q.prod(i, 2)
        );
    }

    // Generalized ring: COVAR with categorical C.
    let mut gen = apps::gen_covar_engine(figure1_tree(true)).unwrap();
    gen.load_database(&db).unwrap();
    let g = gen.result();
    println!("\nCOVAR (categorical C): SUM(1) GROUP BY C has {} categories", g.sum(1).len());

    // MI payload: every attribute categorical.
    let spec = {
        let mut b = fivm::query::QuerySpec::builder("figure1_mi");
        let a = b.key("A");
        let bb = b.categorical_feature("B");
        let c = b.categorical_feature("C");
        let d = b.categorical_feature("D");
        b.relation("R", &[a, bb]);
        b.relation("S", &[a, c, d]);
        b.build().unwrap()
    };
    let a = spec.var_id("A").unwrap();
    let c = spec.var_id("C").unwrap();
    let mut parents = vec![None; 4];
    parents[spec.var_id("B").unwrap()] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").unwrap()] = Some(c);
    let tree = fivm::query::ViewTree::from_parent_vars(spec, &parents).unwrap();
    let mut mi = apps::mi_engine(tree, &HashMap::new()).unwrap();
    mi.load_database(&db).unwrap();
    let payload = mi.result();
    let matrix = ml::mi_matrix(&payload, 3);
    println!("\nMI matrix (B, C, D):");
    for row in &matrix {
        println!("  {:?}", row.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    }
    let tree = ml::chow_liu_tree(&matrix, 0).unwrap();
    println!("\nChow-Liu tree rooted at B:");
    print!("{}", tree.render(&["B".into(), "C".into(), "D".into()]));
}
