//! Model selection and Chow-Liu trees over the Favorita join: maintain the
//! mutual-information payload under update bulks, rank the attributes
//! against the label, and rebuild the Chow-Liu tree after each bulk.
//!
//! Run with `cargo run --release --example model_selection_chow_liu`.

use fivm::core::{apps, AggregateLayout, BinSpec};
use fivm::data::{favorita, FavoritaConfig, StreamConfig};
use fivm::ml::{chow_liu_tree, mi_matrix, rank_by_mi};
use std::collections::HashMap;

fn main() {
    let cfg = FavoritaConfig::default();
    let db = cfg.generate();
    let spec = favorita::favorita_query();
    let layout = AggregateLayout::of(&spec);
    let label = layout.label.expect("unitsales is the label");
    let tree = favorita::favorita_tree(spec.clone());

    // Continuous attributes are discretized for the MI application.
    let mut bins = HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, BinSpec::new(0.0, 5_000.0, 10));
        }
    }
    let mut engine = apps::mi_engine(tree, &bins).unwrap();
    engine.load_database(&db).unwrap();

    let stream = cfg.update_stream(StreamConfig {
        bulks: 3,
        bulk_size: 1_000,
        delete_fraction: 0.2,
        seed: 2023,
    });
    for bulk in stream.bulks() {
        engine.apply_update(bulk).unwrap();
    }
    let payload = engine.result();
    println!(
        "maintained MI payload over {} training tuples\n",
        payload.count()
    );

    // Model selection: which attributes predict unitsales?
    let selection = rank_by_mi(&payload, layout.dim(), label, 0.01);
    println!("attributes ranked by MI with `unitsales` (threshold 0.01):");
    print!("{}", selection.render(&layout.names));

    // Chow-Liu tree over all attributes.
    let matrix = mi_matrix(&payload, layout.dim());
    let tree = chow_liu_tree(&matrix, label).unwrap();
    println!("\nChow-Liu tree rooted at `unitsales` (total MI {:.3}):", tree.total_mi);
    print!("{}", tree.render(&layout.names));
}
