//! Quickstart: maintain a count and a COVAR matrix over a two-relation join
//! under inserts and deletes.
//!
//! Run with `cargo run --example quickstart`.

use fivm::common::Value;
use fivm::core::apps;
use fivm::data::{figure1_database, figure1_tree};
use fivm::relation::{tuple, Update};

fn main() {
    // The query: SELECT SUM(g_B(B) * g_C(C) * g_D(D))
    //            FROM R(A, B) NATURAL JOIN S(A, C, D)
    // The ring decides what the SUM means.
    let db = figure1_database();

    // 1. Count aggregate: the Z ring.
    let mut count = apps::count_engine(figure1_tree(false)).unwrap();
    count.load_database(&db).unwrap();
    println!("initial |R ⋈ S|            = {}", count.result());

    // 2. COVAR matrix: the degree-3 cofactor ring over B, C, D.
    let mut covar = apps::covar_engine(figure1_tree(false)).unwrap();
    covar.load_database(&db).unwrap();
    let q = covar.result();
    println!(
        "initial COVAR: count={} SUM(B)={} SUM(B*D)={} SUM(D*D)={}",
        q.count(),
        q.sum(0),
        q.prod(0, 2),
        q.prod(2, 2)
    );

    // 3. Updates: inserts and deletes are handled uniformly.
    let insert = Update::inserts("R", vec![tuple([Value::int(1), Value::int(4)])]);
    let delete = Update::deletes(
        "S",
        vec![tuple([Value::int(1), Value::int(1), Value::int(1)])],
    );
    for (label, update) in [("insert into R", &insert), ("delete from S", &delete)] {
        count.apply_update(update).unwrap();
        covar.apply_update(update).unwrap();
        let q = covar.result();
        println!(
            "after {label:<15}: |join|={} count={} SUM(B)={}",
            count.result(),
            q.count(),
            q.sum(0)
        );
    }

    // 4. The maintenance strategy (view tree) behind the scenes.
    println!("\nview tree:\n{}", fivm::query::m3::render_tree_ascii(covar.tree()));
}
