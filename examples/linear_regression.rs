//! Ridge linear regression over the Retailer join, maintained under bulks of
//! updates: the COVAR matrix is kept incrementally by F-IVM and the model is
//! re-converged by warm-started batch gradient descent after every bulk —
//! the training dataset (the join) is never materialized.
//!
//! Run with `cargo run --release --example linear_regression`.

use fivm::core::{apps, AggregateLayout};
use fivm::data::{retailer, RetailerConfig, StreamConfig};
use fivm::ml::{DenseCovar, RidgeSolver};

fn main() {
    let cfg = RetailerConfig::default();
    let db = cfg.generate();
    let spec = retailer::retailer_query_continuous();
    let layout = AggregateLayout::of(&spec);
    let label = layout.label.expect("inventoryunits is the label");
    let tree = retailer::retailer_tree(spec);

    let mut engine = apps::covar_engine(tree).unwrap();
    engine.load_database(&db).unwrap();
    println!(
        "loaded Retailer: {} rows across {} tables; training tuples in the join = {}",
        db.total_rows(),
        db.len(),
        engine.result().count()
    );

    let solver = RidgeSolver::with_lambda(1e-3);
    let mut params: Option<Vec<f64>> = None;

    let stream = cfg.update_stream(StreamConfig {
        bulks: 5,
        bulk_size: 1_000,
        delete_fraction: 0.2,
        seed: 99,
    });
    for (i, bulk) in stream.bulks().iter().enumerate() {
        engine.apply_update(bulk).unwrap();
        let covar = DenseCovar::from_cofactor(&engine.result(), &layout.names, label).unwrap();
        let model = solver
            .solve_gradient_descent(&covar, params.as_deref())
            .unwrap();
        println!(
            "bulk {:>2}: tuples={:>9.0}  BGD iterations={:>6}  objective={:.4}",
            i + 1,
            covar.count,
            model.iterations,
            model.objective
        );
        params = Some(model.params);
    }

    // The final model, solved exactly for reference.
    let covar = DenseCovar::from_cofactor(&engine.result(), &layout.names, label).unwrap();
    let exact = solver.solve_closed_form(&covar).unwrap();
    println!("\nfinal ridge model (closed form):");
    for (name, theta) in exact.feature_names.iter().zip(exact.params.iter()) {
        println!("  {name:<22} {theta:>12.6}");
    }
}
