//! Synthetic Retailer dataset.
//!
//! The Retailer database used in the paper (and in the LMFAO/F-IVM line of
//! work) is a snowflake around an `Inventory` fact table:
//!
//! ```text
//! Inventory(locn, dateid, ksn, inventoryunits)
//! Location (locn, zip, rgn_cd, clim_zn_nbr, avghhi, distance_to_competitor)
//! Census   (zip, population, medianage, households, males, females)
//! Item     (ksn, subcategory, category, categoryCluster, price)
//! Weather  (locn, dateid, rain, snow, maxtemp, mintemp, thunder)
//! ```
//!
//! The generator reproduces the structural properties relevant to F-IVM:
//! key/foreign-key joins over `locn`, `dateid`, `ksn` and `zip`, a fact table
//! that dominates the database size, and numeric plus categorical attributes
//! on every dimension table.  Absolute values are synthetic.

use crate::stream::{StreamConfig, UpdateStream};
use fivm_common::Value;
use fivm_query::{QueryBuilder, QuerySpec, VariableOrder, ViewTree};
use fivm_relation::{tuple, AttrKind, BaseTable, Database, Schema, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic Retailer generator.
#[derive(Clone, Debug, PartialEq)]
pub struct RetailerConfig {
    /// Number of store locations.
    pub locations: usize,
    /// Number of dates.
    pub dates: usize,
    /// Number of stock-keeping units (items).
    pub items: usize,
    /// Number of zip codes (each location maps to one zip).
    pub zips: usize,
    /// Fraction of (locn, dateid, ksn) combinations present in Inventory.
    pub inventory_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailerConfig {
    fn default() -> Self {
        RetailerConfig {
            locations: 20,
            dates: 40,
            items: 60,
            zips: 12,
            inventory_density: 0.08,
            seed: 0xF1_5C_AF_EE,
        }
    }
}

impl RetailerConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        RetailerConfig {
            locations: 4,
            dates: 6,
            items: 8,
            zips: 3,
            inventory_density: 0.3,
            seed: 7,
        }
    }

    /// A configuration sized for benchmark runs.
    pub fn benchmark() -> Self {
        RetailerConfig {
            locations: 60,
            dates: 200,
            items: 400,
            zips: 30,
            inventory_density: 0.02,
            seed: 2020,
        }
    }

    /// Generates the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();

        // Location(locn, zip, rgn_cd, clim_zn_nbr, avghhi, competitordistance)
        let mut location = BaseTable::new(
            "Location",
            Schema::of(&[
                ("locn", AttrKind::Categorical),
                ("zip", AttrKind::Categorical),
                ("rgn_cd", AttrKind::Categorical),
                ("clim_zn_nbr", AttrKind::Categorical),
                ("avghhi", AttrKind::Continuous),
                ("competitordistance", AttrKind::Continuous),
            ]),
        );
        let mut zip_of_locn = Vec::with_capacity(self.locations);
        for locn in 0..self.locations {
            let zip = rng.gen_range(0..self.zips) as i64;
            zip_of_locn.push(zip);
            location.push(tuple([
                Value::int(locn as i64),
                Value::int(zip),
                Value::int(rng.gen_range(0..8)),
                Value::int(rng.gen_range(0..5)),
                Value::double(30_000.0 + rng.gen_range(0.0..90_000.0)),
                Value::double(rng.gen_range(0.5..40.0)),
            ]));
        }
        db.add_table(location).expect("unique name");

        // Census(zip, population, medianage, households, males, females)
        let mut census = BaseTable::new(
            "Census",
            Schema::of(&[
                ("zip", AttrKind::Categorical),
                ("population", AttrKind::Continuous),
                ("medianage", AttrKind::Continuous),
                ("households", AttrKind::Continuous),
                ("males", AttrKind::Continuous),
                ("females", AttrKind::Continuous),
            ]),
        );
        for zip in 0..self.zips {
            let population = rng.gen_range(5_000.0..200_000.0f64);
            let males = population * rng.gen_range(0.45..0.55);
            census.push(tuple([
                Value::int(zip as i64),
                Value::double(population),
                Value::double(rng.gen_range(25.0..55.0)),
                Value::double(population / rng.gen_range(2.0..3.5)),
                Value::double(males),
                Value::double(population - males),
            ]));
        }
        db.add_table(census).expect("unique name");

        // Item(ksn, subcategory, category, categoryCluster, price)
        let mut item = BaseTable::new(
            "Item",
            Schema::of(&[
                ("ksn", AttrKind::Categorical),
                ("subcategory", AttrKind::Categorical),
                ("category", AttrKind::Categorical),
                ("categoryCluster", AttrKind::Categorical),
                ("price", AttrKind::Continuous),
            ]),
        );
        let mut item_category = Vec::with_capacity(self.items);
        let mut item_price = Vec::with_capacity(self.items);
        for ksn in 0..self.items {
            let category = rng.gen_range(0..9i64);
            let price = rng.gen_range(0.5..80.0f64);
            item_category.push(category);
            item_price.push(price);
            item.push(tuple([
                Value::int(ksn as i64),
                Value::int(category * 10 + rng.gen_range(0..4i64)),
                Value::int(category),
                Value::int(category % 3),
                Value::double(price),
            ]));
        }
        db.add_table(item).expect("unique name");

        // Weather(locn, dateid, rain, snow, maxtemp, mintemp, thunder)
        let mut weather = BaseTable::new(
            "Weather",
            Schema::of(&[
                ("locn", AttrKind::Categorical),
                ("dateid", AttrKind::Categorical),
                ("rain", AttrKind::Categorical),
                ("snow", AttrKind::Categorical),
                ("maxtemp", AttrKind::Continuous),
                ("mintemp", AttrKind::Continuous),
                ("thunder", AttrKind::Categorical),
            ]),
        );
        for locn in 0..self.locations {
            for dateid in 0..self.dates {
                let min = rng.gen_range(-15.0..20.0f64);
                weather.push(tuple([
                    Value::int(locn as i64),
                    Value::int(dateid as i64),
                    Value::int(rng.gen_range(0..2)),
                    Value::int(if min < 0.0 { rng.gen_range(0..2) } else { 0 }),
                    Value::double(min + rng.gen_range(2.0..18.0)),
                    Value::double(min),
                    Value::int(rng.gen_range(0..2)),
                ]));
            }
        }
        db.add_table(weather).expect("unique name");

        // Inventory(locn, dateid, ksn, inventoryunits) — the fact table.  The
        // label correlates with the item's category and price so the
        // model-selection, regression and Chow-Liu demos have signal to find
        // (the real Retailer data has exactly this kind of dependency).
        let mut inventory = BaseTable::new("Inventory", Self::inventory_schema());
        for locn in 0..self.locations {
            for dateid in 0..self.dates {
                for ksn in 0..self.items {
                    if rng.gen_bool(self.inventory_density) {
                        let units = (40.0 + 30.0 * item_category[ksn] as f64
                            - 1.5 * item_price[ksn]
                            + rng.gen_range(0.0..60.0f64))
                        .max(0.0);
                        inventory.push(Self::inventory_row(
                            locn as i64,
                            dateid as i64,
                            ksn as i64,
                            units,
                        ));
                    }
                }
            }
        }
        db.add_table(inventory).expect("unique name");
        db
    }

    /// The Inventory fact-table schema.
    pub fn inventory_schema() -> Schema {
        Schema::of(&[
            ("locn", AttrKind::Categorical),
            ("dateid", AttrKind::Categorical),
            ("ksn", AttrKind::Categorical),
            ("inventoryunits", AttrKind::Continuous),
        ])
    }

    /// Builds one Inventory row.
    pub fn inventory_row(locn: i64, dateid: i64, ksn: i64, units: f64) -> Tuple {
        tuple([
            Value::int(locn),
            Value::int(dateid),
            Value::int(ksn),
            Value::double(units),
        ])
    }

    /// An update stream of bulk inserts/deletes against the Inventory fact
    /// table, mirroring the demo's processing of 10K-update bulks.
    pub fn update_stream(&self, stream: StreamConfig) -> UpdateStream {
        let cfg = self.clone();
        UpdateStream::generate(stream, "Inventory", move |rng| {
            cfg.random_inventory_row(rng)
        })
    }

    /// A random Inventory row drawn from the configured key domains.
    pub fn random_inventory_row(&self, rng: &mut StdRng) -> Tuple {
        Self::inventory_row(
            rng.gen_range(0..self.locations) as i64,
            rng.gen_range(0..self.dates) as i64,
            rng.gen_range(0..self.items) as i64,
            rng.gen_range(0.0..500.0),
        )
    }
}

/// Declares the shared (join-key) variables of the Retailer query.
fn retailer_keys(b: &mut QueryBuilder) -> (usize, usize, usize, usize) {
    let locn = b.key("locn");
    let dateid = b.key("dateid");
    let ksn = b.key("ksn");
    let zip = b.key("zip");
    (locn, dateid, ksn, zip)
}

/// The Retailer regression query with **continuous** features only:
/// label `inventoryunits`; features `price`, `avghhi`, `competitordistance`,
/// `population`, `medianage`, `maxtemp`, `mintemp`.
pub fn retailer_query_continuous() -> QuerySpec {
    let mut b = QuerySpec::builder("retailer_continuous");
    let (locn, dateid, ksn, zip) = retailer_keys(&mut b);
    let units = b.label("inventoryunits");
    let price = b.continuous_feature("price");
    let avghhi = b.continuous_feature("avghhi");
    let dist = b.continuous_feature("competitordistance");
    let population = b.continuous_feature("population");
    let medianage = b.continuous_feature("medianage");
    let maxtemp = b.continuous_feature("maxtemp");
    let mintemp = b.continuous_feature("mintemp");
    b.relation("Inventory", &[locn, dateid, ksn, units]);
    b.relation("Location", &[locn, zip, avghhi, dist]);
    b.relation("Census", &[zip, population, medianage]);
    b.relation("Item", &[ksn, price]);
    b.relation("Weather", &[locn, dateid, maxtemp, mintemp]);
    b.build().expect("retailer continuous query is valid")
}

/// The Retailer query with a **mix** of continuous and categorical features,
/// matching the demo's model-selection/regression tabs: label
/// `inventoryunits`, continuous `price`, `avghhi`, `population`, `maxtemp`,
/// categorical `category`, `subcategory`, `categoryCluster`, `rain`, `snow`.
pub fn retailer_query_mixed() -> QuerySpec {
    let mut b = QuerySpec::builder("retailer_mixed");
    let (locn, dateid, ksn, zip) = retailer_keys(&mut b);
    let units = b.label("inventoryunits");
    let price = b.continuous_feature("price");
    let avghhi = b.continuous_feature("avghhi");
    let population = b.continuous_feature("population");
    let maxtemp = b.continuous_feature("maxtemp");
    let category = b.categorical_feature("category");
    let subcategory = b.categorical_feature("subcategory");
    let cluster = b.categorical_feature("categoryCluster");
    let rain = b.categorical_feature("rain");
    let snow = b.categorical_feature("snow");
    b.relation("Inventory", &[locn, dateid, ksn, units]);
    b.relation("Location", &[locn, zip, avghhi]);
    b.relation("Census", &[zip, population]);
    b.relation("Item", &[ksn, subcategory, category, cluster, price]);
    b.relation("Weather", &[locn, dateid, rain, snow, maxtemp]);
    b.build().expect("retailer mixed query is valid")
}

/// Chains the non-key attributes of every relation below the deepest join
/// key of that relation, so each relation's schema lies on one root-to-leaf
/// path.  `parents` must already connect the join keys.
pub(crate) fn chain_payload_attributes(
    spec: &QuerySpec,
    parents: &mut [Option<usize>],
    keys: &[usize],
) {
    // Depth of each key variable in the key hierarchy.
    fn depth_of(parents: &[Option<usize>], mut v: usize) -> usize {
        let mut d = 0;
        while let Some(p) = parents[v] {
            d += 1;
            v = p;
        }
        d
    }
    for rel in spec.relations() {
        let anchor = rel
            .vars
            .iter()
            .copied()
            .filter(|v| keys.contains(v))
            .max_by_key(|&v| depth_of(parents, v))
            .expect("every relation joins on at least one key");
        let mut prev = anchor;
        for &v in &rel.vars {
            if keys.contains(&v) {
                continue;
            }
            parents[v] = Some(prev);
            prev = v;
        }
    }
}

/// The Figure 2d variable order for the Retailer query: `locn` at the root,
/// `dateid` and `zip` below it, `ksn` below `dateid`, and each table's
/// payload attributes chained below that table's deepest join key.  Works
/// for both Retailer query variants.
pub fn retailer_variable_order(spec: &QuerySpec) -> VariableOrder {
    let id = |name: &str| spec.var_id(name).expect("known variable");
    let mut parents: Vec<Option<usize>> = vec![None; spec.num_vars()];
    let locn = id("locn");
    let dateid = id("dateid");
    let ksn = id("ksn");
    let zip = id("zip");
    parents[dateid] = Some(locn);
    parents[zip] = Some(locn);
    parents[ksn] = Some(dateid);
    chain_payload_attributes(spec, &mut parents, &[locn, dateid, ksn, zip]);
    VariableOrder::from_parent_vars(spec, &parents).expect("retailer order is valid")
}

/// Convenience: the view tree of a Retailer query under the Figure 2d order.
pub fn retailer_tree(spec: QuerySpec) -> ViewTree {
    let order = retailer_variable_order(&spec);
    ViewTree::new(spec, order).expect("retailer tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_query::{EliminationHeuristic, PlanStats};

    #[test]
    fn generator_produces_all_five_tables_with_consistent_keys() {
        let cfg = RetailerConfig::tiny();
        let db = cfg.generate();
        assert_eq!(db.len(), 5);
        for name in ["Inventory", "Location", "Census", "Item", "Weather"] {
            assert!(db.table(name).is_some(), "missing table {name}");
        }
        assert_eq!(db.table("Location").unwrap().len(), cfg.locations);
        assert_eq!(db.table("Census").unwrap().len(), cfg.zips);
        assert_eq!(db.table("Item").unwrap().len(), cfg.items);
        assert_eq!(
            db.table("Weather").unwrap().len(),
            cfg.locations * cfg.dates
        );
        assert!(!db.table("Inventory").unwrap().is_empty());
        // Every Inventory key refers to an existing location/date/item.
        for (row, _) in &db.table("Inventory").unwrap().rows {
            assert!(row[0].as_i64().unwrap() < cfg.locations as i64);
            assert!(row[1].as_i64().unwrap() < cfg.dates as i64);
            assert!(row[2].as_i64().unwrap() < cfg.items as i64);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = RetailerConfig::tiny().generate();
        let b = RetailerConfig::tiny().generate();
        assert_eq!(a.table("Inventory").unwrap().len(), b.table("Inventory").unwrap().len());
        assert_eq!(a.table("Item").unwrap().rows, b.table("Item").unwrap().rows);
    }

    #[test]
    fn queries_compile_under_the_paper_order_and_heuristics() {
        for spec in [retailer_query_continuous(), retailer_query_mixed()] {
            let tree = retailer_tree(spec.clone());
            let stats = PlanStats::of(&tree);
            assert_eq!(stats.num_views, spec.num_vars());
            assert_eq!(stats.num_relations, 5);
            // The snowflake has small widths under the Figure 2d order.
            assert!(stats.max_key_width <= 5, "{}", stats.summary());

            let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
            let tree2 = ViewTree::new(spec, vo).unwrap();
            assert_eq!(PlanStats::of(&tree2).num_relations, 5);
        }
    }

    #[test]
    fn update_stream_targets_inventory() {
        let cfg = RetailerConfig::tiny();
        let stream = cfg.update_stream(StreamConfig {
            bulks: 3,
            bulk_size: 10,
            delete_fraction: 0.3,
            seed: 1,
        });
        assert_eq!(stream.bulks().len(), 3);
        for bulk in stream.bulks() {
            assert_eq!(bulk.table, "Inventory");
            assert_eq!(bulk.len(), 10);
        }
    }
}
