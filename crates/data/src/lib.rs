#![forbid(unsafe_code)]
//! Datasets and update streams for the F-IVM reproduction.
//!
//! The paper evaluates on two databases that we cannot redistribute: the
//! proprietary Retailer dataset and Kaggle's Favorita dataset.  This crate
//! provides synthetic generators with the same schemas, join structure and
//! update patterns (bulk inserts/deletes against the fact table), plus the
//! toy database of Figure 1:
//!
//! * [`figure1`] — the two-relation toy database used throughout the paper's
//!   worked example,
//! * [`retailer`] — the 5-relation Retailer snowflake (Inventory, Location,
//!   Census, Item, Weather) and its natural-join queries,
//! * [`favorita`] — the 6-relation Favorita schema (Sales, Items, Stores,
//!   Transactions, Oil, Holidays) and its natural-join queries,
//! * [`stream`] — bulk update-stream generation (the demo processes bulks of
//!   10 000 updates at a time).

pub mod favorita;
pub mod figure1;
pub mod retailer;
pub mod stream;

pub use favorita::FavoritaConfig;
pub use figure1::{figure1_database, figure1_tree};
pub use retailer::RetailerConfig;
pub use stream::{StreamConfig, UpdateStream};
