//! The toy database of Figure 1: `R(A, B)` and `S(A, C, D)`.

use fivm_common::Value;
use fivm_query::{QuerySpec, ViewTree};
use fivm_relation::{tuple, AttrKind, BaseTable, Database, Schema};

/// The toy database of Figure 1 with `b_i = c_i = d_i = i`:
/// `R = {(a1,b1), (a2,b2)}`, `S = {(a1,c1,d1), (a1,c2,d3), (a2,c2,d2)}`.
///
/// A-values are encoded as integers 1, 2; the B/C/D columns are numeric so
/// the same database serves the count, COVAR and MI scenarios.
pub fn figure1_database() -> Database {
    let mut db = Database::new();
    let mut r = BaseTable::new(
        "R",
        Schema::of(&[("A", AttrKind::Categorical), ("B", AttrKind::Continuous)]),
    );
    r.push(tuple([Value::int(1), Value::int(1)]));
    r.push(tuple([Value::int(2), Value::int(2)]));
    db.add_table(r).expect("unique table name");

    let mut s = BaseTable::new(
        "S",
        Schema::of(&[
            ("A", AttrKind::Categorical),
            ("C", AttrKind::Continuous),
            ("D", AttrKind::Continuous),
        ]),
    );
    s.push(tuple([Value::int(1), Value::int(1), Value::int(1)]));
    s.push(tuple([Value::int(1), Value::int(2), Value::int(3)]));
    s.push(tuple([Value::int(2), Value::int(2), Value::int(2)]));
    db.add_table(s).expect("unique table name");
    db
}

/// The Figure 1 view tree (variable order: A at the root, B under A with R
/// attached, C under A, D under C with S attached), over the query returned
/// by [`fivm_query::spec::figure1_query`].
pub fn figure1_tree(categorical_c: bool) -> ViewTree {
    let spec: QuerySpec = fivm_query::spec::figure1_query(categorical_c);
    let a = spec.var_id("A").expect("A exists");
    let c = spec.var_id("C").expect("C exists");
    let mut parents = vec![None; spec.num_vars()];
    parents[spec.var_id("B").expect("B exists")] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").expect("D exists")] = Some(c);
    ViewTree::from_parent_vars(spec, &parents).expect("figure 1 order is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_matches_the_paper() {
        let db = figure1_database();
        assert_eq!(db.len(), 2);
        assert_eq!(db.table("R").unwrap().len(), 2);
        assert_eq!(db.table("S").unwrap().len(), 3);
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn tree_has_one_view_per_variable() {
        let t = figure1_tree(false);
        assert_eq!(t.len(), 4);
        assert_eq!(t.roots().len(), 1);
        let t_cat = figure1_tree(true);
        assert_eq!(t_cat.spec().variables()[2].kind, AttrKind::Categorical);
    }
}
