//! Synthetic Favorita dataset.
//!
//! Kaggle's "Corporación Favorita Grocery Sales Forecasting" data is a star
//! schema around a `Sales` fact table:
//!
//! ```text
//! Sales        (date, store, item, unitsales, onpromotion)
//! Items        (item, family, class, perishable)
//! Stores       (store, city, state, stype, cluster)
//! Transactions (date, store, transactions)
//! Oil          (date, oilprice)
//! Holidays     (date, holidaytype)
//! ```
//!
//! The generator keeps the join structure (keys `date`, `store`, `item`),
//! the fact-table dominance and the attribute kinds; values are synthetic.

use crate::stream::{StreamConfig, UpdateStream};
use fivm_common::Value;
use fivm_query::{QuerySpec, VariableOrder, ViewTree};
use fivm_relation::{tuple, AttrKind, BaseTable, Database, Schema, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic Favorita generator.
#[derive(Clone, Debug, PartialEq)]
pub struct FavoritaConfig {
    /// Number of dates.
    pub dates: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of items.
    pub items: usize,
    /// Fraction of (date, store, item) combinations present in Sales.
    pub sales_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FavoritaConfig {
    fn default() -> Self {
        FavoritaConfig {
            dates: 50,
            stores: 20,
            items: 80,
            sales_density: 0.06,
            seed: 0xFA_B0_12,
        }
    }
}

impl FavoritaConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        FavoritaConfig {
            dates: 6,
            stores: 4,
            items: 10,
            sales_density: 0.3,
            seed: 13,
        }
    }

    /// A configuration sized for benchmark runs.
    pub fn benchmark() -> Self {
        FavoritaConfig {
            dates: 150,
            stores: 50,
            items: 300,
            sales_density: 0.02,
            seed: 2017,
        }
    }

    /// Generates the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();

        let mut items = BaseTable::new(
            "Items",
            Schema::of(&[
                ("item", AttrKind::Categorical),
                ("family", AttrKind::Categorical),
                ("class", AttrKind::Categorical),
                ("perishable", AttrKind::Categorical),
            ]),
        );
        let mut item_family = Vec::with_capacity(self.items);
        let mut item_perishable = Vec::with_capacity(self.items);
        for item in 0..self.items {
            let family = rng.gen_range(0..12i64);
            let perishable = rng.gen_range(0..2i64);
            item_family.push(family);
            item_perishable.push(perishable);
            items.push(tuple([
                Value::int(item as i64),
                Value::int(family),
                Value::int(family * 20 + rng.gen_range(0..6i64)),
                Value::int(perishable),
            ]));
        }
        db.add_table(items).expect("unique name");

        let mut stores = BaseTable::new(
            "Stores",
            Schema::of(&[
                ("store", AttrKind::Categorical),
                ("city", AttrKind::Categorical),
                ("state", AttrKind::Categorical),
                ("stype", AttrKind::Categorical),
                ("cluster", AttrKind::Categorical),
            ]),
        );
        for store in 0..self.stores {
            let state = rng.gen_range(0..6);
            stores.push(tuple([
                Value::int(store as i64),
                Value::int(state * 4 + rng.gen_range(0..3i64)),
                Value::int(state),
                Value::int(rng.gen_range(0..5)),
                Value::int(rng.gen_range(0..17)),
            ]));
        }
        db.add_table(stores).expect("unique name");

        let mut transactions = BaseTable::new(
            "Transactions",
            Schema::of(&[
                ("date", AttrKind::Categorical),
                ("store", AttrKind::Categorical),
                ("transactions", AttrKind::Continuous),
            ]),
        );
        for date in 0..self.dates {
            for store in 0..self.stores {
                transactions.push(tuple([
                    Value::int(date as i64),
                    Value::int(store as i64),
                    Value::double(rng.gen_range(200.0..4_000.0)),
                ]));
            }
        }
        db.add_table(transactions).expect("unique name");

        let mut oil = BaseTable::new(
            "Oil",
            Schema::of(&[
                ("date", AttrKind::Categorical),
                ("oilprice", AttrKind::Continuous),
            ]),
        );
        let mut price = 45.0f64;
        for date in 0..self.dates {
            price += rng.gen_range(-1.5..1.5);
            oil.push(tuple([Value::int(date as i64), Value::double(price)]));
        }
        db.add_table(oil).expect("unique name");

        let mut holidays = BaseTable::new(
            "Holidays",
            Schema::of(&[
                ("date", AttrKind::Categorical),
                ("holidaytype", AttrKind::Categorical),
            ]),
        );
        for date in 0..self.dates {
            // 0 = workday, 1..4 = holiday kinds.
            let kind = if rng.gen_bool(0.2) {
                rng.gen_range(1..5)
            } else {
                0
            };
            holidays.push(tuple([Value::int(date as i64), Value::int(kind)]));
        }
        db.add_table(holidays).expect("unique name");

        // Sales is the fact table; unit sales correlate with promotions, the
        // item family and perishability so the ML demos have signal to find.
        let mut sales = BaseTable::new("Sales", Self::sales_schema());
        for date in 0..self.dates {
            for store in 0..self.stores {
                for item in 0..self.items {
                    if rng.gen_bool(self.sales_density) {
                        let promo = rng.gen_range(0..2i64);
                        let units = 5.0
                            + 20.0 * promo as f64
                            + 2.0 * item_family[item] as f64
                            + 6.0 * item_perishable[item] as f64
                            + rng.gen_range(0.0..10.0);
                        sales.push(Self::sales_row(
                            date as i64,
                            store as i64,
                            item as i64,
                            units,
                            promo,
                        ));
                    }
                }
            }
        }
        db.add_table(sales).expect("unique name");
        db
    }

    /// The Sales fact-table schema.
    pub fn sales_schema() -> Schema {
        Schema::of(&[
            ("date", AttrKind::Categorical),
            ("store", AttrKind::Categorical),
            ("item", AttrKind::Categorical),
            ("unitsales", AttrKind::Continuous),
            ("onpromotion", AttrKind::Categorical),
        ])
    }

    /// Builds one Sales row.
    pub fn sales_row(date: i64, store: i64, item: i64, unitsales: f64, promo: i64) -> Tuple {
        tuple([
            Value::int(date),
            Value::int(store),
            Value::int(item),
            Value::double(unitsales),
            Value::int(promo),
        ])
    }

    /// An update stream of bulk inserts/deletes against the Sales fact table.
    pub fn update_stream(&self, stream: StreamConfig) -> UpdateStream {
        let cfg = self.clone();
        UpdateStream::generate(stream, "Sales", move |rng| cfg.random_sales_row(rng))
    }

    /// A random Sales row drawn from the configured key domains.
    pub fn random_sales_row(&self, rng: &mut StdRng) -> Tuple {
        Self::sales_row(
            rng.gen_range(0..self.dates) as i64,
            rng.gen_range(0..self.stores) as i64,
            rng.gen_range(0..self.items) as i64,
            rng.gen_range(0.0..60.0),
            rng.gen_range(0..2),
        )
    }
}

/// The Favorita regression/MI query: label `unitsales`; continuous features
/// `transactions`, `oilprice`; categorical features `onpromotion`, `family`,
/// `perishable`, `city`, `stype`, `cluster`, `holidaytype`.
pub fn favorita_query() -> QuerySpec {
    let mut b = QuerySpec::builder("favorita");
    let date = b.key("date");
    let store = b.key("store");
    let item = b.key("item");
    let unitsales = b.label("unitsales");
    let onpromotion = b.categorical_feature("onpromotion");
    let family = b.categorical_feature("family");
    let perishable = b.categorical_feature("perishable");
    let city = b.categorical_feature("city");
    let stype = b.categorical_feature("stype");
    let cluster = b.categorical_feature("cluster");
    let transactions = b.continuous_feature("transactions");
    let oilprice = b.continuous_feature("oilprice");
    let holidaytype = b.categorical_feature("holidaytype");
    b.relation("Sales", &[date, store, item, unitsales, onpromotion]);
    b.relation("Items", &[item, family, perishable]);
    b.relation("Stores", &[store, city, stype, cluster]);
    b.relation("Transactions", &[date, store, transactions]);
    b.relation("Oil", &[date, oilprice]);
    b.relation("Holidays", &[date, holidaytype]);
    b.build().expect("favorita query is valid")
}

/// A hand-written variable order for the Favorita query: `date` at the root,
/// `store` below `date`, `item` below `store`, and each table's payload
/// attributes chained below that table's deepest join key.
pub fn favorita_variable_order(spec: &QuerySpec) -> VariableOrder {
    let id = |name: &str| spec.var_id(name).expect("known variable");
    let mut parents: Vec<Option<usize>> = vec![None; spec.num_vars()];
    let date = id("date");
    let store = id("store");
    let item = id("item");
    parents[store] = Some(date);
    parents[item] = Some(store);
    crate::retailer::chain_payload_attributes(spec, &mut parents, &[date, store, item]);
    VariableOrder::from_parent_vars(spec, &parents).expect("favorita order is valid")
}

/// Convenience: the view tree of the Favorita query under the hand-written
/// order.
pub fn favorita_tree(spec: QuerySpec) -> ViewTree {
    let order = favorita_variable_order(&spec);
    ViewTree::new(spec, order).expect("favorita tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_query::{EliminationHeuristic, PlanStats};

    #[test]
    fn generator_produces_all_six_tables() {
        let cfg = FavoritaConfig::tiny();
        let db = cfg.generate();
        assert_eq!(db.len(), 6);
        for name in ["Sales", "Items", "Stores", "Transactions", "Oil", "Holidays"] {
            assert!(db.table(name).is_some(), "missing table {name}");
        }
        assert_eq!(db.table("Oil").unwrap().len(), cfg.dates);
        assert_eq!(db.table("Transactions").unwrap().len(), cfg.dates * cfg.stores);
        assert!(!db.table("Sales").unwrap().is_empty());
    }

    #[test]
    fn query_compiles_under_hand_written_and_heuristic_orders() {
        let spec = favorita_query();
        let tree = favorita_tree(spec.clone());
        let stats = PlanStats::of(&tree);
        assert_eq!(stats.num_relations, 6);
        assert!(stats.max_key_width <= 5, "{}", stats.summary());
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinFill).unwrap();
        assert!(ViewTree::new(spec, vo).is_ok());
    }

    #[test]
    fn update_stream_targets_sales() {
        let cfg = FavoritaConfig::tiny();
        let stream = cfg.update_stream(StreamConfig {
            bulks: 2,
            bulk_size: 25,
            delete_fraction: 0.2,
            seed: 4,
        });
        assert_eq!(stream.total_updates(), 50);
        assert!(stream.bulks().iter().all(|b| b.table == "Sales"));
    }
}
