//! Bulk update-stream generation.
//!
//! The demo processes updates in bulks (10 000 updates at a time) that mix
//! inserts with deletes of previously inserted rows.  [`UpdateStream`]
//! reproduces that pattern against a single fact table using a caller
//! supplied row generator.

use fivm_relation::{Tuple, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an update stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamConfig {
    /// Number of bulks to generate.
    pub bulks: usize,
    /// Number of updates per bulk (the demo uses 10 000).
    pub bulk_size: usize,
    /// Fraction of updates that are deletes of previously inserted rows.
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            bulks: 10,
            bulk_size: 1_000,
            delete_fraction: 0.2,
            seed: 42,
        }
    }
}

/// A generated sequence of update bulks against one table.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    bulks: Vec<Update>,
}

impl UpdateStream {
    /// Generates a stream: each update is either a fresh insert (drawn from
    /// `row_gen`) or, with probability `delete_fraction`, a delete of a row
    /// inserted earlier in the stream (each row is deleted at most once).
    ///
    /// The live set tracks `(bulk, row)` positions instead of cloned rows,
    /// so only actual deletes copy a tuple — inserts are moved into their
    /// bulk without cloning.  The RNG consumption is identical to the
    /// cloning implementation, so streams for a given seed are unchanged.
    pub fn generate(
        config: StreamConfig,
        table: &str,
        mut row_gen: impl FnMut(&mut StdRng) -> Tuple,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut live: Vec<(usize, usize)> = Vec::new();
        let mut bulks: Vec<Update> = Vec::with_capacity(config.bulks);
        for _ in 0..config.bulks {
            let mut rows: Vec<(Tuple, i64)> = Vec::with_capacity(config.bulk_size);
            for _ in 0..config.bulk_size {
                let delete = !live.is_empty() && rng.gen_bool(config.delete_fraction);
                if delete {
                    let idx = rng.gen_range(0..live.len());
                    let (bulk, row) = live.swap_remove(idx);
                    let row = if bulk == bulks.len() {
                        rows[row].0.clone()
                    } else {
                        bulks[bulk].rows[row].0.clone()
                    };
                    rows.push((row, -1));
                } else {
                    let row = row_gen(&mut rng);
                    live.push((bulks.len(), rows.len()));
                    rows.push((row, 1));
                }
            }
            bulks.push(Update::with_multiplicities(table, rows));
        }
        UpdateStream { bulks }
    }

    /// The generated bulks, in order.
    pub fn bulks(&self) -> &[Update] {
        &self.bulks
    }

    /// Total number of individual updates across all bulks.
    pub fn total_updates(&self) -> usize {
        self.bulks.iter().map(Update::len).sum()
    }

    /// Consumes the stream, returning its bulks.
    pub fn into_bulks(self) -> Vec<Update> {
        self.bulks
    }

    /// Re-chunks the stream into bulks of at most `chunk_size` rows,
    /// preserving the exact row sequence.  A bulk never mixes tables, so a
    /// short bulk appears wherever the stream switches tables (and at the
    /// very end); a single-table stream yields full bulks with only the
    /// last possibly short.
    ///
    /// The chunking is a pure function of the input stream: for a given
    /// seed, every consumer — a single engine, a sharded engine, any shard
    /// count — replays the byte-identical update sequence, just cut at
    /// different bulk boundaries.  Differential tests rely on this to vary
    /// batch sizes without perturbing the stream.
    pub fn rechunk(self, chunk_size: usize) -> UpdateStream {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut bulks: Vec<Update> = Vec::new();
        for bulk in self.bulks {
            let table = bulk.table;
            let mut rows = bulk.rows.into_iter().peekable();
            while rows.peek().is_some() {
                let chunk: Vec<(Tuple, i64)> = match bulks.last() {
                    Some(last) if last.table == table && last.len() < chunk_size => {
                        // Top up a short trailing chunk of the same table
                        // before starting a new one.
                        let last = bulks.last_mut().expect("just matched");
                        let take = chunk_size - last.len();
                        last.rows.extend(rows.by_ref().take(take));
                        continue;
                    }
                    _ => rows.by_ref().take(chunk_size).collect(),
                };
                bulks.push(Update::with_multiplicities(table.clone(), chunk));
            }
        }
        UpdateStream { bulks }
    }

    /// Deterministically interleaves several per-relation streams into one
    /// update sequence, round-robin one bulk at a time (stream 0's first
    /// bulk, stream 1's first bulk, ..., stream 0's second bulk, ...).
    ///
    /// Relative order *within* each relation is preserved exactly, so the
    /// interleaved sequence is a valid schedule of all input streams, and —
    /// like [`UpdateStream::rechunk`] — it is a pure function of its
    /// inputs: sharded and unsharded runs fed from the same call consume
    /// byte-identical updates.  Use one stream per relation to exercise
    /// mixed fact-table/dimension-table workloads (hash-routed and
    /// broadcast relations in the sharded setting).
    pub fn interleave(streams: Vec<UpdateStream>) -> Vec<Update> {
        let mut queues: Vec<std::vec::IntoIter<Update>> = streams
            .into_iter()
            .map(|s| s.bulks.into_iter())
            .collect();
        let mut out = Vec::new();
        loop {
            let mut emitted = false;
            for q in &mut queues {
                if let Some(bulk) = q.next() {
                    out.push(bulk);
                    emitted = true;
                }
            }
            if !emitted {
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_relation::tuple;
    use std::collections::HashMap;

    fn gen_stream(delete_fraction: f64, seed: u64) -> UpdateStream {
        let mut next = 0i64;
        UpdateStream::generate(
            StreamConfig {
                bulks: 5,
                bulk_size: 100,
                delete_fraction,
                seed,
            },
            "T",
            move |rng| {
                next += 1;
                tuple([Value::int(next), Value::int(rng.gen_range(0..10))])
            },
        )
    }

    #[test]
    fn produces_requested_shape() {
        let s = gen_stream(0.25, 3);
        assert_eq!(s.bulks().len(), 5);
        assert_eq!(s.total_updates(), 500);
        assert!(s.bulks().iter().all(|b| b.table == "T" && b.len() == 100));
    }

    #[test]
    fn deletes_only_target_previously_inserted_rows() {
        let s = gen_stream(0.4, 9);
        let mut multiplicity: HashMap<Tuple, i64> = HashMap::new();
        for bulk in s.bulks() {
            for (row, m) in &bulk.rows {
                let e = multiplicity.entry(row.clone()).or_insert(0);
                *e += m;
                assert!(*e >= 0, "row deleted before being inserted: {row:?}");
            }
        }
        // Some rows should have been deleted overall.
        assert!(multiplicity.values().any(|&m| m == 0));
    }

    #[test]
    fn zero_delete_fraction_only_inserts() {
        let s = gen_stream(0.0, 5);
        assert!(s
            .bulks()
            .iter()
            .all(|b| b.rows.iter().all(|(_, m)| *m == 1)));
        let bulks = s.into_bulks();
        assert_eq!(bulks.len(), 5);
    }

    #[test]
    fn rechunk_preserves_the_exact_row_sequence() {
        let s = gen_stream(0.3, 21);
        let original: Vec<(Tuple, i64)> = s
            .bulks()
            .iter()
            .flat_map(|b| b.rows.iter().cloned())
            .collect();
        for chunk in [1, 7, 100, 130, 1000] {
            let re = gen_stream(0.3, 21).rechunk(chunk);
            let rows: Vec<(Tuple, i64)> = re
                .bulks()
                .iter()
                .flat_map(|b| b.rows.iter().cloned())
                .collect();
            assert_eq!(rows, original, "chunk size {chunk} perturbed the stream");
            assert!(re.bulks().iter().all(|b| b.len() <= chunk));
            // All bulks except the last are full.
            assert!(re.bulks()[..re.bulks().len() - 1]
                .iter()
                .all(|b| b.len() == chunk));
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn rechunk_rejects_zero() {
        let _ = gen_stream(0.0, 1).rechunk(0);
    }

    #[test]
    fn rechunk_never_mixes_tables() {
        // A multi-table stream (e.g. re-wrapped interleave output) chunks
        // per table run: every bulk holds one table, rows keep their exact
        // per-table order, and short bulks appear only at table switches.
        let a = gen_stream(0.0, 41);
        let mut b = gen_stream(0.0, 42);
        for bulk in &mut b.bulks {
            bulk.table = "U".into();
        }
        let merged = UpdateStream {
            bulks: UpdateStream::interleave(vec![a, b]),
        };
        let per_table = |bulks: &[Update], table: &str| -> Vec<(Tuple, i64)> {
            bulks
                .iter()
                .filter(|u| u.table == table)
                .flat_map(|u| u.rows.iter().cloned())
                .collect()
        };
        let t_rows = per_table(merged.bulks(), "T");
        let u_rows = per_table(merged.bulks(), "U");
        let re = merged.rechunk(33);
        assert!(re.bulks().iter().all(|u| u.len() <= 33));
        assert_eq!(per_table(re.bulks(), "T"), t_rows);
        assert_eq!(per_table(re.bulks(), "U"), u_rows);
    }

    #[test]
    fn interleave_round_robins_and_preserves_per_relation_order() {
        let a = gen_stream(0.0, 31); // 5 bulks against "T"
        let mut b = gen_stream(0.0, 32);
        for bulk in &mut b.bulks {
            bulk.table = "U".into();
        }
        let b_rows: Vec<(Tuple, i64)> = b
            .bulks()
            .iter()
            .flat_map(|x| x.rows.iter().cloned())
            .collect();
        let merged = UpdateStream::interleave(vec![a, b]);
        assert_eq!(merged.len(), 10);
        // Strict round-robin: T, U, T, U, ...
        let tables: Vec<&str> = merged.iter().map(|u| u.table.as_str()).collect();
        assert!(tables.chunks(2).all(|c| c == ["T", "U"]));
        // Per-relation row order is untouched.
        let u_rows: Vec<(Tuple, i64)> = merged
            .iter()
            .filter(|u| u.table == "U")
            .flat_map(|u| u.rows.iter().cloned())
            .collect();
        assert_eq!(u_rows, b_rows);
        // Uneven stream lengths drain the longer tail in order.
        let short = UpdateStream {
            bulks: gen_stream(0.0, 33).into_bulks()[..2].to_vec(),
        };
        let long = gen_stream(0.0, 34);
        let merged = UpdateStream::interleave(vec![short, long]);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = gen_stream(0.3, 11);
        let b = gen_stream(0.3, 11);
        assert_eq!(a.bulks()[0].rows, b.bulks()[0].rows);
        let c = gen_stream(0.3, 12);
        assert_ne!(a.bulks()[0].rows, c.bulks()[0].rows);
    }
}
