//! Bulk update-stream generation.
//!
//! The demo processes updates in bulks (10 000 updates at a time) that mix
//! inserts with deletes of previously inserted rows.  [`UpdateStream`]
//! reproduces that pattern against a single fact table using a caller
//! supplied row generator.

use fivm_relation::{Tuple, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an update stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamConfig {
    /// Number of bulks to generate.
    pub bulks: usize,
    /// Number of updates per bulk (the demo uses 10 000).
    pub bulk_size: usize,
    /// Fraction of updates that are deletes of previously inserted rows.
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            bulks: 10,
            bulk_size: 1_000,
            delete_fraction: 0.2,
            seed: 42,
        }
    }
}

/// A generated sequence of update bulks against one table.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    bulks: Vec<Update>,
}

impl UpdateStream {
    /// Generates a stream: each update is either a fresh insert (drawn from
    /// `row_gen`) or, with probability `delete_fraction`, a delete of a row
    /// inserted earlier in the stream (each row is deleted at most once).
    ///
    /// The live set tracks `(bulk, row)` positions instead of cloned rows,
    /// so only actual deletes copy a tuple — inserts are moved into their
    /// bulk without cloning.  The RNG consumption is identical to the
    /// cloning implementation, so streams for a given seed are unchanged.
    pub fn generate(
        config: StreamConfig,
        table: &str,
        mut row_gen: impl FnMut(&mut StdRng) -> Tuple,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut live: Vec<(usize, usize)> = Vec::new();
        let mut bulks: Vec<Update> = Vec::with_capacity(config.bulks);
        for _ in 0..config.bulks {
            let mut rows: Vec<(Tuple, i64)> = Vec::with_capacity(config.bulk_size);
            for _ in 0..config.bulk_size {
                let delete = !live.is_empty() && rng.gen_bool(config.delete_fraction);
                if delete {
                    let idx = rng.gen_range(0..live.len());
                    let (bulk, row) = live.swap_remove(idx);
                    let row = if bulk == bulks.len() {
                        rows[row].0.clone()
                    } else {
                        bulks[bulk].rows[row].0.clone()
                    };
                    rows.push((row, -1));
                } else {
                    let row = row_gen(&mut rng);
                    live.push((bulks.len(), rows.len()));
                    rows.push((row, 1));
                }
            }
            bulks.push(Update::with_multiplicities(table, rows));
        }
        UpdateStream { bulks }
    }

    /// The generated bulks, in order.
    pub fn bulks(&self) -> &[Update] {
        &self.bulks
    }

    /// Total number of individual updates across all bulks.
    pub fn total_updates(&self) -> usize {
        self.bulks.iter().map(Update::len).sum()
    }

    /// Consumes the stream, returning its bulks.
    pub fn into_bulks(self) -> Vec<Update> {
        self.bulks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_relation::tuple;
    use std::collections::HashMap;

    fn gen_stream(delete_fraction: f64, seed: u64) -> UpdateStream {
        let mut next = 0i64;
        UpdateStream::generate(
            StreamConfig {
                bulks: 5,
                bulk_size: 100,
                delete_fraction,
                seed,
            },
            "T",
            move |rng| {
                next += 1;
                tuple([Value::int(next), Value::int(rng.gen_range(0..10))])
            },
        )
    }

    #[test]
    fn produces_requested_shape() {
        let s = gen_stream(0.25, 3);
        assert_eq!(s.bulks().len(), 5);
        assert_eq!(s.total_updates(), 500);
        assert!(s.bulks().iter().all(|b| b.table == "T" && b.len() == 100));
    }

    #[test]
    fn deletes_only_target_previously_inserted_rows() {
        let s = gen_stream(0.4, 9);
        let mut multiplicity: HashMap<Tuple, i64> = HashMap::new();
        for bulk in s.bulks() {
            for (row, m) in &bulk.rows {
                let e = multiplicity.entry(row.clone()).or_insert(0);
                *e += m;
                assert!(*e >= 0, "row deleted before being inserted: {row:?}");
            }
        }
        // Some rows should have been deleted overall.
        assert!(multiplicity.values().any(|&m| m == 0));
    }

    #[test]
    fn zero_delete_fraction_only_inserts() {
        let s = gen_stream(0.0, 5);
        assert!(s
            .bulks()
            .iter()
            .all(|b| b.rows.iter().all(|(_, m)| *m == 1)));
        let bulks = s.into_bulks();
        assert_eq!(bulks.len(), 5);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = gen_stream(0.3, 11);
        let b = gen_stream(0.3, 11);
        assert_eq!(a.bulks()[0].rows, b.bulks()[0].rows);
        let c = gen_stream(0.3, 12);
        assert_ne!(a.bulks()[0].rows, c.bulks()[0].rows);
    }
}
