//! View trees: one view per query variable, derived from a variable order.

use crate::spec::QuerySpec;
use crate::vorder::VariableOrder;
use fivm_common::{RelId, Result, VarId};

/// A child of a view node: either another view or a base relation leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildRef {
    /// A lower view, by node index in the [`ViewTree`].
    View(usize),
    /// A base relation, by relation id.
    Relation(RelId),
}

/// One view `V@var[key_vars]` of the view tree.
///
/// The view is defined as
/// `AggSum(key_vars, Π children × lift(var))`, i.e. the natural join of its
/// children (lower views and base relations) multiplied by the lift of `var`
/// and marginalized over `var` (and any other local variables not in
/// `key_vars`, of which there are none by construction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewNode {
    /// Index of this node within the tree.
    pub id: usize,
    /// The variable marginalized away by this view.
    pub var: VarId,
    /// The group-by variables of the view (the dependency set `key(var)`).
    pub key_vars: Vec<VarId>,
    /// All variables present when joining the children: `key_vars ∪ {var}`.
    /// Ordered with `key_vars` first and `var` last.
    pub local_vars: Vec<VarId>,
    /// The children joined by this view.
    pub children: Vec<ChildRef>,
    /// The parent view, `None` for roots.
    pub parent: Option<usize>,
}

/// A view tree for a query under a variable order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewTree {
    spec: QuerySpec,
    vorder: VariableOrder,
    nodes: Vec<ViewNode>,
    roots: Vec<usize>,
    /// For each relation: the view node indices on the path from the view
    /// where the relation is attached up to its root (leaf-side first).
    relation_paths: Vec<Vec<usize>>,
}

impl ViewTree {
    /// Builds the view tree induced by a variable order.
    ///
    /// A view marginalizes its variable away unless the variable is *free*
    /// (a group-by variable of the query), in which case it is kept in the
    /// view's key and carried up to the roots.
    pub fn new(spec: QuerySpec, vorder: VariableOrder) -> Result<Self> {
        let free: Vec<VarId> = spec.free_vars().to_vec();
        let num_nodes = vorder.len();
        // Compute, bottom-up (descendants have larger indices), the variables
        // present when joining at each node (`local_vars`) and the group-by
        // key each view exposes to its parent (`key_vars`).
        let mut local_of: Vec<Vec<VarId>> = vec![Vec::new(); num_nodes];
        let mut key_of: Vec<Vec<VarId>> = vec![Vec::new(); num_nodes];
        for idx in (0..num_nodes).rev() {
            let vnode = vorder.node(idx);
            let mut local: Vec<VarId> = vnode
                .key
                .iter()
                .copied()
                .filter(|&v| v != vnode.var)
                .collect();
            let push_unique = |local: &mut Vec<VarId>, v: VarId| {
                if v != vnode.var && !local.contains(&v) {
                    local.push(v);
                }
            };
            for &c in &vnode.children {
                for &v in &key_of[c] {
                    push_unique(&mut local, v);
                }
            }
            for &r in &vnode.relations {
                for &v in &spec.relation(r).vars {
                    push_unique(&mut local, v);
                }
            }
            local.push(vnode.var);
            let key = if free.contains(&vnode.var) {
                local.clone()
            } else {
                local[..local.len() - 1].to_vec()
            };
            local_of[idx] = local;
            key_of[idx] = key;
        }

        let mut nodes: Vec<ViewNode> = Vec::with_capacity(num_nodes);
        for (idx, vnode) in vorder.nodes().iter().enumerate() {
            let mut children: Vec<ChildRef> =
                vnode.children.iter().map(|&c| ChildRef::View(c)).collect();
            children.extend(vnode.relations.iter().map(|&r| ChildRef::Relation(r)));
            nodes.push(ViewNode {
                id: idx,
                var: vnode.var,
                key_vars: key_of[idx].clone(),
                local_vars: local_of[idx].clone(),
                children,
                parent: vnode.parent,
            });
        }
        let roots = vorder.roots().to_vec();
        let relation_paths = (0..spec.num_relations())
            .map(|r| vorder.path_to_root_of_relation(r))
            .collect();
        Ok(ViewTree {
            spec,
            vorder,
            nodes,
            roots,
            relation_paths,
        })
    }

    /// Convenience: build the query's view tree from an explicit parent list.
    pub fn from_parent_vars(spec: QuerySpec, parents: &[Option<VarId>]) -> Result<Self> {
        let vorder = VariableOrder::from_parent_vars(&spec, parents)?;
        ViewTree::new(spec, vorder)
    }

    /// The query this tree was built for.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The underlying variable order.
    pub fn vorder(&self) -> &VariableOrder {
        &self.vorder
    }

    /// The view nodes, ancestors before descendants.
    pub fn nodes(&self) -> &[ViewNode] {
        &self.nodes
    }

    /// A single view node.
    pub fn node(&self, id: usize) -> &ViewNode {
        &self.nodes[id]
    }

    /// The root view indices.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The view node at which a relation is attached (its leaf parent).
    pub fn attach_node(&self, rel: RelId) -> usize {
        self.relation_paths[rel][0]
    }

    /// The view node indices on the maintenance path of a relation, from the
    /// attachment node up to the root.
    pub fn maintenance_path(&self, rel: RelId) -> &[usize] {
        &self.relation_paths[rel]
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The display name of a view, e.g. `V@ksn`.
    pub fn view_name(&self, id: usize) -> String {
        format!("V@{}", self.spec.var_name(self.nodes[id].var))
    }

    /// Iterates the node ids bottom-up (descendants before ancestors), the
    /// order in which initial evaluation materializes views.
    pub fn bottom_up(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;

    fn figure1_tree() -> ViewTree {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        ViewTree::from_parent_vars(spec, &parents).unwrap()
    }

    #[test]
    fn figure1_views_have_expected_keys_and_children() {
        let t = figure1_tree();
        assert_eq!(t.len(), 4);
        assert_eq!(t.roots().len(), 1);
        let spec = t.spec().clone();
        let a = spec.var_id("A").unwrap();
        let b = spec.var_id("B").unwrap();
        let c = spec.var_id("C").unwrap();
        let d = spec.var_id("D").unwrap();

        // V@B[A] has child relation R.
        let vb = t.node(t.vorder().node_of(b));
        assert_eq!(vb.key_vars, vec![a]);
        assert_eq!(vb.children, vec![ChildRef::Relation(0)]);
        assert_eq!(vb.local_vars, vec![a, b]);

        // V@D[A, C] has child relation S.
        let vd = t.node(t.vorder().node_of(d));
        assert_eq!(vd.children, vec![ChildRef::Relation(1)]);
        assert_eq!(vd.local_vars.last(), Some(&d));

        // V@C[A] has child V@D.
        let vc = t.node(t.vorder().node_of(c));
        assert_eq!(vc.key_vars, vec![a]);
        assert_eq!(vc.children, vec![ChildRef::View(t.vorder().node_of(d))]);

        // The root V@A[] joins V@B and V@C.
        let va = t.node(t.vorder().node_of(a));
        assert!(va.key_vars.is_empty());
        assert_eq!(va.children.len(), 2);
        assert_eq!(t.view_name(va.id), "V@A");
    }

    #[test]
    fn maintenance_paths_run_leaf_to_root() {
        let t = figure1_tree();
        let spec = t.spec();
        let path_r = t.maintenance_path(0);
        // R is attached at B; path = [V@B, V@A].
        assert_eq!(path_r.len(), 2);
        assert_eq!(t.node(path_r[0]).var, spec.var_id("B").unwrap());
        assert_eq!(t.node(path_r[1]).var, spec.var_id("A").unwrap());
        let path_s = t.maintenance_path(1);
        // S is attached at D; path = [V@D, V@C, V@A].
        assert_eq!(path_s.len(), 3);
        assert_eq!(t.attach_node(1), path_s[0]);
    }

    #[test]
    fn bottom_up_visits_children_before_parents() {
        let t = figure1_tree();
        let order: Vec<usize> = t.bottom_up().collect();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        for node in t.nodes() {
            if let Some(parent) = node.parent {
                assert!(pos(node.id) < pos(parent));
            }
        }
    }
}
