#![forbid(unsafe_code)]
//! Query specifications and view-tree plans for F-IVM.
//!
//! The compilation pipeline mirrors the paper:
//!
//! 1. A [`QuerySpec`] declares the query variables (with continuous or
//!    categorical kinds and feature/label roles) and the natural-join
//!    structure of the base relations.
//! 2. A [`VariableOrder`] arranges the variables in a forest such that every
//!    relation's schema lies on one root-to-leaf path.  Orders can be
//!    supplied explicitly or derived with the min-degree / min-fill
//!    heuristics over the query's primal graph.
//! 3. A [`ViewTree`] assigns one view `V@X[key(X)]` to every variable `X`:
//!    the view joins the views of `X`'s children and the relations attached
//!    at `X`, multiplies the lift of `X`, and marginalizes `X` away.  This is
//!    the structure the engine materializes and maintains.
//!
//! The [`m3`] module renders view trees in an M3-like textual form (the
//! "Maintenance Strategy" tab of the paper's Figure 2d), and [`stats`]
//! summarizes structural plan properties used by tests and benchmarks.

pub mod fingerprint;
pub mod m3;
pub mod partition;
pub mod spec;
pub mod stats;
pub mod view_tree;
pub mod vorder;

pub use fingerprint::{
    relation_fingerprint, tree_fingerprints, tree_fingerprints_labeled, ChildFingerprint,
    NodeFingerprint, RelationFingerprint, VarFingerprint,
};
pub use partition::{PartitionPlan, RelationRouting};
pub use spec::{QueryBuilder, QuerySpec, RelationDef, VarRole, VariableDef};
pub use stats::PlanStats;
pub use view_tree::{ChildRef, ViewNode, ViewTree};
pub use vorder::{EliminationHeuristic, VariableOrder, VoNode};
