//! Variable orders: forests over the query variables that drive view trees.
//!
//! A variable order is valid for a query if the schema of every relation lies
//! on a single root-to-leaf path.  Orders can be given explicitly as a parent
//! list or derived from an *elimination order* of the primal graph: the
//! elimination tree of a (fill-in completed) graph has the property that
//! every clique — in particular every relation schema — lies on one
//! root-to-leaf path.

use crate::spec::QuerySpec;
use fivm_common::{FivmError, FxHashSet, RelId, Result, VarId};

/// Heuristics for choosing an elimination order automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EliminationHeuristic {
    /// Repeatedly eliminate the variable with the fewest neighbours.
    MinDegree,
    /// Repeatedly eliminate the variable adding the fewest fill-in edges.
    MinFill,
}

/// One node of a variable order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoNode {
    /// The query variable at this node.
    pub var: VarId,
    /// Parent variable (as a node index), `None` for roots.
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Relations attached at this node (their deepest variable is `var`).
    pub relations: Vec<RelId>,
    /// The dependency set `key(var)`: ancestor variables on which the views
    /// of this subtree depend (i.e. the group-by variables of `V@var`).
    pub key: Vec<VarId>,
}

/// A variable order (forest) for a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariableOrder {
    nodes: Vec<VoNode>,
    roots: Vec<usize>,
    /// Node index of each variable (`node_of[var]`).
    node_of: Vec<usize>,
}

impl VariableOrder {
    /// Builds a variable order from an elimination order (first variable is
    /// eliminated first, i.e. ends up deepest in the forest).
    ///
    /// Every query variable must appear exactly once.
    pub fn from_elimination_order(spec: &QuerySpec, elim: &[VarId]) -> Result<Self> {
        let n = spec.num_vars();
        if elim.len() != n {
            return Err(FivmError::InvalidVariableOrder(format!(
                "elimination order has {} variables, query has {}",
                elim.len(),
                n
            )));
        }
        let mut seen = vec![false; n];
        for &v in elim {
            if v >= n || seen[v] {
                return Err(FivmError::InvalidVariableOrder(format!(
                    "elimination order repeats or exceeds variable id {v}"
                )));
            }
            seen[v] = true;
        }

        // Adjacency of the primal graph, extended with fill-in edges.
        let mut adj: Vec<FxHashSet<VarId>> = vec![FxHashSet::default(); n];
        for (a, b) in spec.primal_edges() {
            adj[a].insert(b);
            adj[b].insert(a);
        }
        let mut position = vec![0usize; n];
        for (i, &v) in elim.iter().enumerate() {
            position[v] = i;
        }

        // parent_var[v] = the neighbour of v (in the induced graph) that is
        // eliminated earliest after v.
        let mut parent_var: Vec<Option<VarId>> = vec![None; n];
        let mut eliminated = vec![false; n];
        for &v in elim {
            let higher: Vec<VarId> = adj[v]
                .iter()
                .copied()
                .filter(|&u| !eliminated[u])
                .collect();
            // Fill-in: connect all not-yet-eliminated neighbours pairwise.
            for i in 0..higher.len() {
                for j in i + 1..higher.len() {
                    let (a, b) = (higher[i], higher[j]);
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
            parent_var[v] = higher.iter().copied().min_by_key(|&u| position[u]);
            eliminated[v] = true;
        }

        Self::from_parent_vars(spec, &parent_var)
    }

    /// Builds a variable order from an explicit parent assignment
    /// (`parents[v]` is the parent variable of `v`, or `None` for roots).
    ///
    /// The order is validated: it must be acyclic and every relation's schema
    /// must lie on a single root-to-leaf path.
    pub fn from_parent_vars(spec: &QuerySpec, parents: &[Option<VarId>]) -> Result<Self> {
        let n = spec.num_vars();
        if parents.len() != n {
            return Err(FivmError::InvalidVariableOrder(format!(
                "parent list has {} entries, query has {} variables",
                parents.len(),
                n
            )));
        }
        for (v, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if *p >= n {
                    return Err(FivmError::InvalidVariableOrder(format!(
                        "parent of variable {v} is out of range"
                    )));
                }
                if *p == v {
                    return Err(FivmError::InvalidVariableOrder(format!(
                        "variable {v} cannot be its own parent"
                    )));
                }
            }
        }

        // Depth check also detects cycles.
        let mut depth = vec![usize::MAX; n];
        fn depth_of(
            v: VarId,
            parents: &[Option<VarId>],
            depth: &mut [usize],
            visiting: &mut [bool],
        ) -> Result<usize> {
            if depth[v] != usize::MAX {
                return Ok(depth[v]);
            }
            if visiting[v] {
                return Err(FivmError::InvalidVariableOrder(format!(
                    "cycle through variable {v}"
                )));
            }
            visiting[v] = true;
            let d = match parents[v] {
                None => 0,
                Some(p) => depth_of(p, parents, depth, visiting)? + 1,
            };
            visiting[v] = false;
            depth[v] = d;
            Ok(d)
        }
        let mut visiting = vec![false; n];
        for v in 0..n {
            depth_of(v, parents, &mut depth, &mut visiting)?;
        }

        // Node order: ancestors before descendants (sort by depth).
        let mut order: Vec<VarId> = (0..n).collect();
        order.sort_by_key(|&v| depth[v]);
        let mut node_of = vec![usize::MAX; n];
        for (idx, &v) in order.iter().enumerate() {
            node_of[v] = idx;
        }

        let mut nodes: Vec<VoNode> = order
            .iter()
            .map(|&v| VoNode {
                var: v,
                parent: parents[v].map(|p| node_of[p]),
                children: Vec::new(),
                relations: Vec::new(),
                key: Vec::new(),
            })
            .collect();
        let mut roots = Vec::new();
        for idx in 0..nodes.len() {
            match nodes[idx].parent {
                Some(p) => nodes[p].children.push(idx),
                None => roots.push(idx),
            }
        }

        // Attach each relation at its deepest variable and validate the path
        // property: the relation's schema must be a subset of the ancestors
        // of that deepest variable (inclusive).
        for (rel_id, rel) in spec.relations().iter().enumerate() {
            let &deepest = rel
                .vars
                .iter()
                .max_by_key(|&&v| depth[v])
                .expect("relations have non-empty schemas");
            let mut ancestors = FxHashSet::default();
            let mut cur = Some(node_of[deepest]);
            while let Some(idx) = cur {
                ancestors.insert(nodes[idx].var);
                cur = nodes[idx].parent;
            }
            for &v in &rel.vars {
                if !ancestors.contains(&v) {
                    return Err(FivmError::InvalidVariableOrder(format!(
                        "relation `{}` does not lie on a single root-to-leaf path: \
                         variable `{}` is not an ancestor of `{}`",
                        rel.name,
                        spec.var_name(v),
                        spec.var_name(deepest)
                    )));
                }
            }
            nodes[node_of[deepest]].relations.push(rel_id);
        }

        // Compute dependency sets bottom-up:
        // key(X) = (⋃ key(child) ∪ ⋃ schema(relations at X)) \ {X}.
        for idx in (0..nodes.len()).rev() {
            let mut key: FxHashSet<VarId> = FxHashSet::default();
            for &c in &nodes[idx].children {
                key.extend(nodes[c].key.iter().copied());
            }
            for &r in &nodes[idx].relations {
                key.extend(spec.relation(r).vars.iter().copied());
            }
            key.remove(&nodes[idx].var);
            let mut key: Vec<VarId> = key.into_iter().collect();
            // Deterministic order: by depth (shallowest ancestor first).
            key.sort_by_key(|&v| (depth[v], v));
            nodes[idx].key = key;
        }

        Ok(VariableOrder {
            nodes,
            roots,
            node_of,
        })
    }

    /// Derives a variable order with a greedy elimination heuristic.
    ///
    /// Free (group-by) variables of the query are kept closest to the roots,
    /// as required for the root views to be grouped by them.
    pub fn heuristic(spec: &QuerySpec, heuristic: EliminationHeuristic) -> Result<Self> {
        let n = spec.num_vars();
        let mut adj: Vec<FxHashSet<VarId>> = vec![FxHashSet::default(); n];
        for (a, b) in spec.primal_edges() {
            adj[a].insert(b);
            adj[b].insert(a);
        }
        let free: FxHashSet<VarId> = spec.free_vars().iter().copied().collect();
        let mut remaining: FxHashSet<VarId> = (0..n).collect();
        let mut elim = Vec::with_capacity(n);

        while !remaining.is_empty() {
            // Prefer eliminating bound variables; free variables go last.
            let candidates: Vec<VarId> = {
                let bound: Vec<VarId> = remaining
                    .iter()
                    .copied()
                    .filter(|v| !free.contains(v))
                    .collect();
                if bound.is_empty() {
                    remaining.iter().copied().collect()
                } else {
                    bound
                }
            };
            let score = |v: VarId| -> (usize, VarId) {
                let neigh: Vec<VarId> = adj[v]
                    .iter()
                    .copied()
                    .filter(|u| remaining.contains(u))
                    .collect();
                let cost = match heuristic {
                    EliminationHeuristic::MinDegree => neigh.len(),
                    EliminationHeuristic::MinFill => {
                        let mut fill = 0;
                        for i in 0..neigh.len() {
                            for j in i + 1..neigh.len() {
                                if !adj[neigh[i]].contains(&neigh[j]) {
                                    fill += 1;
                                }
                            }
                        }
                        fill
                    }
                };
                (cost, v)
            };
            let &best = candidates
                .iter()
                .min_by_key(|&&v| score(v))
                .expect("candidates is non-empty");
            // Eliminate `best`: connect its remaining neighbours.
            let neigh: Vec<VarId> = adj[best]
                .iter()
                .copied()
                .filter(|u| remaining.contains(u))
                .collect();
            for i in 0..neigh.len() {
                for j in i + 1..neigh.len() {
                    adj[neigh[i]].insert(neigh[j]);
                    adj[neigh[j]].insert(neigh[i]);
                }
            }
            remaining.remove(&best);
            elim.push(best);
        }

        Self::from_elimination_order(spec, &elim)
    }

    /// The nodes, ordered so that ancestors precede descendants.
    pub fn nodes(&self) -> &[VoNode] {
        &self.nodes
    }

    /// The root node indices.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The node index of a variable.
    pub fn node_of(&self, var: VarId) -> usize {
        self.node_of[var]
    }

    /// The node of a variable.
    pub fn node(&self, idx: usize) -> &VoNode {
        &self.nodes[idx]
    }

    /// Number of nodes (= number of query variables).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node indices on the path from the node where `rel` is attached up
    /// to its root (inclusive), leaf first.
    pub fn path_to_root_of_relation(&self, rel: RelId) -> Vec<usize> {
        let start = self
            .nodes
            .iter()
            .position(|n| n.relations.contains(&rel))
            .expect("relation is attached to some node");
        let mut path = vec![start];
        let mut cur = self.nodes[start].parent;
        while let Some(idx) = cur {
            path.push(idx);
            cur = self.nodes[idx].parent;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;

    /// The Figure 1 variable order: A root; children B (with R) and C; D
    /// below C (with S).
    fn figure1_order(spec: &QuerySpec) -> VariableOrder {
        let a = spec.var_id("A").unwrap();
        let b = spec.var_id("B").unwrap();
        let c = spec.var_id("C").unwrap();
        let d = spec.var_id("D").unwrap();
        let mut parents = vec![None; 4];
        parents[b] = Some(a);
        parents[c] = Some(a);
        parents[d] = Some(c);
        VariableOrder::from_parent_vars(spec, &parents).unwrap()
    }

    #[test]
    fn explicit_figure1_order_has_expected_structure() {
        let spec = figure1_query(false);
        let vo = figure1_order(&spec);
        assert_eq!(vo.len(), 4);
        assert_eq!(vo.roots().len(), 1);
        let a_node = vo.node(vo.node_of(spec.var_id("A").unwrap()));
        assert_eq!(a_node.children.len(), 2);
        assert!(a_node.key.is_empty());
        let b_node = vo.node(vo.node_of(spec.var_id("B").unwrap()));
        assert_eq!(b_node.key, vec![spec.var_id("A").unwrap()]);
        assert_eq!(b_node.relations, vec![0]); // R attached at B
        let d_node = vo.node(vo.node_of(spec.var_id("D").unwrap()));
        assert_eq!(d_node.relations, vec![1]); // S attached at D
        // key(D) = {A, C}
        let mut key = d_node.key.clone();
        key.sort();
        assert_eq!(
            key,
            vec![spec.var_id("A").unwrap(), spec.var_id("C").unwrap()]
        );
        let c_node = vo.node(vo.node_of(spec.var_id("C").unwrap()));
        assert_eq!(c_node.key, vec![spec.var_id("A").unwrap()]);
    }

    #[test]
    fn invalid_order_is_rejected() {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let b = spec.var_id("B").unwrap();
        let c = spec.var_id("C").unwrap();
        let d = spec.var_id("D").unwrap();
        // Put D under B: S(A, C, D) no longer lies on one path.
        let mut parents = vec![None; 4];
        parents[b] = Some(a);
        parents[c] = Some(a);
        parents[d] = Some(b);
        let err = VariableOrder::from_parent_vars(&spec, &parents).unwrap_err();
        assert_eq!(err.kind(), "invalid_variable_order");
    }

    #[test]
    fn cycles_and_bad_parents_are_rejected() {
        let spec = figure1_query(false);
        let err = VariableOrder::from_parent_vars(&spec, &[Some(1), Some(0), None, Some(2)])
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_variable_order");
        assert!(VariableOrder::from_parent_vars(&spec, &[None, None, None, Some(99)]).is_err());
        assert!(VariableOrder::from_parent_vars(&spec, &[None, None, None]).is_err());
        assert!(VariableOrder::from_parent_vars(&spec, &[Some(0), None, None, None]).is_err());
    }

    #[test]
    fn elimination_order_always_yields_valid_order() {
        let spec = figure1_query(false);
        // Eliminate deepest-first: D, B, C, A.
        let elim = vec![
            spec.var_id("D").unwrap(),
            spec.var_id("B").unwrap(),
            spec.var_id("C").unwrap(),
            spec.var_id("A").unwrap(),
        ];
        let vo = VariableOrder::from_elimination_order(&spec, &elim).unwrap();
        assert_eq!(vo.len(), 4);
        // Validity is enforced internally; additionally check relation paths.
        let path_r = vo.path_to_root_of_relation(0);
        let path_s = vo.path_to_root_of_relation(1);
        assert!(path_r.len() >= 2);
        assert!(path_s.len() >= 2);
    }

    #[test]
    fn elimination_order_input_is_validated() {
        let spec = figure1_query(false);
        assert!(VariableOrder::from_elimination_order(&spec, &[0, 1]).is_err());
        assert!(VariableOrder::from_elimination_order(&spec, &[0, 1, 2, 2]).is_err());
        assert!(VariableOrder::from_elimination_order(&spec, &[0, 1, 2, 9]).is_err());
    }

    #[test]
    fn heuristics_produce_valid_orders_for_figure1() {
        let spec = figure1_query(true);
        for h in [EliminationHeuristic::MinDegree, EliminationHeuristic::MinFill] {
            let vo = VariableOrder::heuristic(&spec, h).unwrap();
            assert_eq!(vo.len(), spec.num_vars());
            // Every relation is attached exactly once.
            let attached: usize = vo.nodes().iter().map(|n| n.relations.len()).sum();
            assert_eq!(attached, spec.num_relations());
        }
    }

    #[test]
    fn free_variables_stay_near_the_root() {
        let mut b = QuerySpec::builder("grouped");
        let a = b.key("a");
        let x = b.continuous_feature("x");
        let g = b.key("g");
        b.relation("R", &[a, x]);
        b.relation("S", &[a, g]);
        b.group_by(&[g]);
        let spec = b.build().unwrap();
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        // g must be an ancestor of every variable it co-occurs with, i.e. a root here.
        let g_node = vo.node(vo.node_of(g));
        assert!(g_node.parent.is_none() || vo.node(g_node.parent.unwrap()).parent.is_none());
    }
}
