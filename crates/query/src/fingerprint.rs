//! Canonical, `Eq`/`Hash`-able structural fingerprints for view-tree nodes
//! and relation schemas.
//!
//! Until now plan identity was pointer-based: sharing a compiled plan meant
//! literally cloning the same [`crate::ViewTree`] into several engines
//! (`Engine::with_plan`).  A multi-query deployment needs *structural*
//! identity instead — "these two queries maintain the same view over the
//! same sub-join" — so equal prefixes across independently built queries
//! can unify into shared DAG nodes (see `fivm_dag`).
//!
//! A [`NodeFingerprint`] is the recursive canonical form of one view and
//! its entire subtree:
//!
//! * the marginalized variable (by **name** and kind — `VarId`s are
//!   per-spec and carry no cross-query meaning),
//! * an opaque per-variable `label` supplied by the caller (the DAG passes
//!   the lift name here, so two views that compute different aggregates
//!   over the same join never unify; the plain structural form uses `""`),
//! * the view's key variables, **in key order** — the key order determines
//!   the physical column layout of the materialized view, so two views
//!   whose keys list the same variables in different orders are *not*
//!   interchangeable and deliberately fingerprint differently,
//! * the children in declared child order, each either a full recursive
//!   [`NodeFingerprint`] or a [`RelationFingerprint`] leaf.
//!
//! Because the form is recursive, fingerprint equality of two nodes implies
//! their whole subtrees are structurally identical — equal join structure,
//! equal view keys at every level, equal probe/index schemas after plan
//! compilation, and (with labels) equal lifts.  That is exactly the
//! property that makes it safe to maintain one shared view for both.

use crate::spec::QuerySpec;
use crate::view_tree::{ChildRef, ViewTree};
use fivm_common::{AttrKind, RelId, VarId};

/// Canonical form of one query variable: its name and kind.  Names are the
/// cross-query identity — two specs declaring `locn` categorical mean the
/// same column regardless of the `VarId` each assigned.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VarFingerprint {
    /// The variable's name.
    pub name: String,
    /// Continuous or categorical.
    pub kind: AttrKind,
}

/// Canonical form of a base-relation schema: the relation's name and its
/// columns (as [`VarFingerprint`]s) in column order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RelationFingerprint {
    /// The relation (table) name.
    pub name: String,
    /// The columns, in schema order.
    pub cols: Vec<VarFingerprint>,
}

/// One child of a view node, in canonical form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ChildFingerprint {
    /// A lower view, recursively fingerprinted.
    View(NodeFingerprint),
    /// A base-relation leaf.
    Relation(RelationFingerprint),
}

/// The recursive canonical form of a view-tree node (see module docs).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeFingerprint {
    /// The variable this view marginalizes (or keeps, when free).
    pub var: VarFingerprint,
    /// Caller-supplied per-variable label (the DAG passes the lift name);
    /// `""` in the plain structural form.
    pub label: String,
    /// The view's key variable names, in key order.  A free (group-by)
    /// variable appears in its own view's key, so "kept vs marginalized"
    /// is part of the fingerprint without a separate flag.
    pub key: Vec<String>,
    /// The children, in declared child order.
    pub children: Vec<ChildFingerprint>,
}

/// The canonical form of a relation's schema.
pub fn relation_fingerprint(spec: &QuerySpec, rel: RelId) -> RelationFingerprint {
    let def = spec.relation(rel);
    RelationFingerprint {
        name: def.name.clone(),
        cols: def
            .vars
            .iter()
            .map(|&v| VarFingerprint {
                name: spec.var_name(v).to_string(),
                kind: spec.var(v).kind,
            })
            .collect(),
    }
}

/// Per-node structural fingerprints of a view tree (indexed by node id),
/// with every label empty.
pub fn tree_fingerprints(tree: &ViewTree) -> Vec<NodeFingerprint> {
    tree_fingerprints_labeled(tree, &|_| String::new())
}

/// Per-node fingerprints with a caller-supplied per-variable label — the
/// DAG layer passes each variable's lift name so that views differing only
/// in the aggregate they compute do not unify.
pub fn tree_fingerprints_labeled(
    tree: &ViewTree,
    label: &dyn Fn(VarId) -> String,
) -> Vec<NodeFingerprint> {
    let spec = tree.spec();
    let mut fps: Vec<Option<NodeFingerprint>> = vec![None; tree.len()];
    // Descendants have larger node ids; visiting bottom-up means every
    // child fingerprint exists when its parent is assembled.
    for idx in tree.bottom_up() {
        let node = tree.node(idx);
        let children = node
            .children
            .iter()
            .map(|c| match c {
                ChildRef::View(v) => {
                    ChildFingerprint::View(fps[*v].clone().expect("child computed bottom-up"))
                }
                ChildRef::Relation(r) => {
                    ChildFingerprint::Relation(relation_fingerprint(spec, *r))
                }
            })
            .collect();
        fps[idx] = Some(NodeFingerprint {
            var: VarFingerprint {
                name: spec.var_name(node.var).to_string(),
                kind: spec.var(node.var).kind,
            },
            label: label(node.var),
            key: node
                .key_vars
                .iter()
                .map(|&v| spec.var_name(v).to_string())
                .collect(),
            children,
        });
    }
    fps.into_iter()
        .map(|fp| fp.expect("every node fingerprinted"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;
    use crate::ViewTree;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn figure1_tree(categorical_c: bool, group_by_a: bool) -> ViewTree {
        let mut spec = figure1_query(categorical_c);
        if group_by_a {
            // Rebuild with A free.
            let mut b = QuerySpec::builder("figure1_grouped");
            let a = b.key("A");
            b.continuous_feature("B");
            if categorical_c {
                b.categorical_feature("C");
            } else {
                b.continuous_feature("C");
            }
            b.continuous_feature("D");
            b.relation("R", &[0, 1]);
            b.relation("S", &[0, 2, 3]);
            b.group_by(&[a]);
            spec = b.build().unwrap();
        }
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        ViewTree::from_parent_vars(spec, &parents).unwrap()
    }

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn structurally_equal_specs_produce_equal_fingerprints() {
        // Two independently built (pointer-distinct) trees of the same
        // query must agree node by node, including under Hash.
        let t1 = figure1_tree(false, false);
        let t2 = figure1_tree(false, false);
        let f1 = tree_fingerprints(&t1);
        let f2 = tree_fingerprints(&t2);
        assert_eq!(f1, f2);
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(hash_of(a), hash_of(b));
        }
    }

    #[test]
    fn group_by_changes_only_the_affected_prefix() {
        // Grouping by the root variable A changes the root view (A is kept
        // in its key) but leaves every view *below* it untouched — the
        // sharing opportunity the DAG exploits.
        let plain = figure1_tree(false, false);
        let grouped = figure1_tree(false, true);
        let fp = tree_fingerprints(&plain);
        let fg = tree_fingerprints(&grouped);
        let root_p = plain.roots()[0];
        let root_g = grouped.roots()[0];
        assert_ne!(fp[root_p], fg[root_g]);
        assert!(fg[root_g].key.contains(&"A".to_string()));
        // The children of the two roots are identical subtrees.
        assert_eq!(fp[root_p].children, fg[root_g].children);
    }

    #[test]
    fn attribute_kind_is_part_of_the_fingerprint() {
        let cont = tree_fingerprints(&figure1_tree(false, false));
        let cat = tree_fingerprints(&figure1_tree(true, false));
        // C's kind differs, so C's node (and every ancestor) differs...
        let c_node = figure1_tree(false, false)
            .vorder()
            .node_of(figure1_tree(false, false).spec().var_id("C").unwrap());
        assert_ne!(cont[c_node], cat[c_node]);
        // ...but B's subtree (which never mentions C) is unchanged.
        let tree = figure1_tree(false, false);
        let b_node = tree.vorder().node_of(tree.spec().var_id("B").unwrap());
        assert_eq!(cont[b_node], cat[b_node]);
    }

    #[test]
    fn labels_distinguish_otherwise_equal_structures() {
        let tree = figure1_tree(false, false);
        let plain = tree_fingerprints(&tree);
        let spec = tree.spec().clone();
        let b = spec.var_id("B").unwrap();
        let labeled = tree_fingerprints_labeled(&tree, &|v| {
            if v == b {
                "covar[0](B)".to_string()
            } else {
                String::new()
            }
        });
        let b_node = tree.vorder().node_of(b);
        assert_ne!(plain[b_node], labeled[b_node]);
        // The D subtree carries no B, so its fingerprint is unaffected.
        let d_node = tree.vorder().node_of(spec.var_id("D").unwrap());
        assert_eq!(plain[d_node], labeled[d_node]);
    }

    #[test]
    fn relation_fingerprints_capture_name_and_schema() {
        let spec = figure1_query(false);
        let r = relation_fingerprint(&spec, 0);
        assert_eq!(r.name, "R");
        assert_eq!(r.cols.len(), 2);
        assert_eq!(r.cols[0].name, "A");
        // Equal across rebuilds, distinct across relations.
        assert_eq!(r, relation_fingerprint(&figure1_query(false), 0));
        assert_ne!(r, relation_fingerprint(&spec, 1));
    }
}
