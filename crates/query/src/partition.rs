//! Partition planning for sharded (multi-core) maintenance.
//!
//! A sharded deployment runs N independent engines, each owning a
//! horizontal slice of the database.  Correctness of the split rests on one
//! rule: pick a single *partition variable* `P` and route every row of
//! every relation whose schema contains `P` by a hash of its `P` column;
//! replicate (*broadcast*) every other relation to all shards.  Each full
//! join assignment then materializes in exactly one shard (the one owning
//! its `P` value), so per-shard results are ring-disjoint partial sums and
//! the global result is their ring sum — distributivity of `*` over `+`
//! does the rest, even for forests with several roots.
//!
//! This module only decides the *what* (which variable, which relations are
//! hash-routed, which column carries the partition value); the *how*
//! (threads, channels, hashing, merging) lives in the `fivm_shard` crate.

use crate::spec::QuerySpec;
use crate::vorder::VariableOrder;
use fivm_common::{FivmError, RelId, Result, VarId};

/// How one relation's rows reach the shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationRouting {
    /// The relation's schema contains the partition variable: each row goes
    /// to exactly one shard, chosen by hashing the value at `col` (a column
    /// index into the relation's *query schema*, i.e. its variable list in
    /// declaration order; table bindings may remap it).
    Hashed {
        /// Position of the partition variable in the relation's schema.
        col: usize,
    },
    /// The relation's schema does not contain the partition variable: its
    /// rows are replicated to every shard.
    Broadcast,
}

/// The partitioning decision for a query: the partition variable plus
/// per-relation routing metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    var: VarId,
    routing: Vec<RelationRouting>,
}

impl PartitionPlan {
    /// Chooses a partition variable automatically and derives the routing.
    ///
    /// Candidates are the *root variables* of the variable order (found by
    /// walking [`VariableOrder::path_to_root_of_relation`] for every
    /// relation): roots sit in every dependency set of their tree, so they
    /// are the variables most likely to appear in many relation schemas —
    /// and the fact table of a snowflake/star always contains its root.
    /// Among the candidates, the one contained in the most relation schemas
    /// wins (fewest broadcast relations); ties break towards the smaller
    /// variable id for determinism.
    pub fn choose(spec: &QuerySpec, vorder: &VariableOrder) -> Result<PartitionPlan> {
        let mut candidates: Vec<VarId> = Vec::new();
        for rel in 0..spec.num_relations() {
            let path = vorder.path_to_root_of_relation(rel);
            let root_var = vorder.node(*path.last().expect("paths are non-empty")).var;
            if !candidates.contains(&root_var) {
                candidates.push(root_var);
            }
        }
        let coverage = |var: VarId| {
            spec.relations()
                .iter()
                .filter(|r| r.vars.contains(&var))
                .count()
        };
        let &best = candidates
            .iter()
            .max_by_key(|&&v| (coverage(v), usize::MAX - v))
            .ok_or_else(|| {
                FivmError::InvalidQuery("cannot partition a query with no relations".into())
            })?;
        Self::for_variable(spec, best)
    }

    /// Derives the routing for an explicitly chosen partition variable.
    ///
    /// Any query variable is a valid choice (every variable occurs in at
    /// least one relation); a poor choice merely broadcasts more relations.
    pub fn for_variable(spec: &QuerySpec, var: VarId) -> Result<PartitionPlan> {
        if var >= spec.num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "partition variable id {var} is out of range"
            )));
        }
        let routing = spec
            .relations()
            .iter()
            .map(|r| match r.vars.iter().position(|&v| v == var) {
                Some(col) => RelationRouting::Hashed { col },
                None => RelationRouting::Broadcast,
            })
            .collect();
        Ok(PartitionPlan { var, routing })
    }

    /// The partition variable.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Routing of one relation.
    pub fn routing(&self, rel: RelId) -> RelationRouting {
        self.routing[rel]
    }

    /// Routing of every relation, indexed by [`RelId`].
    pub fn routings(&self) -> &[RelationRouting] {
        &self.routing
    }

    /// Number of hash-routed relations.
    pub fn num_hashed(&self) -> usize {
        self.routing
            .iter()
            .filter(|r| matches!(r, RelationRouting::Hashed { .. }))
            .count()
    }

    /// Number of broadcast relations.
    pub fn num_broadcast(&self) -> usize {
        self.routing.len() - self.num_hashed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;
    use crate::vorder::EliminationHeuristic;

    fn figure1_order(spec: &QuerySpec) -> VariableOrder {
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        VariableOrder::from_parent_vars(spec, &parents).unwrap()
    }

    #[test]
    fn figure1_partitions_on_the_root_and_routes_both_relations() {
        let spec = figure1_query(false);
        let vo = figure1_order(&spec);
        let plan = PartitionPlan::choose(&spec, &vo).unwrap();
        // A is the root and occurs in both R(A, B) and S(A, C, D).
        assert_eq!(plan.var(), spec.var_id("A").unwrap());
        assert_eq!(plan.routing(0), RelationRouting::Hashed { col: 0 });
        assert_eq!(plan.routing(1), RelationRouting::Hashed { col: 0 });
        assert_eq!(plan.num_hashed(), 2);
        assert_eq!(plan.num_broadcast(), 0);
    }

    #[test]
    fn non_root_variable_broadcasts_the_relations_missing_it() {
        let spec = figure1_query(false);
        let c = spec.var_id("C").unwrap();
        let plan = PartitionPlan::for_variable(&spec, c).unwrap();
        // C appears only in S(A, C, D) — R must be broadcast.
        assert_eq!(plan.routing(0), RelationRouting::Broadcast);
        assert_eq!(plan.routing(1), RelationRouting::Hashed { col: 1 });
        assert_eq!(plan.num_broadcast(), 1);
    }

    #[test]
    fn out_of_range_variable_is_rejected() {
        let spec = figure1_query(false);
        assert!(PartitionPlan::for_variable(&spec, 99).is_err());
    }

    #[test]
    fn heuristic_orders_also_yield_a_plan() {
        let spec = figure1_query(true);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        let plan = PartitionPlan::choose(&spec, &vo).unwrap();
        assert!(plan.num_hashed() >= 1);
    }
}
