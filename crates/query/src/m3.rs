//! M3-like textual rendering of view trees (the "Maintenance Strategy" tab).
//!
//! The paper's demo shows, for every view, its definition in DBToaster's M3
//! intermediate representation (Figure 2d).  We reproduce the same shape of
//! output — a `DECLARE MAP` per view with an `AggSum` over the product of its
//! children and the lift of its variable — plus an ASCII drawing and a
//! Graphviz rendering of the view tree itself.

use crate::view_tree::{ChildRef, ViewTree};
use std::fmt::Write as _;

/// Renders the declaration of a single view in M3-like syntax.
pub fn render_view(tree: &ViewTree, id: usize, ring_name: &str) -> String {
    let spec = tree.spec();
    let node = tree.node(id);
    let keys = node
        .key_vars
        .iter()
        .map(|&v| spec.var_name(v))
        .collect::<Vec<_>>()
        .join(", ");
    let mut factors: Vec<String> = Vec::new();
    for child in &node.children {
        match child {
            ChildRef::View(c) => {
                let child_node = tree.node(*c);
                let child_keys = child_node
                    .key_vars
                    .iter()
                    .map(|&v| spec.var_name(v))
                    .collect::<Vec<_>>()
                    .join(", ");
                factors.push(format!("{}[{}]<Local>", tree.view_name(*c), child_keys));
            }
            ChildRef::Relation(r) => {
                let rel = spec.relation(*r);
                let rel_vars = rel
                    .vars
                    .iter()
                    .map(|&v| spec.var_name(v))
                    .collect::<Vec<_>>()
                    .join(", ");
                factors.push(format!("{}[{}]", rel.name, rel_vars));
            }
        }
    }
    factors.push(format!(
        "[lift: {ring_name}]({})",
        spec.var_name(node.var)
    ));
    format!(
        "DECLARE MAP {name}({ring})[][{keys}] :=\n  AggSum([{keys}],\n    {body}\n  );",
        name = tree.view_name(id),
        ring = ring_name,
        keys = keys,
        body = factors.join("\n    * ")
    )
}

/// Renders the declarations of every view, roots first.
pub fn render_all_views(tree: &ViewTree, ring_name: &str) -> String {
    let mut out = String::new();
    for id in 0..tree.len() {
        let _ = writeln!(out, "{}\n", render_view(tree, id, ring_name));
    }
    out
}

/// Renders the view tree as an indented ASCII drawing, e.g.
///
/// ```text
/// V@locn[]
/// ├── V@dateid[locn]
/// │   └── V@ksn[dateid, locn]
/// │       ├── Inventory[locn, dateid, ksn, ...]
/// ...
/// ```
pub fn render_tree_ascii(tree: &ViewTree) -> String {
    fn recurse(tree: &ViewTree, id: usize, prefix: &str, is_last: bool, out: &mut String) {
        let spec = tree.spec();
        let node = tree.node(id);
        let connector = if prefix.is_empty() {
            ""
        } else if is_last {
            "└── "
        } else {
            "├── "
        };
        let keys = node
            .key_vars
            .iter()
            .map(|&v| spec.var_name(v))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{prefix}{connector}{}[{keys}]", tree.view_name(id));
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else if is_last {
            format!("{prefix}    ")
        } else {
            format!("{prefix}│   ")
        };
        let children = &node.children;
        for (i, child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            match child {
                ChildRef::View(c) => {
                    recurse(tree, *c, &child_prefix, last, out);
                }
                ChildRef::Relation(r) => {
                    let rel = spec.relation(*r);
                    let vars = rel
                        .vars
                        .iter()
                        .map(|&v| spec.var_name(v))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let conn = if last { "└── " } else { "├── " };
                    let _ = writeln!(out, "{child_prefix}{conn}{}[{vars}]", rel.name);
                }
            }
        }
    }

    let mut out = String::new();
    for (i, &root) in tree.roots().iter().enumerate() {
        recurse(tree, root, "", i + 1 == tree.roots().len(), &mut out);
    }
    out
}

/// Renders the view tree in Graphviz `dot` syntax.
pub fn render_tree_dot(tree: &ViewTree) -> String {
    let spec = tree.spec();
    let mut out = String::from("digraph view_tree {\n  rankdir=BT;\n  node [shape=box];\n");
    for node in tree.nodes() {
        let keys = node
            .key_vars
            .iter()
            .map(|&v| spec.var_name(v))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  v{} [label=\"{}[{}]\"];",
            node.id,
            tree.view_name(node.id),
            keys
        );
        if let Some(parent) = node.parent {
            let _ = writeln!(out, "  v{} -> v{};", node.id, parent);
        }
    }
    for (rid, rel) in spec.relations().iter().enumerate() {
        let attach = tree.attach_node(rid);
        let _ = writeln!(out, "  r{rid} [label=\"{}\", shape=ellipse];", rel.name);
        let _ = writeln!(out, "  r{rid} -> v{attach};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;
    use crate::view_tree::ViewTree;

    fn tree() -> ViewTree {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        ViewTree::from_parent_vars(spec, &parents).unwrap()
    }

    #[test]
    fn view_declaration_mentions_children_and_lift() {
        let t = tree();
        let b_id = t.vorder().node_of(t.spec().var_id("B").unwrap());
        let text = render_view(&t, b_id, "RingCofactor<double, 3>");
        assert!(text.contains("DECLARE MAP V@B(RingCofactor<double, 3>)"));
        assert!(text.contains("AggSum([A]"));
        assert!(text.contains("R[A, B]"));
        assert!(text.contains("[lift: RingCofactor<double, 3>](B)"));
    }

    #[test]
    fn all_views_render_and_include_every_view() {
        let t = tree();
        let text = render_all_views(&t, "RingZ");
        for id in 0..t.len() {
            assert!(text.contains(&t.view_name(id)));
        }
    }

    #[test]
    fn ascii_tree_lists_views_and_relations() {
        let t = tree();
        let text = render_tree_ascii(&t);
        assert!(text.contains("V@A[]"));
        assert!(text.contains("V@C[A]"));
        assert!(text.contains("R[A, B]"));
        assert!(text.contains("S[A, C, D]"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let t = tree();
        let text = render_tree_dot(&t);
        assert!(text.starts_with("digraph view_tree {"));
        assert!(text.trim_end().ends_with('}'));
        assert_eq!(text.matches("shape=ellipse").count(), 2);
    }
}
