//! Query specifications: variables, relations and the aggregate batch.

use fivm_common::{AttrKind, FivmError, FxHashSet, RelId, Result, VarId};

/// The role a variable plays in the analytics application on top of the
/// query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarRole {
    /// A join key / plain attribute: lifted with the identity function.
    Key,
    /// A feature of the aggregate batch (appears in the COVAR/MI matrix).
    Feature,
    /// The label of a predictive model; also part of the aggregate batch.
    Label,
}

/// A query variable (attribute of the natural join).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariableDef {
    /// Variable name, unique within the query.
    pub name: String,
    /// Continuous or categorical.
    pub kind: AttrKind,
    /// Role in the aggregate batch.
    pub role: VarRole,
}

/// A base relation participating in the natural join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDef {
    /// Relation name, unique within the query.
    pub name: String,
    /// The query variables forming the relation's schema, in column order.
    pub vars: Vec<VarId>,
}

/// A natural-join query with an aggregate batch over its feature variables.
///
/// The query computed by F-IVM is
/// `SELECT free_vars, SUM(Π_X g_X(X)) FROM R1 NATURAL JOIN ... NATURAL JOIN Rk
/// GROUP BY free_vars`, where the `g_X` are the per-variable attribute
/// functions chosen by the application (ring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    vars: Vec<VariableDef>,
    relations: Vec<RelationDef>,
    free_vars: Vec<VarId>,
}

impl QuerySpec {
    /// Starts building a query.
    pub fn builder(name_hint: impl Into<String>) -> QueryBuilder {
        QueryBuilder::new(name_hint)
    }

    /// The variables, indexed by [`VarId`].
    pub fn variables(&self) -> &[VariableDef] {
        &self.vars
    }

    /// The relations, indexed by [`RelId`].
    pub fn relations(&self) -> &[RelationDef] {
        &self.relations
    }

    /// The group-by (free) variables of the query result.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free_vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// The name of a variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id].name
    }

    /// The definition of a variable.
    pub fn var(&self, id: VarId) -> &VariableDef {
        &self.vars[id]
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.relations.iter().position(|r| r.name == name)
    }

    /// The definition of a relation.
    pub fn relation(&self, id: RelId) -> &RelationDef {
        &self.relations[id]
    }

    /// The variables participating in the aggregate batch (features first,
    /// then the label if any), in declaration order.
    ///
    /// Their position in this list is the index used by the cofactor rings.
    pub fn aggregate_vars(&self) -> Vec<VarId> {
        let mut features: Vec<VarId> = (0..self.vars.len())
            .filter(|&v| self.vars[v].role == VarRole::Feature)
            .collect();
        let labels: Vec<VarId> = (0..self.vars.len())
            .filter(|&v| self.vars[v].role == VarRole::Label)
            .collect();
        features.extend(labels);
        features
    }

    /// The label variable, if one was declared.
    pub fn label_var(&self) -> Option<VarId> {
        (0..self.vars.len()).find(|&v| self.vars[v].role == VarRole::Label)
    }

    /// Edges of the primal graph: two variables are adjacent iff they occur
    /// together in some relation's schema.
    pub fn primal_edges(&self) -> FxHashSet<(VarId, VarId)> {
        let mut edges = FxHashSet::default();
        for rel in &self.relations {
            for (i, &a) in rel.vars.iter().enumerate() {
                for &b in &rel.vars[i + 1..] {
                    let e = if a < b { (a, b) } else { (b, a) };
                    if a != b {
                        edges.insert(e);
                    }
                }
            }
        }
        edges
    }

    /// Validates the specification; called by the builder.
    fn validate(&self) -> Result<()> {
        if self.relations.is_empty() {
            return Err(FivmError::InvalidQuery("query has no relations".into()));
        }
        for (i, v) in self.vars.iter().enumerate() {
            if self.vars[..i].iter().any(|w| w.name == v.name) {
                return Err(FivmError::InvalidQuery(format!(
                    "duplicate variable `{}`",
                    v.name
                )));
            }
        }
        for (i, r) in self.relations.iter().enumerate() {
            if self.relations[..i].iter().any(|s| s.name == r.name) {
                return Err(FivmError::InvalidQuery(format!(
                    "duplicate relation `{}`",
                    r.name
                )));
            }
            if r.vars.is_empty() {
                return Err(FivmError::InvalidQuery(format!(
                    "relation `{}` has an empty schema",
                    r.name
                )));
            }
            let mut seen = FxHashSet::default();
            for &v in &r.vars {
                if v >= self.vars.len() {
                    return Err(FivmError::InvalidQuery(format!(
                        "relation `{}` references unknown variable id {v}",
                        r.name
                    )));
                }
                if !seen.insert(v) {
                    return Err(FivmError::InvalidQuery(format!(
                        "relation `{}` repeats variable `{}`",
                        r.name, self.vars[v].name
                    )));
                }
            }
        }
        // Every variable must occur in at least one relation.
        let mut used = vec![false; self.vars.len()];
        for r in &self.relations {
            for &v in &r.vars {
                used[v] = true;
            }
        }
        if let Some(unused) = used.iter().position(|u| !u) {
            return Err(FivmError::InvalidQuery(format!(
                "variable `{}` does not occur in any relation",
                self.vars[unused].name
            )));
        }
        for &v in &self.free_vars {
            if v >= self.vars.len() {
                return Err(FivmError::InvalidQuery(format!(
                    "free variable id {v} is out of range"
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`QuerySpec`].
#[derive(Clone, Debug)]
pub struct QueryBuilder {
    #[allow(dead_code)]
    name: String,
    vars: Vec<VariableDef>,
    relations: Vec<RelationDef>,
    free_vars: Vec<VarId>,
}

impl QueryBuilder {
    /// Starts a new builder.  The name is only used in error messages.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            vars: Vec::new(),
            relations: Vec::new(),
            free_vars: Vec::new(),
        }
    }

    /// Declares a variable and returns its id.
    pub fn var(&mut self, name: impl Into<String>, kind: AttrKind, role: VarRole) -> VarId {
        self.vars.push(VariableDef {
            name: name.into(),
            kind,
            role,
        });
        self.vars.len() - 1
    }

    /// Declares a join-key variable (identity lift).
    pub fn key(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, AttrKind::Categorical, VarRole::Key)
    }

    /// Declares a continuous feature variable.
    pub fn continuous_feature(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, AttrKind::Continuous, VarRole::Feature)
    }

    /// Declares a categorical feature variable.
    pub fn categorical_feature(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, AttrKind::Categorical, VarRole::Feature)
    }

    /// Declares the (continuous) label variable.
    pub fn label(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, AttrKind::Continuous, VarRole::Label)
    }

    /// Adds a relation over previously declared variables.
    pub fn relation(&mut self, name: impl Into<String>, vars: &[VarId]) -> RelId {
        self.relations.push(RelationDef {
            name: name.into(),
            vars: vars.to_vec(),
        });
        self.relations.len() - 1
    }

    /// Adds a relation, looking its variables up by name.
    pub fn relation_by_names(&mut self, name: impl Into<String>, vars: &[&str]) -> Result<RelId> {
        let ids = vars
            .iter()
            .map(|n| {
                self.vars
                    .iter()
                    .position(|v| v.name == *n)
                    .ok_or_else(|| FivmError::InvalidQuery(format!("unknown variable `{n}`")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(self.relation(name, &ids))
    }

    /// Declares the query's group-by variables (rare; most F-IVM queries
    /// aggregate down to a single payload).
    pub fn group_by(&mut self, vars: &[VarId]) -> &mut Self {
        self.free_vars = vars.to_vec();
        self
    }

    /// Finishes and validates the specification.
    pub fn build(self) -> Result<QuerySpec> {
        let spec = QuerySpec {
            vars: self.vars,
            relations: self.relations,
            free_vars: self.free_vars,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Builds the paper's running example: `R(A, B) ⋈ S(A, C, D)` with features
/// `B`, `C`, `D` (Figure 1).  `categorical_c` controls whether `C` is
/// declared categorical (the mixed COVAR scenario) or continuous.
pub fn figure1_query(categorical_c: bool) -> QuerySpec {
    let mut b = QuerySpec::builder("figure1");
    let a = b.key("A");
    let bb = b.continuous_feature("B");
    let c = if categorical_c {
        b.categorical_feature("C")
    } else {
        b.continuous_feature("C")
    };
    let d = b.continuous_feature("D");
    b.relation("R", &[a, bb]);
    b.relation("S", &[a, c, d]);
    b.build().expect("figure 1 query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_spec() {
        let q = figure1_query(false);
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.var_id("C"), Some(2));
        assert_eq!(q.var_name(0), "A");
        assert_eq!(q.relation_id("S"), Some(1));
        assert_eq!(q.relation(1).vars, vec![0, 2, 3]);
        assert_eq!(q.aggregate_vars(), vec![1, 2, 3]);
        assert!(q.label_var().is_none());
        assert!(q.free_vars().is_empty());
    }

    #[test]
    fn aggregate_vars_put_label_last() {
        let mut b = QuerySpec::builder("q");
        let k = b.key("k");
        let y = b.label("y");
        let x = b.continuous_feature("x");
        b.relation("R", &[k, x]);
        b.relation("S", &[k, y]);
        let q = b.build().unwrap();
        assert_eq!(q.aggregate_vars(), vec![x, y]);
        assert_eq!(q.label_var(), Some(y));
    }

    #[test]
    fn primal_edges_cover_cooccurring_pairs() {
        let q = figure1_query(false);
        let edges = q.primal_edges();
        assert!(edges.contains(&(0, 1))); // A-B from R
        assert!(edges.contains(&(0, 2))); // A-C from S
        assert!(edges.contains(&(2, 3))); // C-D from S
        assert!(!edges.contains(&(1, 2))); // B and C never co-occur
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        // No relations.
        let b = QuerySpec::builder("empty");
        assert!(b.build().is_err());

        // Duplicate variable names.
        let mut b = QuerySpec::builder("dup");
        b.key("x");
        b.key("x");
        let v = 0;
        b.relation("R", &[v]);
        assert!(b.build().is_err());

        // Unknown variable id.
        let mut b = QuerySpec::builder("oob");
        let x = b.key("x");
        b.relation("R", &[x, 99]);
        assert!(b.build().is_err());

        // Unused variable.
        let mut b = QuerySpec::builder("unused");
        let x = b.key("x");
        b.key("y");
        b.relation("R", &[x]);
        assert!(b.build().is_err());

        // Repeated variable within a relation.
        let mut b = QuerySpec::builder("repeat");
        let x = b.key("x");
        b.relation("R", &[x, x]);
        assert!(b.build().is_err());

        // Duplicate relation names.
        let mut b = QuerySpec::builder("duprel");
        let x = b.key("x");
        b.relation("R", &[x]);
        b.relation("R", &[x]);
        assert!(b.build().is_err());
    }

    #[test]
    fn relation_by_names_resolves_or_errors() {
        let mut b = QuerySpec::builder("byname");
        b.key("a");
        b.continuous_feature("b");
        assert!(b.relation_by_names("R", &["a", "b"]).is_ok());
        assert!(b.relation_by_names("S", &["a", "nope"]).is_err());
    }
}
