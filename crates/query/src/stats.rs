//! Structural statistics of view-tree plans.
//!
//! These are used to compare variable-order heuristics, to report plan
//! properties in the experiment harnesses, and as cheap sanity checks in
//! tests (e.g. "the Retailer plan has width ≤ 3").

use crate::view_tree::ViewTree;

/// Summary statistics of a view tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of views (= number of query variables).
    pub num_views: usize,
    /// Number of base relations.
    pub num_relations: usize,
    /// The largest number of group-by variables of any view.
    pub max_key_width: usize,
    /// The largest number of variables joined at any view
    /// (`|key(X) ∪ {X}|`).
    pub max_local_width: usize,
    /// The largest number of children of any view.
    pub max_fanin: usize,
    /// The longest maintenance path (in views) of any relation.
    pub max_path_length: usize,
    /// Per-view key widths, in node order.
    pub key_widths: Vec<usize>,
}

impl PlanStats {
    /// Computes statistics for a view tree.
    pub fn of(tree: &ViewTree) -> Self {
        let key_widths: Vec<usize> = tree.nodes().iter().map(|n| n.key_vars.len()).collect();
        let max_key_width = key_widths.iter().copied().max().unwrap_or(0);
        let max_local_width = tree
            .nodes()
            .iter()
            .map(|n| n.local_vars.len())
            .max()
            .unwrap_or(0);
        let max_fanin = tree
            .nodes()
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0);
        let max_path_length = (0..tree.spec().num_relations())
            .map(|r| tree.maintenance_path(r).len())
            .max()
            .unwrap_or(0);
        PlanStats {
            num_views: tree.len(),
            num_relations: tree.spec().num_relations(),
            max_key_width,
            max_local_width,
            max_fanin,
            max_path_length,
            key_widths,
        }
    }

    /// Renders the statistics as a short human-readable table row.
    pub fn summary(&self) -> String {
        format!(
            "views={} relations={} max_key_width={} max_local_width={} max_fanin={} max_path={}",
            self.num_views,
            self.num_relations,
            self.max_key_width,
            self.max_local_width,
            self.max_fanin,
            self.max_path_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_query;
    use crate::view_tree::ViewTree;
    use crate::vorder::{EliminationHeuristic, VariableOrder};

    #[test]
    fn figure1_stats() {
        let spec = figure1_query(false);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        let tree = ViewTree::new(spec, vo).unwrap();
        let stats = PlanStats::of(&tree);
        assert_eq!(stats.num_views, 4);
        assert_eq!(stats.num_relations, 2);
        assert!(stats.max_key_width <= 2);
        assert!(stats.max_local_width <= 3);
        assert!(stats.max_path_length >= 2);
        assert_eq!(stats.key_widths.len(), 4);
        let s = stats.summary();
        assert!(s.contains("views=4"));
    }
}
