//! The error type shared by the F-IVM crates.

use std::fmt;

/// Result alias using [`FivmError`].
pub type Result<T> = std::result::Result<T, FivmError>;

/// Errors raised while compiling queries or maintaining views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FivmError {
    /// A query specification is malformed (duplicate names, unknown
    /// attributes, empty schemas, ...).
    InvalidQuery(String),
    /// A variable order is not valid for the query (a relation's schema does
    /// not lie on a single root-to-leaf path, a variable is missing, ...).
    InvalidVariableOrder(String),
    /// An update refers to a relation or has an arity that does not match the
    /// compiled query.
    InvalidUpdate(String),
    /// Ring values of incompatible shapes (e.g. cofactor dimensions) were
    /// combined.
    RingMismatch(String),
    /// An ML routine received degenerate inputs (empty dataset, singular
    /// system, ...).
    Numerical(String),
}

impl FivmError {
    /// Short machine-readable category name, useful in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            FivmError::InvalidQuery(_) => "invalid_query",
            FivmError::InvalidVariableOrder(_) => "invalid_variable_order",
            FivmError::InvalidUpdate(_) => "invalid_update",
            FivmError::RingMismatch(_) => "ring_mismatch",
            FivmError::Numerical(_) => "numerical",
        }
    }
}

impl fmt::Display for FivmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FivmError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            FivmError::InvalidVariableOrder(msg) => write!(f, "invalid variable order: {msg}"),
            FivmError::InvalidUpdate(msg) => write!(f, "invalid update: {msg}"),
            FivmError::RingMismatch(msg) => write!(f, "ring mismatch: {msg}"),
            FivmError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for FivmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message_and_kind_is_stable() {
        let e = FivmError::InvalidQuery("dup attribute".into());
        assert!(e.to_string().contains("dup attribute"));
        assert_eq!(e.kind(), "invalid_query");
        let e = FivmError::RingMismatch("dim 2 vs 3".into());
        assert_eq!(e.kind(), "ring_mismatch");
        assert!(e.to_string().contains("dim 2 vs 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FivmError::Numerical("singular".into()));
    }
}
