//! An open-addressing hash table keyed by **precomputed** 64-bit hashes.
//!
//! # Why `std::collections::HashMap` is not enough
//!
//! The F-IVM maintenance hot path probes the same key against several
//! tables per propagation level: a view's primary map, one or more
//! secondary indexes, and the per-level delta accumulator.  With `std`'s
//! `HashMap` every one of those probes re-hashes the key, because the map
//! owns the hashing: there is no stable API to probe or insert with a hash
//! computed by the caller (`raw_entry` never stabilized, and
//! `HashMap::entry` additionally demands an owned key up front, forcing a
//! clone per probe).  [`RawTable`] inverts the contract — every operation
//! takes `(hash, key)` — so the engine hashes each key exactly once per
//! level and reuses the hash everywhere, including on growth: entries store
//! their hash, so resizing never touches key bytes at all.
//!
//! The table is a compact swiss-table-style design: power-of-two capacity,
//! one control byte per slot carrying a 7-bit hash fragment, probed in
//! groups of eight bytes with portable SWAR word tricks (no SIMD
//! intrinsics, no `unsafe`) so most mismatched slots are rejected eight at
//! a time without reading any entry.  Groups are visited in triangular
//! order (every group reached, no primary clustering), and deletion uses
//! tombstones.  Tombstone-heavy tables are compacted in place by a
//! same-size rehash instead of growing.  Growth events are counted in
//! [`RawTable::rehashes`], which the engine surfaces as an `EngineStats`
//! counter — a key is re-bucketed (never re-hashed) only when a table
//! grows or compacts.
//!
//! Like the rest of the workspace the table is keyed by trusted,
//! internally generated hashes ([`crate::hash::FxHasher`]-style mixing);
//! it is not HashDoS-resistant.

use std::fmt;

/// Control byte: slot has never held an entry (probe chains stop here).
const CTRL_EMPTY: u8 = 0x80;
/// Control byte: slot held an entry that was removed (probe chains go on).
const CTRL_TOMBSTONE: u8 = 0x81;

/// The 7-bit hash fragment stored in a slot's control byte.
#[inline]
fn h2(hash: u64) -> u8 {
    ((hash >> 57) & 0x7f) as u8
}

/// Control bytes are probed in groups of this many (one `u64` at a time).
const GROUP: usize = 8;

/// `b` repeated in every byte of a word.
#[inline]
fn repeat(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

/// SWAR mask with the high bit set in every byte of `x` that is zero
/// (the classic "hasless" trick) — used to locate matching control bytes
/// eight at a time without SIMD intrinsics.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Mask of bytes in `word` equal to `b` (high bit per matching byte).
#[inline]
fn match_bytes(word: u64, b: u8) -> u64 {
    zero_bytes(word ^ repeat(b))
}

/// Loads the control group starting at slot `g * GROUP` (little-endian, so
/// `trailing_zeros / 8` of a byte mask is the in-group offset).
#[inline]
fn load_group(ctrl: &[u8], g: usize) -> u64 {
    u64::from_le_bytes(
        ctrl[g * GROUP..g * GROUP + GROUP]
            .try_into()
            .expect("full control group"),
    )
}

/// Result of [`RawTable::probe`]: the matching entry's slot index, or the
/// slot index a new entry for the probed key should occupy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// An entry matched at this slot index.
    Found(usize),
    /// No match; a new entry may be placed at this slot index via
    /// [`RawTable::occupy`].
    Vacant(usize),
}

/// An open-addressing hash table mapping `K` to `V` under caller-supplied
/// hashes.  See the module docs for the design rationale.
///
/// Contract: for the table to behave like a map, equal keys must always be
/// presented with equal hashes, and [`RawTable::insert`] must only be
/// called for keys not currently present (use [`RawTable::get_mut`] /
/// [`RawTable::find_idx`] first — with the hash already in hand the extra
/// probe is a handful of word compares).
pub struct RawTable<K, V> {
    /// One control byte per slot (`CTRL_EMPTY`, `CTRL_TOMBSTONE`, or the
    /// entry's `h2` fragment).  Length is the capacity, always a power of
    /// two (or zero before the first insert).
    ctrl: Box<[u8]>,
    /// Entry storage: `(full hash, key, value)` per occupied slot.
    slots: Vec<Option<(u64, K, V)>>,
    len: usize,
    tombstones: usize,
    rehashes: u64,
}

impl<K, V> Default for RawTable<K, V> {
    fn default() -> Self {
        RawTable::new()
    }
}

impl<K, V> RawTable<K, V> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        RawTable {
            ctrl: Box::from([]),
            slots: Vec::new(),
            len: 0,
            tombstones: 0,
            rehashes: 0,
        }
    }

    /// An empty table that can hold `cap` entries without growing.
    pub fn with_capacity(cap: usize) -> Self {
        let mut t = RawTable::new();
        if cap > 0 {
            t.rehash((cap * 4).div_ceil(3).next_power_of_two().max(8));
            t.rehashes = 0; // initial sizing is not a rehash
        }
        t
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ctrl.len()
    }

    /// Number of rehashes (growth or tombstone compaction) performed.
    /// Entries are re-bucketed from their *stored* hashes — keys are never
    /// re-hashed by the table.
    #[inline]
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    /// Index of the entry matching `hash` and `eq`, if present.
    ///
    /// The returned index is stable until the next mutating call and can be
    /// used with [`RawTable::at`] / [`RawTable::value_at_mut`] — this is
    /// what lets probe results be memoized for the duration of a
    /// propagation level.
    #[inline]
    pub fn find_idx(&self, hash: u64, mut eq: impl FnMut(&K, &V) -> bool) -> Option<usize> {
        let cap = self.ctrl.len();
        if cap == 0 {
            return None;
        }
        let groups = cap / GROUP;
        let gmask = groups - 1;
        let fragment = h2(hash);
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        loop {
            let word = load_group(&self.ctrl, g);
            // Candidate slots: control bytes matching the hash fragment.
            let mut candidates = match_bytes(word, fragment);
            while candidates != 0 {
                let i = g * GROUP + (candidates.trailing_zeros() as usize) / 8;
                if let Some((h, k, v)) = &self.slots[i] {
                    if *h == hash && eq(k, v) {
                        return Some(i);
                    }
                }
                candidates &= candidates - 1;
            }
            // A never-occupied slot in the group ends the probe chain.
            if match_bytes(word, CTRL_EMPTY) != 0 {
                return None;
            }
            step += 1;
            if step > groups {
                return None;
            }
            g = (g + step) & gmask;
        }
    }

    /// The entry at a slot index returned by [`RawTable::find_idx`].
    #[inline]
    pub fn at(&self, idx: usize) -> (&K, &V) {
        let (_, k, v) = self.slots[idx].as_ref().expect("slot index of a live entry");
        (k, v)
    }

    /// Mutable value access by slot index.
    #[inline]
    pub fn value_at_mut(&mut self, idx: usize) -> &mut V {
        let (_, _, v) = self.slots[idx].as_mut().expect("slot index of a live entry");
        v
    }

    /// The entry matching `hash` and `eq`, if present.
    #[inline]
    pub fn find(&self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(&K, &V)> {
        self.find_idx(hash, eq).map(|i| self.at(i))
    }

    /// Mutable variant of [`RawTable::find`].
    #[inline]
    pub fn find_mut(&mut self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(&K, &mut V)> {
        let idx = self.find_idx(hash, eq)?;
        let (_, k, v) = self.slots[idx].as_mut().expect("found index is live");
        Some((&*k, v))
    }

    /// Probes for `hash`/`eq` in a single walk, returning either the
    /// matching slot or the slot a new entry should occupy — the upsert
    /// primitive: one probe sequence serves both the hit and the miss.
    ///
    /// Capacity for one insert is reserved up front, so a
    /// [`Probe::Vacant`] index stays valid until the next mutating call
    /// and can be passed to [`RawTable::occupy`] (or simply discarded).
    pub fn probe(&mut self, hash: u64, mut eq: impl FnMut(&K, &V) -> bool) -> Probe {
        self.reserve_one();
        let groups = self.ctrl.len() / GROUP;
        let gmask = groups - 1;
        let fragment = h2(hash);
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        let mut insert_at = usize::MAX;
        loop {
            let word = load_group(&self.ctrl, g);
            let mut candidates = match_bytes(word, fragment);
            while candidates != 0 {
                let i = g * GROUP + (candidates.trailing_zeros() as usize) / 8;
                if let Some((h, k, v)) = &self.slots[i] {
                    if *h == hash && eq(k, v) {
                        return Probe::Found(i);
                    }
                }
                candidates &= candidates - 1;
            }
            if insert_at == usize::MAX {
                // Remember the first reusable tombstone along the chain.
                let tombs = match_bytes(word, CTRL_TOMBSTONE);
                if tombs != 0 {
                    insert_at = g * GROUP + (tombs.trailing_zeros() as usize) / 8;
                }
            }
            let empties = match_bytes(word, CTRL_EMPTY);
            if empties != 0 {
                return Probe::Vacant(if insert_at == usize::MAX {
                    g * GROUP + (empties.trailing_zeros() as usize) / 8
                } else {
                    insert_at
                });
            }
            step += 1;
            g = (g + step) & gmask;
        }
    }

    /// Fills a vacant slot returned by [`RawTable::probe`] (same hash, no
    /// mutation in between).
    pub fn occupy(&mut self, idx: usize, hash: u64, key: K, value: V) {
        debug_assert!(
            self.ctrl[idx] == CTRL_EMPTY || self.ctrl[idx] == CTRL_TOMBSTONE,
            "occupy() target slot is live"
        );
        if self.ctrl[idx] == CTRL_TOMBSTONE {
            self.tombstones -= 1;
        }
        self.ctrl[idx] = h2(hash);
        self.slots[idx] = Some((hash, key, value));
        self.len += 1;
    }

    /// Removes the entry at a slot index returned by
    /// [`RawTable::find_idx`] / [`RawTable::probe`].
    pub fn remove_at(&mut self, idx: usize) -> Option<(K, V)> {
        let entry = self.slots[idx].take()?;
        self.ctrl[idx] = CTRL_TOMBSTONE;
        self.len -= 1;
        self.tombstones += 1;
        Some((entry.1, entry.2))
    }

    /// Inserts an entry **known to be absent** (the caller has already
    /// probed with the same hash).  Reuses tombstone slots.
    pub fn insert(&mut self, hash: u64, key: K, value: V) {
        self.reserve_one();
        let groups = self.ctrl.len() / GROUP;
        let gmask = groups - 1;
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        loop {
            let word = load_group(&self.ctrl, g);
            // Any dead byte (EMPTY or TOMBSTONE — both have the high bit
            // set) in the group can hold the new entry.
            let dead = word & 0x8080_8080_8080_8080;
            if dead != 0 {
                let i = g * GROUP + (dead.trailing_zeros() as usize) / 8;
                self.occupy(i, hash, key, value);
                return;
            }
            step += 1;
            g = (g + step) & gmask;
        }
    }

    /// Removes and returns the entry matching `hash` and `eq`.
    pub fn remove_with(&mut self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(K, V)> {
        let idx = self.find_idx(hash, eq)?;
        self.ctrl[idx] = CTRL_TOMBSTONE;
        self.len -= 1;
        self.tombstones += 1;
        self.slots[idx].take().map(|(_, k, v)| (k, v))
    }

    /// Visits the indices of every live slot, in storage order.  Scans the
    /// control bytes (1 byte per slot, eight at a time) instead of the
    /// entry array, so sparse tables never touch the memory of empty
    /// slots — full-table walks cost `O(capacity)` byte reads plus
    /// `O(len)` entry reads.
    #[inline]
    fn for_each_live(ctrl: &[u8], mut visit: impl FnMut(usize)) {
        const ALL_EMPTY: u64 = u64::from_ne_bytes([CTRL_EMPTY; 8]);
        let mut base = 0;
        let mut chunks = ctrl.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            if word != ALL_EMPTY {
                for (off, &c) in chunk.iter().enumerate() {
                    if c < CTRL_EMPTY {
                        visit(base + off);
                    }
                }
            }
            base += 8;
        }
        for (off, &c) in chunks.remainder().iter().enumerate() {
            if c < CTRL_EMPTY {
                visit(base + off);
            }
        }
    }

    /// Keeps only the entries for which `f` returns `true`.  Scans control
    /// bytes like [`RawTable::for_each_live`], eight at a time.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        const ALL_EMPTY: u64 = u64::from_ne_bytes([CTRL_EMPTY; 8]);
        let cap = self.ctrl.len();
        let mut removed = 0;
        let mut base = 0;
        while base + 8 <= cap {
            let word =
                u64::from_ne_bytes(self.ctrl[base..base + 8].try_into().expect("8-byte chunk"));
            if word != ALL_EMPTY {
                for i in base..base + 8 {
                    removed += usize::from(self.retain_slot(i, &mut f));
                }
            }
            base += 8;
        }
        for i in base..cap {
            removed += usize::from(self.retain_slot(i, &mut f));
        }
        self.len -= removed;
        self.tombstones += removed;
    }

    /// Applies the retain predicate to one slot; returns whether the slot
    /// was removed.
    #[inline]
    fn retain_slot(&mut self, i: usize, f: &mut impl FnMut(&K, &mut V) -> bool) -> bool {
        if self.ctrl[i] >= CTRL_EMPTY {
            return false;
        }
        let keep = match &mut self.slots[i] {
            Some((_, k, v)) => f(k, v),
            None => return false,
        };
        if keep {
            false
        } else {
            self.slots[i] = None;
            self.ctrl[i] = CTRL_TOMBSTONE;
            true
        }
    }

    /// Moves every `(hash, key, value)` entry into `out` and clears the
    /// table, keeping its capacity (the drained hashes stay reusable — this
    /// is how the engine hands a level's delta to the next level without
    /// re-hashing anything).
    pub fn drain_into(&mut self, out: &mut Vec<(u64, K, V)>) {
        if self.len == 0 && self.tombstones == 0 {
            // Already clean: clearing must stay O(1) for empty tables no
            // matter how large their retained capacity is (scratch tables
            // are cleared once per reuse, usually while empty).
            return;
        }
        if self.len > 0 {
            out.reserve(self.len);
            let slots = &mut self.slots;
            Self::for_each_live(&self.ctrl, |i| {
                if let Some(entry) = slots[i].take() {
                    out.push(entry);
                }
            });
        }
        self.ctrl.fill(CTRL_EMPTY);
        self.len = 0;
        self.tombstones = 0;
    }

    /// Removes every entry, keeping capacity.  O(1) when the table is
    /// already clean (see [`RawTable::drain_into`]).
    pub fn clear(&mut self) {
        if self.len == 0 && self.tombstones == 0 {
            return;
        }
        let slots = &mut self.slots;
        Self::for_each_live(&self.ctrl, |i| {
            slots[i] = None;
        });
        self.ctrl.fill(CTRL_EMPTY);
        self.len = 0;
        self.tombstones = 0;
    }

    /// Iterates over `(key, value)` pairs in unspecified order.  Guided by
    /// the control bytes, so iteration reads `O(len)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.iter_hashed().map(|(_, k, v)| (k, v))
    }

    /// Iterates over `(stored hash, key, value)` triples in unspecified
    /// order.  The stored hash is the one the entry was inserted under —
    /// callers merging one table into another reuse it instead of
    /// re-hashing the key (the hash-once contract applied to table-to-table
    /// traffic, e.g. ring-value addition).
    ///
    /// A named, SWAR-chunked iterator: control bytes are consumed one
    /// *word* (eight slots) at a time and empty groups are skipped with a
    /// single compare, so walking a sparse table costs `O(capacity / 8)`
    /// word reads plus `O(len)` entry reads — and callers can store the
    /// iterator inline (no boxing) inside their own iterator types.
    pub fn iter_hashed(&self) -> IterHashed<'_, K, V> {
        IterHashed {
            table: self,
            base: 0,
            mask: 0,
        }
    }

    /// Ensures a free slot exists, growing or compacting when the load
    /// factor (live + tombstones) would exceed 3/4.
    fn reserve_one(&mut self) {
        let cap = self.ctrl.len();
        if cap == 0 {
            self.rehash(8);
            self.rehashes = 0; // initial allocation is not a rehash
            return;
        }
        if (self.len + self.tombstones + 1) * 4 > cap * 3 {
            // Grow only if the *live* entries justify it; otherwise rehash
            // at the same size, which clears the tombstones.
            let new_cap = if (self.len + 1) * 4 > cap * 2 { cap * 2 } else { cap };
            self.rehash(new_cap);
        }
    }

    /// Re-buckets every entry into a table of `new_cap` slots using the
    /// stored hashes.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap >= GROUP);
        self.rehashes += 1;
        let old: Vec<Option<(u64, K, V)>> = std::mem::take(&mut self.slots);
        self.ctrl = vec![CTRL_EMPTY; new_cap].into_boxed_slice();
        self.slots = (0..new_cap).map(|_| None).collect();
        self.tombstones = 0;
        let gmask = new_cap / GROUP - 1;
        for entry in old.into_iter().flatten() {
            let mut g = (entry.0 as usize) & gmask;
            let mut step = 0;
            loop {
                let word = load_group(&self.ctrl, g);
                let empties = match_bytes(word, CTRL_EMPTY);
                if empties != 0 {
                    let i = g * GROUP + (empties.trailing_zeros() as usize) / 8;
                    self.ctrl[i] = h2(entry.0);
                    self.slots[i] = Some(entry);
                    break;
                }
                step += 1;
                g = (g + step) & gmask;
            }
        }
    }
}

impl<K: Eq, V> RawTable<K, V> {
    /// The value stored under `key`, if present.
    #[inline]
    pub fn get(&self, hash: u64, key: &K) -> Option<&V> {
        self.find(hash, |k, _| k == key).map(|(_, v)| v)
    }

    /// Mutable variant of [`RawTable::get`].
    #[inline]
    pub fn get_mut(&mut self, hash: u64, key: &K) -> Option<&mut V> {
        self.find_mut(hash, |k, _| k == key).map(|(_, v)| v)
    }

    /// Removes `key`'s entry, returning its value.
    pub fn remove(&mut self, hash: u64, key: &K) -> Option<V> {
        self.remove_with(hash, |k, _| k == key).map(|(_, v)| v)
    }
}

/// Iterator over `(stored hash, key, value)` triples of a [`RawTable`];
/// see [`RawTable::iter_hashed`].
pub struct IterHashed<'a, K, V> {
    table: &'a RawTable<K, V>,
    /// Slot index of the first slot of the next unread control word.
    base: usize,
    /// Per-byte high-bit mask of still-unvisited live slots in the word
    /// *before* `base` (little-endian: `trailing_zeros / 8` is the
    /// in-word slot offset).
    mask: u64,
}

impl<'a, K, V> Iterator for IterHashed<'a, K, V> {
    type Item = (u64, &'a K, &'a V);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.mask != 0 {
                let off = (self.mask.trailing_zeros() as usize) / 8;
                self.mask &= self.mask - 1;
                let i = self.base - GROUP + off;
                if let Some((h, k, v)) = self.table.slots[i].as_ref() {
                    return Some((*h, k, v));
                }
                continue;
            }
            let ctrl = &self.table.ctrl;
            while self.base + GROUP <= ctrl.len() {
                let word = u64::from_le_bytes(
                    ctrl[self.base..self.base + GROUP]
                        .try_into()
                        .expect("8-byte chunk"),
                );
                self.base += GROUP;
                // Live slots have the control high bit clear.
                let live = !word & 0x8080_8080_8080_8080;
                if live != 0 {
                    self.mask = live;
                    break;
                }
            }
            if self.mask == 0 {
                // Tail (capacity is a multiple of GROUP, so only the
                // zero-capacity table lands here).
                while self.base < ctrl.len() {
                    let i = self.base;
                    self.base += 1;
                    if ctrl[i] < CTRL_EMPTY {
                        if let Some((h, k, v)) = self.table.slots[i].as_ref() {
                            return Some((*h, k, v));
                        }
                    }
                }
                return None;
            }
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for RawTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone, V: Clone> Clone for RawTable<K, V> {
    fn clone(&self) -> Self {
        RawTable {
            ctrl: self.ctrl.clone(),
            slots: self.slots.clone(),
            len: self.len,
            tombstones: self.tombstones,
            rehashes: self.rehashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash_words;

    fn h(k: u64) -> u64 {
        fx_hash_words(&[k])
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: RawTable<u64, String> = RawTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(h(1), &1), None);
        t.insert(h(1), 1, "one".into());
        t.insert(h(2), 2, "two".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(h(1), &1).map(String::as_str), Some("one"));
        assert_eq!(t.get(h(3), &3), None);
        *t.get_mut(h(2), &2).unwrap() = "TWO".into();
        assert_eq!(t.remove(h(2), &2).as_deref(), Some("TWO"));
        assert_eq!(t.remove(h(2), &2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_keeps_all_entries_and_counts_rehashes() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..10_000u64 {
            t.insert(h(k), k, k * 3);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.rehashes() > 0, "growth to 10k entries must rehash");
        for k in 0..10_000u64 {
            assert_eq!(t.get(h(k), &k), Some(&(k * 3)));
        }
        assert!(t.capacity().is_power_of_two());
    }

    #[test]
    fn drain_into_empties_but_keeps_capacity() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..100 {
            t.insert(h(k), k, k);
        }
        let cap = t.capacity();
        let mut out = Vec::new();
        t.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        // Drained entries carry their stored hash.
        assert!(out.iter().all(|(hash, k, _)| *hash == h(*k)));
        t.insert(h(7), 7, 7);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retain_and_clear() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..50 {
            t.insert(h(k), k, k);
        }
        t.retain(|k, _| k % 2 == 0);
        assert_eq!(t.len(), 25);
        assert_eq!(t.get(h(3), &3), None);
        assert_eq!(t.get(h(4), &4), Some(&4));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn probe_occupy_upsert_in_one_walk() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..200u64 {
            match t.probe(h(k), |key, _| *key == k) {
                Probe::Found(_) => panic!("fresh key reported found"),
                Probe::Vacant(idx) => t.occupy(idx, h(k), k, k * 2),
            }
        }
        assert_eq!(t.len(), 200);
        for k in 0..200u64 {
            match t.probe(h(k), |key, _| *key == k) {
                Probe::Found(idx) => {
                    assert_eq!(t.at(idx), (&k, &(k * 2)));
                    *t.value_at_mut(idx) += 1;
                }
                Probe::Vacant(_) => panic!("stored key reported vacant"),
            }
        }
        assert_eq!(t.get(h(9), &9), Some(&19));
        // remove_at via probe, then the tombstone is reused by occupy.
        let Probe::Found(idx) = t.probe(h(9), |key, _| *key == 9) else {
            panic!("expected hit");
        };
        assert_eq!(t.remove_at(idx), Some((9, 19)));
        assert_eq!(t.get(h(9), &9), None);
        let Probe::Vacant(idx) = t.probe(h(9), |key, _| *key == 9) else {
            panic!("expected vacancy");
        };
        t.occupy(idx, h(9), 9, 0);
        assert_eq!(t.get(h(9), &9), Some(&0));
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn find_idx_is_stable_between_mutations() {
        let mut t: RawTable<u64, u64> = RawTable::with_capacity(64);
        for k in 0..20 {
            t.insert(h(k), k, k);
        }
        let idx = t.find_idx(h(11), |k, _| *k == 11).unwrap();
        assert_eq!(t.at(idx), (&11, &11));
        *t.value_at_mut(idx) = 99;
        assert_eq!(t.get(h(11), &11), Some(&99));
    }
}
