#![allow(unsafe_code)] // the one sanctioned unsafe module — see the memory contract in ROADMAP.md
//! An open-addressing hash table keyed by **precomputed** 64-bit hashes.
//!
//! # Why `std::collections::HashMap` is not enough
//!
//! The F-IVM maintenance hot path probes the same key against several
//! tables per propagation level: a view's primary map, one or more
//! secondary indexes, and the per-level delta accumulator.  With `std`'s
//! `HashMap` every one of those probes re-hashes the key, because the map
//! owns the hashing: there is no stable API to probe or insert with a hash
//! computed by the caller (`raw_entry` never stabilized, and
//! `HashMap::entry` additionally demands an owned key up front, forcing a
//! clone per probe).  [`RawTable`] inverts the contract — every operation
//! takes `(hash, key)` — so the engine hashes each key exactly once per
//! level and reuses the hash everywhere, including on growth: entries store
//! their hash, so resizing never touches key bytes at all.
//!
//! The table is a compact swiss-table-style design: power-of-two capacity,
//! one control byte per slot carrying a 7-bit hash fragment, probed in
//! groups of eight bytes with portable SWAR word tricks (no SIMD
//! intrinsics) so most mismatched slots are rejected eight at a time
//! without reading any entry.  Groups are visited in triangular order
//! (every group reached, no primary clustering), and deletion uses
//! tombstones.  Tombstone-heavy tables are compacted in place by a
//! same-size rehash instead of growing.  Growth events are counted in
//! [`RawTable::rehashes`], which the engine surfaces as an `EngineStats`
//! counter — a key is re-bucketed (never re-hashed) only when a table
//! grows or compacts.
//!
//! # Storage: discriminant-free slots
//!
//! The control bytes are the **single liveness authority**.  Entry storage
//! is split into a hash array (`Box<[u64]>`) and an uninitialized entry
//! array (`Box<[MaybeUninit<(K, V)>]>`); there is no per-slot `Option`
//! discriminant and no second bookkeeping structure to keep in sync.  The
//! invariant every `unsafe` block in this module relies on:
//!
//! > `ctrl[i] < 0x80` (a stored hash fragment) **iff** `hashes[i]` and
//! > `entries[i]` hold an initialized entry.  Control bytes at
//! > `i >= capacity` (the padding of sub-group tables, below) are always
//! > `CTRL_EMPTY`.
//!
//! Every transition maintains it: `occupy`/`insert` write the entry before
//! (or with) the control byte, `remove_at`/`retain` read the entry out (or
//! drop it in place) while marking the byte dead, `clear`/`drop` walk the
//! control bytes to drop exactly the live entries, and `rehash` moves
//! entries bitwise into a fresh array.  All `unsafe` is confined to this
//! module; the public API stays safe (slot-index accessors check the
//! control byte and panic on a dead slot, exactly like the previous
//! `Option`-based storage did).
//!
//! Because entry slots no longer pay an `Option` tag, and because the
//! minimum capacity is [`MIN_CAP`] = 2 slots (the control array is padded
//! to one SWAR group with permanently-empty bytes), the millions of tiny
//! relation-ring interiors this table backs shrink from one 8-slot
//! allocation to a right-sized few: see [`RawTable::allocated_bytes`] and
//! the `MEM-*` ablation records in `BENCH_ivm.json`.
//!
//! Like the rest of the workspace the table is keyed by trusted,
//! internally generated hashes ([`crate::hash::FxHasher`]-style mixing);
//! it is not HashDoS-resistant.

use std::fmt;
use std::mem::MaybeUninit;

/// Control byte: slot has never held an entry (probe chains stop here).
const CTRL_EMPTY: u8 = 0x80;
/// Control byte: slot held an entry that was removed (probe chains go on).
const CTRL_TOMBSTONE: u8 = 0x81;

/// The 7-bit hash fragment stored in a slot's control byte.
#[inline]
fn h2(hash: u64) -> u8 {
    ((hash >> 57) & 0x7f) as u8
}

/// Control bytes are probed in groups of this many (one `u64` at a time).
const GROUP: usize = 8;

/// Smallest slot capacity.  Sub-group tables keep a full 8-byte control
/// group whose trailing bytes are permanently `CTRL_EMPTY`; real slots
/// occupy the *low* indices, so the SWAR "first matching byte" selection
/// can never pick a padding slot while a live/free real slot exists (the
/// load-factor reserve guarantees a free real slot before every insert).
const MIN_CAP: usize = 2;

/// `b` repeated in every byte of a word.
#[inline]
fn repeat(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

/// SWAR mask with the high bit set in every byte of `x` that is zero
/// (the classic "hasless" trick) — used to locate matching control bytes
/// eight at a time without SIMD intrinsics.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Mask of bytes in `word` equal to `b` (high bit per matching byte).
#[inline]
fn match_bytes(word: u64, b: u8) -> u64 {
    zero_bytes(word ^ repeat(b))
}

/// Loads the control group starting at slot `g * GROUP` (little-endian, so
/// `trailing_zeros / 8` of a byte mask is the in-group offset).
#[inline]
fn load_group(ctrl: &[u8], g: usize) -> u64 {
    u64::from_le_bytes(
        ctrl[g * GROUP..g * GROUP + GROUP]
            .try_into()
            .expect("full control group"),
    )
}

/// A control word whose every byte is `CTRL_EMPTY`.
const ALL_EMPTY: u64 = u64::from_ne_bytes([CTRL_EMPTY; 8]);

#[cfg(test)]
thread_local! {
    /// Counter backing the sparse-wipe tests: control *words* written by
    /// [`RawTable`] clears on this thread.
    static CTRL_WORDS_WIPED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Records `words` control words written by a clear (test builds only).
#[inline]
fn note_wiped(words: usize) {
    #[cfg(test)]
    CTRL_WORDS_WIPED.with(|c| c.set(c.get() + words as u64));
    #[cfg(not(test))]
    let _ = words;
}

/// Result of [`RawTable::probe`]: the matching entry's slot index, or the
/// slot index a new entry for the probed key should occupy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// An entry matched at this slot index.
    Found(usize),
    /// No match; a new entry may be placed at this slot index via
    /// [`RawTable::occupy`].
    Vacant(usize),
}

/// An open-addressing hash table mapping `K` to `V` under caller-supplied
/// hashes.  See the module docs for the design rationale and the storage
/// invariant.
///
/// Contract: for the table to behave like a map, equal keys must always be
/// presented with equal hashes, and [`RawTable::insert`] must only be
/// called for keys not currently present (use [`RawTable::get_mut`] /
/// [`RawTable::find_idx`] first — with the hash already in hand the extra
/// probe is a handful of word compares).
pub struct RawTable<K, V> {
    /// One control byte per slot (`CTRL_EMPTY`, `CTRL_TOMBSTONE`, or the
    /// entry's `h2` fragment), padded to at least one SWAR group; padding
    /// bytes are permanently `CTRL_EMPTY`.
    ctrl: Box<[u8]>,
    /// The stored 64-bit hash of each live slot (uninitialized slots hold
    /// an arbitrary word that is never read).  Length is the capacity,
    /// always a power of two (or zero before the first insert).
    hashes: Box<[u64]>,
    /// Entry storage; `entries[i]` is initialized iff `ctrl[i]` is live.
    entries: Box<[MaybeUninit<(K, V)>]>,
    len: usize,
    tombstones: usize,
    rehashes: u64,
}

impl<K, V> Default for RawTable<K, V> {
    fn default() -> Self {
        RawTable::new()
    }
}

/// An uninitialized entry array of `cap` slots.
fn uninit_entries<K, V>(cap: usize) -> Box<[MaybeUninit<(K, V)>]> {
    std::iter::repeat_with(MaybeUninit::uninit).take(cap).collect()
}

impl<K, V> RawTable<K, V> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        RawTable {
            ctrl: Box::from([]),
            hashes: Box::from([]),
            entries: Box::from([]),
            len: 0,
            tombstones: 0,
            rehashes: 0,
        }
    }

    /// An empty table that can hold `cap` entries without growing.
    pub fn with_capacity(cap: usize) -> Self {
        let mut t = RawTable::new();
        if cap > 0 {
            t.rehash(
                (cap * 4)
                    .div_ceil(3)
                    .next_power_of_two()
                    .max(MIN_CAP),
            );
            t.rehashes = 0; // initial sizing is not a rehash
        }
        t
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (entry capacity before load-factor headroom; the
    /// control array may be padded beyond it, see the module docs).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.hashes.len()
    }

    /// Heap bytes owned by the table's own arrays (control bytes, stored
    /// hashes, entry slots).  Excludes heap owned *by* keys or values
    /// (spilled key boxes, nested tables) — byte rollups that need those
    /// add them at the layer that knows the types (`Ring::payload_bytes`,
    /// `MaterializedView::table_bytes`).
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        self.ctrl.len()
            + self.hashes.len() * std::mem::size_of::<u64>()
            + self.entries.len() * std::mem::size_of::<(K, V)>()
    }

    /// Number of rehashes (growth or tombstone compaction) performed.
    /// Entries are re-bucketed from their *stored* hashes — keys are never
    /// re-hashed by the table.
    #[inline]
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    /// Shared borrow of a live slot's entry.
    ///
    /// # Safety
    /// `idx` must be a live slot (`ctrl[idx] < CTRL_EMPTY`).
    #[inline]
    unsafe fn entry_ref(&self, idx: usize) -> &(K, V) {
        debug_assert!(self.ctrl[idx] < CTRL_EMPTY, "entry_ref on a dead slot");
        self.entries[idx].assume_init_ref()
    }

    /// Mutable borrow of a live slot's entry.
    ///
    /// # Safety
    /// `idx` must be a live slot (`ctrl[idx] < CTRL_EMPTY`).
    #[inline]
    unsafe fn entry_mut(&mut self, idx: usize) -> &mut (K, V) {
        debug_assert!(self.ctrl[idx] < CTRL_EMPTY, "entry_mut on a dead slot");
        self.entries[idx].assume_init_mut()
    }

    /// Index of the entry matching `hash` and `eq`, if present.
    ///
    /// The returned index is stable until the next mutating call and can be
    /// used with [`RawTable::at`] / [`RawTable::value_at_mut`] — this is
    /// what lets probe results be memoized for the duration of a
    /// propagation level.
    #[inline]
    pub fn find_idx(&self, hash: u64, mut eq: impl FnMut(&K, &V) -> bool) -> Option<usize> {
        let groups = self.ctrl.len() / GROUP;
        if groups == 0 {
            return None;
        }
        let gmask = groups - 1;
        let fragment = h2(hash);
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        loop {
            let word = load_group(&self.ctrl, g);
            // Candidate slots: control bytes matching the hash fragment.
            // A fragment byte is < 0x80, so every candidate is live and its
            // hash/entry are initialized (the storage invariant).
            let mut candidates = match_bytes(word, fragment);
            while candidates != 0 {
                let i = g * GROUP + (candidates.trailing_zeros() as usize) / 8;
                if self.hashes[i] == hash {
                    let (k, v) = unsafe { self.entry_ref(i) };
                    if eq(k, v) {
                        return Some(i);
                    }
                }
                candidates &= candidates - 1;
            }
            // A never-occupied slot in the group ends the probe chain.
            if match_bytes(word, CTRL_EMPTY) != 0 {
                return None;
            }
            step += 1;
            if step > groups {
                return None;
            }
            g = (g + step) & gmask;
        }
    }

    /// The entry at a slot index returned by [`RawTable::find_idx`].
    /// Panics on a dead slot index (liveness is checked against the control
    /// byte, the single authority).
    #[inline]
    pub fn at(&self, idx: usize) -> (&K, &V) {
        assert!(self.ctrl[idx] < CTRL_EMPTY, "slot index of a live entry");
        let (k, v) = unsafe { self.entry_ref(idx) };
        (k, v)
    }

    /// Mutable value access by slot index; panics on a dead slot index.
    #[inline]
    pub fn value_at_mut(&mut self, idx: usize) -> &mut V {
        assert!(self.ctrl[idx] < CTRL_EMPTY, "slot index of a live entry");
        let (_, v) = unsafe { self.entry_mut(idx) };
        v
    }

    /// The entry matching `hash` and `eq`, if present.
    #[inline]
    pub fn find(&self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(&K, &V)> {
        let idx = self.find_idx(hash, eq)?;
        let (k, v) = unsafe { self.entry_ref(idx) };
        Some((k, v))
    }

    /// Mutable variant of [`RawTable::find`].
    #[inline]
    pub fn find_mut(&mut self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(&K, &mut V)> {
        let idx = self.find_idx(hash, eq)?;
        let (k, v) = unsafe { self.entry_mut(idx) };
        Some((&*k, v))
    }

    /// Probes for `hash`/`eq` in a single walk, returning either the
    /// matching slot or the slot a new entry should occupy — the upsert
    /// primitive: one probe sequence serves both the hit and the miss.
    ///
    /// Capacity for one insert is reserved up front, so a
    /// [`Probe::Vacant`] index stays valid until the next mutating call
    /// and can be passed to [`RawTable::occupy`] (or simply discarded).
    pub fn probe(&mut self, hash: u64, mut eq: impl FnMut(&K, &V) -> bool) -> Probe {
        self.reserve_one();
        let groups = self.ctrl.len() / GROUP;
        let gmask = groups - 1;
        let fragment = h2(hash);
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        let mut insert_at = usize::MAX;
        loop {
            let word = load_group(&self.ctrl, g);
            let mut candidates = match_bytes(word, fragment);
            while candidates != 0 {
                let i = g * GROUP + (candidates.trailing_zeros() as usize) / 8;
                if self.hashes[i] == hash {
                    let (k, v) = unsafe { self.entry_ref(i) };
                    if eq(k, v) {
                        return Probe::Found(i);
                    }
                }
                candidates &= candidates - 1;
            }
            if insert_at == usize::MAX {
                // Remember the first reusable tombstone along the chain.
                let tombs = match_bytes(word, CTRL_TOMBSTONE);
                if tombs != 0 {
                    insert_at = g * GROUP + (tombs.trailing_zeros() as usize) / 8;
                }
            }
            let empties = match_bytes(word, CTRL_EMPTY);
            if empties != 0 {
                return Probe::Vacant(if insert_at == usize::MAX {
                    g * GROUP + (empties.trailing_zeros() as usize) / 8
                } else {
                    insert_at
                });
            }
            step += 1;
            g = (g + step) & gmask;
        }
    }

    /// Fills a vacant slot returned by [`RawTable::probe`] (same hash, no
    /// mutation in between).  Panics if the slot is live.
    pub fn occupy(&mut self, idx: usize, hash: u64, key: K, value: V) {
        assert!(
            idx < self.capacity(),
            "occupy() index beyond the slot capacity (padding slots are not occupiable)"
        );
        assert!(self.ctrl[idx] >= CTRL_EMPTY, "occupy() target slot is live");
        if self.ctrl[idx] == CTRL_TOMBSTONE {
            self.tombstones -= 1;
        }
        self.hashes[idx] = hash;
        self.entries[idx].write((key, value));
        self.ctrl[idx] = h2(hash);
        self.len += 1;
    }

    /// Removes the entry at a slot index; `None` if the slot is dead.
    pub fn remove_at(&mut self, idx: usize) -> Option<(K, V)> {
        if self.ctrl[idx] >= CTRL_EMPTY {
            return None;
        }
        self.ctrl[idx] = CTRL_TOMBSTONE;
        self.len -= 1;
        self.tombstones += 1;
        // The control byte now marks the slot dead, so the entry read is
        // the single move out of the slot.
        Some(unsafe { self.entries[idx].assume_init_read() })
    }

    /// Inserts an entry **known to be absent** (the caller has already
    /// probed with the same hash).  Reuses tombstone slots.
    pub fn insert(&mut self, hash: u64, key: K, value: V) {
        self.reserve_one();
        let groups = self.ctrl.len() / GROUP;
        let gmask = groups - 1;
        let mut g = (hash as usize) & gmask;
        let mut step = 0;
        loop {
            let word = load_group(&self.ctrl, g);
            // Any dead byte (EMPTY or TOMBSTONE — both have the high bit
            // set) in the group can hold the new entry.  Padding bytes sit
            // at the highest indices of the (single) group of a sub-group
            // table, so the lowest dead byte is always a real slot.
            let dead = word & 0x8080_8080_8080_8080;
            if dead != 0 {
                let i = g * GROUP + (dead.trailing_zeros() as usize) / 8;
                self.occupy(i, hash, key, value);
                return;
            }
            step += 1;
            g = (g + step) & gmask;
        }
    }

    /// Removes and returns the entry matching `hash` and `eq`.
    pub fn remove_with(&mut self, hash: u64, eq: impl FnMut(&K, &V) -> bool) -> Option<(K, V)> {
        let idx = self.find_idx(hash, eq)?;
        self.remove_at(idx)
    }

    /// Visits the indices of every live slot, in storage order.  Scans the
    /// control bytes (1 byte per slot, eight at a time) instead of the
    /// entry array, so sparse tables never touch the memory of empty
    /// slots — full-table walks cost `O(capacity)` byte reads plus
    /// `O(len)` entry reads.
    #[inline]
    fn for_each_live(ctrl: &[u8], mut visit: impl FnMut(usize)) {
        let mut base = 0;
        for chunk in ctrl.chunks_exact(GROUP) {
            let word = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            if word != ALL_EMPTY {
                for (off, &c) in chunk.iter().enumerate() {
                    if c < CTRL_EMPTY {
                        visit(base + off);
                    }
                }
            }
            base += GROUP;
        }
        // The control array length is always a multiple of GROUP.
        debug_assert_eq!(ctrl.len() % GROUP, 0);
    }

    /// Keeps only the entries for which `f` returns `true`.  Scans control
    /// bytes like [`RawTable::for_each_live`], eight at a time; removed
    /// entries are dropped in place.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        let cap = self.ctrl.len();
        let mut removed = 0;
        let mut base = 0;
        while base + GROUP <= cap {
            let word =
                u64::from_ne_bytes(self.ctrl[base..base + GROUP].try_into().expect("8-byte chunk"));
            if word != ALL_EMPTY {
                for i in base..base + GROUP {
                    removed += usize::from(self.retain_slot(i, &mut f));
                }
            }
            base += GROUP;
        }
        self.len -= removed;
        self.tombstones += removed;
    }

    /// Applies the retain predicate to one slot; returns whether the slot
    /// was removed.
    #[inline]
    fn retain_slot(&mut self, i: usize, f: &mut impl FnMut(&K, &mut V) -> bool) -> bool {
        if self.ctrl[i] >= CTRL_EMPTY {
            return false;
        }
        let (k, v) = unsafe { self.entry_mut(i) };
        if f(k, v) {
            false
        } else {
            self.ctrl[i] = CTRL_TOMBSTONE;
            // Dead per the control byte; drop the entry in place.
            unsafe { self.entries[i].assume_init_drop() };
            true
        }
    }

    /// Resets every control byte to `CTRL_EMPTY` after the caller has
    /// disposed of all live entries.  When the table is sparsely occupied
    /// (live + tombstones well below capacity — the pooled-scratch shape),
    /// only the dirty control *words* are rewritten, guided by the same
    /// SWAR walk the iterators use; a dense table takes one bulk fill.
    fn wipe_ctrl(&mut self) {
        let dirty = self.len + self.tombstones;
        if dirty * GROUP >= self.ctrl.len() {
            self.ctrl.fill(CTRL_EMPTY);
            note_wiped(self.ctrl.len() / GROUP);
        } else {
            let mut wiped = 0;
            for chunk in self.ctrl.chunks_exact_mut(GROUP) {
                let word = u64::from_ne_bytes((&*chunk).try_into().expect("8-byte chunk"));
                if word != ALL_EMPTY {
                    chunk.fill(CTRL_EMPTY);
                    wiped += 1;
                }
            }
            note_wiped(wiped);
        }
        self.len = 0;
        self.tombstones = 0;
    }

    /// Moves every `(hash, key, value)` entry into `out` and clears the
    /// table, keeping its capacity (the drained hashes stay reusable — this
    /// is how the engine hands a level's delta to the next level without
    /// re-hashing anything).
    pub fn drain_into(&mut self, out: &mut Vec<(u64, K, V)>) {
        if self.len == 0 && self.tombstones == 0 {
            // Already clean: clearing must stay O(1) for empty tables no
            // matter how large their retained capacity is (scratch tables
            // are cleared once per reuse, usually while empty).
            return;
        }
        if self.len > 0 {
            // Reserve up front so the pushes below cannot panic between
            // reading an entry out and recording it (a panic after the
            // read, with the control byte still live, would double-drop
            // the entry when the table is later dropped — same discipline
            // as `take_live_entries`).
            out.reserve(self.len);
            self.take_live_entries(|hash, k, v| out.push((hash, k, v)));
        }
        self.wipe_ctrl();
    }

    /// Walks the live slots SWAR-word-wise, marking each slot dead
    /// **before** moving its entry out to `consume`.  The
    /// mark-then-dispose order makes the walk panic-safe: if a consumer
    /// or an entry's own `Drop` unwinds, every slot already visited —
    /// including the one in flight — reads dead, so the table's `Drop`
    /// cannot touch it again.  Counters are left to the caller
    /// (`wipe_ctrl` resets them).
    fn take_live_entries(&mut self, mut consume: impl FnMut(u64, K, V)) {
        let cap = self.ctrl.len();
        let mut base = 0;
        while base + GROUP <= cap {
            let word =
                u64::from_ne_bytes(self.ctrl[base..base + GROUP].try_into().expect("8-byte chunk"));
            if word != ALL_EMPTY {
                for i in base..base + GROUP {
                    if self.ctrl[i] < CTRL_EMPTY {
                        self.ctrl[i] = CTRL_TOMBSTONE;
                        // Dead per the control byte; this is the single
                        // move out of the slot.
                        let (k, v) = unsafe { self.entries[i].assume_init_read() };
                        consume(self.hashes[i], k, v);
                    }
                }
            }
            base += GROUP;
        }
    }

    /// Removes every entry, keeping capacity.  O(1) when the table is
    /// already clean, and writes only the dirty control words when it is
    /// sparse (see [`RawTable::drain_into`]).
    pub fn clear(&mut self) {
        if self.len == 0 && self.tombstones == 0 {
            return;
        }
        if std::mem::needs_drop::<(K, V)>() && self.len > 0 {
            // Slots are marked dead before each entry drops, so a
            // panicking entry `Drop` cannot lead to a second drop from
            // the table's own `Drop` during unwinding.
            self.take_live_entries(|_, k, v| drop((k, v)));
        }
        self.wipe_ctrl();
    }

    /// Iterates over `(key, value)` pairs in unspecified order.  Guided by
    /// the control bytes, so iteration reads `O(len)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.iter_hashed().map(|(_, k, v)| (k, v))
    }

    /// Iterates over `(stored hash, key, value)` triples in unspecified
    /// order.  The stored hash is the one the entry was inserted under —
    /// callers merging one table into another reuse it instead of
    /// re-hashing the key (the hash-once contract applied to table-to-table
    /// traffic, e.g. ring-value addition).
    ///
    /// A named, SWAR-chunked iterator: control bytes are consumed one
    /// *word* (eight slots) at a time and empty groups are skipped with a
    /// single compare, so walking a sparse table costs `O(capacity / 8)`
    /// word reads plus `O(len)` entry reads — and callers can store the
    /// iterator inline (no boxing) inside their own iterator types.
    pub fn iter_hashed(&self) -> IterHashed<'_, K, V> {
        IterHashed {
            table: self,
            base: 0,
            mask: 0,
        }
    }

    /// Ensures a free slot exists, growing or compacting when the load
    /// factor (live + tombstones) would exceed 3/4 of the slot capacity.
    fn reserve_one(&mut self) {
        let cap = self.capacity();
        if cap == 0 {
            self.rehash(MIN_CAP);
            self.rehashes = 0; // initial allocation is not a rehash
            return;
        }
        if (self.len + self.tombstones + 1) * 4 > cap * 3 {
            // Grow only if the *live* entries justify it; otherwise rehash
            // at the same size, which clears the tombstones.
            let new_cap = if (self.len + 1) * 4 > cap * 2 { cap * 2 } else { cap };
            self.rehash(new_cap);
        }
    }

    /// Re-buckets every entry into a table of `new_cap` slots using the
    /// stored hashes.  Entries move bitwise — no clone, no re-hash.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap >= MIN_CAP);
        self.rehashes += 1;
        let old_ctrl = std::mem::replace(
            &mut self.ctrl,
            vec![CTRL_EMPTY; new_cap.max(GROUP)].into_boxed_slice(),
        );
        let old_hashes = std::mem::replace(
            &mut self.hashes,
            vec![0u64; new_cap].into_boxed_slice(),
        );
        let old_entries = std::mem::replace(&mut self.entries, uninit_entries(new_cap));
        self.tombstones = 0;
        let gmask = self.ctrl.len() / GROUP - 1;
        Self::for_each_live(&old_ctrl, |i| {
            let hash = old_hashes[i];
            // Move out of the old array; `old_entries` is dropped as a
            // plain uninitialized box afterwards, so this is the only read.
            let entry = unsafe { old_entries[i].assume_init_read() };
            let mut g = (hash as usize) & gmask;
            let mut step = 0;
            loop {
                let word = load_group(&self.ctrl, g);
                let empties = match_bytes(word, CTRL_EMPTY);
                if empties != 0 {
                    let i = g * GROUP + (empties.trailing_zeros() as usize) / 8;
                    self.ctrl[i] = h2(hash);
                    self.hashes[i] = hash;
                    self.entries[i].write(entry);
                    break;
                }
                step += 1;
                g = (g + step) & gmask;
            }
        });
    }
}

impl<K, V> Drop for RawTable<K, V> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<(K, V)>() && self.len > 0 {
            // No dead-marking needed here (unlike `clear`): if an entry's
            // `Drop` unwinds, this body does not run again — the field
            // boxes drop as plain (uninitialized) storage — so already
            // visited slots cannot be dropped twice; the unvisited rest
            // leaks, which is the standard collection contract.
            let RawTable { ctrl, entries, .. } = self;
            Self::for_each_live(ctrl, |i| unsafe { entries[i].assume_init_drop() });
        }
    }
}

impl<K: Eq, V> RawTable<K, V> {
    /// The value stored under `key`, if present.
    #[inline]
    pub fn get(&self, hash: u64, key: &K) -> Option<&V> {
        self.find(hash, |k, _| k == key).map(|(_, v)| v)
    }

    /// Mutable variant of [`RawTable::get`].
    #[inline]
    pub fn get_mut(&mut self, hash: u64, key: &K) -> Option<&mut V> {
        self.find_mut(hash, |k, _| k == key).map(|(_, v)| v)
    }

    /// Removes `key`'s entry, returning its value.
    pub fn remove(&mut self, hash: u64, key: &K) -> Option<V> {
        self.remove_with(hash, |k, _| k == key).map(|(_, v)| v)
    }
}

/// Iterator over `(stored hash, key, value)` triples of a [`RawTable`];
/// see [`RawTable::iter_hashed`].
pub struct IterHashed<'a, K, V> {
    table: &'a RawTable<K, V>,
    /// Slot index of the first slot of the next unread control word.
    base: usize,
    /// Per-byte high-bit mask of still-unvisited live slots in the word
    /// *before* `base` (little-endian: `trailing_zeros / 8` is the
    /// in-word slot offset).
    mask: u64,
}

impl<'a, K, V> Iterator for IterHashed<'a, K, V> {
    type Item = (u64, &'a K, &'a V);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.mask != 0 {
                let off = (self.mask.trailing_zeros() as usize) / 8;
                self.mask &= self.mask - 1;
                let i = self.base - GROUP + off;
                // Live per the mask (control high bit clear) — the storage
                // invariant guarantees the hash and entry are initialized.
                let (k, v) = unsafe { self.table.entry_ref(i) };
                return Some((self.table.hashes[i], k, v));
            }
            let ctrl = &self.table.ctrl;
            while self.base + GROUP <= ctrl.len() {
                let word = u64::from_le_bytes(
                    ctrl[self.base..self.base + GROUP]
                        .try_into()
                        .expect("8-byte chunk"),
                );
                self.base += GROUP;
                // Live slots have the control high bit clear.
                let live = !word & 0x8080_8080_8080_8080;
                if live != 0 {
                    self.mask = live;
                    break;
                }
            }
            if self.mask == 0 {
                // The control array length is a multiple of GROUP, so the
                // word walk is exhaustive.
                return None;
            }
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for RawTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone, V: Clone> Clone for RawTable<K, V> {
    fn clone(&self) -> Self {
        let mut entries = uninit_entries(self.capacity());
        Self::for_each_live(&self.ctrl, |i| {
            // A panicking K/V clone leaks the already-cloned prefix (the
            // fresh box drops as uninitialized storage) — safe, and the
            // workspace's key/value clones do not panic.
            entries[i].write(unsafe { self.entry_ref(i) }.clone());
        });
        RawTable {
            ctrl: self.ctrl.clone(),
            hashes: self.hashes.clone(),
            entries,
            len: self.len,
            tombstones: self.tombstones,
            rehashes: self.rehashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash_words;

    fn h(k: u64) -> u64 {
        fx_hash_words(&[k])
    }

    /// Control words written by table clears on this thread so far.
    fn words_wiped() -> u64 {
        CTRL_WORDS_WIPED.with(|c| c.get())
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: RawTable<u64, String> = RawTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(h(1), &1), None);
        t.insert(h(1), 1, "one".into());
        t.insert(h(2), 2, "two".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(h(1), &1).map(String::as_str), Some("one"));
        assert_eq!(t.get(h(3), &3), None);
        *t.get_mut(h(2), &2).unwrap() = "TWO".into();
        assert_eq!(t.remove(h(2), &2).as_deref(), Some("TWO"));
        assert_eq!(t.remove(h(2), &2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_keeps_all_entries_and_counts_rehashes() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..10_000u64 {
            t.insert(h(k), k, k * 3);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.rehashes() > 0, "growth to 10k entries must rehash");
        for k in 0..10_000u64 {
            assert_eq!(t.get(h(k), &k), Some(&(k * 3)));
        }
        assert!(t.capacity().is_power_of_two());
    }

    #[test]
    fn small_tables_start_tiny_and_grow() {
        // The first insert allocates MIN_CAP slots, not a full group: a
        // singleton relation costs a right-sized few dozen bytes.
        let mut t: RawTable<u64, u64> = RawTable::new();
        assert_eq!(t.allocated_bytes(), 0);
        t.insert(h(7), 7, 7);
        assert_eq!(t.capacity(), MIN_CAP);
        let singleton_bytes = t.allocated_bytes();
        assert!(
            singleton_bytes <= GROUP + MIN_CAP * (8 + std::mem::size_of::<(u64, u64)>()),
            "singleton table too large: {singleton_bytes} bytes"
        );
        // Sub-group capacities stay probe-able and grow through 4 to 8.
        for k in 0..20u64 {
            match t.probe(h(k), |key, _| *key == k) {
                Probe::Found(idx) => *t.value_at_mut(idx) += 1,
                Probe::Vacant(idx) => t.occupy(idx, h(k), k, k),
            }
        }
        assert_eq!(t.len(), 20);
        for k in 0..20u64 {
            assert!(t.get(h(k), &k).is_some(), "key {k} lost across sub-group growth");
        }
        assert!(t.capacity() >= 20);
    }

    #[test]
    fn allocated_bytes_tracks_capacity() {
        let t: RawTable<u64, u64> = RawTable::with_capacity(100);
        let cap = t.capacity();
        assert_eq!(
            t.allocated_bytes(),
            cap.max(GROUP) + cap * 8 + cap * std::mem::size_of::<(u64, u64)>()
        );
    }

    #[test]
    fn drain_into_empties_but_keeps_capacity() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..100 {
            t.insert(h(k), k, k);
        }
        let cap = t.capacity();
        let mut out = Vec::new();
        t.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        // Drained entries carry their stored hash.
        assert!(out.iter().all(|(hash, k, _)| *hash == h(*k)));
        t.insert(h(7), 7, 7);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retain_and_clear() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..50 {
            t.insert(h(k), k, k);
        }
        t.retain(|k, _| k % 2 == 0);
        assert_eq!(t.len(), 25);
        assert_eq!(t.get(h(3), &3), None);
        assert_eq!(t.get(h(4), &4), Some(&4));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn sparse_clear_writes_only_dirty_ctrl_words() {
        // The pooled-scratch shape: a large-capacity table holding a
        // handful of entries.  Clearing it must rewrite only the control
        // words those entries dirtied, not the whole control array.
        let mut t: RawTable<u64, u64> = RawTable::with_capacity(4096);
        let total_words = (t.capacity() / GROUP) as u64;
        for k in 0..4u64 {
            t.insert(h(k), k, k);
        }
        let before = words_wiped();
        t.clear();
        let wiped = words_wiped() - before;
        assert!(t.is_empty());
        assert!(
            wiped <= 4,
            "sparse clear rewrote {wiped} control words for 4 entries"
        );
        assert!(wiped >= 1, "a dirty table must wipe at least one word");
        assert!(wiped < total_words, "sparse clear must not touch every word");

        // A clean table's clear is O(1): no words written at all.
        let before = words_wiped();
        t.clear();
        assert_eq!(words_wiped() - before, 0, "clean clear must be a no-op");

        // A dense table takes the bulk fill (all words, one pass).
        let mut dense: RawTable<u64, u64> = RawTable::new();
        for k in 0..1000u64 {
            dense.insert(h(k), k, k);
        }
        let dense_words = (dense.capacity().max(GROUP) / GROUP) as u64;
        let before = words_wiped();
        dense.clear();
        assert_eq!(words_wiped() - before, dense_words);

        // drain_into takes the same sparse path.
        let mut t: RawTable<u64, u64> = RawTable::with_capacity(4096);
        for k in 0..4u64 {
            t.insert(h(k), k, k);
        }
        let mut out = Vec::new();
        let before = words_wiped();
        t.drain_into(&mut out);
        assert_eq!(out.len(), 4);
        assert!(
            words_wiped() - before <= 4,
            "sparse drain rewrote too many control words"
        );
    }

    #[test]
    fn probe_occupy_upsert_in_one_walk() {
        let mut t: RawTable<u64, u64> = RawTable::new();
        for k in 0..200u64 {
            match t.probe(h(k), |key, _| *key == k) {
                Probe::Found(_) => panic!("fresh key reported found"),
                Probe::Vacant(idx) => t.occupy(idx, h(k), k, k * 2),
            }
        }
        assert_eq!(t.len(), 200);
        for k in 0..200u64 {
            match t.probe(h(k), |key, _| *key == k) {
                Probe::Found(idx) => {
                    assert_eq!(t.at(idx), (&k, &(k * 2)));
                    *t.value_at_mut(idx) += 1;
                }
                Probe::Vacant(_) => panic!("stored key reported vacant"),
            }
        }
        assert_eq!(t.get(h(9), &9), Some(&19));
        // remove_at via probe, then the tombstone is reused by occupy.
        let Probe::Found(idx) = t.probe(h(9), |key, _| *key == 9) else {
            panic!("expected hit");
        };
        assert_eq!(t.remove_at(idx), Some((9, 19)));
        assert_eq!(t.get(h(9), &9), None);
        let Probe::Vacant(idx) = t.probe(h(9), |key, _| *key == 9) else {
            panic!("expected vacancy");
        };
        t.occupy(idx, h(9), 9, 0);
        assert_eq!(t.get(h(9), &9), Some(&0));
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn find_idx_is_stable_between_mutations() {
        let mut t: RawTable<u64, u64> = RawTable::with_capacity(64);
        for k in 0..20 {
            t.insert(h(k), k, k);
        }
        let idx = t.find_idx(h(11), |k, _| *k == 11).unwrap();
        assert_eq!(t.at(idx), (&11, &11));
        *t.value_at_mut(idx) = 99;
        assert_eq!(t.get(h(11), &11), Some(&99));
    }

    #[test]
    fn drop_and_clone_handle_owned_entries() {
        // Drop-heavy keys and values (boxed slices, strings) across clone,
        // retain, clear and plain drop — miri-style churn for the unsafe
        // storage; the full drop-count accounting lives in
        // `tests/rawtable_differential.rs`.
        let mut t: RawTable<Box<[u64]>, String> = RawTable::new();
        for k in 0..64u64 {
            t.insert(h(k), vec![k, k + 1].into_boxed_slice(), format!("v{k}"));
        }
        let c = t.clone();
        assert_eq!(c.len(), 64);
        for k in 0..64u64 {
            let key: Box<[u64]> = vec![k, k + 1].into_boxed_slice();
            assert_eq!(c.get(h(k), &key).map(String::as_str), Some(&*format!("v{k}")));
        }
        t.retain(|k, _| k[0] % 2 == 0);
        assert_eq!(t.len(), 32);
        t.clear();
        assert!(t.is_empty());
        drop(c);
    }
}
