#![deny(unsafe_code)]
//! Shared primitives used across the F-IVM workspace.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! crate relies on:
//!
//! * [`Value`] — the dynamically typed attribute value stored in tuples and
//!   used as (parts of) keys in materialized views,
//! * [`OrdF64`] — a total-order, hashable wrapper around `f64` so continuous
//!   values can participate in keys,
//! * [`FxHashMap`]/[`FxHashSet`] — hash containers using a fast,
//!   non-cryptographic hash (an FxHash-style mixer) suitable for the short
//!   integer-heavy keys that dominate view maintenance,
//! * [`Dict`]/[`EncodedKey`] — dictionary encoding of values into
//!   fixed-width `u64` keys with `O(words)` hash/equality (the probe-path
//!   key representation),
//! * [`RawTable`] — an open-addressing hash table keyed by precomputed
//!   hashes, so a key is hashed once and the hash reused across the
//!   primary map, every secondary index and the delta accumulators,
//! * [`FivmError`] — the error type shared by the query compiler and engine,
//! * [`wire`] — bounds-checked binary (de)serialization primitives used by
//!   the durability layer (`fivm_cdc`): little-endian scalars plus the wire
//!   forms of [`Dict`], [`EncodedValue`], [`EncodedKey`] and [`Value`].

pub mod dict;
pub mod error;
pub mod hash;
pub mod kind;
pub mod table;
pub mod value;
pub mod wire;

pub use dict::{Dict, EncodedKey, EncodedValue};
pub use error::{FivmError, Result};
pub use hash::{fx_hash_words, new_map, new_set, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kind::AttrKind;
pub use table::{Probe, RawTable};
pub use value::{OrdF64, Value};
pub use wire::{WireError, WireReader, WireResult};

/// Identifier of a query variable (attribute) inside a compiled query.
///
/// Variables are numbered densely from zero in the order they are declared in
/// the [`fivm-query`] query specification; all crates use this index to refer
/// to attributes without carrying strings around.
pub type VarId = usize;

/// Identifier of a base relation inside a compiled query.
pub type RelId = usize;
