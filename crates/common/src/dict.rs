//! Dictionary encoding of [`Value`]s into fixed-width keys.
//!
//! View maintenance is dominated by hash-map probes over short tuples of
//! dynamically typed [`Value`]s.  Hashing and comparing boxed `Value` slices
//! touches one heap allocation per key, matches an enum discriminant per
//! column, and bumps `Arc<str>` reference counts for string columns — all of
//! it memory traffic the probe working set cannot afford.  This module
//! encodes every key once, at ingestion, into an [`EncodedKey`]: a flat
//! sequence of `u64` words with `O(words)` hash/equality and no pointer
//! chasing for short keys.  Keys are decoded back into `Value`s only at
//! output boundaries (results, view listings, display).
//!
//! Layout of an encoded key of arity `n`:
//!
//! * `ceil(n / 16)` *tag words*, packing one 4-bit type tag per column
//!   (`Null`, `Int`, `Double`, `Str`), followed by
//! * `n` *payload words*, one per column: the integer bits, the canonical
//!   [`OrdF64`] float bits, or the [`Dict`] id of an interned string.
//!
//! Keys whose words fit [`INLINE_WORDS`] are stored inline (no heap);
//! longer keys spill to one boxed slice.  The encoding is injective given a
//! fixed dictionary, so word-wise equality coincides with `Value`-wise
//! equality, and two encodings of the same tuple are bit-identical
//! (`OrdF64` canonicalizes `-0.0`/NaN before the bits are taken).
//!
//! [`Dict`] is the per-database string interner: it assigns dense `u32` ids
//! to distinct strings, in first-seen order.  Encoding interns; probing a
//! dictionary for a string it has never seen means the probed key cannot be
//! present in any view built from that dictionary ([`Dict::try_encode_key`]
//! returns `None`).

use crate::hash::{fx_hash_words, FxHashMap};
use crate::value::{OrdF64, Value};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Type tag of an encoded column (4 bits in the key's tag words).
pub(crate) const TAG_NULL: u8 = 0;
pub(crate) const TAG_INT: u8 = 1;
pub(crate) const TAG_DOUBLE: u8 = 2;
pub(crate) const TAG_STR: u8 = 3;

/// Byte budget of an inline [`EncodedKey`]: one cache line.  The spill
/// threshold below is *derived* from this budget so the unit the tuning
/// actually cares about — bytes per key copy, bytes per table slot — is
/// the one written down (the memory contract in ROADMAP.md).
pub const KEY_INLINE_BYTES: usize = 64;

/// Number of `u64` words an [`EncodedKey`] stores without heap allocation:
/// the words that fit [`KEY_INLINE_BYTES`] next to the arity byte and the
/// inline/spilled discriminant (16 bytes of header, padding included).
///
/// One tag word plus five payload words covers every key of arity ≤ 5 —
/// wider than any view key of the paper's workloads.
pub const INLINE_WORDS: usize = (KEY_INLINE_BYTES - 16) / 8;

/// A single dictionary-encoded value: a 4-bit type tag plus a 64-bit
/// payload word.  `Copy`, so assignments and key gathering are plain word
/// moves with no refcount traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EncodedValue {
    /// Type tag (`Null`/`Int`/`Double`/`Str`).
    pub tag: u8,
    /// Payload bits (integer, canonical float bits, or string id).
    pub word: u64,
}

impl EncodedValue {
    /// The encoding of [`Value::Null`] (also a safe "unbound" filler).
    pub const NULL: EncodedValue = EncodedValue { tag: TAG_NULL, word: 0 };

    /// Encodes an integer.  Integers (and doubles) encode independently of
    /// any dictionary, so ring code can build int-keyed entries without a
    /// dict handle.
    #[inline]
    pub const fn int(x: i64) -> EncodedValue {
        EncodedValue {
            tag: TAG_INT,
            word: x as u64,
        }
    }

    /// Encodes a double (canonical [`OrdF64`] bits, so `-0.0` and every NaN
    /// payload collapse exactly like [`Dict::encode_value`] does).
    #[inline]
    pub fn double(x: f64) -> EncodedValue {
        EncodedValue {
            tag: TAG_DOUBLE,
            word: OrdF64::new(x).canonical_bits(),
        }
    }

    /// Whether this value is a dictionary-local string id.  Strings are the
    /// only encoding that cannot cross dictionaries; everything else is
    /// self-contained.
    #[inline]
    pub const fn is_str(self) -> bool {
        self.tag == TAG_STR
    }

    /// Whether this value encodes [`Value::Null`].
    #[inline]
    pub const fn is_null(self) -> bool {
        self.tag == TAG_NULL
    }

    /// The numeric interpretation used by continuous lifts, mirroring
    /// [`Value::as_f64`]: integers widen, NULL is `0.0`, strings have no
    /// numeric value.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self.tag {
            TAG_NULL => Some(0.0),
            TAG_INT => Some(self.word as i64 as f64),
            TAG_DOUBLE => Some(f64::from_bits(self.word)),
            _ => None,
        }
    }

    /// Decodes a non-string value without a dictionary (`None` for string
    /// ids, which are dictionary-local).
    #[inline]
    pub fn decode_dictless(self) -> Option<Value> {
        match self.tag {
            TAG_NULL => Some(Value::Null),
            TAG_INT => Some(Value::Int(self.word as i64)),
            TAG_DOUBLE => Some(Value::Double(OrdF64::new(f64::from_bits(self.word)))),
            _ => None,
        }
    }
}

#[inline]
fn tag_words(arity: usize) -> usize {
    arity.div_ceil(16)
}

#[inline]
fn num_words(arity: usize) -> usize {
    tag_words(arity) + arity
}

/// Word storage of an [`EncodedKey`]: inline for short keys, boxed beyond
/// [`INLINE_WORDS`].  The variant is a deterministic function of the arity,
/// so equal keys always share a representation.
#[derive(Clone)]
enum KeyWords {
    Inline([u64; INLINE_WORDS]),
    Spilled(Box<[u64]>),
}

/// A dictionary-encoded key: a tuple of [`Value`]s flattened into tagged
/// `u64` words (see the module docs for the layout).
///
/// Hashing and equality are word-wise — `O(words)` with no allocation, no
/// branches per value type and no `Arc` traffic.  The engine computes
/// [`EncodedKey::fx_hash`] exactly once per key per propagation level and
/// hands the `(hash, key)` pair to [`crate::table::RawTable`].
#[derive(Clone)]
pub struct EncodedKey {
    arity: u8,
    words: KeyWords,
}

impl EncodedKey {
    /// Builds a key of the given arity, reading column `i` from `col(i)`
    /// (the zero-copy constructor behind every gather/projection).
    #[inline]
    pub fn from_fn(arity: usize, col: impl FnMut(usize) -> EncodedValue) -> EncodedKey {
        EncodedKey::build(arity, col)
    }

    /// Builds a key of the given arity, reading column `i` from `col(i)`.
    #[inline]
    fn build(arity: usize, mut col: impl FnMut(usize) -> EncodedValue) -> EncodedKey {
        assert!(arity <= u8::MAX as usize, "key arity {arity} exceeds 255");
        let nw = num_words(arity);
        let tw = tag_words(arity);
        let mut fill = |words: &mut [u64]| {
            for i in 0..arity {
                let ev = col(i);
                words[i >> 4] |= u64::from(ev.tag) << ((i & 15) * 4);
                words[tw + i] = ev.word;
            }
        };
        let words = if nw <= INLINE_WORDS {
            let mut w = [0u64; INLINE_WORDS];
            fill(&mut w);
            KeyWords::Inline(w)
        } else {
            let mut w = vec![0u64; nw];
            fill(&mut w);
            KeyWords::Spilled(w.into_boxed_slice())
        };
        EncodedKey {
            arity: arity as u8,
            words,
        }
    }

    /// The empty key (arity 0) — the key of every fully marginalized view.
    #[inline]
    pub fn empty() -> EncodedKey {
        EncodedKey::build(0, |_| EncodedValue::NULL)
    }

    /// Builds a key from already-encoded values.
    #[inline]
    pub fn from_values(values: &[EncodedValue]) -> EncodedKey {
        EncodedKey::build(values.len(), |i| values[i])
    }

    /// Builds a key by gathering `positions` out of an assignment of
    /// encoded values.  Copy-only: no allocation for inline-sized keys.
    #[inline]
    pub fn gather(assignment: &[EncodedValue], positions: &[usize]) -> EncodedKey {
        EncodedKey::build(positions.len(), |i| assignment[positions[i]])
    }

    /// Projects this key onto a subset of its columns (e.g. the columns of
    /// a secondary index).  Copy-only: no allocation for inline-sized keys.
    #[inline]
    pub fn project(&self, positions: &[usize]) -> EncodedKey {
        EncodedKey::build(positions.len(), |i| self.col(positions[i]))
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        usize::from(self.arity)
    }

    /// The key's words (tag words followed by payload words).
    #[inline]
    pub fn words(&self) -> &[u64] {
        let nw = num_words(usize::from(self.arity));
        match &self.words {
            KeyWords::Inline(w) => &w[..nw],
            KeyWords::Spilled(w) => w,
        }
    }

    /// The encoded value of column `i`.
    #[inline]
    pub fn col(&self, i: usize) -> EncodedValue {
        debug_assert!(i < self.arity(), "column {i} out of range");
        let words = match &self.words {
            KeyWords::Inline(w) => &w[..],
            KeyWords::Spilled(w) => w,
        };
        let tag = ((words[i >> 4] >> ((i & 15) * 4)) & 0xF) as u8;
        EncodedValue {
            tag,
            word: words[tag_words(usize::from(self.arity)) + i],
        }
    }

    /// The key's 64-bit Fx hash.  Callers are expected to compute this
    /// **once** per key and reuse it across every table that stores or
    /// probes the key (the whole point of hash-once probing).
    #[inline]
    pub fn fx_hash(&self) -> u64 {
        fx_hash_words(self.words())
    }
}

// The inline-words derivation above is only honest while the struct
// actually fits the declared byte budget; a layout change that grows the
// header must re-derive the threshold.
const _: () = assert!(std::mem::size_of::<EncodedKey>() == KEY_INLINE_BYTES);

impl PartialEq for EncodedKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.words() == other.words()
    }
}

impl Eq for EncodedKey {}

impl Hash for EncodedKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        for &w in self.words() {
            state.write_u64(w);
        }
    }
}

impl fmt::Debug for EncodedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EncodedKey(arity={}, words={:x?})", self.arity, self.words())
    }
}

/// The per-database string interner and `Value` codec.
///
/// Owns the mapping between strings and their dense `u32` ids.  One `Dict`
/// serves one engine (all views of a query share it); ids are meaningless
/// across dictionaries.
#[derive(Clone, Debug, Default)]
pub struct Dict {
    ids: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns a string, returning its id (existing id if already seen).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = u32::try_from(self.strings.len()).expect("dictionary overflow");
        self.strings.push(arc.clone());
        self.ids.insert(arc, id);
        id
    }

    /// The id of a string, if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string with the given id; panics on an id this dictionary never
    /// produced (a programming error, not data-dependent).
    pub fn resolve(&self, id: u32) -> &Arc<str> {
        &self.strings[id as usize]
    }

    /// Encodes one value, interning strings on first sight.
    #[inline]
    pub fn encode_value(&mut self, v: &Value) -> EncodedValue {
        match v {
            Value::Null => EncodedValue::NULL,
            Value::Int(x) => EncodedValue {
                tag: TAG_INT,
                word: *x as u64,
            },
            Value::Double(x) => EncodedValue {
                tag: TAG_DOUBLE,
                word: x.canonical_bits(),
            },
            Value::Str(s) => EncodedValue {
                tag: TAG_STR,
                word: u64::from(self.intern(s)),
            },
        }
    }

    /// Encodes one value without interning: returns `None` for a string the
    /// dictionary has never seen (such a value cannot be part of any stored
    /// key).
    #[inline]
    pub fn try_encode_value(&self, v: &Value) -> Option<EncodedValue> {
        Some(match v {
            Value::Null => EncodedValue::NULL,
            Value::Int(x) => EncodedValue {
                tag: TAG_INT,
                word: *x as u64,
            },
            Value::Double(x) => EncodedValue {
                tag: TAG_DOUBLE,
                word: x.canonical_bits(),
            },
            Value::Str(s) => EncodedValue {
                tag: TAG_STR,
                word: u64::from(self.lookup(s)?),
            },
        })
    }

    /// Decodes one value.  `Str` decoding clones the interned `Arc` (a
    /// refcount bump, no allocation).
    #[inline]
    pub fn decode_value(&self, ev: EncodedValue) -> Value {
        match ev.tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(ev.word as i64),
            TAG_DOUBLE => Value::Double(OrdF64::new(f64::from_bits(ev.word))),
            TAG_STR => Value::Str(self.resolve(ev.word as u32).clone()),
            t => unreachable!("corrupt encoded value tag {t}"),
        }
    }

    /// Encodes a tuple of values into a key, interning strings.
    pub fn encode_key(&mut self, values: &[Value]) -> EncodedKey {
        EncodedKey::build(values.len(), |i| self.encode_value(&values[i]))
    }

    /// Encodes a tuple without interning; `None` if any string is unknown.
    pub fn try_encode_key(&self, values: &[Value]) -> Option<EncodedKey> {
        let mut missing = false;
        let key = EncodedKey::build(values.len(), |i| {
            self.try_encode_value(&values[i]).unwrap_or_else(|| {
                missing = true;
                EncodedValue::NULL
            })
        });
        (!missing).then_some(key)
    }

    /// Re-encodes a value from this dictionary into `dst`: string ids are
    /// resolved here and re-interned there; every other encoding is
    /// dictionary-independent and passes through untouched.  This is the
    /// primitive behind moving ring-interior keys across engines (e.g.
    /// merging per-shard results), where ids from one dictionary must never
    /// be interpreted under another.
    #[inline]
    pub fn rekey_value(&self, ev: EncodedValue, dst: &mut Dict) -> EncodedValue {
        if ev.tag == TAG_STR {
            EncodedValue {
                tag: TAG_STR,
                word: u64::from(dst.intern(self.resolve(ev.word as u32))),
            }
        } else {
            ev
        }
    }

    /// Decodes a key back into owned values (an output-boundary operation).
    pub fn decode_key(&self, key: &EncodedKey) -> Box<[Value]> {
        (0..key.arity())
            .map(|i| self.decode_value(key.col(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dict: &mut Dict, values: &[Value]) {
        let key = dict.encode_key(values);
        assert_eq!(key.arity(), values.len());
        let decoded = dict.decode_key(&key);
        assert_eq!(&*decoded, values, "round trip changed the tuple");
        // Re-encoding is bit-identical and hash-identical.
        let again = dict.encode_key(values);
        assert_eq!(key, again);
        assert_eq!(key.fx_hash(), again.fx_hash());
        // try_encode agrees once all strings are interned.
        assert_eq!(dict.try_encode_key(values).as_ref(), Some(&key));
    }

    #[test]
    fn roundtrips_every_value_kind() {
        let mut d = Dict::new();
        roundtrip(&mut d, &[]);
        roundtrip(&mut d, &[Value::Null]);
        roundtrip(&mut d, &[Value::int(0), Value::int(-1), Value::int(i64::MAX), Value::int(i64::MIN)]);
        roundtrip(&mut d, &[Value::double(2.5), Value::str("red"), Value::Null, Value::int(7)]);
        roundtrip(&mut d, &[Value::str(""), Value::str("red"), Value::str("blue")]);
    }

    #[test]
    fn double_edge_cases_canonicalize_and_roundtrip() {
        let mut d = Dict::new();
        // -0.0 and 0.0 are the same key (same OrdF64), and decode to 0.0.
        let pos = d.encode_key(&[Value::double(0.0)]);
        let neg = d.encode_key(&[Value::double(-0.0)]);
        assert_eq!(pos, neg);
        assert_eq!(d.decode_key(&neg)[0], Value::double(0.0));
        // All NaN payloads collapse to one canonical key that still decodes
        // to a NaN (grouped, like OrdF64 ordering treats them).
        let nan_a = d.encode_key(&[Value::double(f64::NAN)]);
        let nan_b = d.encode_key(&[Value::double(f64::from_bits(0x7ff8_0000_0000_0001))]);
        assert_eq!(nan_a, nan_b);
        assert!(matches!(d.decode_key(&nan_a)[0], Value::Double(x) if x.get().is_nan()));
        // Infinities survive.
        roundtrip(&mut d, &[Value::double(f64::INFINITY), Value::double(f64::NEG_INFINITY)]);
    }

    #[test]
    fn null_and_zero_variants_stay_distinct() {
        // Null, Int(0), Double(0.0) and the first interned string all have
        // payload word 0 — the tags must keep them distinct keys.
        let mut d = Dict::new();
        let null = d.encode_key(&[Value::Null]);
        let int0 = d.encode_key(&[Value::int(0)]);
        let dbl0 = d.encode_key(&[Value::double(0.0)]);
        let str0 = d.encode_key(&[Value::str("s")]);
        assert_eq!(d.lookup("s"), Some(0));
        let keys = [&null, &int0, &dbl0, &str0];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a == b, i == j, "keys {i} and {j} confused");
            }
        }
        // Int(1) vs Double(1.0) also differ (different tag and bits).
        assert_ne!(d.encode_key(&[Value::int(1)]), d.encode_key(&[Value::double(1.0)]));
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let mut d = Dict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(&**d.resolve(a), "alpha");
        assert_eq!(d.lookup("gamma"), None);
        assert!(!d.is_empty());
        // try_encode of an unseen string refuses instead of interning.
        assert_eq!(d.try_encode_key(&[Value::str("gamma")]), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn spilled_keys_roundtrip_and_match_inline_semantics() {
        let mut d = Dict::new();
        // Arity 6 needs 7 words > INLINE_WORDS, forcing the spilled path.
        let values: Vec<Value> = (0..20)
            .map(|i| match i % 4 {
                0 => Value::int(i),
                1 => Value::double(i as f64 * 0.5),
                2 => Value::str(format!("s{i}")),
                _ => Value::Null,
            })
            .collect();
        roundtrip(&mut d, &values);
        let key = d.encode_key(&values);
        assert_eq!(key.words().len(), num_words(20));
        // Projection out of a spilled key gathers the right columns.
        let sub = key.project(&[19, 2, 0]);
        assert_eq!(
            &*d.decode_key(&sub),
            &[values[19].clone(), values[2].clone(), values[0].clone()]
        );
    }

    #[test]
    fn gather_and_project_agree() {
        let mut d = Dict::new();
        let values = [Value::int(4), Value::str("x"), Value::double(-3.5)];
        let key = d.encode_key(&values);
        let assignment: Vec<EncodedValue> = values.iter().map(|v| d.encode_value(v)).collect();
        let gathered = EncodedKey::gather(&assignment, &[2, 0]);
        assert_eq!(gathered, key.project(&[2, 0]));
        assert_eq!(gathered.fx_hash(), key.project(&[2, 0]).fx_hash());
        assert_eq!(EncodedKey::from_values(&assignment), key);
    }

    #[test]
    fn empty_key_is_consistent() {
        let empty = EncodedKey::empty();
        assert_eq!(empty.arity(), 0);
        assert!(empty.words().is_empty());
        assert_eq!(empty, Dict::new().encode_key(&[]));
    }
}
