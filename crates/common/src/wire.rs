//! Minimal binary (de)serialization primitives shared by the durability
//! layer: fixed-width little-endian scalars, length-prefixed byte strings,
//! and the wire forms of [`Dict`], [`EncodedValue`] and [`EncodedKey`].
//!
//! The build environment has no serde; everything here is hand-rolled, like
//! the `rand`/`criterion` shims.  The format is deliberately boring —
//! fixed-width little-endian words, `u32` length prefixes — so that
//! truncation and corruption are detected by bounds checks here and by the
//! checksum framing one layer up (`fivm_cdc::framing`), never by UB.
//!
//! # Dictionary round-trip
//!
//! [`put_dict`] writes the interned strings **in id order**;
//! [`read_dict`] re-interns them in that order into a fresh [`Dict`],
//! reproducing identical string ids.  Every dictionary-encoded word
//! serialized next to the dictionary (view keys, ring-interior keys)
//! therefore stays valid after a restore — the dictionary-local encoding
//! never has to be rewritten (the ring-key contract survives restarts).

use crate::dict::{Dict, EncodedKey, EncodedValue};
use crate::value::Value;
use std::fmt;

/// Decoding failure: the input ended early or violated the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced data (torn write, truncation).
    Truncated,
    /// The input is structurally invalid (bad tag, non-UTF-8 string,
    /// impossible length).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire decoding.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------- writers

/// Appends a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
#[inline]
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw bits — the round-trip is bit-identical, as
/// the recovery differential requires (no canonicalization on this path).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("byte string longer than u32::MAX"));
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
#[inline]
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

// ---------------------------------------------------------------- reader

/// A bounds-checked cursor over a byte slice.  Every read either returns
/// the decoded value or a typed [`WireError`]; nothing panics on bad input.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<&'a str> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }
}

// --------------------------------------------- dictionary & encoded keys

/// Writes the dictionary: string count, then every interned string in id
/// order (see the module docs for why order is the contract).
pub fn put_dict(out: &mut Vec<u8>, dict: &Dict) {
    put_u32(out, u32::try_from(dict.len()).expect("dictionary larger than u32::MAX"));
    for id in 0..dict.len() as u32 {
        put_str(out, dict.resolve(id));
    }
}

/// Reads a dictionary written by [`put_dict`] into a fresh [`Dict`] with
/// identical string ids.
pub fn read_dict(r: &mut WireReader<'_>) -> WireResult<Dict> {
    let n = r.u32()?;
    let mut dict = Dict::new();
    for expect in 0..n {
        let s = r.str()?;
        let id = dict.intern(s);
        if id != expect {
            // Duplicate string in the stream: interning would alias two ids.
            return Err(WireError::Malformed("duplicate dictionary string"));
        }
    }
    Ok(dict)
}

/// Writes a single encoded value (tag byte + payload word).
#[inline]
pub fn put_encoded_value(out: &mut Vec<u8>, ev: EncodedValue) {
    put_u8(out, ev.tag);
    put_u64(out, ev.word);
}

/// Reads an encoded value written by [`put_encoded_value`].
#[inline]
pub fn read_encoded_value(r: &mut WireReader<'_>) -> WireResult<EncodedValue> {
    let tag = r.u8()?;
    if tag > crate::dict::TAG_STR {
        return Err(WireError::Malformed("encoded value tag out of range"));
    }
    let word = r.u64()?;
    Ok(EncodedValue { tag, word })
}

/// Writes an encoded key column by column.  The column encoding (not the
/// raw words) is the wire form, so the in-memory packing is free to evolve
/// without breaking stored snapshots.
pub fn put_encoded_key(out: &mut Vec<u8>, key: &EncodedKey) {
    put_u8(out, u8::try_from(key.arity()).expect("key arity exceeds 255"));
    for i in 0..key.arity() {
        put_encoded_value(out, key.col(i));
    }
}

/// Reads an encoded key written by [`put_encoded_key`].  Rebuilding through
/// the canonical constructor reproduces the exact words — and therefore the
/// exact [`EncodedKey::fx_hash`] — of the key that was saved.
pub fn read_encoded_key(r: &mut WireReader<'_>) -> WireResult<EncodedKey> {
    let arity = r.u8()? as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        cols.push(read_encoded_value(r)?);
    }
    Ok(EncodedKey::from_values(&cols))
}

/// Writes a `Value` (changelog rows travel decoded — they are re-encoded
/// through the recovering engine's own dictionary on replay, exactly like
/// live ingestion, so changelog records are dictionary-free and portable
/// across engines).
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(x) => {
            put_u8(out, 1);
            put_i64(out, *x);
        }
        Value::Double(x) => {
            put_u8(out, 2);
            put_f64(out, x.get());
        }
        Value::Str(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
    }
}

/// Reads a `Value` written by [`put_value`].
pub fn read_value(r: &mut WireReader<'_>) -> WireResult<Value> {
    match r.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::int(r.i64()?)),
        2 => Ok(Value::double(r.f64()?)),
        3 => Ok(Value::str(r.str()?)),
        _ => Err(WireError::Malformed("value tag out of range")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "héllo");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        // Bit-identical: -0.0 stays -0.0.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 123);
        let mut r = WireReader::new(&buf[..5]);
        assert_eq!(r.u64().unwrap_err(), WireError::Truncated);
        // A length prefix announcing more data than exists is truncation too.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn dict_round_trip_preserves_ids() {
        let mut dict = Dict::new();
        let a = dict.intern("alpha");
        let b = dict.intern("βeta");
        let c = dict.intern("");
        let mut buf = Vec::new();
        put_dict(&mut buf, &dict);
        let restored = read_dict(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.lookup("alpha"), Some(a));
        assert_eq!(restored.lookup("βeta"), Some(b));
        assert_eq!(restored.lookup(""), Some(c));
    }

    #[test]
    fn encoded_key_round_trip_is_hash_identical() {
        let mut dict = Dict::new();
        let key = dict.encode_key(&[
            Value::int(17),
            Value::double(2.5),
            Value::str("x"),
            Value::Null,
        ]);
        let mut buf = Vec::new();
        put_encoded_key(&mut buf, &key);
        let restored = read_encoded_key(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(restored, key);
        assert_eq!(restored.fx_hash(), key.fx_hash());
    }

    #[test]
    fn values_round_trip() {
        for v in [
            Value::Null,
            Value::int(-5),
            Value::double(3.25),
            Value::str("store-17"),
        ] {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            assert_eq!(read_value(&mut WireReader::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn bad_tags_are_malformed() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        put_u64(&mut buf, 0);
        assert!(matches!(
            read_encoded_value(&mut WireReader::new(&buf)),
            Err(WireError::Malformed(_))
        ));
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        assert!(matches!(
            read_value(&mut WireReader::new(&buf)),
            Err(WireError::Malformed(_))
        ));
    }
}
