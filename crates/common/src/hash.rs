//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s FxHash.
//!
//! View maintenance is dominated by hash-map probes on short keys (a handful
//! of 64-bit words).  The default SipHash hasher of the standard library is
//! noticeably slower for this access pattern, and the Rust performance
//! guidance for database-style workloads recommends an Fx/FNV-style hasher.
//! We implement the ~30-line Fx mixer here rather than pulling in an extra
//! dependency.
//!
//! The hash is **not** HashDoS-resistant; F-IVM hashes trusted, internally
//! generated keys, so this is an acceptable trade-off (the same one made by
//! rustc itself).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit rotation-multiply mixer used by FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for short, trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
}

/// Hashes a slice of words with the Fx mixer — the primitive behind
/// hash-once probing: encoded keys (`crate::dict::EncodedKey`) are flat
/// word sequences, so their hash is this fold, computed once by the caller
/// and reused across every table the key touches (`crate::table::RawTable`
/// never hashes keys itself).
#[inline]
pub fn fx_hash_words(words: &[u64]) -> u64 {
    let mut hash = 0u64;
    for &w in words {
        hash = (hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    hash
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Creates an empty [`FxHashMap`].
#[inline]
pub fn new_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Creates an empty [`FxHashSet`].
#[inline]
pub fn new_set<K>() -> FxHashSet<K> {
    FxHashSet::default()
}

/// Creates an [`FxHashMap`] with at least `cap` capacity.
#[inline]
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
        assert_eq!(hash_one(&(1u32, 2u64)), hash_one(&(1u32, 2u64)));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_one(&i));
        }
        // A decent mixer should not collide on a dense integer range.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map = new_map::<u64, &str>();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.len(), 2);

        let mut set = new_set::<&str>();
        set.insert("a");
        set.insert("a");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn handles_byte_slices_of_every_tail_length() {
        // Exercise the 8/4/2/1-byte tails of `write`.
        for len in 0..=17 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let a = hash_one(&bytes);
            let b = hash_one(&bytes);
            assert_eq!(a, b);
        }
    }
}
