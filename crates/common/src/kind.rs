//! Attribute kinds.

/// Whether an attribute is continuous (participates in sums/products
/// numerically) or categorical (one-hot encoded via relational values).
///
/// The kind decides which attribute function (lift) the engine installs for
/// a feature variable: continuous attributes use numeric lifts, categorical
/// attributes use indicator-relation lifts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Numeric attribute with a continuous domain.
    Continuous,
    /// Attribute over a finite set of categories (ids, strings, ...).
    Categorical,
}

impl AttrKind {
    /// Whether the kind is [`AttrKind::Categorical`].
    pub fn is_categorical(self) -> bool {
        matches!(self, AttrKind::Categorical)
    }

    /// Whether the kind is [`AttrKind::Continuous`].
    pub fn is_continuous(self) -> bool {
        matches!(self, AttrKind::Continuous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(AttrKind::Categorical.is_categorical());
        assert!(!AttrKind::Categorical.is_continuous());
        assert!(AttrKind::Continuous.is_continuous());
    }
}
