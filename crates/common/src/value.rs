//! Dynamically typed attribute values.
//!
//! Tuples in base relations and keys of materialized views are sequences of
//! [`Value`]s.  Keys must be hashable and totally ordered, so continuous
//! values are stored via [`OrdF64`], a bit-pattern wrapper over `f64` that
//! provides `Eq`/`Ord`/`Hash` (NaNs compare equal to themselves and sort
//! last, which is sufficient for grouping).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An `f64` with total ordering and hashing, usable inside keys.
///
/// Two `OrdF64`s are equal iff their normalized bit patterns are equal
/// (`-0.0` is normalized to `0.0`, all NaNs to one canonical NaN).
#[derive(Clone, Copy)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a float, normalizing `-0.0` and NaN payloads.
    #[inline]
    pub fn new(x: f64) -> Self {
        if x == 0.0 {
            OrdF64(0.0)
        } else if x.is_nan() {
            OrdF64(f64::NAN)
        } else {
            OrdF64(x)
        }
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    #[inline]
    fn key(self) -> u64 {
        // Canonical NaN so that all NaNs hash identically.
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else {
            self.0.to_bits()
        }
    }

    /// The canonical bit pattern backing `Eq`/`Hash`: equal `OrdF64`s have
    /// equal canonical bits.  This is the payload word of the dictionary
    /// encoding (`crate::dict`).
    #[inline]
    pub fn canonical_bits(self) -> u64 {
        self.key()
    }
}

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for OrdF64 {}

impl Hash for OrdF64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match self.0.partial_cmp(&other.0) {
            Some(ord) => ord,
            // NaNs sort after everything; two NaNs are equal.
            None => match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => Ordering::Equal,
            },
        }
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(x: f64) -> Self {
        OrdF64::new(x)
    }
}

/// A dynamically typed attribute value.
///
/// Strings are reference-counted so that cloning tuples (which happens on
/// every view update) does not copy string payloads.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// Absent / SQL NULL.  Joins never match on `Null`.
    Null,
    /// 64-bit integer (also used for dictionary-encoded categories and keys).
    Int(i64),
    /// Continuous value.
    Double(OrdF64),
    /// Categorical string value.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for [`Value::Int`].
    #[inline]
    pub fn int(x: i64) -> Self {
        Value::Int(x)
    }

    /// Convenience constructor for [`Value::Double`].
    #[inline]
    pub fn double(x: f64) -> Self {
        Value::Double(OrdF64::new(x))
    }

    /// Convenience constructor for [`Value::Str`].
    #[inline]
    pub fn str<S: AsRef<str>>(s: S) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a float, for lifting continuous attributes.
    ///
    /// Integers are widened; NULL maps to `0.0`; strings map to `None`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => Some(0.0),
            Value::Int(x) => Some(*x as f64),
            Value::Double(x) => Some(x.get()),
            Value::Str(_) => None,
        }
    }

    /// Interprets the value as an integer, if it is one.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Interprets the value as a string, if it is one.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}

impl From<i32> for Value {
    fn from(x: i32) -> Self {
        Value::Int(i64::from(x))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::double(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordf64_normalizes_zero_and_nan() {
        assert_eq!(OrdF64::new(0.0), OrdF64::new(-0.0));
        assert_eq!(hash_of(&OrdF64::new(0.0)), hash_of(&OrdF64::new(-0.0)));
        assert_eq!(OrdF64::new(f64::NAN), OrdF64::new(-f64::NAN));
        assert_eq!(
            hash_of(&OrdF64::new(f64::NAN)),
            hash_of(&OrdF64::new(f64::from_bits(0x7ff8_0000_0000_0001)))
        );
    }

    #[test]
    fn ordf64_orders_like_f64_and_puts_nan_last() {
        let mut xs = [
            OrdF64::new(3.0),
            OrdF64::new(f64::NAN),
            OrdF64::new(-1.5),
            OrdF64::new(0.0),
        ];
        xs.sort();
        assert_eq!(xs[0].get(), -1.5);
        assert_eq!(xs[1].get(), 0.0);
        assert_eq!(xs[2].get(), 3.0);
        assert!(xs[3].get().is_nan());
    }

    #[test]
    fn value_constructors_and_accessors() {
        assert_eq!(Value::int(7).as_i64(), Some(7));
        assert_eq!(Value::int(7).as_f64(), Some(7.0));
        assert_eq!(Value::double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::str("abc").as_f64(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_f64(), Some(0.0));
    }

    #[test]
    fn value_equality_across_variants() {
        assert_ne!(Value::int(1), Value::double(1.0));
        assert_eq!(Value::str("x"), Value::from("x"));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::double(2.0));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::int(4).to_string(), "4");
        assert_eq!(Value::double(1.5).to_string(), "1.5");
        assert_eq!(Value::str("a").to_string(), "a");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
