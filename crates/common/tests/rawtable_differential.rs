//! Randomized differential tests: [`RawTable`] must behave exactly like
//! `std::collections::HashMap` under arbitrary interleavings of insert,
//! remove, upsert and iteration — including tombstone reuse and growth at
//! high load factors.
//!
//! (The environment has no crates.io access, so this uses a seeded RNG
//! harness instead of `proptest`; every case is deterministic and
//! reproducible from the printed seed — the same style as
//! `crates/core/tests/proptest_engine.rs`.)

use fivm_common::{fx_hash_words, Probe, RawTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn h(k: u64) -> u64 {
    fx_hash_words(&[k])
}

/// Runs `body` once per case with a per-case RNG, labelling failures with
/// the case seed.
fn for_cases(test: &str, cases: u64, body: impl Fn(&mut StdRng)) {
    for case in 0..cases {
        let seed = 0x7AB1E + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(err) = result {
            eprintln!("{test}: failing case seed = {seed}");
            std::panic::resume_unwind(err);
        }
    }
}

/// Checks that the table and the reference map hold identical contents.
fn assert_same(table: &RawTable<u64, i64>, reference: &HashMap<u64, i64>) {
    assert_eq!(table.len(), reference.len(), "length diverged");
    let mut seen = 0usize;
    for (k, v) in table.iter() {
        assert_eq!(reference.get(k), Some(v), "table entry {k} diverged");
        seen += 1;
    }
    assert_eq!(seen, reference.len(), "iteration count diverged");
    for (k, v) in reference {
        assert_eq!(table.get(h(*k), k), Some(v), "reference entry {k} missing");
    }
}

#[test]
fn random_op_sequences_match_std_hashmap() {
    for_cases("random_op_sequences_match_std_hashmap", 20, |rng| {
        let mut table: RawTable<u64, i64> = RawTable::new();
        let mut reference: HashMap<u64, i64> = HashMap::new();
        // A small key domain forces constant hit/miss/remove/reinsert mixing
        // (i.e. heavy tombstone churn and reuse).
        let domain = rng.gen_range(8..64u64);
        let ops = rng.gen_range(200..1200usize);
        for _ in 0..ops {
            let k = rng.gen_range(0..domain);
            match rng.gen_range(0..4u8) {
                // Upsert through the single-walk probe API.
                0 => {
                    let delta = rng.gen_range(-5..=5i64);
                    match table.probe(h(k), |key, _| *key == k) {
                        Probe::Found(idx) => *table.value_at_mut(idx) += delta,
                        Probe::Vacant(idx) => table.occupy(idx, h(k), k, delta),
                    }
                    *reference.entry(k).or_insert(0) += delta;
                }
                // Insert-if-absent through get + insert.
                1 => {
                    if table.get(h(k), &k).is_none() {
                        assert!(!reference.contains_key(&k));
                        table.insert(h(k), k, k as i64);
                        reference.insert(k, k as i64);
                    }
                }
                // Remove.
                2 => {
                    let removed = table.remove(h(k), &k);
                    assert_eq!(removed, reference.remove(&k), "remove({k}) diverged");
                }
                // Point lookups (hit or miss).
                _ => {
                    assert_eq!(table.get(h(k), &k), reference.get(&k));
                }
            }
        }
        assert_same(&table, &reference);

        // Retain a random predicate, then drain and compare the remains.
        let keep_mod = rng.gen_range(1..5u64);
        table.retain(|k, _| k % keep_mod == 0);
        reference.retain(|k, _| k % keep_mod == 0);
        assert_same(&table, &reference);

        let mut drained = Vec::new();
        table.drain_into(&mut drained);
        assert!(table.is_empty());
        assert_eq!(drained.len(), reference.len());
        for (hash, k, v) in &drained {
            assert_eq!(*hash, h(*k), "drained entry lost its stored hash");
            assert_eq!(reference.get(k), Some(v));
        }
    });
}

#[test]
fn growth_at_high_load_factor_keeps_every_entry() {
    for_cases("growth_at_high_load_factor", 8, |rng| {
        let n = rng.gen_range(1_000..20_000u64);
        let mut table: RawTable<u64, u64> = RawTable::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for i in 0..n {
            // Some duplicate keys, so growth interleaves with upserts.
            let k = rng.gen_range(0..n);
            match table.probe(h(k), |key, _| *key == k) {
                Probe::Found(idx) => *table.value_at_mut(idx) += i,
                Probe::Vacant(idx) => table.occupy(idx, h(k), k, i),
            }
            *reference.entry(k).or_insert(0) += i;
            // The reference starts at 0 and always adds; align the insert.
            if reference[&k] != *table.get(h(k), &k).expect("just upserted") {
                // First touch: occupy stored `i`, entry added `i` → equal;
                // any mismatch is a real divergence.
                panic!("upsert diverged for key {k} at op {i}");
            }
        }
        assert!(table.rehashes() > 0, "growing to {n} entries must rehash");
        assert!(table.capacity().is_power_of_two());
        assert!(
            table.len() * 4 <= table.capacity() * 3,
            "load factor bound violated: {} entries in {} slots",
            table.len(),
            table.capacity()
        );
        assert_eq!(table.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(table.get(h(*k), k), Some(v), "entry {k} lost across growth");
        }
    });
}

/// A key that behaves like a spilled `RelKey` (owned boxed words) and
/// counts its live instances, so leaks and double drops through the
/// table's `unsafe` storage show up as a non-zero balance (a double drop
/// would drive the counter negative or crash outright on the box).
#[derive(Debug)]
struct DropKey {
    k: u64,
    words: Box<[u64]>,
    live: std::sync::Arc<std::sync::atomic::AtomicIsize>,
}

impl DropKey {
    fn new(k: u64, live: &std::sync::Arc<std::sync::atomic::AtomicIsize>) -> DropKey {
        live.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        DropKey {
            k,
            words: vec![k, !k, k.rotate_left(7)].into_boxed_slice(),
            live: live.clone(),
        }
    }
}

impl Clone for DropKey {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        DropKey {
            k: self.k,
            words: self.words.clone(),
            live: self.live.clone(),
        }
    }
}

impl Drop for DropKey {
    fn drop(&mut self) {
        self.live.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl PartialEq for DropKey {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k && self.words == other.words
    }
}
impl Eq for DropKey {}

/// Churn-under-drop: owned keys (boxed words, like spilled `RelKey`s) and
/// `String` values through every storage transition — insert, probe/occupy,
/// remove, retain, growth and compaction rehashes, clone, clear, drain and
/// final drop.  The discriminant-free storage keeps liveness only in the
/// control bytes; this pins that no path leaks or double-drops an entry.
#[test]
fn churn_with_owned_keys_never_leaks_or_double_drops() {
    for_cases("churn_with_owned_keys", 12, |rng| {
        let live = std::sync::Arc::new(std::sync::atomic::AtomicIsize::new(0));
        let mut table: RawTable<DropKey, String> = RawTable::new();
        let mut reference: HashMap<u64, String> = HashMap::new();
        let domain = rng.gen_range(8..48u64);
        let ops = rng.gen_range(300..1500usize);
        for _ in 0..ops {
            let k = rng.gen_range(0..domain);
            match rng.gen_range(0..5u8) {
                // Upsert via probe/occupy (fresh DropKey either way; the
                // miss path hands it to the table, the hit path drops it).
                0 | 1 => {
                    let key = DropKey::new(k, &live);
                    let val = format!("v{k}");
                    match table.probe(h(k), |kk, _| *kk == key) {
                        Probe::Found(idx) => *table.value_at_mut(idx) = val.clone(),
                        Probe::Vacant(idx) => table.occupy(idx, h(k), key, val.clone()),
                    }
                    reference.insert(k, val);
                }
                // Remove (the returned entry drops here).
                2 => {
                    let key = DropKey::new(k, &live);
                    let removed = table.remove_with(h(k), |kk, _| *kk == key);
                    assert_eq!(removed.map(|(_, v)| v), reference.remove(&k));
                }
                // Point lookup.
                3 => {
                    let key = DropKey::new(k, &live);
                    assert_eq!(
                        table.find(h(k), |kk, _| *kk == key).map(|(_, v)| v),
                        reference.get(&k)
                    );
                }
                // Occasional retain sweep (drops in place).
                _ => {
                    let keep = rng.gen_range(1..4u64);
                    table.retain(|kk, _| kk.k % keep != 1);
                    reference.retain(|k, _| k % keep != 1);
                }
            }
        }
        assert_eq!(table.len(), reference.len());
        // One live DropKey per stored entry, exactly.
        assert_eq!(
            live.load(std::sync::atomic::Ordering::Relaxed),
            table.len() as isize,
            "live key count diverged from table length"
        );

        // Clone doubles the key population...
        let cloned = table.clone();
        assert_eq!(
            live.load(std::sync::atomic::Ordering::Relaxed),
            2 * table.len() as isize
        );
        // ...clear drops the clone's entries in place...
        let mut cloned = cloned;
        cloned.clear();
        assert!(cloned.is_empty());
        assert_eq!(
            live.load(std::sync::atomic::Ordering::Relaxed),
            table.len() as isize
        );
        // ...drain_into moves (not copies) ownership out of the table...
        let before_drain = table.len();
        let mut drained = Vec::new();
        table.drain_into(&mut drained);
        assert_eq!(drained.len(), before_drain);
        assert_eq!(
            live.load(std::sync::atomic::Ordering::Relaxed),
            before_drain as isize
        );
        for (hash, k, v) in &drained {
            assert_eq!(*hash, h(k.k));
            assert_eq!(reference.get(&k.k), Some(v));
        }
        // ...and dropping everything balances the books to zero.
        drop(drained);
        drop(table);
        drop(cloned);
        assert_eq!(
            live.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "leak or double drop through the raw storage"
        );
    });
}

/// Pins the load-factor pitfall as an API contract: [`RawTable::probe`]
/// reserves capacity for one insert *up front* — before it can know the
/// walk ends in [`Probe::Found`] — so a steady-state hit path that upserts
/// through `probe` rehashes the moment the table sits at the load-factor
/// boundary.  [`RawTable::find_idx`] never reserves.  Interior upserts on
/// long-lived tables (ring payload relations, view maps) must therefore
/// try `find_idx` first and fall back to `probe` only on a genuine miss —
/// the discipline of `RelValue::upsert` — while level-local delta tables
/// that grow and drain every level may use `probe` directly.  If either
/// half of this contract changes, the steady-state
/// `rehashes`/`ring_rehashes = 0` benchmark records go stale with it.
#[test]
fn find_idx_never_reserves_but_probe_reserves_even_on_hits() {
    let mut table: RawTable<u64, u64> = RawTable::new();
    // Fill to the exact load-factor boundary: the next reservation grows.
    let mut k = 0u64;
    while table.len() * 4 < table.capacity() * 3 || table.capacity() == 0 {
        table.insert(h(k), k, k);
        k += 1;
    }
    assert_eq!(
        table.len() * 4,
        table.capacity() * 3,
        "fill should stop exactly at the 3/4 boundary"
    );
    let (rehashes, capacity) = (table.rehashes(), table.capacity());

    // Hit and miss lookups through `find_idx` at the boundary: no
    // reservation, no growth, ever.
    for key in 0..2 * k {
        let found = table.find_idx(h(key), |kk, _| *kk == key);
        assert_eq!(found.is_some(), key < k);
    }
    assert_eq!(table.rehashes(), rehashes, "find_idx must never rehash");
    assert_eq!(table.capacity(), capacity, "find_idx must never reserve");

    // One `probe` on an *existing* key — a pure hit — still reserves up
    // front and therefore grows at the boundary.  This is the pitfall:
    // `probe` is an upsert primitive, not a lookup.
    match table.probe(h(0), |kk, _| *kk == 0) {
        Probe::Found(idx) => assert_eq!(*table.value_at_mut(idx), 0),
        Probe::Vacant(_) => panic!("key 0 is present"),
    }
    assert!(
        table.capacity() > capacity,
        "probe reserves up front even when the walk ends in Found"
    );
    assert!(table.rehashes() > rehashes);
    // The grown table still holds every entry.
    for key in 0..k {
        assert_eq!(table.get(h(key), &key), Some(&key));
    }
}

#[test]
fn tombstone_churn_reuses_slots_without_unbounded_growth() {
    for_cases("tombstone_churn_reuses_slots", 8, |rng| {
        let mut table: RawTable<u64, u64> = RawTable::new();
        let domain = 64u64;
        // Fill once so the capacity settles.
        for k in 0..domain {
            table.insert(h(k), k, k);
        }
        let settled = {
            // Churn a little to let compaction pick the steady-state size.
            for _ in 0..1_000 {
                let k = rng.gen_range(0..domain);
                table.remove(h(k), &k);
                table.insert(h(k), k, k);
            }
            table.capacity()
        };
        // Heavy delete/reinsert churn at fixed occupancy must never grow
        // the table: tombstones are reused or compacted away, not
        // accumulated.
        for _ in 0..20_000 {
            let k = rng.gen_range(0..domain);
            table.remove(h(k), &k);
            table.insert(h(k), k, k);
        }
        assert_eq!(table.len(), domain as usize);
        assert_eq!(
            table.capacity(),
            settled,
            "tombstone churn changed the steady-state capacity"
        );
        for k in 0..domain {
            assert_eq!(table.get(h(k), &k), Some(&k));
        }
    });
}
