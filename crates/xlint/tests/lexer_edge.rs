//! Lexer and scope-recovery edge cases: the traps a hand-rolled Rust
//! lexer must not fall into — nested block comments, raw strings whose
//! *contents* look like violations, lifetime ticks vs char literals, and
//! `#[cfg(test)]` span detection.

use fivm_xlint::lexer::{lex, TokKind};
use fivm_xlint::scopes;
use fivm_xlint::lint_source;

#[test]
fn nested_block_comments_are_one_comment() {
    let src = "/* outer /* inner */ still a comment */ fn after() {}";
    let lexed = lex(src);
    // Everything up to the real `fn` is comment, not tokens.
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.toks[0].is_ident("fn"), "first token: {:?}", lexed.toks[0]);
    assert!(lexed.comments[0].text.contains("inner"));
}

#[test]
fn unterminated_nesting_swallows_the_rest() {
    // `/* /* */` leaves one level open — the rest of the file is comment.
    let src = "/* outer /* inner */ fn not_code() { unsafe {} }";
    let lexed = lex(src);
    assert!(lexed.toks.is_empty(), "tokens leaked: {:?}", lexed.toks);
}

#[test]
fn raw_strings_hide_violations_from_the_rules() {
    // The string *contents* mention unsafe and a reserving probe; neither
    // may fire, and the `"#` terminator must be matched by hash count.
    let src = r####"
pub fn doc() -> &'static str {
    r#"unsafe { table.probe(h, eq) } and "quotes" too"#
}
"####;
    let lexed = lex(src);
    let strs: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("unsafe"));
    assert!(lint_source("crates/ring/src/fixture.rs", src).is_empty());
}

#[test]
fn byte_and_raw_byte_strings_lex_as_strings() {
    let src = r####"const A: &[u8] = b"unsafe"; const B: &[u8] = br#"probe("#;"####;
    let lexed = lex(src);
    let strs = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .count();
    assert_eq!(strs, 2);
    assert!(!lexed.toks.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let u = '\\u{1F600}'; }";
    let lexed = lex(src);
    let lifetimes = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .count();
    let chars = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .count();
    assert_eq!(lifetimes, 2, "two uses of 'a: {:?}", lexed.toks);
    assert_eq!(chars, 3, "'x', '\\n', '\\u{{…}}': {:?}", lexed.toks);
}

#[test]
fn string_escapes_do_not_end_the_string_early() {
    let src = r#"let s = "he said \"unsafe\" twice"; fn g() {}"#;
    let lexed = lex(src);
    assert!(lexed.toks.iter().any(|t| t.is_ident("g")));
    assert!(!lexed.toks.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn line_comments_track_their_line_numbers() {
    let src = "fn a() {}\n// note one\nfn b() {}\n/// doc\nfn c() {}\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert_eq!(lexed.comments[0].line, 2);
    assert_eq!(lexed.comments[1].line, 4);
}

#[test]
fn cfg_test_modules_are_detected() {
    let src = r#"
pub fn real(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper() {
        real(None).unwrap();
    }
}
"#;
    let lexed = lex(src);
    let sc = scopes::scan(&lexed.toks);
    // The unwrap inside the test module is in-test; `real`'s body is not.
    let unwrap_or_idx = lexed
        .toks
        .iter()
        .position(|t| t.is_ident("unwrap_or"))
        .expect("unwrap_or token");
    assert!(!sc.in_test(unwrap_or_idx), "unwrap_or in real code");
    let test_unwrap = lexed
        .toks
        .iter()
        .rposition(|t| t.is_ident("unwrap"))
        .expect("test unwrap token");
    assert!(sc.in_test(test_unwrap), "unwrap in #[cfg(test)] mod");
}

#[test]
fn cfg_test_fns_without_modules_are_detected() {
    let src = r#"
#[cfg(test)]
pub fn fixture_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert!(lint_source("crates/cdc/src/fixture.rs", src).is_empty());
}

#[test]
fn visibility_is_recovered_for_no_panic() {
    // pub(crate) is Scoped, not Pub — the no-panic rule only bites on
    // exactly-`pub` fns.
    let src = r#"
pub(crate) fn internal(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert!(lint_source("crates/core/src/fixture.rs", src).is_empty());
}
