// Fixture: byte-denominated thresholds, as the memory contract requires.
pub const FLUSH_THRESHOLD_BYTES: usize = 4096 * 64;
pub const SPILL_LIMIT_BYTES: usize = 64 << 20;
