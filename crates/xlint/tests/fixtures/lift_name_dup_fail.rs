// Fixture: two LiftFn constructors sharing one name literal — the DAG
// fingerprint contract requires equal names ⟺ equal behavior.
pub fn weight_lift() -> LiftFn<Scalar> {
    LiftFn::new("weight", |v| Scalar::from(v))
}

pub fn other_weight_lift() -> LiftFn<Scalar> {
    LiftFn::new("weight", |v| Scalar::from(v * 2.0))
}
