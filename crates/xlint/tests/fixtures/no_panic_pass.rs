// Fixture: the public surface returns typed errors; unwraps live only in
// private helpers and test code, which the rule exempts.
pub fn submit(queue: &Queue, item: Item) -> Result<Ticket, CdcError> {
    let slot = queue.reserve().ok_or(CdcError::Full)?;
    slot.fill(item)?;
    Ok(slot.ticket())
}

fn private_helper(queue: &Queue) -> Ticket {
    queue.reserve().unwrap().ticket()
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        let q = Queue::new();
        submit(&q, Item::default()).unwrap();
    }
}
