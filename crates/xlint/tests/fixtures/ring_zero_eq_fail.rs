// Fixture: `==` against ring zero — misses -0.0/NaN and representation
// differences in float-carrying payloads.
pub fn prune(acc: &Elem) -> bool {
    if *acc == Elem::zero() {
        return true;
    }
    Elem::zero() != *acc
}
