// Fixture: `is_zero()` is the sanctioned zero test; constructing a zero
// without comparing it is also fine.
pub fn prune(acc: &Elem) -> bool {
    let _fresh = Elem::zero();
    acc.is_zero()
}
