// Fixture: `unsafe` in ordinary engine code (virtual path puts this in
// crates/ring) — the memory contract confines unsafe to table.rs.
pub fn peek(values: &[u64], idx: usize) -> u64 {
    unsafe { *values.get_unchecked(idx) }
}
