// Fixture: distinct lift names — one constructor per behavior.
pub fn weight_lift() -> LiftFn<Scalar> {
    LiftFn::new("weight", |v| Scalar::from(v))
}

pub fn double_weight_lift() -> LiftFn<Scalar> {
    LiftFn::new("weight_x2", |v| Scalar::from(v * 2.0))
}
