// Fixture: the same unsafe code is sanctioned when the file *is*
// crates/common/src/table.rs (the one allowed unsafe module).
pub fn peek(values: &[u64], idx: usize) -> u64 {
    unsafe { *values.get_unchecked(idx) }
}
