// Fixture: malformed waivers — no justification, and an unknown rule.
// xlint:allow(byte-units)
pub const LEGACY_CAP_SLOTS: usize = 128;

// xlint:allow(made-up-rule): sounds plausible
pub fn nothing() {}
