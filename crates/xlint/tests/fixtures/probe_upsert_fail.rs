// Fixture: a reserving probe with no find_idx hit path anywhere in the
// same function — on a long-lived table this can rehash on a hit.
pub fn accumulate(table: &mut RawTable<Key, V>, hash: u64, key: Key, v: V) {
    match table.probe(hash, |k, _| *k == key) {
        Probe::Found(idx) => table.value_at_mut(idx).add(v),
        Probe::Vacant(idx) => table.occupy(idx, hash, key, v),
    }
}
