// Fixture: unwrap/expect/panic! on a public fn of a no-panic path
// (virtual path puts this in crates/cdc/src/).
pub fn submit(queue: &Queue, item: Item) -> Ticket {
    let slot = queue.reserve().unwrap();
    slot.fill(item).expect("fill reserved slot");
    if slot.is_poisoned() {
        panic!("poisoned slot");
    }
    slot.ticket()
}
