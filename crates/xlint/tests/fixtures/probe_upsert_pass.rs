// Fixture: the find_idx-first discipline — hit path checked without
// reserving, probe only on a confirmed miss.
pub fn accumulate(table: &mut RawTable<Key, V>, hash: u64, key: Key, v: V) {
    if let Some(idx) = table.find_idx(hash, |k, _| *k == key) {
        table.value_at_mut(idx).add(v);
        return;
    }
    match table.probe(hash, |k, _| *k == key) {
        Probe::Found(_) => unreachable!("key was just absent"),
        Probe::Vacant(idx) => table.occupy(idx, hash, key, v),
    }
}
