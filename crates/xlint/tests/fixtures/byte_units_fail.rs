// Fixture: a slot-denominated threshold constant — the memory contract
// requires byte-denominated limits so they survive payload-size changes.
pub const FLUSH_THRESHOLD_SLOTS: usize = 4096;
pub const SPILL_LIMIT_ENTRIES: usize = 1 << 20;
