// Fixture: the guard's block ends before the ring op runs — no overlap,
// no deadlock window.
pub fn good(ctx: &RingCtx, a: &Elem, b: &Elem, dst: &mut Elem) {
    {
        let guard = ctx.dict.lock();
        let _ = guard.len();
    }
    a.mul_into(b, dst);
}
