// Fixture: a ring op while the dict lock guard is live — the PR 4
// deadlock rule (ring ops may take the dictionary lock themselves).
pub fn bad(ctx: &RingCtx, a: &Elem, b: &Elem, dst: &mut Elem) {
    let guard = ctx.dict.lock();
    a.mul_into(b, dst);
    drop(guard);
}
