// Fixture: a well-formed waiver — rule in parentheses, written
// justification after the colon. The waived finding disappears and the
// waiver itself is clean.
// xlint:allow(byte-units): legacy constant kept verbatim so the MEM ablation stays comparable across releases; the byte-denominated twin lives beside it.
pub const LEGACY_CAP_SLOTS: usize = 128;
