//! Fixture-driven rule tests: every rule has at least one failing and
//! one passing fixture under `tests/fixtures/` (a directory the
//! workspace walker skips, so the failing fixtures never trip the real
//! lint). Fixtures are linted under *virtual* paths because several
//! rules are path-scoped.

use fivm_xlint::lint_source;

/// Rule names hit by linting `src` as if it lived at `rel`.
fn rules_hit(rel: &str, src: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_source(rel, src)
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

fn assert_fires(rule: &str, rel: &str, src: &str) {
    let hit = rules_hit(rel, src);
    assert!(
        hit.iter().any(|r| r == rule),
        "expected `{rule}` to fire for {rel}, got {hit:?}"
    );
}

fn assert_clean(rel: &str, src: &str) {
    let findings = lint_source(rel, src);
    assert!(
        findings.is_empty(),
        "expected no findings for {rel}, got {findings:?}"
    );
}

#[test]
fn unsafe_boundary_fires_outside_table_rs() {
    assert_fires(
        "unsafe-boundary",
        "crates/ring/src/fixture.rs",
        include_str!("fixtures/unsafe_boundary_fail.rs"),
    );
}

#[test]
fn unsafe_boundary_sanctions_table_rs() {
    assert_clean(
        "crates/common/src/table.rs",
        include_str!("fixtures/unsafe_boundary_pass.rs"),
    );
}

#[test]
fn probe_upsert_fires_without_find_idx() {
    assert_fires(
        "probe-upsert",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/probe_upsert_fail.rs"),
    );
}

#[test]
fn probe_upsert_accepts_find_idx_first() {
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/probe_upsert_pass.rs"),
    );
}

#[test]
fn dict_lock_fires_on_ring_op_under_guard() {
    assert_fires(
        "dict-lock",
        "crates/ring/src/fixture.rs",
        include_str!("fixtures/dict_lock_fail.rs"),
    );
}

#[test]
fn dict_lock_accepts_scoped_guard() {
    assert_clean(
        "crates/ring/src/fixture.rs",
        include_str!("fixtures/dict_lock_pass.rs"),
    );
}

#[test]
fn byte_units_fires_on_slot_constants() {
    let findings = lint_source(
        "crates/common/src/fixture.rs",
        include_str!("fixtures/byte_units_fail.rs"),
    );
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "byte-units").collect();
    assert_eq!(hits.len(), 2, "both *_SLOTS and *_ENTRIES flagged: {findings:?}");
}

#[test]
fn byte_units_accepts_byte_constants() {
    assert_clean(
        "crates/common/src/fixture.rs",
        include_str!("fixtures/byte_units_pass.rs"),
    );
}

#[test]
fn no_panic_fires_on_public_cdc_surface() {
    let findings = lint_source(
        "crates/cdc/src/fixture.rs",
        include_str!("fixtures/no_panic_fail.rs"),
    );
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "no-panic").collect();
    assert_eq!(hits.len(), 3, "unwrap + expect + panic! all flagged: {findings:?}");
}

#[test]
fn no_panic_exempts_private_fns_and_tests() {
    assert_clean(
        "crates/cdc/src/fixture.rs",
        include_str!("fixtures/no_panic_pass.rs"),
    );
}

#[test]
fn no_panic_is_path_scoped() {
    // The very source that fails in crates/cdc is fine in crates/bench.
    assert_clean(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/no_panic_fail.rs"),
    );
}

#[test]
fn lift_name_dup_fires_within_a_file() {
    assert_fires(
        "lift-name-dup",
        "crates/ml/src/fixture.rs",
        include_str!("fixtures/lift_name_dup_fail.rs"),
    );
}

#[test]
fn lift_name_dup_accepts_distinct_names() {
    assert_clean(
        "crates/ml/src/fixture.rs",
        include_str!("fixtures/lift_name_dup_pass.rs"),
    );
}

#[test]
fn ring_zero_eq_fires_on_both_operand_orders() {
    let findings = lint_source(
        "crates/ring/src/fixture.rs",
        include_str!("fixtures/ring_zero_eq_fail.rs"),
    );
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "ring-zero-eq").collect();
    assert_eq!(hits.len(), 2, "`x == zero()` and `zero() != x`: {findings:?}");
}

#[test]
fn ring_zero_eq_accepts_is_zero() {
    assert_clean(
        "crates/ring/src/fixture.rs",
        include_str!("fixtures/ring_zero_eq_pass.rs"),
    );
}

#[test]
fn waiver_format_fires_on_missing_justification_and_unknown_rule() {
    let findings = lint_source(
        "crates/common/src/fixture.rs",
        include_str!("fixtures/waiver_format_fail.rs"),
    );
    let fmt: Vec<_> = findings.iter().filter(|f| f.rule == "waiver-format").collect();
    assert_eq!(fmt.len(), 2, "bare waiver + unknown rule: {findings:?}");
    // The justification-less waiver does NOT suppress the byte-units
    // finding it sits above.
    assert!(
        findings.iter().any(|f| f.rule == "byte-units"),
        "malformed waiver must not waive: {findings:?}"
    );
}

#[test]
fn well_formed_waiver_suppresses_and_is_clean() {
    assert_clean(
        "crates/common/src/fixture.rs",
        include_str!("fixtures/waiver_format_pass.rs"),
    );
}

#[test]
fn fn_scoped_waiver_covers_the_whole_function() {
    // probe-upsert is a function-property rule: the waiver sits at the
    // top of the fn, the probe several lines below.
    let src = r#"
pub fn accumulate(table: &mut RawTable<Key, V>, hash: u64, key: Key, v: V) {
    // xlint:allow(probe-upsert): level-local delta table — every lookup may insert.
    let other_work = v.weight();
    match table.probe(hash, |k, _| *k == key) {
        Probe::Found(idx) => table.value_at_mut(idx).add(other_work),
        Probe::Vacant(idx) => table.occupy(idx, hash, key, v),
    }
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
}

#[test]
fn file_wide_waiver_covers_every_site() {
    let src = r#"
// xlint:allow-file(unsafe-boundary): diagnostic allocator shim; not engine code.
pub fn a() { unsafe { hook() } }
pub fn b() { unsafe { hook() } }
"#;
    assert_clean("crates/bench/src/bin/fixture.rs", src);
}

#[test]
fn line_waiver_does_not_leak_to_distant_lines() {
    // ring-zero-eq is NOT fn-scoped: a waiver on one comparison leaves a
    // later one flagged.
    let src = r#"
pub fn f(a: &Elem, b: &Elem) -> bool {
    // xlint:allow(ring-zero-eq): comparing a freshly-constructed canonical zero.
    let first = *a == Elem::zero();
    let second = *b == Elem::zero();
    first && second
}
"#;
    let findings = lint_source("crates/ring/src/fixture.rs", src);
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "ring-zero-eq").collect();
    assert_eq!(hits.len(), 1, "only the annotated line is waived: {findings:?}");
}
