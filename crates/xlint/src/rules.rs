//! The contract rules. Each rule enforces one load-bearing invariant
//! from ROADMAP.md's "Contracts and notes" (see the static-analysis
//! contract section there for the rule ↔ contract mapping and the
//! waiver policy).

use crate::lexer::{self, Comment, Tok, TokKind};
use crate::scopes::{self, Scopes, Vis};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

/// Every rule name, for waiver validation.
pub const RULES: &[&str] = &[
    "unsafe-boundary",
    "probe-upsert",
    "dict-lock",
    "byte-units",
    "no-panic",
    "lift-name-dup",
    "ring-zero-eq",
    "waiver-format",
];

/// Rules whose waivers apply to the whole enclosing function rather than
/// a single line (they describe a property of the function body).
const FN_SCOPED_RULES: &[&str] = &["probe-upsert", "no-panic"];

/// Ring-op / lift entry points that must not be called while a
/// `RingCtx`/`Dict` lock guard is live in the same scope (the PR 4
/// deadlock rule: these may take the dictionary lock themselves).
/// `group_row` and `rekey` are deliberately absent — both take
/// `&mut Dict` and are the sanctioned way to work *under* the lock.
const LOCKED_RING_OPS: &[&str] = &[
    "mul_into",
    "fma_scaled",
    "fma_apply",
    "fma_apply_encoded",
    "fma_lift_continuous",
    "fma_lift_categorical",
    "fma_indicator",
    "fma_batch",
    "add_scaled",
    "add_product_scaled",
    "union_add",
];

/// An inline waiver parsed from a comment:
/// `// xlint:allow(<rule>): <justification>` or
/// `// xlint:allow-file(<rule>): <justification>`.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: String,
    pub line: u32,
    pub end_line: u32,
    pub justification: String,
    pub file_wide: bool,
}

/// Per-file lint output, with the cross-file facts the workspace driver
/// aggregates (lift-name sites, crate-root attributes).
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// `(name literal, line)` of every `LiftFn::new` first string argument.
    pub lift_names: Vec<(String, u32)>,
    /// File carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// File carries `#![deny(unsafe_code)]`.
    pub has_deny_unsafe: bool,
}

/// Lints one file's source. `rel` is the workspace-relative path with
/// forward slashes — several rules are path-scoped.
pub fn lint_file(rel: &str, src: &str) -> FileReport {
    let lexed = lexer::lex(src);
    let scopes = scopes::scan(&lexed.toks);
    let (waivers, mut findings) = parse_waivers(rel, &lexed.comments);

    let ctx = Ctx {
        rel,
        toks: &lexed.toks,
        scopes: &scopes,
    };

    rule_unsafe_boundary(&ctx, &mut findings);
    rule_probe_upsert(&ctx, &mut findings);
    rule_dict_lock(&ctx, &mut findings);
    rule_byte_units(&ctx, &mut findings);
    rule_no_panic(&ctx, &mut findings);
    rule_ring_zero_eq(&ctx, &mut findings);

    findings.retain(|f| !is_waived(f, &waivers, &scopes));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    FileReport {
        findings,
        lift_names: collect_lift_names(&ctx),
        has_forbid_unsafe: has_crate_attr(&lexed.toks, "forbid"),
        has_deny_unsafe: has_crate_attr(&lexed.toks, "deny"),
    }
}

struct Ctx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    scopes: &'a Scopes,
}

impl Ctx<'_> {
    fn finding(&self, line: u32, rule: &'static str, msg: String) -> Finding {
        Finding {
            path: self.rel.to_string(),
            line,
            rule,
            msg,
        }
    }
}

// ---------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------

/// Parses waivers out of the comment stream; malformed waivers become
/// `waiver-format` findings (a waiver without a written justification is
/// itself a contract violation).
fn parse_waivers(rel: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // A waiver must be the first thing in its comment (after the
        // `//` / `///` / `/*` leader) — prose that merely *mentions* the
        // syntax, like this sentence, is not a waiver.
        let body = c
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        for (marker, file_wide) in [("xlint:allow-file(", true), ("xlint:allow(", false)] {
            if !body.starts_with(marker) {
                continue;
            }
            let rest = &body[marker.len()..];
            let Some(close) = rest.find(')') else {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: c.line,
                    rule: "waiver-format",
                    msg: "unterminated xlint:allow(...) waiver".to_string(),
                });
                break;
            };
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let justification = after
                .strip_prefix(':')
                .map(|j| j.trim().to_string())
                .unwrap_or_default();
            if !RULES.contains(&rule.as_str()) || rule == "waiver-format" {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: c.line,
                    rule: "waiver-format",
                    msg: format!("waiver names unknown or unwaivable rule `{rule}`"),
                });
            } else if justification.is_empty() {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: c.line,
                    rule: "waiver-format",
                    msg: format!(
                        "waiver for `{rule}` has no justification — write \
                         `xlint:allow({rule}): <why this site is sound>`"
                    ),
                });
            } else {
                waivers.push(Waiver {
                    rule,
                    line: c.line,
                    end_line: c.end_line,
                    justification,
                    file_wide,
                });
            }
            break;
        }
    }
    (waivers, findings)
}

fn is_waived(f: &Finding, waivers: &[Waiver], scopes: &Scopes) -> bool {
    if f.rule == "waiver-format" {
        return false;
    }
    waivers.iter().any(|w| {
        if w.rule != f.rule {
            return false;
        }
        if w.file_wide {
            return true;
        }
        // A line waiver covers its own line(s) and the line right below
        // the comment (the annotated statement).
        if f.line >= w.line && f.line <= w.end_line + 1 {
            return true;
        }
        // Function-property rules accept a waiver anywhere in the same fn.
        FN_SCOPED_RULES.contains(&f.rule)
            && scopes.fns.iter().any(|s| {
                s.lines.0 <= f.line
                    && f.line <= s.lines.1
                    && s.lines.0 <= w.line
                    && w.line <= s.lines.1
            })
    })
}

// ---------------------------------------------------------------------
// Rule 1: unsafe boundary (memory contract, PR 5)
// ---------------------------------------------------------------------

fn rule_unsafe_boundary(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.rel == "crates/common/src/table.rs" {
        return; // the one sanctioned unsafe file
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.is_ident("unsafe") && !ctx.scopes.in_test(i) {
            out.push(ctx.finding(
                t.line,
                "unsafe-boundary",
                "`unsafe` outside crates/common/src/table.rs — the memory contract \
                 confines unsafe to RawTable's control/slot arrays"
                    .to_string(),
            ));
        }
    }
}

/// Detects `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` crate
/// attributes anywhere in the token stream.
fn has_crate_attr(toks: &[Tok], level: &str) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

// ---------------------------------------------------------------------
// Rule 2: upsert discipline (kernel contract, PR 9)
// ---------------------------------------------------------------------

fn rule_probe_upsert(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len().saturating_sub(2) {
        if ctx.toks[i].is_punct('.')
            && ctx.toks[i + 1].is_ident("probe")
            && ctx.toks[i + 2].is_punct('(')
            && !ctx.scopes.in_test(i)
        {
            let line = ctx.toks[i + 1].line;
            let hit_checked = match ctx.scopes.enclosing_fn(i) {
                Some(f) => ctx.toks[f.body.0..=f.body.1]
                    .iter()
                    .any(|t| t.is_ident("find_idx")),
                None => false,
            };
            if !hit_checked {
                out.push(ctx.finding(
                    line,
                    "probe-upsert",
                    "`.probe(` with no `find_idx` hit-path in the same function — \
                     long-lived tables must check for a hit before reserving \
                     (kernel contract); level-local delta tables may waive this"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: dict-lock discipline (ring-key contract, PR 4)
// ---------------------------------------------------------------------

fn rule_dict_lock(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        // Pattern A: a lock-guard binding — `… .lock()` / `.lock_arc()` in
        // a let statement. The guard's scope runs from the statement's `;`
        // to the end of the enclosing block.
        if toks[i].is_ident("lock") || toks[i].is_ident("lock_arc") {
            if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if ctx.scopes.in_test(i) {
                continue;
            }
            // Find the end of this statement (`;` at relative depth 0).
            let mut depth = 0isize;
            let mut j = i + 1;
            let mut stmt_end = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break; // expression-position lock (e.g. inside a call): no binding
                    }
                } else if depth == 0 && t.is_punct(';') {
                    stmt_end = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(stmt_end) = stmt_end else { continue };
            // Guard scope: statement end → end of enclosing block.
            let mut depth = 0isize;
            let mut k = stmt_end + 1;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 {
                    check_ring_op(ctx, k, toks[i].line, out);
                }
                k += 1;
            }
        }
        // Pattern B: ring ops inside a `with_dict` / `with_dict_mut`
        // closure — the dictionary lock is held for the whole call.
        if (toks[i].is_ident("with_dict") || toks[i].is_ident("with_dict_mut"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !ctx.scopes.in_test(i)
        {
            let mut depth = 0isize;
            let mut k = i + 1;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    check_ring_op(ctx, k, toks[i].line, out);
                }
                k += 1;
            }
        }
    }
}

/// Flags token `k` if it is a call to one of [`LOCKED_RING_OPS`]
/// (a definition — `fn fma_scaled(` — is not a call).
fn check_ring_op(ctx: &Ctx, k: usize, lock_line: u32, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let t = &toks[k];
    if t.kind != TokKind::Ident || !LOCKED_RING_OPS.contains(&t.text.as_str()) {
        return;
    }
    if !toks.get(k + 1).is_some_and(|n| n.is_punct('(')) {
        return;
    }
    if k > 0 && toks[k - 1].is_ident("fn") {
        return;
    }
    out.push(ctx.finding(
        t.line,
        "dict-lock",
        format!(
            "ring op `{}` called while the dict lock guard taken on line {} \
             is live — ring ops may take the dictionary lock themselves \
             (PR 4 deadlock rule); drop the guard or use the &mut Dict path",
            t.text, lock_line
        ),
    ));
}

// ---------------------------------------------------------------------
// Rule 4: byte-unit thresholds (memory contract, PR 5)
// ---------------------------------------------------------------------

fn rule_byte_units(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len().saturating_sub(2) {
        if ctx.toks[i].is_ident("const")
            && ctx.toks[i + 1].kind == TokKind::Ident
            && ctx.toks[i + 2].is_punct(':')
            && !ctx.scopes.in_test(i)
        {
            let name = &ctx.toks[i + 1].text;
            if name.ends_with("_SLOTS") || name.ends_with("_ENTRIES") {
                out.push(ctx.finding(
                    ctx.toks[i + 1].line,
                    "byte-units",
                    format!(
                        "threshold constant `{name}` counts slots/entries — the \
                         memory contract requires byte-denominated thresholds \
                         (`*_BYTES`) so limits survive payload-size changes"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: no-panic public surfaces (service/durability contracts)
// ---------------------------------------------------------------------

const NO_PANIC_PATHS: &[&str] = &[
    "crates/core/src/",
    "crates/cdc/src/",
    "crates/shard/src/",
    "crates/dag/src/",
];

fn rule_no_panic(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !NO_PANIC_PATHS.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        let hit = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !hit || ctx.scopes.in_test(i) {
            continue;
        }
        let Some(f) = ctx.scopes.enclosing_fn(i) else {
            continue;
        };
        if f.vis != Vis::Pub {
            continue;
        }
        out.push(ctx.finding(
            t.line,
            "no-panic",
            format!(
                "`{}` in public fn `{}` — public API surfaces of \
                 core/cdc/shard/dag return typed errors instead of panicking; \
                 waive only for internal invariants with a written argument",
                t.text, f.name
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// Rule 6: lift-name uniqueness (DAG fingerprint contract, PR 8)
// ---------------------------------------------------------------------

/// The first string literal inside each `LiftFn::new(…)` call — the name
/// (or `format!` template) the DAG fingerprints the lift by.
fn collect_lift_names(ctx: &Ctx) -> Vec<(String, u32)> {
    let toks = ctx.toks;
    let mut names = Vec::new();
    for i in 0..toks.len().saturating_sub(5) {
        if toks[i].is_ident("LiftFn")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(')
            && !ctx.scopes.in_test(i)
        {
            let mut depth = 0isize;
            let mut j = i + 4;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Str {
                    names.push((t.text.clone(), t.line));
                    break;
                }
                j += 1;
            }
        }
    }
    names
}

/// Builds duplicate-name findings from aggregated `(name, path, line)`
/// sites (within one file or across the workspace). Every site after the
/// first, in (path, line) order, is reported.
pub fn lift_dup_findings(sites: &mut [(String, String, u32)]) -> Vec<Finding> {
    sites.sort();
    let mut out = Vec::new();
    let mut i = 0;
    while i < sites.len() {
        let mut j = i + 1;
        while j < sites.len() && sites[j].0 == sites[i].0 {
            out.push(Finding {
                path: sites[j].1.clone(),
                line: sites[j].2,
                rule: "lift-name-dup",
                msg: format!(
                    "LiftFn name literal \"{}\" duplicates {}:{} — the DAG \
                     fingerprint contract requires equal names ⟺ equal \
                     behavior; reuse the one constructor or rename",
                    sites[i].0, sites[i].1, sites[i].2
                ),
            });
            j += 1;
        }
        i = j;
    }
    out
}

// ---------------------------------------------------------------------
// Rule 7: float-eq on ring values (ring axioms)
// ---------------------------------------------------------------------

fn rule_ring_zero_eq(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("zero")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            || ctx.scopes.in_test(i)
        {
            continue;
        }
        // `… == R::zero()` — walk back over the path to the operator.
        let mut k = i;
        while k > 0
            && (toks[k - 1].is_punct(':') || toks[k - 1].is_punct('.')
                || toks[k - 1].kind == TokKind::Ident)
        {
            k -= 1;
        }
        let before = k >= 2
            && toks[k - 1].is_punct('=')
            && (toks[k - 2].is_punct('=') || toks[k - 2].is_punct('!'));
        // `R::zero() == …`
        let after = toks.get(i + 3).is_some_and(|t| t.is_punct('=') || t.is_punct('!'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('='));
        if before || after {
            out.push(ctx.finding(
                toks[i].line,
                "ring-zero-eq",
                "equality comparison against ring zero — use `is_zero()`; \
                 `==` on float-carrying ring values misses -0.0/NaN and \
                 accumulated representation differences"
                    .to_string(),
            ));
        }
    }
}
