//! A small hand-rolled Rust lexer: just enough token structure for the
//! contract rules in [`crate::rules`], with the classic trouble spots
//! handled — nested block comments, every string flavor (`"…"`, `r"…"`,
//! `r#"…"#`, `b"…"`, `br#"…"#`), char literals vs lifetime ticks — so a
//! `probe(` or `unsafe` inside a comment or string never reaches a rule.
//!
//! Comments are not tokens; they are collected separately (with line
//! numbers and text) because the waiver syntax lives in them.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `probe`, …).
    Ident,
    /// String literal of any flavor; `text` holds the *content* (quotes,
    /// raw-string hashes and `b`/`r` prefixes stripped).
    Str,
    /// Character or byte-character literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// Lifetime tick (`'a`, `'static`); `text` holds the name sans tick.
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation character (`{`, `.`, `=`, …).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// One comment (line or block), carrying the full text so waiver
/// annotations can be parsed out of it.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs consume to EOF,
/// which is the right degradation for a lint (the compiler will reject
/// the file anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0),
                b'\'' => self.tick(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed_string(),
                _ => {
                    self.push(TokKind::Punct, (c as char).to_string());
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String) {
        self.out.toks.push(Tok {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.b[start..self.pos]).into_owned(),
        });
    }

    /// Block comment; Rust block comments nest.
    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            if self.b[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if self.b[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.b[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.b[start..self.pos]).into_owned(),
        });
    }

    /// Cooked string starting at the opening quote; `hashes` is 0 for
    /// non-raw strings (escape sequences honored) — raw strings go
    /// through [`Self::raw_string`] instead.
    fn string(&mut self, _prefix_len: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\\' => self.pos += 2, // skip escaped char (incl. \" and \\)
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let content = String::from_utf8_lossy(&self.b[content_start..self.pos.min(self.b.len())])
            .into_owned();
        self.pos += 1; // closing quote
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            text: content,
            line: start_line,
        });
    }

    /// Raw string: positioned at the first `#` or the `"` after an `r`
    /// (or `br`) prefix. No escapes; closes at `"` followed by the same
    /// number of hashes.
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let content_start = self.pos;
        let content_end;
        loop {
            match self.peek(0) {
                None => {
                    content_end = self.b.len();
                    break;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        content_end = self.pos;
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&self.b[content_start..content_end]).into_owned(),
            line: start_line,
        });
    }

    /// `'` is either a char literal or a lifetime tick. Heuristic (the
    /// one real lexers use): `'` + ident-start is a lifetime unless the
    /// ident run is exactly one char long and followed by a closing `'`.
    fn tick(&mut self) {
        let next = self.peek(1);
        match next {
            Some(c) if is_ident_start(c) => {
                // Find the end of the ident run after the tick.
                let mut j = self.pos + 2;
                while j < self.b.len() && is_ident_cont(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') && j == self.pos + 2 {
                    // 'a' — a char literal.
                    self.push(TokKind::Char, (c as char).to_string());
                    self.pos = j + 1;
                } else {
                    // 'a / 'static / 'outer — a lifetime.
                    let name =
                        String::from_utf8_lossy(&self.b[self.pos + 1..j]).into_owned();
                    self.push(TokKind::Lifetime, name);
                    self.pos = j;
                }
            }
            Some(b'\\') => {
                // '\n', '\'', '\u{..}' — escaped char literal.
                let mut j = self.pos + 2;
                if j < self.b.len() {
                    j += 1; // the escaped character itself
                }
                // \u{...}
                if self.b.get(j - 1) == Some(&b'u') && self.b.get(j) == Some(&b'{') {
                    while j < self.b.len() && self.b[j] != b'}' {
                        j += 1;
                    }
                    j += 1;
                }
                while j < self.b.len() && self.b[j] != b'\'' {
                    j += 1;
                }
                self.push(TokKind::Char, String::new());
                self.pos = (j + 1).min(self.b.len());
            }
            Some(_) => {
                // 'x' for non-ascii-ident x (digits, punctuation, UTF-8).
                let mut j = self.pos + 1;
                while j < self.b.len() && self.b[j] != b'\'' && self.b[j] != b'\n' {
                    j += 1;
                }
                self.push(TokKind::Char, String::new());
                self.pos = (j + 1).min(self.b.len());
            }
            None => {
                self.push(TokKind::Punct, "'".to_string());
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.b.len() && is_ident_cont(self.b[self.pos]) {
            self.pos += 1;
        }
        // Fractional part — but not the `..` of a range expression.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.pos < self.b.len() && is_ident_cont(self.b[self.pos]) {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Num, text);
    }

    /// Identifier — unless it is an `r`/`b`/`br` prefix of a string
    /// literal or a `b` prefix of a char literal.
    fn ident_or_prefixed_string(&mut self) {
        let start = self.pos;
        while self.pos < self.b.len() && is_ident_cont(self.b[self.pos]) {
            self.pos += 1;
        }
        let text = &self.b[start..self.pos];
        match text {
            b"r" | b"br" if matches!(self.peek(0), Some(b'"') | Some(b'#')) => {
                self.raw_string();
            }
            b"b" if self.peek(0) == Some(b'"') => {
                self.string(1);
            }
            b"b" if self.peek(0) == Some(b'\'') => {
                self.tick();
            }
            _ => {
                let text = String::from_utf8_lossy(text).into_owned();
                self.push(TokKind::Ident, text);
            }
        }
    }
}
