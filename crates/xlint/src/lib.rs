#![forbid(unsafe_code)]
//! # fivm-xlint — the in-tree contract lint
//!
//! An offline, dependency-free static analysis pass over the workspace's
//! Rust sources: a hand-rolled lexer ([`lexer`]), scope recovery
//! ([`scopes`]) and a rule engine ([`rules`]) that enforce the
//! load-bearing invariants accumulated in ROADMAP.md — the unsafe
//! boundary, the `find_idx`-first upsert discipline, the dict-lock
//! deadlock rule, byte-denominated thresholds, panic-free public
//! surfaces, lift-name uniqueness and `is_zero` discipline.
//!
//! Run as `just lint` (or `cargo run -p fivm-xlint`). Findings can be
//! waived inline with `// xlint:allow(<rule>): <justification>`; a
//! waiver without a justification is itself a finding. See the
//! "Static-analysis contract" section of ROADMAP.md for the policy.

pub mod lexer;
pub mod rules;
pub mod scopes;

pub use rules::{Finding, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never walked: build output, VCS, test/bench sources
/// (exempt from the source rules by policy) and lint fixtures.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "tests",
    "benches",
    "examples",
    "fixtures",
];

/// Lints a single source string as if it lived at `rel` (workspace-
/// relative, forward slashes). Includes intra-file duplicate-lift-name
/// detection; cross-file aggregation needs [`lint_workspace`].
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let report = rules::lint_file(rel, src);
    let mut findings = report.findings;
    let mut sites: Vec<(String, String, u32)> = report
        .lift_names
        .into_iter()
        .map(|(name, line)| (name, rel.to_string(), line))
        .collect();
    findings.extend(rules::lift_dup_findings(&mut sites));
    findings
}

/// Lints the whole workspace under `root`: every non-test `.rs` file,
/// plus the cross-file rules — duplicate lift names anywhere in the
/// tree, and the `#![forbid(unsafe_code)]` stamp on every crate root
/// (`#![deny(unsafe_code)]` for `fivm-common`, whose `table.rs` is the
/// one sanctioned unsafe file).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut lift_sites: Vec<(String, String, u32)> = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let src = fs::read_to_string(path)?;
        let report = rules::lint_file(&rel, &src);
        findings.extend(report.findings);
        for (name, line) in report.lift_names {
            lift_sites.push((name, rel.clone(), line));
        }
        if let Some(expected) = crate_root_expectation(&rel) {
            let ok = match expected {
                "forbid" => report.has_forbid_unsafe,
                _ => report.has_deny_unsafe,
            };
            if !ok {
                findings.push(Finding {
                    path: rel.clone(),
                    line: 1,
                    rule: "unsafe-boundary",
                    msg: format!(
                        "crate root is missing `#![{expected}(unsafe_code)]` — \
                         every crate except fivm-common forbids unsafe at the \
                         root (fivm-common denies it and re-allows in table.rs)"
                    ),
                });
            }
        }
    }
    findings.extend(rules::lift_dup_findings(&mut lift_sites));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Which `#![…(unsafe_code)]` attribute a crate root must carry, if the
/// path is a crate root at all.
fn crate_root_expectation(rel: &str) -> Option<&'static str> {
    if rel == "crates/common/src/lib.rs" {
        return Some("deny");
    }
    let is_root = rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    is_root.then_some("forbid")
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
