#![forbid(unsafe_code)]
//! CLI driver: `fivm-xlint [--json] [ROOT]`.
//!
//! Exit codes are deterministic: 0 clean, 1 findings, 2 usage or I/O
//! error. Human output is one `path:line: [rule] message` per finding;
//! `--json` emits a machine-readable array for CI tooling.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: fivm-xlint [--json] [ROOT]");
                println!("contract lint over the workspace rooted at ROOT (default: .)");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("fivm-xlint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("fivm-xlint: more than one ROOT argument");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let findings = match fivm_xlint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fivm-xlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
        }
        if findings.is_empty() {
            println!("fivm-xlint: clean");
        } else {
            println!("fivm-xlint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn to_json(findings: &[fivm_xlint::Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.path),
            f.line,
            f.rule,
            escape(&f.msg)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
