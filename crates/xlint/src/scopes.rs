//! Scope structure recovered from the token stream: function spans (with
//! visibility), and `#[cfg(test)]` item spans used by the exemption logic.

use crate::lexer::{Tok, TokKind};

/// Visibility of an item, as the no-panic rule needs it: only
/// *exactly-`pub`* functions are public API surface — `pub(crate)` and
/// private functions are internal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
    Private,
}

/// One `fn` item with a body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub vis: Vis,
    /// Token index of the `fn` keyword.
    pub kw_tok: usize,
    /// Token index of the body's opening `{` … its matching `}`
    /// (inclusive range of body tokens).
    pub body: (usize, usize),
    /// 1-based source lines covered (signature through closing brace).
    pub lines: (u32, u32),
}

/// Token/line spans of items annotated `#[cfg(test)]`.
#[derive(Clone, Debug)]
pub struct TestSpan {
    pub toks: (usize, usize),
    pub lines: (u32, u32),
}

/// Everything the rules need about a file's scope structure.
#[derive(Debug, Default)]
pub struct Scopes {
    pub fns: Vec<FnSpan>,
    pub tests: Vec<TestSpan>,
}

impl Scopes {
    /// The innermost function whose body contains token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= i && i <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// True if token `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.tests.iter().any(|t| t.toks.0 <= i && i <= t.toks.1)
    }
}

/// Finds the matching `}` for the `{` at token `open`, or the last token
/// if unbalanced (lint degradation, not an error).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans a token stream into its scope structure.
pub fn scan(toks: &[Tok]) -> Scopes {
    let mut out = Scopes::default();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("fn") {
            // `fn` in a function-pointer type (`fn(usize) -> bool`) has no
            // name ident after it; only named items become spans.
            let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            let vis = visibility_before(toks, i);
            // Find the body `{`: skip the parameter list and any return
            // type / where clause (neither can contain a brace at paren
            // depth 0 in this codebase's Rust subset). A `;` first means
            // a bodyless trait-method declaration.
            let mut depth = 0isize;
            let mut body_open = None;
            for (j, u) in toks.iter().enumerate().skip(i + 2) {
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && u.is_punct('{') {
                    body_open = Some(j);
                    break;
                } else if depth == 0 && u.is_punct(';') {
                    break;
                }
            }
            let Some(open) = body_open else { continue };
            let close = match_brace(toks, open);
            out.fns.push(FnSpan {
                name: name.text.clone(),
                vis,
                kw_tok: i,
                body: (open, close),
                lines: (t.line, toks[close].line),
            });
        } else if t.is_punct('#') {
            // `#[cfg(test)]` followed by an item: the item's brace block
            // (module, fn, impl) is exempt from source rules.
            if is_cfg_test_attr(toks, i) {
                // The attribute closes at its `]`; the next `{` at paren
                // depth 0 opens the annotated item's body.
                let mut j = i + 2; // past `#[`
                let mut bdepth = 1isize;
                while j < toks.len() && bdepth > 0 {
                    if toks[j].is_punct('[') {
                        bdepth += 1;
                    } else if toks[j].is_punct(']') {
                        bdepth -= 1;
                    }
                    j += 1;
                }
                let mut depth = 0isize;
                while j < toks.len() {
                    let u = &toks[j];
                    if u.is_punct('(') || u.is_punct('[') {
                        depth += 1;
                    } else if u.is_punct(')') || u.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && u.is_punct('{') {
                        let close = match_brace(toks, j);
                        out.tests.push(TestSpan {
                            toks: (i, close),
                            lines: (t.line, toks[close].line),
                        });
                        break;
                    } else if depth == 0 && u.is_punct(';') {
                        // `#[cfg(test)] use …;` — span is just the statement.
                        out.tests.push(TestSpan {
                            toks: (i, j),
                            lines: (t.line, u.line),
                        });
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    out
}

/// `#[cfg(test)]` or `#[cfg(all(test, …))]`-style attributes: a `cfg`
/// attribute whose predicate mentions the bare `test` flag.
fn is_cfg_test_attr(toks: &[Tok], hash: usize) -> bool {
    if !toks.get(hash + 1).is_some_and(|t| t.is_punct('[')) {
        return false;
    }
    if !toks.get(hash + 2).is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    // Scan the attribute tokens up to the closing `]` for the ident `test`.
    let mut depth = 1isize;
    let mut j = hash + 2;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
        } else if toks[j].is_ident("test") {
            return true;
        }
        j += 1;
    }
    false
}

/// Visibility of the item whose defining keyword is at token `kw`,
/// determined by walking back over the qualifier keywords that may sit
/// between `pub` and `fn` (`unsafe`, `const`, `async`, `extern "C"`).
fn visibility_before(toks: &[Tok], kw: usize) -> Vis {
    let mut j = kw;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        let qualifier = t.kind == TokKind::Str
            || t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("extern");
        if qualifier {
            continue;
        }
        if t.is_punct(')') {
            // Possibly the `(crate)` of `pub(crate)`: walk to the `(`.
            let mut depth = 1isize;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].is_ident("pub") {
                return Vis::Scoped;
            }
            return Vis::Private;
        }
        if t.is_ident("pub") {
            return Vis::Pub;
        }
        return Vis::Private;
    }
    Vis::Private
}
