//! First-order join maintenance: the DBToaster-style baseline that keeps the
//! full join result materialized.
//!
//! For an update `δR_k`, the delta of the join is
//! `δJ = R_1 ⋈ ... ⋈ δR_k ⋈ ... ⋈ R_n` (computed against the *current* state
//! of the other base tables).  The materialized join and the aggregate are
//! then updated from `δJ`.  The paper argues that maintaining the aggregates
//! through factorized views is much cheaper than maintaining `J`, because
//! `J` can be far larger than any view and contains many repeating values —
//! this struct is the concrete strategy that claim is measured against.

use crate::{Bindings, LiftPlan};
use fivm_common::{FivmError, Result};
use fivm_query::QuerySpec;
use fivm_relation::{Database, Relation, Tuple, Update};
use fivm_ring::{LiftFn, Ring};

/// The join-maintenance baseline.
pub struct JoinMaintenance<R: Ring> {
    spec: QuerySpec,
    lifts: Vec<LiftFn<R>>,
    relations: Vec<Relation<i64>>,
    join: Relation<i64>,
    aggregate: R,
    bindings: Bindings,
}

impl<R: Ring> JoinMaintenance<R> {
    /// Creates the baseline for a query with one lift per variable.
    pub fn new(spec: QuerySpec, lifts: Vec<LiftFn<R>>) -> Result<Self> {
        if lifts.len() != spec.num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "expected {} lifts, got {}",
                spec.num_vars(),
                lifts.len()
            )));
        }
        let relations: Vec<Relation<i64>> = spec
            .relations()
            .iter()
            .map(|r| Relation::new(r.vars.clone()))
            .collect();
        // Join variables in a fixed order: relation order, first occurrence.
        let mut join_vars = Vec::new();
        for rel in spec.relations() {
            for &v in &rel.vars {
                if !join_vars.contains(&v) {
                    join_vars.push(v);
                }
            }
        }
        let bindings = Bindings::new(&spec);
        Ok(JoinMaintenance {
            spec,
            lifts,
            relations,
            join: Relation::new(join_vars),
            aggregate: R::zero(),
            bindings,
        })
    }

    /// The query this baseline maintains.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Loads an initial database by applying every table as one insert batch.
    pub fn load_database(&mut self, db: &Database) -> Result<()> {
        self.bindings.bind_database(&self.spec, db)?;
        for rel in 0..self.spec.num_relations() {
            let table = db
                .table(&self.spec.relation(rel).name)
                .expect("bind_database checked the table exists");
            let rows = table.rows.clone();
            self.apply_rows(rel, &rows)?;
        }
        Ok(())
    }

    /// Applies an update batch, maintaining the join and the aggregate.
    pub fn apply_update(&mut self, update: &Update) -> Result<()> {
        let rel = self.spec.relation_id(&update.table).ok_or_else(|| {
            FivmError::InvalidUpdate(format!("unknown relation `{}`", update.table))
        })?;
        self.apply_rows(rel, &update.rows)
    }

    fn apply_rows(&mut self, rel: usize, rows: &[(Tuple, i64)]) -> Result<()> {
        // Build the delta relation over the relation's query variables.
        let mut delta = Relation::new(self.spec.relation(rel).vars.clone());
        for (row, mult) in rows {
            let key = self.bindings.project(&self.spec, rel, row)?;
            delta.add(key, *mult);
        }
        if delta.is_empty() {
            return Ok(());
        }

        // δJ = δR ⋈ (every other base relation, in its current state).
        let mut delta_join = delta.clone();
        for (other, relation) in self.relations.iter().enumerate() {
            if other != rel {
                delta_join = delta_join.natural_join(relation);
            }
        }

        // Fold the aggregate over the delta-join tuples: lift positions are
        // resolved once per batch, not once per tuple per lift.
        let plan = LiftPlan::new(delta_join.vars(), &self.lifts);
        for (t, m) in delta_join.iter() {
            self.aggregate.add_assign(&plan.contribution(t).scale_int(*m));
        }

        // Maintain the materialized join (projected onto the fixed variable
        // order) and the base relation.
        let join_vars = self.join.vars().to_vec();
        let reordered = delta_join.marginalize(&join_vars);
        self.join.union_add(&reordered);
        self.relations[rel].union_add(&delta);
        Ok(())
    }

    /// The maintained aggregate.
    pub fn result(&self) -> R {
        self.aggregate.clone()
    }

    /// Number of tuples currently in the materialized join result.
    pub fn join_size(&self) -> usize {
        self.join.len()
    }

    /// Number of rows stored across the base tables.
    pub fn stored_rows(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_core::apps;
    use fivm_data::figure1::{figure1_database, figure1_tree};
    use fivm_relation::tuple;
    use fivm_ring::{ApproxEq, Cofactor};

    #[test]
    fn tracks_the_join_and_count_on_figure1() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        let db = figure1_database();
        let mut baseline =
            JoinMaintenance::<i64>::new(spec.clone(), vec![LiftFn::identity(); spec.num_vars()])
                .unwrap();
        baseline.load_database(&db).unwrap();
        assert_eq!(baseline.result(), 3);
        assert_eq!(baseline.join_size(), 3);
        assert_eq!(baseline.stored_rows(), 5);

        // Insert then delete an R row; the join and aggregate follow.
        let u = Update::inserts("R", vec![tuple([Value::int(1), Value::int(7)])]);
        baseline.apply_update(&u).unwrap();
        assert_eq!(baseline.result(), 5);
        assert_eq!(baseline.join_size(), 5);
        baseline.apply_update(&u.inverse()).unwrap();
        assert_eq!(baseline.result(), 3);
        assert_eq!(baseline.join_size(), 3);
    }

    #[test]
    fn covar_result_matches_fivm_engine_under_updates() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        let db = figure1_database();
        let dim = 3;
        let mut lifts: Vec<LiftFn<Cofactor>> = vec![LiftFn::identity(); spec.num_vars()];
        for (idx, name) in ["B", "C", "D"].iter().enumerate() {
            let v = spec.var_id(name).unwrap();
            lifts[v] = fivm_ring::lift::cofactor_continuous_lift(dim, idx, name);
        }
        let mut baseline = JoinMaintenance::new(spec, lifts).unwrap();
        baseline.load_database(&db).unwrap();
        let mut engine = apps::covar_engine(figure1_tree(false)).unwrap();
        engine.load_database(&db).unwrap();
        assert!(baseline.result().approx_eq(&engine.result(), 1e-9));

        let updates = [
            Update::inserts(
                "S",
                vec![tuple([Value::int(2), Value::int(5), Value::int(6)])],
            ),
            Update::deletes(
                "S",
                vec![tuple([Value::int(1), Value::int(1), Value::int(1)])],
            ),
            Update::inserts("R", vec![tuple([Value::int(2), Value::int(4)])]),
        ];
        for u in &updates {
            baseline.apply_update(u).unwrap();
            engine.apply_update(u).unwrap();
            assert!(baseline.result().approx_eq(&engine.result(), 1e-9));
        }
    }

    #[test]
    fn unknown_table_is_rejected() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        let mut baseline =
            JoinMaintenance::<i64>::new(spec.clone(), vec![LiftFn::identity(); spec.num_vars()])
                .unwrap();
        assert!(baseline
            .apply_update(&Update::inserts("Missing", vec![]))
            .is_err());
        assert!(JoinMaintenance::<i64>::new(spec, vec![LiftFn::identity(); 1]).is_err());
    }
}
