//! Naive re-evaluation: store the base tables, recompute the aggregate from
//! scratch whenever it is requested.

use crate::{Bindings, LiftPlan};
use fivm_common::{FivmError, Result};
use fivm_query::QuerySpec;
use fivm_relation::{Database, Relation, Update};
use fivm_ring::{LiftFn, Ring};

/// The from-scratch baseline.
///
/// Updates are cheap (they only touch the stored base tables); reading the
/// aggregate joins all relations and folds the per-variable lifts over every
/// result tuple.  This is the lower bound the paper's incremental approach is
/// measured against.
pub struct NaiveReevaluation<R: Ring> {
    spec: QuerySpec,
    lifts: Vec<LiftFn<R>>,
    relations: Vec<Relation<i64>>,
    bindings: Bindings,
}

impl<R: Ring> NaiveReevaluation<R> {
    /// Creates the baseline for a query with one lift per variable.
    pub fn new(spec: QuerySpec, lifts: Vec<LiftFn<R>>) -> Result<Self> {
        if lifts.len() != spec.num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "expected {} lifts, got {}",
                spec.num_vars(),
                lifts.len()
            )));
        }
        let relations = spec
            .relations()
            .iter()
            .map(|r| Relation::new(r.vars.clone()))
            .collect();
        let bindings = Bindings::new(&spec);
        Ok(NaiveReevaluation {
            spec,
            lifts,
            relations,
            bindings,
        })
    }

    /// The query this baseline maintains.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Loads an initial database (tables matched by name, columns by name).
    pub fn load_database(&mut self, db: &Database) -> Result<()> {
        self.bindings.bind_database(&self.spec, db)?;
        for rel in 0..self.spec.num_relations() {
            let table = db
                .table(&self.spec.relation(rel).name)
                .expect("bind_database checked the table exists");
            for (row, mult) in &table.rows {
                let key = self.bindings.project(&self.spec, rel, row)?;
                self.relations[rel].add(key, *mult);
            }
        }
        Ok(())
    }

    /// Applies an update batch (only touches the stored base table).
    pub fn apply_update(&mut self, update: &Update) -> Result<()> {
        let rel = self.spec.relation_id(&update.table).ok_or_else(|| {
            FivmError::InvalidUpdate(format!("unknown relation `{}`", update.table))
        })?;
        for (row, mult) in &update.rows {
            let key = self.bindings.project(&self.spec, rel, row)?;
            self.relations[rel].add(key, *mult);
        }
        Ok(())
    }

    /// Recomputes the aggregate from scratch: joins every base table and
    /// folds the lifts over each result tuple.
    pub fn result(&self) -> R {
        let mut join = self.relations[0].clone();
        for rel in &self.relations[1..] {
            join = join.natural_join(rel);
        }
        let plan = LiftPlan::new(join.vars(), &self.lifts);
        let mut acc = R::zero();
        for (t, m) in join.iter() {
            acc.add_assign(&plan.contribution(t).scale_int(*m));
        }
        acc
    }

    /// Number of rows currently stored across the base tables.
    pub fn stored_rows(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_core::apps;
    use fivm_data::figure1::{figure1_database, figure1_tree};
    use fivm_relation::tuple;
    use fivm_ring::{ApproxEq, Cofactor};

    fn count_lifts(n: usize) -> Vec<LiftFn<i64>> {
        vec![LiftFn::identity(); n]
    }

    #[test]
    fn matches_engine_on_figure1() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        let db = figure1_database();

        let mut engine = apps::count_engine(tree).unwrap();
        engine.load_database(&db).unwrap();

        let mut naive = NaiveReevaluation::new(spec.clone(), count_lifts(spec.num_vars())).unwrap();
        naive.load_database(&db).unwrap();

        assert_eq!(naive.result(), engine.result());
        assert_eq!(naive.result(), 3);
        assert_eq!(naive.stored_rows(), 5);

        // Apply the same update to both.
        let update = Update::inserts("R", vec![tuple([Value::int(1), Value::int(9)])]);
        engine.apply_update(&update).unwrap();
        naive.apply_update(&update).unwrap();
        assert_eq!(naive.result(), engine.result());
        assert_eq!(naive.result(), 5);

        // And a delete.
        let delete = update.inverse();
        engine.apply_update(&delete).unwrap();
        naive.apply_update(&delete).unwrap();
        assert_eq!(naive.result(), 3);
    }

    #[test]
    fn covar_lifts_match_engine() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        let db = figure1_database();
        let dim = 3;
        let mut lifts: Vec<LiftFn<Cofactor>> = vec![LiftFn::identity(); spec.num_vars()];
        for (idx, name) in ["B", "C", "D"].iter().enumerate() {
            let v = spec.var_id(name).unwrap();
            lifts[v] = fivm_ring::lift::cofactor_continuous_lift(dim, idx, name);
        }
        let mut naive = NaiveReevaluation::new(spec, lifts).unwrap();
        naive.load_database(&db).unwrap();
        let mut engine = apps::covar_engine(figure1_tree(false)).unwrap();
        engine.load_database(&db).unwrap();
        assert!(naive.result().approx_eq(&engine.result(), 1e-9));
    }

    #[test]
    fn rejects_wrong_lift_count_and_unknown_table() {
        let tree = figure1_tree(false);
        let spec = tree.spec().clone();
        assert!(NaiveReevaluation::<i64>::new(spec.clone(), count_lifts(1)).is_err());
        let mut naive = NaiveReevaluation::new(spec, count_lifts(4)).unwrap();
        let bad = Update::inserts("Nope", vec![]);
        assert!(naive.apply_update(&bad).is_err());
    }
}
