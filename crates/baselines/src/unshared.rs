//! Ablation: maintaining every scalar aggregate of the COVAR batch with its
//! own independent engine.
//!
//! The cofactor ring maintains the whole batch — the count, the `m` linear
//! aggregates and the `m(m+1)/2` quadratic aggregates — as one compound
//! payload, sharing the scalar parts of the computation across the batch.
//! This ablation strips that sharing away: each scalar aggregate becomes its
//! own F-IVM engine over the real ring.  It uses the same view tree and the
//! same maintenance code, so the measured difference is exactly the sharing
//! benefit of the compound ring.

use fivm_common::{FivmError, Result};
use fivm_core::{AggregateLayout, Engine, EngineResult};
use fivm_query::ViewTree;
use fivm_relation::{Database, Update};
use fivm_ring::{Cofactor, LiftFn, Ring};

/// One engine per scalar aggregate of the COVAR batch.
pub struct UnsharedCovar {
    layout: AggregateLayout,
    /// `(label, engine)` pairs: the count, each `SUM(X_i)` and each
    /// `SUM(X_i * X_j)` for `i <= j`.
    engines: Vec<(String, Engine<f64>)>,
}

impl UnsharedCovar {
    /// Builds the per-aggregate engines for a (continuous-feature) query.
    pub fn new(tree: ViewTree) -> Result<Self> {
        let spec = tree.spec().clone();
        let layout = AggregateLayout::of(&spec);
        for (pos, &v) in layout.vars.iter().enumerate() {
            if layout.kinds[pos].is_categorical() {
                return Err(FivmError::RingMismatch(format!(
                    "variable `{}` is categorical; the unshared ablation covers the \
                     continuous COVAR batch only",
                    spec.var_name(v)
                )));
            }
        }
        let m = layout.dim();
        let mut engines = Vec::with_capacity(1 + m + m * (m + 1) / 2);

        // COUNT(*).
        engines.push((
            "count".to_string(),
            Engine::new(tree.clone(), vec![LiftFn::<f64>::identity(); spec.num_vars()])?,
        ));
        // SUM(X_i).
        for (i, &vi) in layout.vars.iter().enumerate() {
            let mut lifts = vec![LiftFn::<f64>::identity(); spec.num_vars()];
            lifts[vi] = fivm_ring::lift::real_value_lift(&layout.names[i]);
            engines.push((format!("sum({})", layout.names[i]), Engine::new(tree.clone(), lifts)?));
        }
        // SUM(X_i * X_j) for i <= j.
        for (i, &vi) in layout.vars.iter().enumerate() {
            for (j, &vj) in layout.vars.iter().enumerate().skip(i) {
                let mut lifts = vec![LiftFn::<f64>::identity(); spec.num_vars()];
                if i == j {
                    let name = layout.names[i].clone();
                    lifts[vi] = LiftFn::new(format!("sq({name})"), |v| {
                        let x = v.as_f64().unwrap_or(0.0);
                        x * x
                    });
                } else {
                    lifts[vi] = fivm_ring::lift::real_value_lift(&layout.names[i]);
                    lifts[vj] = fivm_ring::lift::real_value_lift(&layout.names[j]);
                }
                engines.push((
                    format!("sum({}*{})", layout.names[i], layout.names[j]),
                    Engine::new(tree.clone(), lifts)?,
                ));
            }
        }
        Ok(UnsharedCovar { layout, engines })
    }

    /// Number of independently maintained aggregates.
    pub fn num_aggregates(&self) -> usize {
        self.engines.len()
    }

    /// Loads an initial database into every engine.
    pub fn load_database(&mut self, db: &Database) -> EngineResult<()> {
        for (_, e) in &mut self.engines {
            e.load_database(db)?;
        }
        Ok(())
    }

    /// Applies an update batch to every engine.
    pub fn apply_update(&mut self, update: &Update) -> EngineResult<()> {
        for (_, e) in &mut self.engines {
            e.apply_update(update)?;
        }
        Ok(())
    }

    /// Assembles the maintained scalars back into a cofactor payload, so the
    /// ablation's output can be compared against the shared engine's.
    pub fn result(&self) -> Cofactor {
        let m = self.layout.dim();
        let mut acc = Cofactor::Elem(fivm_ring::cofactor::CofactorElem::zeros(m));
        if let Cofactor::Elem(e) = &mut acc {
            let mut idx = 0;
            e.count = self.engines[idx].1.result();
            idx += 1;
            for i in 0..m {
                e.sums[i] = self.engines[idx].1.result();
                idx += 1;
            }
            for i in 0..m {
                for j in i..m {
                    e.prods.set(i, j, self.engines[idx].1.result());
                    idx += 1;
                }
            }
        }
        if acc.is_zero() {
            Cofactor::zero()
        } else {
            acc
        }
    }

    /// The aggregate labels, in the order the engines were created.
    pub fn aggregate_names(&self) -> Vec<&str> {
        self.engines.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::apps;
    use fivm_data::figure1::{figure1_database, figure1_tree};
    use fivm_data::retailer;
    use fivm_ring::ApproxEq;

    #[test]
    fn unshared_result_matches_shared_engine_on_figure1() {
        let tree = figure1_tree(false);
        let db = figure1_database();
        let mut unshared = UnsharedCovar::new(tree.clone()).unwrap();
        unshared.load_database(&db).unwrap();
        let mut shared = apps::covar_engine(tree).unwrap();
        shared.load_database(&db).unwrap();
        // 1 count + 3 sums + 6 products.
        assert_eq!(unshared.num_aggregates(), 10);
        assert!(unshared.result().approx_eq(&shared.result(), 1e-9));
        assert_eq!(unshared.aggregate_names()[0], "count");
    }

    #[test]
    fn unshared_result_tracks_updates_on_retailer() {
        let cfg = retailer::RetailerConfig::tiny();
        let db = cfg.generate();
        let spec = retailer::retailer_query_continuous();
        let tree = retailer::retailer_tree(spec);
        let mut unshared = UnsharedCovar::new(tree.clone()).unwrap();
        unshared.load_database(&db).unwrap();
        let mut shared = apps::covar_engine(tree).unwrap();
        shared.load_database(&db).unwrap();

        let stream = cfg.update_stream(fivm_data::StreamConfig {
            bulks: 2,
            bulk_size: 40,
            delete_fraction: 0.25,
            seed: 3,
        });
        for bulk in stream.bulks() {
            unshared.apply_update(bulk).unwrap();
            shared.apply_update(bulk).unwrap();
        }
        assert!(unshared.result().approx_eq(&shared.result(), 1e-6));
    }

    #[test]
    fn categorical_features_are_rejected() {
        let spec = retailer::retailer_query_mixed();
        let tree = retailer::retailer_tree(spec);
        assert!(UnsharedCovar::new(tree).is_err());
    }
}
