#![forbid(unsafe_code)]
//! Baseline maintenance strategies that F-IVM is compared against.
//!
//! The paper's performance claims are relative: maintaining the ring
//! aggregates with factorized view trees is orders of magnitude faster than
//! (a) recomputing from scratch and (b) maintaining the join result itself
//! (the DBToaster-style strategy), and sharing the whole aggregate batch in
//! one compound payload beats maintaining every scalar aggregate separately.
//! This crate implements those three strategies on the same substrate
//! (`fivm-relation` / `fivm-ring`) so benchmark comparisons isolate the
//! maintenance strategy:
//!
//! * [`NaiveReevaluation`] — stores the base tables and recomputes the
//!   aggregate by joining everything on demand.
//! * [`JoinMaintenance`] — first-order IVM: keeps the full join result
//!   materialized, updates it with delta joins, and folds the aggregate over
//!   the delta tuples.
//! * [`UnsharedCovar`] — maintains every scalar aggregate of the COVAR batch
//!   (count, sums, products) with its own independent F-IVM engine over the
//!   real ring, i.e. without the sharing provided by the cofactor ring.

pub mod join_ivm;
pub mod naive;
pub mod unshared;

pub use join_ivm::JoinMaintenance;
pub use naive::NaiveReevaluation;
pub use unshared::UnsharedCovar;

use fivm_common::{FivmError, RelId, Result, Value, VarId};
use fivm_query::QuerySpec;
use fivm_relation::{Database, Tuple};
use fivm_ring::{LiftFn, Ring};

/// Column bindings from source-table layouts to a query's relation variables
/// (shared by the baselines; the engine has its own equivalent).
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    cols: Vec<Option<Vec<usize>>>,
}

impl Bindings {
    /// Empty bindings for a query.
    pub fn new(spec: &QuerySpec) -> Self {
        Bindings {
            cols: vec![None; spec.num_relations()],
        }
    }

    /// Binds every query relation to the same-named table of a database.
    pub fn bind_database(&mut self, spec: &QuerySpec, db: &Database) -> Result<()> {
        for rel in 0..spec.num_relations() {
            let def = spec.relation(rel);
            let table = db.table(&def.name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!("database has no table named `{}`", def.name))
            })?;
            let mut cols = Vec::with_capacity(def.vars.len());
            for &v in &def.vars {
                let name = spec.var_name(v);
                let col = table.schema.position(name).ok_or_else(|| {
                    FivmError::InvalidUpdate(format!(
                        "table `{}` has no column `{name}`",
                        def.name
                    ))
                })?;
                cols.push(col);
            }
            self.cols[rel] = Some(cols);
        }
        Ok(())
    }

    /// Projects a source row onto the query variables of a relation.
    pub fn project(&self, spec: &QuerySpec, rel: RelId, row: &Tuple) -> Result<Tuple> {
        match &self.cols[rel] {
            Some(cols) => Ok(cols
                .iter()
                .map(|&c| row[c].clone())
                .collect::<Vec<_>>()
                .into_boxed_slice()),
            None => {
                if row.len() != spec.relation(rel).vars.len() {
                    return Err(FivmError::InvalidUpdate(format!(
                        "row arity {} does not match relation `{}`",
                        row.len(),
                        spec.relation(rel).name
                    )));
                }
                Ok(row.clone())
            }
        }
    }
}

/// The non-identity lifts of a query, resolved once to positions inside a
/// join-result tuple layout.
///
/// Folding an aggregate over a join result applies each lift to its
/// variable's value in every tuple; scanning the variable list per tuple
/// per lift is an `O(|tuples| · |vars| · |lifts|)` position search.  This
/// plan performs the search once per layout (the baselines build it once
/// per delta join / re-evaluation) and the fold reads values by position.
pub(crate) struct LiftPlan<'a, R> {
    /// `(tuple position, lift)` for every non-identity lift.
    positions: Vec<(usize, &'a LiftFn<R>)>,
}

impl<'a, R: Ring> LiftPlan<'a, R> {
    /// Resolves `lifts` (indexed by variable id) against a tuple layout.
    pub(crate) fn new(vars: &[VarId], lifts: &'a [LiftFn<R>]) -> Self {
        LiftPlan {
            positions: lifts
                .iter()
                .enumerate()
                .filter(|(_, lift)| !lift.is_identity())
                .map(|(var, lift)| {
                    let pos = vars
                        .iter()
                        .position(|&v| v == var)
                        .expect("lifted variable present in join result");
                    (pos, lift)
                })
                .collect(),
        }
    }

    /// The product of all lifted values of one tuple.
    pub(crate) fn contribution(&self, tuple: &[Value]) -> R {
        let mut acc = R::one();
        for (pos, lift) in &self.positions {
            acc = acc.mul(&lift.apply(&tuple[*pos]));
        }
        acc
    }
}
