#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small API subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool` — backed
//! by a xoshiro256** generator seeded through SplitMix64.  The streams are
//! deterministic per seed (the only property the data generators rely on)
//! but are **not** bit-compatible with the real `rand` crate.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of short spans is irrelevant for synthetic
                // data generation.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! int_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_inclusive!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        r as f32
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3..17i64);
            assert!((-3..17).contains(&x));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
