#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! sample/warm-up/measurement configuration — with straightforward
//! wall-clock timing and a median-of-samples report.  It has none of
//! criterion's statistical machinery; numbers it prints are medians with
//! min/max spread, which is adequate for tracking relative movement of the
//! same benchmark across commits.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost.  The shim runs one batch per
/// sample regardless of the hint, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark id (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the measurement.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (the shim runs a single warm-up call).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<S: std::fmt::Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (the shim reports eagerly, so this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?}  [min {min:?}, max {max:?}, n={}]{thr}",
            self.name,
            samples.len()
        );
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored by the shim, so
    /// `cargo bench -- <filter>` and harness flags do not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }
}
