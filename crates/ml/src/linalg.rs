//! Minimal dense linear algebra: symmetric positive definite solves.

use fivm_common::{FivmError, Result};

/// Solves `A x = b` for a symmetric positive-definite matrix `A` (given in
/// row-major order) using a Cholesky factorization.
///
/// Returns an error if the matrix is not positive definite (within a small
/// tolerance), which in the ridge-regression setting means the
/// regularization parameter is too small for a rank-deficient design.
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "vector size mismatch");
    // Cholesky: A = L L^T, lower triangular L stored dense.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 1e-12 {
                    return Err(FivmError::Numerical(format!(
                        "matrix is not positive definite at pivot {i} (value {sum:.3e})"
                    )));
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Backward substitution: L^T x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Multiplies a dense row-major `n × n` matrix by a vector.
pub fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut sum = 0.0;
        for j in 0..n {
            sum += a[i * n + j] * x[j];
        }
        out[i] = sum;
    }
    out
}

/// The Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_spd_system() {
        // A = [[4, 2], [2, 3]], b = [10, 8] → x = [1.75, 1.5].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 8.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn round_trips_against_matvec() {
        // Random-ish SPD matrix: M = B B^T + I.
        let n = 4;
        let b_mat: Vec<f64> = (0..n * n).map(|i| ((i * 31 % 17) as f64) / 7.0).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[i * n + k] * b_mat[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = matvec(&a, &x_true, n);
        let x = solve_spd(&a, &b, n).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let err = solve_spd(&a, &[1.0, 1.0], 2).unwrap_err();
        assert_eq!(err.kind(), "numerical");
    }

    #[test]
    fn norm_and_matvec() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(matvec(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0], 2), vec![3.0, 7.0]);
    }
}
