//! Expansion of (generalized) cofactor payloads into dense design-matrix
//! summaries.
//!
//! Ridge regression needs `X^T X` and `X^T y` over the design matrix whose
//! columns are the intercept, the continuous features and the one-hot
//! encoded categories of the categorical features.  The cofactor payloads
//! maintained by F-IVM contain exactly those sums; this module lays them out
//! densely and keeps the mapping from matrix columns back to attributes and
//! categories.

use fivm_common::{AttrKind, EncodedValue, FivmError, Result, Value};
use fivm_ring::{Cofactor, GenCofactor, RingCtx};

/// One column of the expanded feature space.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureColumn {
    /// The intercept (all-ones) column.
    Intercept,
    /// A continuous attribute, identified by its batch index.
    Continuous {
        /// Batch index of the attribute.
        attr: usize,
    },
    /// One category of a categorical attribute.
    Categorical {
        /// Batch index of the attribute.
        attr: usize,
        /// The category value.
        category: Value,
    },
}

/// The expanded (one-hot encoded) feature space of an aggregate batch.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureSpace {
    /// Columns in order: intercept, then per batch attribute its column(s).
    pub columns: Vec<FeatureColumn>,
    /// Human-readable attribute names, indexed by batch index.
    pub attr_names: Vec<String>,
}

impl FeatureSpace {
    /// Number of expanded columns (including the intercept).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the space has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// A readable name for a column, e.g. `price` or `category=c2`.
    pub fn column_name(&self, idx: usize) -> String {
        match &self.columns[idx] {
            FeatureColumn::Intercept => "(intercept)".to_string(),
            FeatureColumn::Continuous { attr } => self.attr_names[*attr].clone(),
            FeatureColumn::Categorical { attr, category } => {
                format!("{}={}", self.attr_names[*attr], category)
            }
        }
    }

    /// The columns belonging to one batch attribute.
    pub fn columns_of_attr(&self, attr: usize) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| match c {
                FeatureColumn::Continuous { attr: a } => *a == attr,
                FeatureColumn::Categorical { attr: a, .. } => *a == attr,
                FeatureColumn::Intercept => false,
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// A dense design-matrix summary: `count`, `X^T X` and the cross terms with
/// the label (`X^T y`), over an expanded [`FeatureSpace`].
#[derive(Clone, Debug, PartialEq)]
pub struct DenseCovar {
    /// The expanded feature space (columns of `X`).
    pub features: FeatureSpace,
    /// Number of training tuples (the count aggregate).
    pub count: f64,
    /// `X^T X`, row-major, dimension `features.len()`.
    pub xtx: Vec<f64>,
    /// `X^T y`, dimension `features.len()`.
    pub xty: Vec<f64>,
    /// `y^T y` (needed for the training loss).
    pub yty: f64,
}

impl DenseCovar {
    fn n(&self) -> usize {
        self.features.len()
    }

    /// Entry of `X^T X`.
    pub fn xtx_at(&self, i: usize, j: usize) -> f64 {
        self.xtx[i * self.n() + j]
    }

    /// Builds the summary from a plain (continuous) cofactor payload.
    ///
    /// `names` are the batch attribute names, `label` the batch index of the
    /// label attribute.
    pub fn from_cofactor(payload: &Cofactor, names: &[String], label: usize) -> Result<Self> {
        let dim = names.len();
        if label >= dim {
            return Err(FivmError::Numerical(format!(
                "label index {label} out of range for {dim} attributes"
            )));
        }
        let dense = payload.to_dense(dim);
        let mut columns = vec![FeatureColumn::Intercept];
        for attr in 0..dim {
            if attr != label {
                columns.push(FeatureColumn::Continuous { attr });
            }
        }
        let features = FeatureSpace {
            columns,
            attr_names: names.to_vec(),
        };
        let n = features.len();
        let mut xtx = vec![0.0; n * n];
        let mut xty = vec![0.0; n];
        let value_of = |col: &FeatureColumn, other: Option<&FeatureColumn>| -> f64 {
            // Helper resolving <col, other> products from the cofactor.
            match (col, other) {
                (FeatureColumn::Intercept, None) => dense.count,
                (FeatureColumn::Continuous { attr }, None) => dense.sums[*attr],
                (FeatureColumn::Intercept, Some(FeatureColumn::Intercept)) => dense.count,
                (FeatureColumn::Intercept, Some(FeatureColumn::Continuous { attr }))
                | (FeatureColumn::Continuous { attr }, Some(FeatureColumn::Intercept)) => {
                    dense.sums[*attr]
                }
                (
                    FeatureColumn::Continuous { attr: a },
                    Some(FeatureColumn::Continuous { attr: b }),
                ) => dense.prods.get(*a, *b),
                _ => unreachable!("categorical columns cannot appear here"),
            }
        };
        for i in 0..n {
            for j in 0..n {
                xtx[i * n + j] = value_of(&features.columns[i], Some(&features.columns[j]));
            }
            // X^T y: product of column i with the label attribute.
            xty[i] = match &features.columns[i] {
                FeatureColumn::Intercept => dense.sums[label],
                FeatureColumn::Continuous { attr } => dense.prods.get(*attr, label),
                FeatureColumn::Categorical { .. } => unreachable!(),
            };
        }
        Ok(DenseCovar {
            features,
            count: dense.count,
            xtx,
            xty,
            yty: dense.prods.get(label, label),
        })
    }

    /// Builds the summary from a generalized cofactor payload with mixed
    /// continuous/categorical attributes.
    ///
    /// Categorical attributes contribute one column per category observed in
    /// the join result (the compact one-hot encoding of the paper).  The
    /// label must be continuous.  `ctx` is the ring context the payload was
    /// maintained under (the engine's — [`fivm_ring::RingCtx`]); categories
    /// are decoded through it once, at this output boundary, while all
    /// aggregate lookups probe the encoded interior directly.
    pub fn from_gen_cofactor(
        payload: &GenCofactor,
        names: &[String],
        kinds: &[AttrKind],
        label: usize,
        ctx: &RingCtx,
    ) -> Result<Self> {
        let dim = names.len();
        if label >= dim {
            return Err(FivmError::Numerical(format!(
                "label index {label} out of range for {dim} attributes"
            )));
        }
        if kinds[label] == AttrKind::Categorical {
            return Err(FivmError::Numerical(
                "the regression label must be continuous".into(),
            ));
        }
        let dense = payload.to_dense(dim);

        // Enumerate categories of each categorical attribute from s_X,
        // keeping the encoded value next to the decoded one: the decoded
        // form names the column and fixes a stable order, the encoded form
        // probes the payload.
        let mut columns = vec![FeatureColumn::Intercept];
        let mut encoded: Vec<Option<EncodedValue>> = vec![None];
        for (attr, kind) in kinds.iter().enumerate().take(dim) {
            if attr == label {
                continue;
            }
            match kind {
                AttrKind::Continuous => {
                    columns.push(FeatureColumn::Continuous { attr });
                    encoded.push(None);
                }
                AttrKind::Categorical => {
                    let mut cats: Vec<(Value, EncodedValue)> = ctx.with_dict(|dict| {
                        dense
                            .sum_cats(attr)
                            .iter()
                            .map(|(k, _)| {
                                let ev = k.value(0);
                                (dict.decode_value(ev), ev)
                            })
                            .collect()
                    });
                    cats.sort_by(|a, b| a.0.cmp(&b.0));
                    for (category, ev) in cats {
                        columns.push(FeatureColumn::Categorical { attr, category });
                        encoded.push(Some(ev));
                    }
                }
            }
        }
        let features = FeatureSpace {
            columns,
            attr_names: names.to_vec(),
        };
        let n = features.len();

        // Looks up the aggregate SUM(col_i * col_j) from the payload; the
        // encoded category rides next to each categorical column.
        type Col<'a> = (&'a FeatureColumn, Option<EncodedValue>);
        let pair_value = |(a, ea): Col, (b, eb): Col| -> f64 {
            use FeatureColumn as F;
            match (a, b) {
                (F::Intercept, F::Intercept) => dense.count,
                (F::Intercept, F::Continuous { attr }) | (F::Continuous { attr }, F::Intercept) => {
                    dense.sum_scalar(*attr)
                }
                (F::Intercept, F::Categorical { attr, .. }) => {
                    dense
                        .sum_cats(*attr)
                        .get(&[(*attr as u32, eb.expect("categorical column"))])
                }
                (F::Categorical { attr, .. }, F::Intercept) => {
                    dense
                        .sum_cats(*attr)
                        .get(&[(*attr as u32, ea.expect("categorical column"))])
                }
                (F::Continuous { attr: a }, F::Continuous { attr: b }) => {
                    dense.prod_scalar(*a, *b)
                }
                (F::Continuous { attr: c }, F::Categorical { attr: k, .. }) => dense
                    .prod_cats(*c, *k)
                    .get(&[(*k as u32, eb.expect("categorical column"))]),
                (F::Categorical { attr: k, .. }, F::Continuous { attr: c }) => dense
                    .prod_cats(*c, *k)
                    .get(&[(*k as u32, ea.expect("categorical column"))]),
                (F::Categorical { attr: k1, .. }, F::Categorical { attr: k2, .. }) => {
                    let (e1, e2) = (
                        ea.expect("categorical column"),
                        eb.expect("categorical column"),
                    );
                    if k1 == k2 {
                        // Different categories of one attribute never co-occur.
                        if e1 == e2 {
                            dense.prod_cats(*k1, *k1).get(&[(*k1 as u32, e1)])
                        } else {
                            0.0
                        }
                    } else {
                        dense
                            .prod_cats(*k1, *k2)
                            .get(&[(*k1 as u32, e1), (*k2 as u32, e2)])
                    }
                }
            }
        };

        let label_col = FeatureColumn::Continuous { attr: label };
        let mut xtx = vec![0.0; n * n];
        let mut xty = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                xtx[i * n + j] = pair_value(
                    (&features.columns[i], encoded[i]),
                    (&features.columns[j], encoded[j]),
                );
            }
            xty[i] = pair_value((&features.columns[i], encoded[i]), (&label_col, None));
        }
        Ok(DenseCovar {
            features,
            count: dense.count,
            xtx,
            xty,
            yty: dense.prod(label, label).scalar_part(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_ring::Ring;

    /// Builds the cofactor payload of the tiny dataset
    /// rows (B, C, D): (1,1,1), (1,2,3), (2,2,2) — Figure 1's join result.
    fn figure1_cofactor() -> Cofactor {
        let rows = [[1.0, 1.0, 1.0], [1.0, 2.0, 3.0], [2.0, 2.0, 2.0]];
        let mut acc = Cofactor::zero();
        for row in rows {
            let mut t = Cofactor::one();
            for (idx, x) in row.iter().enumerate() {
                t = t.mul(&Cofactor::lift(3, idx, *x));
            }
            acc.add_assign(&t);
        }
        acc
    }

    #[test]
    fn continuous_expansion_matches_hand_computation() {
        let names = vec!["B".to_string(), "C".to_string(), "D".to_string()];
        let c = DenseCovar::from_cofactor(&figure1_cofactor(), &names, 2).unwrap();
        // Columns: intercept, B, C.
        assert_eq!(c.features.len(), 3);
        assert_eq!(c.count, 3.0);
        assert_eq!(c.xtx_at(0, 0), 3.0); // N
        assert_eq!(c.xtx_at(0, 1), 4.0); // SUM(B)
        assert_eq!(c.xtx_at(1, 1), 6.0); // SUM(B*B)
        assert_eq!(c.xtx_at(1, 2), 7.0); // SUM(B*C)
        assert_eq!(c.xty, vec![6.0, 8.0, 11.0]); // SUM(D), SUM(B*D), SUM(C*D)
        assert_eq!(c.yty, 14.0); // SUM(D*D)
        assert_eq!(c.features.column_name(0), "(intercept)");
        assert_eq!(c.features.column_name(2), "C");
    }

    #[test]
    fn label_index_validation() {
        let names = vec!["B".to_string(), "C".to_string(), "D".to_string()];
        assert!(DenseCovar::from_cofactor(&figure1_cofactor(), &names, 9).is_err());
    }

    /// The same dataset with C categorical (values "c1", "c2", "c2").
    fn figure1_gen_cofactor(ctx: &RingCtx) -> GenCofactor {
        let rows: [(f64, &str, f64); 3] = [(1.0, "c1", 1.0), (1.0, "c2", 3.0), (2.0, "c2", 2.0)];
        let mut acc = GenCofactor::zero();
        for (b, c, d) in rows {
            let cat = ctx.encode_value(&Value::str(c));
            let t = GenCofactor::lift_continuous(3, 0, b)
                .mul(&GenCofactor::lift_categorical(3, 1, 1, cat))
                .mul(&GenCofactor::lift_continuous(3, 2, d));
            acc.add_assign(&t);
        }
        acc
    }

    #[test]
    fn categorical_expansion_one_hot_encodes() {
        let names = vec!["B".to_string(), "C".to_string(), "D".to_string()];
        let kinds = vec![
            AttrKind::Continuous,
            AttrKind::Categorical,
            AttrKind::Continuous,
        ];
        let ctx = RingCtx::new();
        let c =
            DenseCovar::from_gen_cofactor(&figure1_gen_cofactor(&ctx), &names, &kinds, 2, &ctx)
                .unwrap();
        // Columns: intercept, B, C=c1, C=c2.
        assert_eq!(c.features.len(), 4);
        assert_eq!(c.features.column_name(2), "C=c1");
        assert_eq!(c.features.column_name(3), "C=c2");
        assert_eq!(c.xtx_at(0, 0), 3.0);
        assert_eq!(c.xtx_at(0, 2), 1.0); // count of c1
        assert_eq!(c.xtx_at(0, 3), 2.0); // count of c2
        assert_eq!(c.xtx_at(1, 2), 1.0); // SUM(B) where C=c1
        assert_eq!(c.xtx_at(1, 3), 3.0); // SUM(B) where C=c2
        assert_eq!(c.xtx_at(2, 3), 0.0); // categories are exclusive
        assert_eq!(c.xtx_at(2, 2), 1.0);
        assert_eq!(c.xty, vec![6.0, 8.0, 1.0, 5.0]); // SUM(D), SUM(B*D), SUM(D|c1), SUM(D|c2)
        assert_eq!(c.features.columns_of_attr(1), vec![2, 3]);
        assert_eq!(c.features.columns_of_attr(0), vec![1]);
    }

    #[test]
    fn categorical_label_is_rejected() {
        let names = vec!["B".to_string(), "C".to_string()];
        let kinds = vec![AttrKind::Continuous, AttrKind::Categorical];
        let ctx = RingCtx::new();
        let x = ctx.encode_value(&Value::str("x"));
        let payload = GenCofactor::lift_continuous(2, 0, 1.0)
            .mul(&GenCofactor::lift_categorical(2, 1, 1, x));
        assert!(DenseCovar::from_gen_cofactor(&payload, &names, &kinds, 1, &ctx).is_err());
    }
}
