//! Model selection: ranking attributes by mutual information with a label.
//!
//! This is the "Model Selection" tab of the demo (Figure 2a): the user picks
//! a label attribute and a threshold; the attributes are ranked by their
//! pairwise MI with the label and only those above the threshold are kept as
//! model features.

use crate::mi::mutual_information;
use fivm_ring::GenCofactor;

/// The result of ranking attributes against a label.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSelection {
    /// Batch index of the label attribute.
    pub label: usize,
    /// `(attribute index, MI with the label)` sorted by decreasing MI.
    pub ranking: Vec<(usize, f64)>,
    /// The threshold used for selection.
    pub threshold: f64,
    /// Attribute indices whose MI is at least the threshold.
    pub selected: Vec<usize>,
}

impl ModelSelection {
    /// Whether an attribute was selected.
    pub fn is_selected(&self, attr: usize) -> bool {
        self.selected.contains(&attr)
    }

    /// Renders the ranking as text rows `name  mi  [selected]`.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        for (attr, mi) in &self.ranking {
            let marker = if self.is_selected(*attr) { "✓" } else { " " };
            out.push_str(&format!("{marker} {:<28} {mi:.6}\n", names[*attr]));
        }
        out
    }
}

/// Ranks every non-label attribute of the batch by its MI with the label and
/// selects those with MI at least `threshold`.
pub fn rank_by_mi(
    payload: &GenCofactor,
    dim: usize,
    label: usize,
    threshold: f64,
) -> ModelSelection {
    let mut ranking: Vec<(usize, f64)> = (0..dim)
        .filter(|&i| i != label)
        .map(|i| (i, mutual_information(payload, i, label)))
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let selected = ranking
        .iter()
        .filter(|(_, mi)| *mi >= threshold)
        .map(|(i, _)| *i)
        .collect();
    ModelSelection {
        label,
        ranking,
        threshold,
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::EncodedValue;
    use fivm_ring::Ring;

    /// Three attributes plus a label: attribute 0 equals the label, attribute
    /// 1 is weakly related, attribute 2 is independent noise.
    fn payload() -> GenCofactor {
        let dim = 4;
        let mut acc = GenCofactor::zero();
        for i in 0..120i64 {
            let label = i % 3;
            let strong = label;
            let weak = if i % 5 < 3 { label } else { i % 2 };
            let noise = (i * 7 + 3) % 4;
            let row = [strong, weak, noise, label];
            let mut t = GenCofactor::one();
            for (idx, v) in row.iter().enumerate() {
                t = t.mul(&GenCofactor::lift_categorical(
                    dim,
                    idx,
                    idx,
                    EncodedValue::int(*v),
                ));
            }
            acc.add_assign(&t);
        }
        acc
    }

    #[test]
    fn ranking_orders_by_relevance() {
        let sel = rank_by_mi(&payload(), 4, 3, 0.05);
        assert_eq!(sel.ranking.len(), 3);
        // The perfectly correlated attribute comes first, noise last.
        assert_eq!(sel.ranking[0].0, 0);
        assert_eq!(sel.ranking[2].0, 2);
        assert!(sel.ranking[0].1 > sel.ranking[1].1);
        assert!(sel.ranking[1].1 > sel.ranking[2].1);
    }

    #[test]
    fn threshold_controls_selection() {
        let p = payload();
        let all = rank_by_mi(&p, 4, 3, 0.0);
        assert_eq!(all.selected.len(), 3);
        let strict = rank_by_mi(&p, 4, 3, 0.5);
        assert!(strict.selected.len() < all.selected.len());
        assert!(strict.is_selected(0));
        assert!(!strict.is_selected(2));
        // A threshold above every MI selects nothing.
        let none = rank_by_mi(&p, 4, 3, 1e9);
        assert!(none.selected.is_empty());
    }

    #[test]
    fn render_lists_names_and_marks_selected() {
        let names = vec![
            "strong".to_string(),
            "weak".to_string(),
            "noise".to_string(),
            "label".to_string(),
        ];
        let sel = rank_by_mi(&payload(), 4, 3, 0.5);
        let text = sel.render(&names);
        assert!(text.contains("strong"));
        assert!(text.contains("noise"));
        assert!(text.lines().next().unwrap().starts_with('✓'));
    }
}
