//! Ridge linear regression from COVAR payloads.
//!
//! The training dataset is the join result, but it is never materialized:
//! the gradient of the ridge objective only needs `X^T X`, `X^T y` and the
//! tuple count, all of which are read off the (generalized) cofactor payload
//! maintained by the engine ([`crate::covar::DenseCovar`]).
//!
//! Two solvers are provided:
//!
//! * [`RidgeSolver::solve_closed_form`] — Cholesky solve of
//!   `(X^T X + λ I) θ = X^T y` (the intercept is not regularized),
//! * [`RidgeSolver::solve_gradient_descent`] — batch gradient descent with a
//!   warm start, matching the demo's behaviour of resuming convergence from
//!   the previous parameters after every bulk of updates.

use crate::covar::DenseCovar;
use crate::linalg::{matvec, norm2, solve_spd};
use fivm_common::{FivmError, Result};

/// A trained ridge regression model over an expanded feature space.
#[derive(Clone, Debug, PartialEq)]
pub struct RidgeModel {
    /// Model parameters, aligned with the columns of the feature space
    /// (index 0 is the intercept).
    pub params: Vec<f64>,
    /// Column names, aligned with `params`.
    pub feature_names: Vec<String>,
    /// Training objective value (mean squared error + ridge penalty).
    pub objective: f64,
    /// Number of gradient-descent iterations performed (0 for closed form).
    pub iterations: usize,
}

impl RidgeModel {
    /// Predicts the label for a dense feature vector laid out like the
    /// feature space (the intercept column must be 1).
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.params
            .iter()
            .zip(features.iter())
            .map(|(p, x)| p * x)
            .sum()
    }
}

/// Configuration of the ridge solvers.
#[derive(Clone, Debug, PartialEq)]
pub struct RidgeSolver {
    /// Ridge regularization strength λ.
    pub lambda: f64,
    /// Gradient-descent learning rate (step size).
    pub learning_rate: f64,
    /// Maximum gradient-descent iterations per call.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm (relative to the count).
    pub tolerance: f64,
}

impl Default for RidgeSolver {
    fn default() -> Self {
        RidgeSolver {
            lambda: 1e-3,
            learning_rate: 0.1,
            max_iterations: 10_000,
            tolerance: 1e-9,
        }
    }
}

impl RidgeSolver {
    /// A solver with the given regularization and default descent settings.
    pub fn with_lambda(lambda: f64) -> Self {
        RidgeSolver {
            lambda,
            ..Default::default()
        }
    }

    /// The ridge objective `(‖y - Xθ‖² + λ‖θ₋₀‖²) / N` computed from the
    /// summary.
    pub fn objective(&self, covar: &DenseCovar, params: &[f64]) -> f64 {
        let n = covar.features.len();
        let xtx_theta = matvec(&covar.xtx, params, n);
        let mut quad = 0.0;
        let mut lin = 0.0;
        for i in 0..n {
            quad += params[i] * xtx_theta[i];
            lin += params[i] * covar.xty[i];
        }
        let penalty: f64 = params.iter().skip(1).map(|p| p * p).sum::<f64>() * self.lambda;
        let count = covar.count.max(1.0);
        (covar.yty - 2.0 * lin + quad + penalty) / count
    }

    /// Solves the normal equations `(X^T X + λ I) θ = X^T y` exactly.
    pub fn solve_closed_form(&self, covar: &DenseCovar) -> Result<RidgeModel> {
        if covar.count <= 0.0 {
            return Err(FivmError::Numerical(
                "cannot train a model on an empty training dataset".into(),
            ));
        }
        let n = covar.features.len();
        let mut a = covar.xtx.clone();
        for i in 1..n {
            a[i * n + i] += self.lambda;
        }
        // A tiny jitter on the intercept keeps the system positive definite
        // even for degenerate data.
        a[0] += 1e-12;
        let params = solve_spd(&a, &covar.xty, n)?;
        let objective = self.objective(covar, &params);
        Ok(RidgeModel {
            params,
            feature_names: (0..n).map(|i| covar.features.column_name(i)).collect(),
            objective,
            iterations: 0,
        })
    }

    /// Runs batch gradient descent, optionally warm-starting from previous
    /// parameters (the demo resumes convergence after every update bulk).
    pub fn solve_gradient_descent(
        &self,
        covar: &DenseCovar,
        warm_start: Option<&[f64]>,
    ) -> Result<RidgeModel> {
        if covar.count <= 0.0 {
            return Err(FivmError::Numerical(
                "cannot train a model on an empty training dataset".into(),
            ));
        }
        let n = covar.features.len();
        let mut params = match warm_start {
            Some(p) if p.len() == n => p.to_vec(),
            _ => vec![0.0; n],
        };
        let count = covar.count.max(1.0);
        // Normalizing by the count and by the largest diagonal entry keeps
        // the step size stable across dataset sizes and feature scales.
        let max_diag = (0..n)
            .map(|i| covar.xtx[i * n + i])
            .fold(1.0f64, |a, b| a.max(b))
            / count;
        let step = self.learning_rate / max_diag;
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            let xtx_theta = matvec(&covar.xtx, &params, n);
            let mut grad = vec![0.0; n];
            for i in 0..n {
                grad[i] = (xtx_theta[i] - covar.xty[i]) / count;
                if i > 0 {
                    grad[i] += self.lambda * params[i] / count;
                }
            }
            let gnorm = norm2(&grad);
            if gnorm < self.tolerance {
                break;
            }
            for i in 0..n {
                params[i] -= step * grad[i];
            }
            iterations += 1;
        }
        let objective = self.objective(covar, &params);
        Ok(RidgeModel {
            params,
            feature_names: (0..n).map(|i| covar.features.column_name(i)).collect(),
            objective,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_ring::{Cofactor, Ring};

    /// Builds a cofactor payload for rows generated by a known linear model
    /// `y = 2 + 3·x1 - x2` (no noise), attributes (x1, x2, y).
    fn synthetic_cofactor() -> Cofactor {
        let mut acc = Cofactor::zero();
        for i in 0..40 {
            let x1 = (i % 7) as f64;
            let x2 = ((i * 3) % 5) as f64;
            let y = 2.0 + 3.0 * x1 - x2;
            let t = Cofactor::lift(3, 0, x1)
                .mul(&Cofactor::lift(3, 1, x2))
                .mul(&Cofactor::lift(3, 2, y));
            acc.add_assign(&t);
        }
        acc
    }

    fn names() -> Vec<String> {
        vec!["x1".into(), "x2".into(), "y".into()]
    }

    #[test]
    fn closed_form_recovers_generating_model() {
        let covar = DenseCovar::from_cofactor(&synthetic_cofactor(), &names(), 2).unwrap();
        let model = RidgeSolver::with_lambda(1e-9)
            .solve_closed_form(&covar)
            .unwrap();
        assert!((model.params[0] - 2.0).abs() < 1e-5, "{:?}", model.params);
        assert!((model.params[1] - 3.0).abs() < 1e-5);
        assert!((model.params[2] + 1.0).abs() < 1e-5);
        assert!(model.objective < 1e-8);
        assert_eq!(model.feature_names[0], "(intercept)");
        assert_eq!(model.iterations, 0);
        // Prediction uses the intercept column.
        let pred = model.predict(&[1.0, 2.0, 1.0]);
        assert!((pred - (2.0 + 6.0 - 1.0)).abs() < 1e-4);
    }

    #[test]
    fn gradient_descent_converges_to_closed_form() {
        let covar = DenseCovar::from_cofactor(&synthetic_cofactor(), &names(), 2).unwrap();
        let solver = RidgeSolver {
            lambda: 1e-6,
            learning_rate: 0.5,
            max_iterations: 50_000,
            tolerance: 1e-12,
        };
        let exact = solver.solve_closed_form(&covar).unwrap();
        let gd = solver.solve_gradient_descent(&covar, None).unwrap();
        for (a, b) in exact.params.iter().zip(gd.params.iter()) {
            assert!((a - b).abs() < 1e-4, "exact={exact:?} gd={gd:?}");
        }
        assert!(gd.iterations > 0);
    }

    #[test]
    fn warm_start_resumes_quickly() {
        let covar = DenseCovar::from_cofactor(&synthetic_cofactor(), &names(), 2).unwrap();
        let solver = RidgeSolver {
            lambda: 1e-6,
            learning_rate: 0.5,
            max_iterations: 200_000,
            tolerance: 1e-10,
        };
        let cold = solver.solve_gradient_descent(&covar, None).unwrap();
        // Re-solving from the converged parameters takes (almost) no steps.
        let warm = solver
            .solve_gradient_descent(&covar, Some(&cold.params))
            .unwrap();
        assert!(warm.iterations <= cold.iterations / 10 + 1);
    }

    #[test]
    fn ridge_penalty_shrinks_parameters() {
        let covar = DenseCovar::from_cofactor(&synthetic_cofactor(), &names(), 2).unwrap();
        let small = RidgeSolver::with_lambda(1e-9)
            .solve_closed_form(&covar)
            .unwrap();
        let large = RidgeSolver::with_lambda(1e4)
            .solve_closed_form(&covar)
            .unwrap();
        let norm = |m: &RidgeModel| m.params.iter().skip(1).map(|p| p * p).sum::<f64>();
        assert!(norm(&large) < norm(&small));
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let covar = DenseCovar::from_cofactor(&Cofactor::zero(), &names(), 2).unwrap();
        assert!(RidgeSolver::default().solve_closed_form(&covar).is_err());
        assert!(RidgeSolver::default()
            .solve_gradient_descent(&covar, None)
            .is_err());
    }
}
