#![forbid(unsafe_code)]
//! Machine learning on top of F-IVM ring payloads.
//!
//! The F-IVM engine maintains compound aggregates — the COVAR matrix (plain
//! or with relational values for categorical attributes) and the count
//! aggregates behind pairwise mutual information.  This crate turns those
//! payloads into the applications demonstrated by the paper:
//!
//! * [`regression`] — ridge linear regression by batch gradient descent
//!   (warm-started across update bulks, as in the demo) or a closed-form
//!   Cholesky solve, over continuous or mixed continuous/categorical
//!   features,
//! * [`mi`] — pairwise mutual information and entropies from the generalized
//!   cofactor payload,
//! * [`model_selection`] — ranking attributes by their MI with a label and
//!   thresholding to select model features (Figure 2a),
//! * [`chow_liu`] — optimal tree-shaped Bayesian networks via maximum
//!   spanning trees over the MI matrix (Figure 2c),
//! * [`covar`] — expansion of (generalized) cofactor payloads into dense
//!   design-matrix summaries (`X^T X`, `X^T y`), including the compact
//!   one-hot encoding of categorical interactions,
//! * [`linalg`] — the small dense linear-algebra kernel (Cholesky solve)
//!   used by the closed-form solver.

pub mod chow_liu;
pub mod covar;
pub mod linalg;
pub mod mi;
pub mod model_selection;
pub mod regression;

pub use chow_liu::{chow_liu_tree, ChowLiuTree};
pub use covar::{DenseCovar, FeatureSpace};
pub use mi::{entropy, mi_matrix, mutual_information};
pub use model_selection::{rank_by_mi, ModelSelection};
pub use regression::{RidgeModel, RidgeSolver};
