//! Pairwise mutual information from the generalized cofactor payload.
//!
//! With every aggregate attribute lifted categorically, the payload contains
//! exactly the count aggregates of the paper's MI formulation:
//! `C_∅ = SUM(1)`, `C_X = SUM(1) GROUP BY X` (in the sum vector) and
//! `C_XY = SUM(1) GROUP BY (X, Y)` (in the interaction matrix).  This module
//! evaluates
//!
//! ```text
//! I(X, Y) = Σ_x Σ_y  C_XY(x,y)/C_∅ · log( C_∅ · C_XY(x,y) / (C_X(x) · C_Y(y)) )
//! ```
//!
//! and the marginal entropies `H(X)` used on the diagonal of the MI matrix.

use fivm_common::EncodedValue;
use fivm_ring::GenCofactor;

/// The marginal entropy `H(X)` (natural log) of attribute `x` of the batch.
///
/// Returns 0 for an empty dataset.
///
/// MI evaluation never decodes a category: group keys only need to be
/// *compared*, which the encoded ring interior does word-wise, so the whole
/// module is dictionary-free.
pub fn entropy(payload: &GenCofactor, x: usize) -> f64 {
    let total = payload.count();
    if total <= 0.0 {
        return 0.0;
    }
    // MI lifts every attribute categorically, so the counts live entirely
    // in the categorical interiors of the split representation.
    let Some(cx) = payload.sum_cats(x) else {
        return 0.0;
    };
    let mut h = 0.0;
    for (_, c) in cx.iter() {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.ln();
        }
    }
    h
}

/// The mutual information `I(X, Y)` (natural log) between attributes `x` and
/// `y` of the batch.  For `x == y` this equals the entropy `H(X)`.
///
/// Returns 0 for an empty dataset.
pub fn mutual_information(payload: &GenCofactor, x: usize, y: usize) -> f64 {
    if x == y {
        return entropy(payload, x);
    }
    let total = payload.count();
    if total <= 0.0 {
        return 0.0;
    }
    let (Some(cx), Some(cy), Some(cxy)) = (
        payload.sum_cats(x),
        payload.sum_cats(y),
        payload.prod_cats(x, y),
    ) else {
        return 0.0;
    };
    let mut mi = 0.0;
    for (key, joint) in cxy.iter() {
        if joint <= 0.0 {
            continue;
        }
        // The joint key holds both attribute assignments; split it (on the
        // encoded pairs — no decoding, no allocation beyond the two
        // sub-key probes).
        let x_key: Vec<(u32, EncodedValue)> =
            key.pairs().filter(|(a, _)| *a == x as u32).collect();
        let y_key: Vec<(u32, EncodedValue)> =
            key.pairs().filter(|(a, _)| *a == y as u32).collect();
        let cx_v = cx.get(&x_key);
        let cy_v = cy.get(&y_key);
        if cx_v <= 0.0 || cy_v <= 0.0 {
            continue;
        }
        mi += joint / total * ((total * joint) / (cx_v * cy_v)).ln();
    }
    mi.max(0.0)
}

/// The full pairwise MI matrix over a batch of `dim` attributes; the
/// diagonal holds the marginal entropies.
pub fn mi_matrix(payload: &GenCofactor, dim: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; dim]; dim];
    // Symmetric fill: both (i, j) and (j, i) are written, so an indexed
    // loop is clearer than iterator adapters here.
    #[allow(clippy::needless_range_loop)]
    for i in 0..dim {
        for j in i..dim {
            let v = mutual_information(payload, i, j);
            out[i][j] = v;
            out[j][i] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_ring::Ring;

    /// Builds an MI payload from explicit categorical rows.
    fn payload_from_rows(rows: &[Vec<i64>]) -> GenCofactor {
        let dim = rows[0].len();
        let mut acc = GenCofactor::zero();
        for row in rows {
            let mut t = GenCofactor::one();
            for (idx, v) in row.iter().enumerate() {
                t = t.mul(&GenCofactor::lift_categorical(
                    dim,
                    idx,
                    idx,
                    EncodedValue::int(*v),
                ));
            }
            acc.add_assign(&t);
        }
        acc
    }

    #[test]
    fn identical_attributes_have_mi_equal_to_entropy() {
        // X and Y perfectly correlated (Y = X): I(X, Y) = H(X).
        let rows: Vec<Vec<i64>> = (0..20).map(|i| vec![i % 4, i % 4]).collect();
        let p = payload_from_rows(&rows);
        let h = entropy(&p, 0);
        let i = mutual_information(&p, 0, 1);
        assert!((h - (4.0f64).ln()).abs() < 1e-9); // uniform over 4 values
        assert!((i - h).abs() < 1e-9);
        // The diagonal of the matrix is the entropy.
        let m = mi_matrix(&p, 2);
        assert!((m[0][0] - h).abs() < 1e-12);
        assert!((m[0][1] - m[1][0]).abs() < 1e-12);
    }

    #[test]
    fn independent_attributes_have_zero_mi() {
        // X uniform over {0,1}, Y uniform over {0,1,2,3,4}, independent by
        // construction (full cross product).
        let mut rows = Vec::new();
        for x in 0..2 {
            for y in 0..5 {
                rows.push(vec![x, y]);
            }
        }
        let p = payload_from_rows(&rows);
        let i = mutual_information(&p, 0, 1);
        assert!(i.abs() < 1e-12, "expected 0, got {i}");
    }

    #[test]
    fn partially_correlated_attributes_have_intermediate_mi() {
        // Y = X for half the rows, random-ish otherwise.
        let mut rows = Vec::new();
        for i in 0..40i64 {
            let x = i % 2;
            let y = if i % 4 < 2 { x } else { (i / 4) % 2 };
            rows.push(vec![x, y]);
        }
        let p = payload_from_rows(&rows);
        let i01 = mutual_information(&p, 0, 1);
        let h0 = entropy(&p, 0);
        assert!(i01 > 0.0);
        assert!(i01 < h0);
    }

    #[test]
    fn empty_payload_yields_zero() {
        let p = GenCofactor::zero();
        assert_eq!(entropy(&p, 0), 0.0);
        assert_eq!(mutual_information(&p, 0, 1), 0.0);
    }

    #[test]
    fn mi_is_nonnegative_and_bounded_by_min_entropy() {
        let rows: Vec<Vec<i64>> = (0..60)
            .map(|i| vec![i % 3, (i * 7 + i % 5) % 4, i % 2])
            .collect();
        let p = payload_from_rows(&rows);
        let m = mi_matrix(&p, 3);
        for i in 0..3 {
            for j in 0..3 {
                assert!(m[i][j] >= 0.0);
                if i != j {
                    assert!(m[i][j] <= m[i][i].min(m[j][j]) + 1e-9);
                }
            }
        }
    }
}
