//! Chow-Liu trees: optimal tree-shaped Bayesian networks.
//!
//! The Chow-Liu algorithm builds a maximum spanning tree over the complete
//! graph whose edge weights are the pairwise mutual information of the
//! attributes.  The demo (Figure 2c) recomputes the tree after every bulk of
//! updates from the maintained MI matrix.

use fivm_common::{FivmError, Result};

/// A Chow-Liu tree over a set of attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct ChowLiuTree {
    /// The root attribute chosen by the caller.
    pub root: usize,
    /// `parent[i]` is the parent attribute of attribute `i` (`None` for the
    /// root).
    pub parent: Vec<Option<usize>>,
    /// The edges `(parent, child, mutual information)` in insertion order.
    pub edges: Vec<(usize, usize, f64)>,
    /// Total mutual information captured by the tree.
    pub total_mi: f64,
}

impl ChowLiuTree {
    /// The children of an attribute.
    pub fn children(&self, attr: usize) -> Vec<usize> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(attr))
            .map(|(i, _)| i)
            .collect()
    }

    /// Depth of an attribute in the tree (root has depth 0).
    pub fn depth(&self, attr: usize) -> usize {
        let mut d = 0;
        let mut cur = attr;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Renders the tree as an indented ASCII listing.
    pub fn render(&self, names: &[String]) -> String {
        fn recurse(tree: &ChowLiuTree, node: usize, names: &[String], depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&names[node]);
            out.push('\n');
            for c in tree.children(node) {
                recurse(tree, c, names, depth + 1, out);
            }
        }
        let mut out = String::new();
        recurse(self, self.root, names, 0, &mut out);
        out
    }
}

/// Builds the Chow-Liu tree from a symmetric pairwise MI matrix using Prim's
/// algorithm (maximum spanning tree), rooted at `root`.
pub fn chow_liu_tree(mi: &[Vec<f64>], root: usize) -> Result<ChowLiuTree> {
    let n = mi.len();
    if n == 0 {
        return Err(FivmError::Numerical("empty MI matrix".into()));
    }
    if root >= n {
        return Err(FivmError::Numerical(format!(
            "root {root} out of range for {n} attributes"
        )));
    }
    for row in mi {
        if row.len() != n {
            return Err(FivmError::Numerical("MI matrix is not square".into()));
        }
    }

    let mut in_tree = vec![false; n];
    let mut best_weight = vec![f64::NEG_INFINITY; n];
    let mut best_parent = vec![None; n];
    let mut parent = vec![None; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut total_mi = 0.0;

    in_tree[root] = true;
    for v in 0..n {
        if v != root {
            best_weight[v] = mi[root][v];
            best_parent[v] = Some(root);
        }
    }

    for _ in 1..n {
        // Pick the attribute outside the tree with the largest MI to the tree.
        let mut pick = None;
        for v in 0..n {
            if !in_tree[v] {
                match pick {
                    None => pick = Some(v),
                    Some(p) if best_weight[v] > best_weight[p] => pick = Some(v),
                    _ => {}
                }
            }
        }
        let v = pick.expect("there is always an attribute left to add");
        in_tree[v] = true;
        let p = best_parent[v].expect("non-root attributes always have a best parent");
        parent[v] = Some(p);
        edges.push((p, v, best_weight[v]));
        total_mi += best_weight[v].max(0.0);
        for u in 0..n {
            if !in_tree[u] && mi[v][u] > best_weight[u] {
                best_weight[u] = mi[v][u];
                best_parent[u] = Some(v);
            }
        }
    }

    Ok(ChowLiuTree {
        root,
        parent,
        edges,
        total_mi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_strongest_edges() {
        // 4 attributes; MI strongly links 0-1, 1-2, 2-3; weak elsewhere.
        let mi = vec![
            vec![1.0, 0.9, 0.1, 0.1],
            vec![0.9, 1.0, 0.8, 0.1],
            vec![0.1, 0.8, 1.0, 0.7],
            vec![0.1, 0.1, 0.7, 1.0],
        ];
        let tree = chow_liu_tree(&mi, 0).unwrap();
        assert_eq!(tree.parent[0], None);
        assert_eq!(tree.parent[1], Some(0));
        assert_eq!(tree.parent[2], Some(1));
        assert_eq!(tree.parent[3], Some(2));
        assert!((tree.total_mi - (0.9 + 0.8 + 0.7)).abs() < 1e-12);
        assert_eq!(tree.edges.len(), 3);
        assert_eq!(tree.children(1), vec![2]);
        assert_eq!(tree.depth(3), 3);
    }

    #[test]
    fn star_shaped_mi_produces_star_tree() {
        // Attribute 2 is the hub.
        let mi = vec![
            vec![0.0, 0.0, 0.9, 0.0],
            vec![0.0, 0.0, 0.8, 0.0],
            vec![0.9, 0.8, 0.0, 0.7],
            vec![0.0, 0.0, 0.7, 0.0],
        ];
        let tree = chow_liu_tree(&mi, 2).unwrap();
        assert_eq!(tree.parent[0], Some(2));
        assert_eq!(tree.parent[1], Some(2));
        assert_eq!(tree.parent[3], Some(2));
        let mut kids = tree.children(2);
        kids.sort();
        assert_eq!(kids, vec![0, 1, 3]);
        // Rendering lists every attribute.
        let names: Vec<String> = (0..4).map(|i| format!("a{i}")).collect();
        let text = tree.render(&names);
        for n in &names {
            assert!(text.contains(n));
        }
    }

    #[test]
    fn root_choice_does_not_change_edge_set_weight() {
        let mi = vec![
            vec![0.0, 0.5, 0.2],
            vec![0.5, 0.0, 0.4],
            vec![0.2, 0.4, 0.0],
        ];
        let t0 = chow_liu_tree(&mi, 0).unwrap();
        let t2 = chow_liu_tree(&mi, 2).unwrap();
        assert!((t0.total_mi - t2.total_mi).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(chow_liu_tree(&[], 0).is_err());
        let mi = vec![vec![0.0, 0.1], vec![0.1, 0.0]];
        assert!(chow_liu_tree(&mi, 5).is_err());
        let ragged = vec![vec![0.0, 0.1], vec![0.1]];
        assert!(chow_liu_tree(&ragged, 0).is_err());
    }

    #[test]
    fn single_attribute_tree() {
        let tree = chow_liu_tree(&[vec![0.0]], 0).unwrap();
        assert_eq!(tree.edges.len(), 0);
        assert_eq!(tree.parent, vec![None]);
        assert_eq!(tree.total_mi, 0.0);
    }
}
