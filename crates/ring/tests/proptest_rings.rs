//! Randomized property tests of the ring axioms for every ring
//! implementation.
//!
//! The F-IVM engine is only correct if its payload types really behave like
//! rings (commutative addition with inverses, associative multiplication,
//! distributivity).  These tests generate random elements of each ring from
//! seeded generators and check the axioms with the shared checkers from
//! `fivm_ring::axioms`.  (The environment has no crates.io access, so this
//! uses a seeded RNG harness instead of `proptest`; every case is
//! deterministic and reproducible from the printed seed.)

use fivm_common::EncodedValue;
use fivm_ring::{axioms, ApproxEq, Cofactor, GenCofactor, MatrixValue, RelValue, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 3;
const CASES: u64 = 48;

/// Runs `body` once per case with a per-case RNG, labelling failures with
/// the case seed.
fn for_cases(test: &str, body: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0xF1B0 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(err) = result {
            eprintln!("{test}: failing case seed = {seed}");
            std::panic::resume_unwind(err);
        }
    }
}

fn rand_cofactor(rng: &mut StdRng) -> Cofactor {
    let mut acc = Cofactor::zero();
    for _ in 0..rng.gen_range(0..3usize) {
        let factor = |rng: &mut StdRng| {
            if rng.gen_bool(0.7) {
                Cofactor::lift(DIM, rng.gen_range(0..DIM), rng.gen_range(-8.0..8.0f64))
            } else {
                Cofactor::scalar(rng.gen_range(-4.0..4.0f64))
            }
        };
        let (a, b) = (factor(rng), factor(rng));
        acc.add_assign(&a.mul(&b));
    }
    acc
}

fn rand_relvalue(rng: &mut StdRng) -> RelValue {
    let mut acc = RelValue::empty();
    for _ in 0..rng.gen_range(0..4usize) {
        acc.add_assign(&RelValue::weighted(
            rng.gen_range(0..3usize),
            EncodedValue::int(rng.gen_range(-3..4i64)),
            rng.gen_range(-3.0..3.0f64),
        ));
    }
    acc
}

fn rand_gen_cofactor(rng: &mut StdRng) -> GenCofactor {
    let mut acc = GenCofactor::zero();
    for _ in 0..rng.gen_range(0..3usize) {
        let factor = |rng: &mut StdRng| match rng.gen_range(0..3u32) {
            0 => GenCofactor::lift_continuous(DIM, rng.gen_range(0..DIM), rng.gen_range(-5.0..5.0)),
            1 => {
                let idx = rng.gen_range(0..DIM);
                GenCofactor::lift_categorical(DIM, idx, idx, EncodedValue::int(rng.gen_range(0..4i64)))
            }
            _ => GenCofactor::scalar(rng.gen_range(-3.0..3.0f64)),
        };
        let (a, b) = (factor(rng), factor(rng));
        acc.add_assign(&a.mul(&b));
    }
    acc
}

fn rand_matrix(rng: &mut StdRng) -> MatrixValue {
    let data: Vec<f64> = (0..4).map(|_| rng.gen_range(-4.0..4.0f64)).collect();
    MatrixValue::from_rows(2, 2, data)
}

#[test]
fn integer_ring_axioms() {
    for_cases("integer_ring_axioms", |rng| {
        let (a, b, c) = (
            rng.gen_range(-50..50i64),
            rng.gen_range(-50..50i64),
            rng.gen_range(-50..50i64),
        );
        axioms::check_ring_axioms(&a, &b, &c, 0.0);
    });
}

#[test]
fn real_ring_axioms() {
    for_cases("real_ring_axioms", |rng| {
        let (a, b, c) = (
            rng.gen_range(-50.0..50.0f64),
            rng.gen_range(-50.0..50.0f64),
            rng.gen_range(-50.0..50.0f64),
        );
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    });
}

#[test]
fn cofactor_ring_axioms() {
    for_cases("cofactor_ring_axioms", |rng| {
        let (a, b, c) = (rand_cofactor(rng), rand_cofactor(rng), rand_cofactor(rng));
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    });
}

#[test]
fn relvalue_ring_axioms() {
    for_cases("relvalue_ring_axioms", |rng| {
        let (a, b, c) = (rand_relvalue(rng), rand_relvalue(rng), rand_relvalue(rng));
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    });
}

#[test]
fn gen_cofactor_ring_axioms() {
    for_cases("gen_cofactor_ring_axioms", |rng| {
        let (a, b, c) = (
            rand_gen_cofactor(rng),
            rand_gen_cofactor(rng),
            rand_gen_cofactor(rng),
        );
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    });
}

#[test]
fn matrix_ring_axioms_without_mul_commutativity() {
    for_cases("matrix_ring_axioms", |rng| {
        // Matrix multiplication is not commutative, but all the checked
        // axioms (associativity, distributivity, identities) must hold.
        let (a, b, c) = (rand_matrix(rng), rand_matrix(rng), rand_matrix(rng));
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    });
}

#[test]
fn cofactor_deletion_cancels_insertion() {
    for_cases("cofactor_deletion_cancels_insertion", |rng| {
        let a = rand_cofactor(rng);
        let cancelled = a.add(&a.neg());
        assert!(cancelled.is_zero() || cancelled.approx_eq(&Cofactor::zero(), 1e-9));
    });
}

#[test]
fn gen_cofactor_scale_matches_repeated_add() {
    for_cases("gen_cofactor_scale_matches_repeated_add", |rng| {
        let a = rand_gen_cofactor(rng);
        let k = rng.gen_range(0..5i64);
        let mut acc = GenCofactor::zero();
        for _ in 0..k {
            acc.add_assign(&a);
        }
        assert!(a.scale_int(k).approx_eq(&acc, 1e-7));
    });
}
