//! Property-based tests of the ring axioms for every ring implementation.
//!
//! The F-IVM engine is only correct if its payload types really behave like
//! rings (commutative addition with inverses, associative multiplication,
//! distributivity).  These tests generate random elements of each ring and
//! check the axioms with the shared checkers from `fivm_ring::axioms`.

use fivm_common::Value;
use fivm_ring::{axioms, Cofactor, GenCofactor, MatrixValue, RelValue, Ring};
use proptest::prelude::*;

const DIM: usize = 3;

fn arb_cofactor() -> impl Strategy<Value = Cofactor> {
    // A random sum of products of lifts and scalars.
    let term = (0usize..DIM, -8.0f64..8.0).prop_map(|(idx, x)| Cofactor::lift(DIM, idx, x));
    let scalar = (-4.0f64..4.0).prop_map(Cofactor::scalar);
    let factor = prop_oneof![term, scalar];
    prop::collection::vec((factor.clone(), factor), 0..3).prop_map(|pairs| {
        let mut acc = Cofactor::zero();
        for (a, b) in pairs {
            acc.add_assign(&a.mul(&b));
        }
        acc
    })
}

fn arb_relvalue() -> impl Strategy<Value = RelValue> {
    prop::collection::vec((0u32..3, -3i64..4, -3.0f64..3.0), 0..4).prop_map(|entries| {
        let mut acc = RelValue::empty();
        for (attr, val, w) in entries {
            acc.add_assign(&RelValue::weighted(attr as usize, Value::int(val), w));
        }
        acc
    })
}

fn arb_gen_cofactor() -> impl Strategy<Value = GenCofactor> {
    let cont = (0usize..DIM, -5.0f64..5.0)
        .prop_map(|(idx, x)| GenCofactor::lift_continuous(DIM, idx, x));
    let cat = (0usize..DIM, 0i64..4)
        .prop_map(|(idx, v)| GenCofactor::lift_categorical(DIM, idx, idx, Value::int(v)));
    let scalar = (-3.0f64..3.0).prop_map(GenCofactor::scalar);
    let factor = prop_oneof![cont, cat, scalar];
    prop::collection::vec((factor.clone(), factor), 0..3).prop_map(|pairs| {
        let mut acc = GenCofactor::zero();
        for (a, b) in pairs {
            acc.add_assign(&a.mul(&b));
        }
        acc
    })
}

fn arb_matrix() -> impl Strategy<Value = MatrixValue> {
    prop::collection::vec(-4.0f64..4.0, 4).prop_map(|data| MatrixValue::from_rows(2, 2, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integer_ring_axioms(a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        axioms::check_ring_axioms(&a, &b, &c, 0.0);
    }

    #[test]
    fn real_ring_axioms(a in -50.0f64..50.0, b in -50.0f64..50.0, c in -50.0f64..50.0) {
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    #[test]
    fn cofactor_ring_axioms(a in arb_cofactor(), b in arb_cofactor(), c in arb_cofactor()) {
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    }

    #[test]
    fn relvalue_ring_axioms(a in arb_relvalue(), b in arb_relvalue(), c in arb_relvalue()) {
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    }

    #[test]
    fn gen_cofactor_ring_axioms(
        a in arb_gen_cofactor(),
        b in arb_gen_cofactor(),
        c in arb_gen_cofactor(),
    ) {
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    }

    #[test]
    fn matrix_ring_axioms_without_mul_commutativity(
        a in arb_matrix(),
        b in arb_matrix(),
        c in arb_matrix(),
    ) {
        // Matrix multiplication is not commutative, but all the checked
        // axioms (associativity, distributivity, identities) must hold.
        axioms::check_ring_axioms(&a, &b, &c, 1e-6);
    }

    #[test]
    fn cofactor_deletion_cancels_insertion(a in arb_cofactor()) {
        use fivm_ring::ApproxEq;
        let cancelled = a.add(&a.neg());
        let is_cancelled = cancelled.is_zero() || cancelled.approx_eq(&Cofactor::zero(), 1e-9);
        prop_assert!(is_cancelled);
    }

    #[test]
    fn gen_cofactor_scale_matches_repeated_add(a in arb_gen_cofactor(), k in 0i64..5) {
        use fivm_ring::ApproxEq;
        let mut acc = GenCofactor::zero();
        for _ in 0..k {
            acc.add_assign(&a);
        }
        prop_assert!(a.scale_int(k).approx_eq(&acc, 1e-7));
    }
}
