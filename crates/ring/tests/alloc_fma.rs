//! Verifies the acceptance criterion of the in-place ring API: the fused
//! multiply-add on the cofactor ring performs **no heap allocation** in the
//! `Elem × Elem` case (a dense accumulator receiving dense products), which
//! is the op that dominates COVAR maintenance.
//!
//! A counting global allocator records every allocation; the assertion
//! would catch any regression that reintroduces temporaries on this path.

use fivm_common::EncodedValue;
use fivm_ring::{Cofactor, GenCofactor, RelValue, Ring};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn cofactor_fma_elem_elem_does_not_allocate() {
    let dim = 8;
    let a = Cofactor::lift(dim, 1, 3.5).mul(&Cofactor::lift(dim, 4, -2.0));
    let b = Cofactor::lift(dim, 0, 1.25).mul(&Cofactor::lift(dim, 7, 6.0));
    // Dense accumulator, same dimension — the hot case.
    let mut acc = a.mul(&b);

    let allocs = allocations_during(|| {
        for sign in [1i64, -1, 1, -1, 2, -2] {
            acc.fma_scaled(&a, &b, sign);
        }
    });
    assert_eq!(
        allocs, 0,
        "Cofactor::fma_scaled allocated {allocs} times in the Elem×Elem case"
    );

    // The accumulated value must still be correct (the loop above sums to
    // zero net, so acc is back to a·b).
    assert_eq!(acc, a.mul(&b));
}

#[test]
fn cofactor_fma_scalar_elem_does_not_allocate_into_dense_accumulator() {
    let dim = 6;
    let e = Cofactor::lift(dim, 2, 4.0);
    let s = Cofactor::scalar(3.0);
    let mut acc = e.mul(&e);
    let allocs = allocations_during(|| {
        acc.fma_scaled(&s, &e, 1);
        acc.fma_scaled(&e, &s, -1);
    });
    assert_eq!(
        allocs, 0,
        "Cofactor::fma_scaled allocated {allocs} times in the Scalar×Elem case"
    );
}

/// Zero elements of the relation ring must not allocate: `scalar(0.0)` /
/// `weighted(.., 0.0)` construct the empty table, which defers its first
/// allocation to the first insert.
#[test]
fn relvalue_zero_construction_does_not_allocate() {
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            std::hint::black_box(RelValue::scalar(0.0));
            std::hint::black_box(RelValue::weighted(3, EncodedValue::int(7), 0.0));
            std::hint::black_box(RelValue::empty());
            std::hint::black_box(RelValue::zero());
        }
    });
    assert_eq!(
        allocs, 0,
        "constructing relation-ring zeros allocated {allocs} times"
    );
}

/// The sparse singleton-lift accumulate on the generalized cofactor ring
/// (`fma_lift_continuous` / `fma_lift_categorical`) must be allocation-free
/// once the accumulator's interior tables hold the touched keys — the
/// steady-state hot path of GenCofactor-bound maintenance, which used to
/// materialize `dim + dim·(dim+1)/2` relation buffers per input row.
#[test]
fn gen_cofactor_singleton_lift_fma_does_not_allocate_when_warm() {
    let dim = 6;
    let cat = |v: i64| EncodedValue::int(v);
    // A dense accumulator holding every key the lift stream touches.
    let mut acc = GenCofactor::lift_continuous(dim, 0, 2.0)
        .mul(&GenCofactor::lift_categorical(dim, 1, 1, cat(3)))
        .mul(&GenCofactor::lift_categorical(dim, 2, 2, cat(4)))
        .mul(&GenCofactor::lift_continuous(dim, 3, -1.5));
    // Mixed accumulator shapes on the other operand: scalar and dense.
    let scalar_acc = GenCofactor::scalar(2.0);
    let dense_acc = acc.clone();
    // Warm-up: one signed cycle sizes every interior table.
    for sign in [1i64, -1] {
        acc.fma_lift_continuous(&scalar_acc, dim, 0, 2.0, sign);
        acc.fma_lift_continuous(&dense_acc, dim, 3, -1.5, sign);
        acc.fma_lift_categorical(&scalar_acc, dim, 1, 1, cat(3), sign);
        acc.fma_lift_categorical(&dense_acc, dim, 2, 2, cat(4), sign);
    }

    let allocs = allocations_during(|| {
        for sign in [1i64, -1, 1, -1, 2, -2] {
            acc.fma_lift_continuous(&scalar_acc, dim, 0, 2.0, sign);
            acc.fma_lift_continuous(&dense_acc, dim, 3, -1.5, sign);
            acc.fma_lift_categorical(&scalar_acc, dim, 1, 1, cat(3), sign);
            acc.fma_lift_categorical(&dense_acc, dim, 2, 2, cat(4), sign);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm singleton-lift fma allocated {allocs} times"
    );
}

/// The batch-fused lift channel must be allocation-free once warm: a run
/// of scalar-weight rows applied over pooled columnar buffers reduces to
/// dense scalar updates (continuous) or prehashed upserts into already-
/// sized tables (categorical) — 0 allocations per row is the columnar
/// kernel's steady-state contract.
#[test]
fn batch_lift_channels_do_not_allocate_when_warm() {
    let dim = 6;
    let evs: Vec<EncodedValue> = [3i64, 4, 3, 5, 4, 3]
        .iter()
        .map(|&v| EncodedValue::int(v))
        .collect();
    let ws = [1.0, 2.0, -1.0, 3.0, 1.0, -2.0];

    // Continuous: horizontal sums into the dense scalar fields.
    let mut cof = Cofactor::lift(dim, 1, 2.0).mul(&Cofactor::lift(dim, 2, 3.0));
    let mut gen = GenCofactor::lift_continuous(dim, 0, 2.0)
        .mul(&GenCofactor::lift_continuous(dim, 3, -1.0));
    // Categorical / relational: warm the interior tables with the keys the
    // batch touches.
    let mut gen_cat = GenCofactor::zero();
    gen_cat.fma_lift_categorical_weighted(dim, 2, 2, &evs, &ws);
    let mut rel = RelValue::zero();
    rel.fma_indicator_weighted(2, &evs, &ws);

    let allocs = allocations_during(|| {
        for _ in 0..4 {
            cof.fma_lift_continuous_sums(dim, 1, 3.0, -1.5, 0.75);
            gen.fma_lift_continuous_sums(dim, 0, -3.0, 1.5, -0.75);
            gen_cat.fma_lift_categorical_weighted(dim, 2, 2, &evs, &ws);
            rel.fma_indicator_weighted(2, &evs, &ws);
        }
    });
    assert_eq!(allocs, 0, "warm batch lift channels allocated {allocs} times");
}

#[test]
fn cofactor_mul_into_reuses_matching_accumulator() {
    let dim = 8;
    let a = Cofactor::lift(dim, 1, 3.5);
    let b = Cofactor::lift(dim, 0, 1.25);
    let mut out = a.mul(&b); // correctly shaped buffer
    let allocs = allocations_during(|| {
        a.mul_into(&b, &mut out);
        b.mul_into(&a, &mut out);
    });
    assert_eq!(
        allocs, 0,
        "Cofactor::mul_into allocated {allocs} times with a matching out buffer"
    );
    assert_eq!(out, b.mul(&a));
}
