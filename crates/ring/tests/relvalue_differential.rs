//! Seeded differential suite: the encoded relation ring ([`RelValue`])
//! against the boxed-`Value`-keyed reference implementation
//! ([`BoxedRelValue`]) under identical random operation streams.
//!
//! Mirrors `crates/common/tests/rawtable_differential.rs` one layer up: the
//! hash-once interior (encoded keys, caller-supplied hashes, tombstone
//! pruning) must be observationally identical to the straightforward
//! hash-map implementation on every ring operation, including the key edge
//! cases the encoding canonicalizes — strings (dictionary ids), integers,
//! `-0.0` vs `0.0`, and NaN payloads.

use fivm_common::Value;
use fivm_ring::{BoxedRelValue, RelValue, Ring, RingCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The value pool: every kind the encoding must canonicalize, including the
/// `-0.0`/`0.0` pair and two NaN payloads that must collapse to one key.
fn value_pool() -> Vec<Value> {
    vec![
        Value::int(0),
        Value::int(1),
        Value::int(-7),
        Value::int(i64::MAX),
        Value::double(0.0),
        Value::double(-0.0),
        Value::double(2.5),
        Value::double(f64::NAN),
        Value::Double(fivm_common::OrdF64::new(f64::from_bits(0x7ff8_0000_0000_0001))),
        Value::str("red"),
        Value::str("blue"),
        Value::str(""),
        Value::Null,
    ]
}

/// Both representations of one random relation over up to `attrs`
/// attributes.
fn random_pair(
    rng: &mut StdRng,
    ctx: &RingCtx,
    pool: &[Value],
    attrs: u32,
    entries: usize,
) -> (RelValue, BoxedRelValue) {
    let mut enc = RelValue::empty();
    let mut boxed = BoxedRelValue::empty();
    for _ in 0..entries {
        let w = (rng.gen_range(-4..5i64)) as f64 * 0.5;
        match rng.gen_range(0..3) {
            // A scalar (empty-key) entry.
            0 => {
                enc.add_scaled(&RelValue::scalar(1.0), w);
                boxed.add_scaled(&BoxedRelValue::scalar(1.0), w);
            }
            // A singleton entry.
            1 => {
                let attr = rng.gen_range(0..attrs) as usize;
                let v = pool[rng.gen_range(0..pool.len())].clone();
                enc.add_scaled(&RelValue::weighted(attr, ctx.encode_value(&v), 1.0), w);
                boxed.add_scaled(&BoxedRelValue::weighted(attr, v, 1.0), w);
            }
            // A two-attribute entry, built by joining two singletons.
            _ => {
                let a1 = rng.gen_range(0..attrs) as usize;
                let a2 = ((a1 as u32 + 1 + rng.gen_range(0..attrs - 1)) % attrs) as usize;
                let v1 = pool[rng.gen_range(0..pool.len())].clone();
                let v2 = pool[rng.gen_range(0..pool.len())].clone();
                enc.fma_scaled(
                    &RelValue::weighted(a1, ctx.encode_value(&v1), 1.0),
                    &RelValue::weighted(a2, ctx.encode_value(&v2), 1.0),
                    1,
                );
                boxed.fma_scaled(
                    &BoxedRelValue::weighted(a1, v1, 1.0),
                    &BoxedRelValue::weighted(a2, v2, 1.0),
                    1,
                );
                let _ = w;
            }
        }
    }
    (enc, boxed)
}

/// Asserts the two representations hold identical relations (canonical
/// decoded listings, weights bit-for-bit).
fn assert_same(ctx: &RingCtx, enc: &RelValue, boxed: &BoxedRelValue, what: &str) {
    let decoded = ctx.with_dict(|d| enc.decode_entries(d));
    let reference = boxed.sorted_entries();
    assert_eq!(
        decoded.len(),
        reference.len(),
        "{what}: cardinality diverged ({} encoded vs {} boxed)",
        decoded.len(),
        reference.len()
    );
    for ((dk, dw), (rk, rw)) in decoded.iter().zip(reference.iter()) {
        assert_eq!(dk, rk, "{what}: keys diverged");
        assert!(
            dw == rw || (dw.is_nan() && rw.is_nan()),
            "{what}: weight diverged at {dk:?}: {dw} vs {rw}"
        );
    }
    assert_eq!(enc.is_zero(), boxed.is_zero(), "{what}: is_zero diverged");
}

#[test]
fn random_operation_streams_agree_with_the_boxed_reference() {
    let pool = value_pool();
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF + seed);
        let ctx = RingCtx::new();
        let (mut enc_acc, mut boxed_acc) = random_pair(&mut rng, &ctx, &pool, 4, 6);
        for step in 0..60 {
            let what = format!("seed {seed}, step {step}");
            match rng.gen_range(0..6) {
                // add_assign of a random relation.
                0 => {
                    let (e, b) = random_pair(&mut rng, &ctx, &pool, 4, 4);
                    enc_acc.add_assign(&e);
                    boxed_acc.add_assign(&b);
                }
                // add_scaled, occasionally cancelling exactly.
                1 => {
                    let k = [2.0, -1.0, 0.0][rng.gen_range(0..3usize)];
                    let (e, b) = random_pair(&mut rng, &ctx, &pool, 4, 3);
                    enc_acc.add_scaled(&e, k);
                    boxed_acc.add_scaled(&b, k);
                }
                // fused multiply-add (join accumulate), insert and delete.
                2 => {
                    let scale = [1i64, -1, 2][rng.gen_range(0..3usize)];
                    let (e1, b1) = random_pair(&mut rng, &ctx, &pool, 3, 3);
                    let (e2, b2) = random_pair(&mut rng, &ctx, &pool, 4, 3);
                    enc_acc.fma_scaled(&e1, &e2, scale);
                    boxed_acc.fma_scaled(&b1, &b2, scale);
                }
                // full multiplication (replaces the accumulator).
                3 => {
                    let (e, b) = random_pair(&mut rng, &ctx, &pool, 3, 3);
                    enc_acc = enc_acc.mul(&e);
                    boxed_acc = boxed_acc.mul(&b);
                }
                // negation / integer scaling.
                4 => {
                    let k = rng.gen_range(-2..3i64);
                    enc_acc = enc_acc.scale_int(k);
                    boxed_acc = boxed_acc.scale_int(k);
                }
                // exact self-cancellation: x + (-x) prunes every key.
                _ => {
                    let neg_e = enc_acc.neg();
                    let neg_b = boxed_acc.neg();
                    let mut e = enc_acc.clone();
                    let mut b = boxed_acc.clone();
                    e.add_assign(&neg_e);
                    b.add_assign(&neg_b);
                    assert!(e.is_zero(), "{what}: encoded self-cancellation left keys");
                    assert!(b.is_zero(), "{what}: boxed self-cancellation left keys");
                }
            }
            assert_same(&ctx, &enc_acc, &boxed_acc, &what);
        }
    }
}

#[test]
fn canonical_float_keys_collapse_identically() {
    let ctx = RingCtx::new();
    // -0.0 and 0.0 are one key in both representations (OrdF64 semantics).
    let enc = RelValue::weighted(0, ctx.encode_value(&Value::double(0.0)), 1.0).add(
        &RelValue::weighted(0, ctx.encode_value(&Value::double(-0.0)), 2.0),
    );
    let boxed = BoxedRelValue::weighted(0, Value::double(0.0), 1.0)
        .add(&BoxedRelValue::weighted(0, Value::double(-0.0), 2.0));
    assert_eq!(enc.len(), 1);
    assert_same(&ctx, &enc, &boxed, "-0.0/0.0 collapse");

    // All NaN payloads are one key.
    let nan_a = Value::double(f64::NAN);
    let nan_b = Value::Double(fivm_common::OrdF64::new(f64::from_bits(0x7ff8_0000_0000_0001)));
    let enc = RelValue::weighted(1, ctx.encode_value(&nan_a), 1.0).add(&RelValue::weighted(
        1,
        ctx.encode_value(&nan_b),
        1.0,
    ));
    let boxed = BoxedRelValue::weighted(1, nan_a, 1.0).add(&BoxedRelValue::weighted(1, nan_b, 1.0));
    assert_eq!(enc.len(), 1);
    assert_same(&ctx, &enc, &boxed, "NaN collapse");

    // Int(0), Double(0.0), Null and the first interned string stay
    // distinct keys despite sharing payload word 0.
    let zeros = [
        Value::int(0),
        Value::double(0.0),
        Value::Null,
        Value::str("s"),
    ];
    let mut enc = RelValue::empty();
    let mut boxed = BoxedRelValue::empty();
    for v in &zeros {
        enc.add_assign(&RelValue::weighted(2, ctx.encode_value(v), 1.0));
        boxed.add_assign(&BoxedRelValue::weighted(2, v.clone(), 1.0));
    }
    assert_eq!(enc.len(), 4);
    assert_same(&ctx, &enc, &boxed, "zero-word kinds stay distinct");
}

#[test]
fn string_joins_agree_across_attributes() {
    let ctx = RingCtx::new();
    let red = ctx.encode_value(&Value::str("red"));
    let blue = ctx.encode_value(&Value::str("blue"));
    // (A=red)·2 ⋈ ((B=red) + (B=blue)) — join over different attributes
    // with shared string values.
    let enc = RelValue::weighted(0, red, 2.0).mul(
        &RelValue::indicator(1, red).add(&RelValue::indicator(1, blue)),
    );
    let boxed = BoxedRelValue::weighted(0, Value::str("red"), 2.0).mul(
        &BoxedRelValue::indicator(1, Value::str("red"))
            .add(&BoxedRelValue::indicator(1, Value::str("blue"))),
    );
    assert_eq!(enc.len(), 2);
    assert_same(&ctx, &enc, &boxed, "string join");
    // Conflicting shared attribute annihilates in both.
    let enc2 = enc.mul(&RelValue::indicator(0, blue));
    let boxed2 = boxed.mul(&BoxedRelValue::indicator(0, Value::str("blue")));
    assert!(enc2.is_zero() && boxed2.is_zero());
}
