//! Bytes-per-entry regression gate for the relation-ring interior.
//!
//! The discriminant-free `RawTable` storage (split hash array +
//! `MaybeUninit` entry slots, control bytes as the single liveness
//! authority, 2-slot minimum capacity) must beat the previous
//! `Vec<Option<(u64, RelKey, f64)>>` slot layout by a clear margin on a
//! population shaped like the real ring working set.  The old layout is
//! *modeled* exactly rather than kept alive, by
//! [`RelValue::option_layout_bytes`] — the same model that produces the
//! `MEM-ring-option` ablation records, one shared comparator so the
//! published numbers and this gate cannot silently diverge.  The model is
//! valid because the growth policy (power-of-two doubling at 3/4 load,
//! same-size tombstone compaction) is unchanged except for the minimum
//! capacity, and its per-slot cost comes from `size_of`, so it stays
//! honest if the compiler's niche layout ever changes.
//!
//! The population mirrors what generalized-cofactor maintenance actually
//! materializes (see `GenCofactor`): a large majority of *tiny* relations
//! — every continuous attribute's `s`/`Q` component is a single-entry
//! scalar relation — plus categorical components of a few dozen to a few
//! hundred categories and a handful of large root-level accumulators.

use fivm_common::EncodedValue;
use fivm_ring::{RelKey, RelValue};

/// A relation with `n` distinct integer keys.
fn with_keys(n: usize) -> RelValue {
    let mut r = RelValue::empty();
    for i in 0..n {
        r.add_entry(&RelKey::singleton(0, EncodedValue::int(i as i64)), 1.0);
    }
    r
}

/// The shared pre-diet layout model (see the module docs).
fn option_layout_bytes(r: &RelValue) -> usize {
    r.option_layout_bytes()
}

#[test]
fn new_layout_beats_option_slots_by_at_least_20_percent() {
    // (relation size, how many) — the GenCofactor-shaped population.
    let mix: &[(usize, usize)] = &[
        (1, 2000),  // scalar components (continuous s/Q entries)
        (3, 200),   // small categorical components
        (8, 100),
        (30, 30),   // mid-size category sets
        (100, 10),
        (1000, 2),  // root-level accumulators
    ];
    let mut relations = Vec::new();
    for &(size, count) in mix {
        for _ in 0..count {
            relations.push(with_keys(size));
        }
    }
    let entries: usize = relations.iter().map(RelValue::len).sum();
    let new_bytes: usize = relations.iter().map(RelValue::allocated_bytes).sum();
    let old_bytes: usize = relations.iter().map(option_layout_bytes).sum();
    assert!(entries > 0 && new_bytes > 0);

    let new_per_entry = new_bytes as f64 / entries as f64;
    let old_per_entry = old_bytes as f64 / entries as f64;
    let reduction = 1.0 - new_per_entry / old_per_entry;
    assert!(
        reduction >= 0.20,
        "bytes/entry regression: new {new_per_entry:.1} vs option-layout \
         {old_per_entry:.1} ({:.1}% reduction, gate is 20%)",
        reduction * 100.0
    );

    // The layout must never be *worse* at any individual size class either
    // (equal is fine: above the old minimum capacity both layouts happen
    // to cost 49 bytes/slot for this key/value pair).
    for &(size, _) in mix {
        let r = with_keys(size);
        assert!(
            r.allocated_bytes() <= option_layout_bytes(&r),
            "size {size}: new layout {} bytes vs option layout {} bytes",
            r.allocated_bytes(),
            option_layout_bytes(&r)
        );
    }
}
