//! A packed symmetric matrix of `f64`, used by the cofactor (COVAR) ring.

use crate::ring::approx_f64;

/// A symmetric `dim × dim` matrix stored as its packed upper triangle
/// (`dim * (dim + 1) / 2` entries, row-major).
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Sets every entry to zero, keeping the buffer.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// A zero matrix of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        SymMatrix {
            dim,
            data: vec![0.0; dim * (dim + 1) / 2],
        }
    }

    /// Heap bytes of the packed triangle buffer (the matrix leaf of the
    /// engine-wide byte rollup).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// The dimension (number of rows = columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (upper-triangle) entries.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Packed index of `(i, j)` with `i <= j`.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        debug_assert!(j < self.dim);
        i * self.dim - i * (i + 1) / 2 + j
    }

    /// Reads entry `(i, j)` (symmetric access).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Writes entry `(i, j)` (and its mirror).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.data[idx] += v;
    }

    /// `self += scale * other`; panics if dimensions differ.
    pub fn add_scaled(&mut self, other: &SymMatrix, scale: f64) {
        assert_eq!(
            self.dim, other.dim,
            "SymMatrix dimension mismatch: {} vs {}",
            self.dim, other.dim
        );
        // Equal-length slices: the zip compiles to a straight-line
        // bounds-check-free loop that auto-vectorizes.
        let n = self.data.len();
        for (a, b) in self.data[..n].iter_mut().zip(&other.data[..n]) {
            *a += scale * b;
        }
    }

    /// Adds the symmetrized outer product `s_a s_b^T + s_b s_a^T`.
    ///
    /// This is the cross term in the cofactor-ring multiplication.
    pub fn add_symmetric_outer(&mut self, sa: &[f64], sb: &[f64]) {
        self.add_symmetric_outer_scaled(sa, sb, 1.0);
    }

    /// Adds `scale * (s_a s_b^T + s_b s_a^T)`, the cross term of the fused
    /// multiply-add on the cofactor ring.
    pub fn add_symmetric_outer_scaled(&mut self, sa: &[f64], sb: &[f64], scale: f64) {
        debug_assert_eq!(sa.len(), self.dim);
        debug_assert_eq!(sb.len(), self.dim);
        for i in 0..self.dim {
            let (sai, sbi) = (sa[i] * scale, sb[i] * scale);
            if sai == 0.0 && sbi == 0.0 {
                continue;
            }
            // Row `i` of the packed triangle is contiguous; expressing the
            // inner loop over three equal-length tails keeps it free of
            // bounds checks so it auto-vectorizes.  Per-element arithmetic
            // (`sai*sb[j] + sbi*sa[j]`, ascending j) is unchanged.
            let row = i * self.dim - i * (i + 1) / 2;
            let dst = &mut self.data[row + i..row + self.dim];
            for ((d, &saj), &sbj) in dst.iter_mut().zip(&sa[i..]).zip(&sb[i..]) {
                *d += sai * sbj + sbi * saj;
            }
        }
    }

    /// Adds `scale * (s e_iᵀ + e_i sᵀ)` — the cross term of multiplying by
    /// a lift element whose sum vector is `x·e_i` (with `x` folded into
    /// `scale`).  `O(dim)` instead of the `O(dim²)` general outer product.
    pub fn add_rank_one_cross_scaled(&mut self, i: usize, s: &[f64], scale: f64) {
        debug_assert_eq!(s.len(), self.dim);
        debug_assert!(i < self.dim);
        // Column part (j < i): entry (j, i) of the packed triangle lives at
        // index(0, i) = i, and successive rows are dim-1-j apart.  Walking
        // the stride directly replaces a branchy `index()` call per entry.
        let mut idx = i;
        for (j, &sj) in s[..i].iter().enumerate() {
            self.data[idx] += scale * sj;
            idx += self.dim - 1 - j;
        }
        // Row part (j >= i) is contiguous: a bounds-check-free slice zip.
        let row = i * self.dim - i * (i + 1) / 2;
        let dst = &mut self.data[row + i..row + self.dim];
        for (d, &sj) in dst.iter_mut().zip(&s[i..]) {
            *d += scale * sj;
        }
        // The diagonal receives both rank-one halves.
        self.data[row + i] += scale * s[i];
    }

    /// Overwrites every entry with zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Overwrites `self` with `scale * other`, keeping the allocation;
    /// panics if dimensions differ.
    pub fn assign_scaled(&mut self, other: &SymMatrix, scale: f64) {
        assert_eq!(
            self.dim, other.dim,
            "SymMatrix dimension mismatch: {} vs {}",
            self.dim, other.dim
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = scale * b;
        }
    }

    /// Multiplies every entry by `scale`.
    pub fn scale_in_place(&mut self, scale: f64) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Whether every entry is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0.0)
    }

    /// Approximate component-wise equality.
    pub fn approx_eq(&self, other: &SymMatrix, tol: f64) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| approx_f64(*a, *b, tol))
    }

    /// Materializes the full dense `dim × dim` matrix in row-major order.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim * self.dim];
        for i in 0..self.dim {
            for j in 0..self.dim {
                out[i * self.dim + j] = self.get(i, j);
            }
        }
        out
    }

    /// Iterates over the packed upper triangle as `(i, j, value)`.
    pub fn iter_upper(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.dim).flat_map(move |i| (i..self.dim).map(move |j| (i, j, self.get(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_indexing_is_symmetric() {
        let mut m = SymMatrix::zeros(4);
        m.set(1, 3, 5.0);
        assert_eq!(m.get(1, 3), 5.0);
        assert_eq!(m.get(3, 1), 5.0);
        m.add_at(3, 1, 2.0);
        assert_eq!(m.get(1, 3), 7.0);
        assert_eq!(m.packed_len(), 10);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 1, 3.0);
        let mut b = SymMatrix::zeros(2);
        b.set(0, 0, 10.0);
        b.set(1, 1, 20.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 13.0);
        a.scale_in_place(2.0);
        assert_eq!(a.get(0, 0), 12.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_scaled_panics_on_dim_mismatch() {
        let mut a = SymMatrix::zeros(2);
        let b = SymMatrix::zeros(3);
        a.add_scaled(&b, 1.0);
    }

    #[test]
    fn symmetric_outer_product() {
        // sa = [1, 2], sb = [3, 4]:
        // sa sb^T + sb sa^T = [[6, 10], [10, 16]]
        let mut m = SymMatrix::zeros(2);
        m.add_symmetric_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 10.0);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 1), 16.0);
    }

    #[test]
    fn rank_one_cross_matches_reference() {
        // The strided column walk + contiguous row slice must agree exactly
        // with the per-element `add_at` formulation it replaced.
        for dim in 1..=6 {
            let s: Vec<f64> = (0..dim).map(|j| (j as f64) * 0.5 - 1.0).collect();
            for i in 0..dim {
                let mut fast = SymMatrix::zeros(dim);
                fast.add_rank_one_cross_scaled(i, &s, 1.25);
                let mut reference = SymMatrix::zeros(dim);
                for (j, &sj) in s.iter().enumerate() {
                    reference.add_at(j, i, 1.25 * sj);
                }
                reference.add_at(i, i, 1.25 * s[i]);
                assert_eq!(fast, reference, "dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn dense_round_trip_and_iteration() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 2, 4.0);
        m.set(1, 1, 9.0);
        let dense = m.to_dense();
        assert_eq!(dense[2], 4.0); // (0, 2)
        assert_eq!(dense[6], 4.0); // (2, 0)
        assert_eq!(dense[4], 9.0); // (1, 1)
        let entries: Vec<_> = m.iter_upper().collect();
        assert_eq!(entries.len(), 6);
        assert!(entries.contains(&(0, 2, 4.0)));
        assert!(m.approx_eq(&m.clone(), 0.0));
        assert!(!m.is_zero());
        assert!(SymMatrix::zeros(3).is_zero());
    }
}
