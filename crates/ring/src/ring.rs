//! The [`Ring`] trait: the algebraic interface every payload type implements.

use fivm_common::Dict;
use std::fmt::Debug;

/// A commutative ring with identity (possibly only approximately associative
/// for floating-point based rings).
///
/// Every payload maintained by the F-IVM engine implements this trait.  The
/// engine relies on:
///
/// * `+` being commutative and associative with identity [`Ring::zero`] and
///   additive inverses ([`Ring::neg`]) — this is what makes deletes work,
/// * `*` distributing over `+` — this is what allows pushing aggregates past
///   joins and down the view tree,
/// * [`Ring::one`] being the multiplicative identity — used for variables
///   without an attribute function.
///
/// Rings whose elements have a query-dependent *shape* (e.g. the degree-m
/// cofactor ring) represent `zero`/`one` with a shape-free scalar variant and
/// acquire their shape from lifts; combining two shaped elements of different
/// shapes is a programming error and panics.
pub trait Ring: Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Whether this element is (exactly) the additive identity.  Views drop
    /// keys whose payload becomes zero.
    fn is_zero(&self) -> bool;

    /// Ring addition.
    fn add(&self, rhs: &Self) -> Self;

    /// In-place ring addition.  Override when the in-place form avoids
    /// allocation; the default delegates to [`Ring::add`].
    fn add_assign(&mut self, rhs: &Self) {
        *self = self.add(rhs);
    }

    /// Ring multiplication.
    fn mul(&self, rhs: &Self) -> Self;

    /// In-place ring multiplication: `*out = self * rhs`.
    ///
    /// `out` can never alias `self` or `rhs` (the borrow checker forbids
    /// it), so implementations may freely overwrite `out` while reading the
    /// operands.  Implementations reuse `out`'s existing allocations
    /// (vectors, matrices, hash maps) whenever the shapes match, which is
    /// what makes the maintenance hot path allocation-free; the previous
    /// contents of `out` are discarded.  The default delegates to
    /// [`Ring::mul`].
    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        *out = self.mul(rhs);
    }

    /// Fused multiply-add: `self += (a * b) · scale`, with the integer
    /// scale applied as in [`Ring::scale_int`] (`scale = -1` subtracts the
    /// product, which is how deletes ride the same code path as inserts).
    ///
    /// Specialized implementations accumulate directly into `self`'s
    /// components without materializing the product `a * b`.  After the
    /// call `self` may be an *exact-zero* element that still owns
    /// allocations (for example a dense cofactor triple whose entries all
    /// cancelled to `0.0`); callers that erase zeros must test
    /// [`Ring::is_zero`] — it is exact for every ring in this crate.
    /// The default materializes the product and delegates to
    /// [`Ring::add_assign`].
    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        if scale == 0 {
            return;
        }
        let prod = a.mul(b);
        if scale == 1 {
            self.add_assign(&prod);
        } else {
            self.add_assign(&prod.scale_int(scale));
        }
    }

    /// Resets this value to an exact zero **in place**, keeping any interior
    /// buffers for reuse (the engine pools delta payloads across batches;
    /// a pooled payload re-enters accumulation through
    /// [`Ring::fma_scaled`], so after this call [`Ring::is_zero`] must be
    /// `true`).  The default replaces the value wholesale; rings with
    /// interior allocations override to clear in place.
    fn reset_zero(&mut self) {
        *self = Self::zero();
    }

    /// The additive inverse: `x.add(&x.neg())` is zero.
    fn neg(&self) -> Self;

    /// Ring subtraction (`self - rhs`).
    fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }

    /// Whether values of this ring carry dictionary-local words (string ids
    /// inside relational keys) and therefore must be [`Ring::rekey`]ed when
    /// they cross engine/dictionary boundaries.  Rings whose values are
    /// self-contained (numbers, cofactor matrices) return `false` and skip
    /// the dictionary traffic entirely.
    fn needs_rekey() -> bool {
        false
    }

    /// Re-encodes any dictionary-local words of this value from `src` into
    /// `dst`.  Ring values are meaningful only under the dictionary that
    /// encoded them (the ring-key contract, ROADMAP.md); a sharded
    /// deployment rekeys per-shard partials into the coordinator's
    /// dictionary before merging them with [`Ring::add`].  The default (for
    /// self-contained rings) is a plain clone.
    fn rekey(&self, _src: &Dict, _dst: &mut Dict) -> Self {
        self.clone()
    }

    /// Rehash (growth/compaction) events of any hash tables *inside* this
    /// value.  Engines sum this over materialized payloads so the
    /// steady-state "rehashes pinned to 0" contract covers ring-interior
    /// tables, not just view tables.  Rings without interior tables report
    /// 0.
    fn payload_rehashes(&self) -> u64 {
        0
    }

    /// Heap bytes of interior buffers (hash-table arrays, relation
    /// vectors) owned by this value — the ring leaf of the engine-wide
    /// byte rollup (`MaterializedView::table_bytes` →
    /// `EngineStats::table_bytes`).  An *approximation with a documented
    /// boundary*: container allocations are counted, per-key spill boxes
    /// and string interning are not (the dictionary is shared and
    /// accounted once per engine).  Rings without interior allocations
    /// report 0.
    fn payload_bytes(&self) -> usize {
        0
    }

    /// The element's mass as a plain scalar, when the element is a *pure
    /// scalar* (count-like) value; `None` for every shape that carries
    /// more than a count.  The columnar kernel batches singleton-lift
    /// FMAs over runs of delta rows whose payloads are all scalar: the
    /// lift's batch channel (`LiftFn::with_fma_batch`) receives the
    /// gathered weights as an `f64` slice instead of dispatching per row.
    /// Returning `None` is always sound — the kernel falls back to the
    /// per-row fused path — so the default never batches.
    fn scalar_weight(&self) -> Option<f64> {
        None
    }

    /// Integer scaling `k · self` (i.e. `self` added to itself `k` times,
    /// with negative `k` meaning the inverse).  Used to apply tuple
    /// multiplicities from base relations.
    ///
    /// The default uses double-and-add; numeric rings override with a direct
    /// multiplication.
    fn scale_int(&self, k: i64) -> Self {
        if k == 0 {
            return Self::zero();
        }
        let (mut base, mut k) = if k < 0 {
            (self.neg(), k.unsigned_abs())
        } else {
            (self.clone(), k as u64)
        };
        let mut acc = Self::zero();
        while k > 0 {
            if k & 1 == 1 {
                acc.add_assign(&base);
            }
            k >>= 1;
            if k > 0 {
                base = base.add(&base);
            }
        }
        acc
    }
}

/// Approximate equality, used by tests and by the ring-axiom checkers to
/// compare floating-point based ring values.
pub trait ApproxEq {
    /// Whether `self` and `other` are equal up to absolute/relative tolerance
    /// `tol` in every component.
    fn approx_eq(&self, other: &Self, tol: f64) -> bool;
}

/// Approximate scalar comparison shared by the ring implementations.
#[inline]
pub fn approx_f64(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

impl ApproxEq for f64 {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        approx_f64(*self, *other, tol)
    }
}

impl ApproxEq for i64 {
    fn approx_eq(&self, other: &Self, _tol: f64) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_int_matches_repeated_addition() {
        // Use i64 (implemented in `numeric`) through the default algorithm by
        // calling the trait default explicitly on a small wrapper.
        #[derive(Clone, Debug, PartialEq)]
        struct W(i64);
        impl Ring for W {
            fn zero() -> Self {
                W(0)
            }
            fn one() -> Self {
                W(1)
            }
            fn is_zero(&self) -> bool {
                self.0 == 0
            }
            fn add(&self, rhs: &Self) -> Self {
                W(self.0 + rhs.0)
            }
            fn mul(&self, rhs: &Self) -> Self {
                W(self.0 * rhs.0)
            }
            fn neg(&self) -> Self {
                W(-self.0)
            }
        }
        for k in -17i64..=17 {
            assert_eq!(W(5).scale_int(k).0, 5 * k, "k={k}");
        }
        assert_eq!(W(3).scale_int(0), W(0));
    }

    #[test]
    fn approx_f64_behaviour() {
        assert!(approx_f64(1.0, 1.0, 0.0));
        assert!(approx_f64(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_f64(1.0, 1.1, 1e-9));
        assert!(approx_f64(1e12, 1e12 + 1.0, 1e-9));
        assert!(0.0f64.approx_eq(&0.0, 1e-9));
        assert!(7i64.approx_eq(&7, 0.0));
        assert!(!7i64.approx_eq(&8, 10.0));
    }
}
