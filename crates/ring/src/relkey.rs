//! Encoded keys of the relation ring.
//!
//! A [`RelKey`] is a sorted sequence of `(attribute id, value)` pairs — the
//! key of one [`crate::RelValue`] entry — flattened into tagged `u64` words
//! like the view layer's `EncodedKey`, but with a layout tuned to the ring
//! interior, where *millions* of tiny relations live and the key is stored
//! inline in every table slot:
//!
//! * **Inline** (`≤ 2` pairs — every COVAR/MI lift, linear and interaction
//!   key): one *meta word* packing the pair count plus per-pair attribute
//!   id and type tag, followed by one value word per pair.  Three words,
//!   32 bytes, no heap — constructing, merging and comparing such keys is
//!   copy-only word arithmetic.
//! * **Spilled** (`≥ 3` pairs — wider factorized-listing keys): one boxed
//!   slice with two words per pair (`attr | tag`, value).
//!
//! Attribute ids index query variables and must fit 8 bits (queries have
//! far fewer variables; asserted on construction).  Pairs are kept sorted
//! by attribute id so the relational join ([`RelKey::join`]) is a linear
//! merge and equal relations have bit-identical keys regardless of
//! construction order.  Hashing ([`RelKey::fx_hash`]) is the Fx fold over
//! the canonical words, computed once per constructed key and carried
//! through every table the key touches.

use fivm_common::hash::fx_hash_words;
use fivm_common::{Dict, EncodedValue, Value};
use std::fmt;

/// Pairs a meta word can address inline.
const INLINE_PAIRS: usize = 2;

/// Key storage (see the module docs).  The two layouts never collide:
/// the representation is a function of the pair count.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Rep {
    /// `words[0]` = meta (count + packed attr/tag per pair),
    /// `words[1..=n]` = value words.
    Inline([u64; 1 + INLINE_PAIRS]),
    /// `words[2i] = attr << 8 | tag`, `words[2i + 1]` = value word.
    Spilled(Box<[u64]>),
}

/// The encoded key of one relation-ring entry: `(attr, value)` pairs
/// sorted by attribute id.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RelKey {
    rep: Rep,
}

#[inline]
fn check_attr(attr: u32) -> u64 {
    assert!(attr < 256, "relation-ring attribute id {attr} exceeds 255");
    u64::from(attr)
}

#[inline]
fn check_tag(tag: u8) -> u64 {
    // Both layouts give a value tag 4 bits; a wider tag in `dict.rs` must
    // widen this layout first (silent truncation would merge distinct
    // value kinds into one key).
    debug_assert!(tag < 16, "encoded value tag {tag} exceeds the 4-bit key layout");
    u64::from(tag & 0xF)
}

#[inline]
fn inline_meta_slot(meta: u64, i: usize, attr: u32, tag: u8) -> u64 {
    meta | (check_attr(attr) << (8 + 16 * i)) | (check_tag(tag) << (16 + 16 * i))
}

impl RelKey {
    /// The key of the empty tuple (the schema-less "scalar" entry).
    #[inline]
    pub fn empty() -> RelKey {
        RelKey {
            rep: Rep::Inline([0; 1 + INLINE_PAIRS]),
        }
    }

    /// The single-pair key `(attr = value)` — the one-hot indicator key.
    /// Copy-only: two words of arithmetic, no heap.
    #[inline]
    pub fn singleton(attr: u32, value: EncodedValue) -> RelKey {
        let mut words = [0u64; 1 + INLINE_PAIRS];
        words[0] = inline_meta_slot(1, 0, attr, value.tag);
        words[1] = value.word;
        RelKey { rep: Rep::Inline(words) }
    }

    /// Builds a key from pairs; sorts them by attribute id.  Panics (in
    /// debug builds) on a duplicated attribute — a relation key binds each
    /// attribute once.
    pub fn from_pairs(pairs: &mut [(u32, EncodedValue)]) -> RelKey {
        pairs.sort_by_key(|(a, _)| *a);
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 != w[1].0),
            "relation key binds an attribute twice"
        );
        Self::from_sorted(pairs)
    }

    /// Builds a key from pairs already sorted by attribute id.
    fn from_sorted(pairs: &[(u32, EncodedValue)]) -> RelKey {
        let n = pairs.len();
        if n <= INLINE_PAIRS {
            let mut words = [0u64; 1 + INLINE_PAIRS];
            let mut meta = n as u64;
            for (i, (attr, v)) in pairs.iter().enumerate() {
                meta = inline_meta_slot(meta, i, *attr, v.tag);
                words[1 + i] = v.word;
            }
            words[0] = meta;
            RelKey { rep: Rep::Inline(words) }
        } else {
            let mut words = Vec::with_capacity(2 * n);
            for (attr, v) in pairs {
                words.push(check_attr(*attr) << 8 | check_tag(v.tag));
                words.push(v.word);
            }
            RelKey {
                rep: Rep::Spilled(words.into_boxed_slice()),
            }
        }
    }

    /// Number of `(attr, value)` pairs.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.rep {
            Rep::Inline(w) => (w[0] & 0xFF) as usize,
            Rep::Spilled(w) => w.len() / 2,
        }
    }

    /// Whether this is the empty-tuple key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The attribute id of pair `i`.
    #[inline]
    pub fn attr(&self, i: usize) -> u32 {
        match &self.rep {
            Rep::Inline(w) => ((w[0] >> (8 + 16 * i)) & 0xFF) as u32,
            Rep::Spilled(w) => (w[2 * i] >> 8) as u32,
        }
    }

    /// The encoded value of pair `i`.
    #[inline]
    pub fn value(&self, i: usize) -> EncodedValue {
        match &self.rep {
            Rep::Inline(w) => EncodedValue {
                tag: ((w[0] >> (16 + 16 * i)) & 0xF) as u8,
                word: w[1 + i],
            },
            Rep::Spilled(w) => EncodedValue {
                tag: (w[2 * i] & 0xF) as u8,
                word: w[2 * i + 1],
            },
        }
    }

    /// Iterates over `(attr, value)` pairs in attribute order.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, EncodedValue)> + '_ {
        (0..self.len()).map(|i| (self.attr(i), self.value(i)))
    }

    /// The value bound for `attr`, if any.
    pub fn get(&self, attr: u32) -> Option<EncodedValue> {
        (0..self.len())
            .find(|&i| self.attr(i) == attr)
            .map(|i| self.value(i))
    }

    /// The key's 64-bit Fx hash over the canonical words.  Ring operations
    /// call it exactly once per constructed key and carry the hash through
    /// every table the key touches (stored hashes travel with
    /// [`fivm_common::RawTable`] entries).
    #[inline]
    pub fn fx_hash(&self) -> u64 {
        match &self.rep {
            Rep::Inline(w) => fx_hash_words(&w[..1 + (w[0] & 0xFF) as usize]),
            Rep::Spilled(w) => fx_hash_words(w),
        }
    }

    /// The relational join of two keys: shared attributes must carry equal
    /// values (else `None`), the union is returned in attribute order — a
    /// linear merge, stack-buffered for every realistic width.
    pub fn join(&self, other: &RelKey) -> Option<RelKey> {
        if self.is_empty() {
            return Some(other.clone());
        }
        if other.is_empty() {
            return Some(self.clone());
        }
        let (n, m) = (self.len(), other.len());
        let mut stack = [(0u32, EncodedValue::NULL); 8];
        let mut heap: Vec<(u32, EncodedValue)>;
        let buf: &mut [(u32, EncodedValue)] = if n + m <= 8 {
            &mut stack
        } else {
            heap = vec![(0, EncodedValue::NULL); n + m];
            &mut heap
        };
        let (mut i, mut j, mut out) = (0, 0, 0);
        while i < n && j < m {
            let (a, b) = (self.attr(i), other.attr(j));
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    buf[out] = (a, self.value(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    buf[out] = (b, other.value(j));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if self.value(i) != other.value(j) {
                        return None;
                    }
                    buf[out] = (a, self.value(i));
                    i += 1;
                    j += 1;
                }
            }
            out += 1;
        }
        while i < n {
            buf[out] = (self.attr(i), self.value(i));
            i += 1;
            out += 1;
        }
        while j < m {
            buf[out] = (other.attr(j), other.value(j));
            j += 1;
            out += 1;
        }
        Some(Self::from_sorted(&buf[..out]))
    }

    /// Decodes the key into owned `(attr, Value)` pairs (output boundary).
    pub fn decode(&self, dict: &Dict) -> Box<[(u32, Value)]> {
        self.pairs()
            .map(|(a, ev)| (a, dict.decode_value(ev)))
            .collect()
    }

    /// Re-encodes the key from `src`'s dictionary into `dst`'s (see
    /// [`Dict::rekey_value`]); a pass-through when no pair holds a string.
    pub fn rekey(&self, src: &Dict, dst: &mut Dict) -> RelKey {
        if self.pairs().all(|(_, v)| !v.is_str()) {
            return self.clone();
        }
        let mut pairs: Vec<(u32, EncodedValue)> = self
            .pairs()
            .map(|(a, v)| (a, src.rekey_value(v, dst)))
            .collect();
        RelKey::from_pairs(&mut pairs)
    }
}

impl fmt::Debug for RelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.pairs().map(|(a, v)| (a, (v.tag, v.word))))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(pairs: &[(u32, i64)]) -> RelKey {
        let mut v: Vec<(u32, EncodedValue)> = pairs
            .iter()
            .map(|&(a, x)| (a, EncodedValue::int(x)))
            .collect();
        RelKey::from_pairs(&mut v)
    }

    #[test]
    fn key_struct_is_compact() {
        // The whole point of the layout: a slot-inline key of two pairs in
        // 32 bytes.
        assert_eq!(std::mem::size_of::<RelKey>(), 32);
    }

    #[test]
    fn construction_orders_pairs_canonically() {
        let a = k(&[(3, 7), (1, 2)]);
        let b = k(&[(1, 2), (3, 7)]);
        assert_eq!(a, b);
        assert_eq!(a.fx_hash(), b.fx_hash());
        assert_eq!(a.len(), 2);
        assert_eq!(a.attr(0), 1);
        assert_eq!(a.value(1), EncodedValue::int(7));
        assert_eq!(a.get(3), Some(EncodedValue::int(7)));
        assert_eq!(a.get(9), None);
        assert!(RelKey::empty().is_empty());
        assert_eq!(RelKey::singleton(5, EncodedValue::int(9)), k(&[(5, 9)]));
    }

    #[test]
    fn spilled_keys_roundtrip_and_join() {
        // 3+ pairs spill to the boxed layout; semantics are unchanged.
        let wide = k(&[(0, 1), (3, 4), (7, 9)]);
        assert_eq!(wide.len(), 3);
        assert_eq!(wide.attr(2), 7);
        assert_eq!(wide.value(2), EncodedValue::int(9));
        assert_eq!(wide.get(3), Some(EncodedValue::int(4)));
        // Joining inline keys across the spill boundary.
        let ab = k(&[(0, 1), (3, 4)]).join(&k(&[(7, 9)])).unwrap();
        assert_eq!(ab, wide);
        assert_eq!(ab.fx_hash(), wide.fx_hash());
        // Wider joins (stack-buffer and heap-buffer paths).
        let many: Vec<(u32, i64)> = (0..6).map(|i| (i as u32 * 2, i)).collect();
        let left = k(&many[..3]);
        let right = k(&many[3..]);
        let joined = left.join(&right).unwrap();
        assert_eq!(joined.len(), 6);
        assert_eq!(joined, k(&many));
    }

    #[test]
    fn join_merges_and_rejects_conflicts() {
        let a = k(&[(0, 1), (2, 5)]);
        let b = k(&[(1, 4)]);
        let ab = a.join(&b).unwrap();
        assert_eq!(ab, k(&[(0, 1), (1, 4), (2, 5)]));
        // Shared attribute, equal value: merged once.
        let c = k(&[(2, 5), (7, 0)]);
        assert_eq!(a.join(&c).unwrap(), k(&[(0, 1), (2, 5), (7, 0)]));
        // Shared attribute, different value: no join result.
        let d = k(&[(2, 6)]);
        assert!(a.join(&d).is_none());
        // Empty key is the join identity.
        assert_eq!(a.join(&RelKey::empty()).unwrap(), a);
        assert_eq!(RelKey::empty().join(&a).unwrap(), a);
        // Join is symmetric.
        assert_eq!(b.join(&a).unwrap(), ab);
    }

    #[test]
    fn value_kinds_stay_distinct_inside_keys() {
        let int_key = RelKey::singleton(0, EncodedValue::int(1));
        let dbl_key = RelKey::singleton(0, EncodedValue::double(1.0));
        let null_key = RelKey::singleton(0, EncodedValue::NULL);
        assert_ne!(int_key, dbl_key);
        assert_ne!(int_key, null_key);
        // Canonical double bits: -0.0 and 0.0 are one key.
        assert_eq!(
            RelKey::singleton(0, EncodedValue::double(-0.0)),
            RelKey::singleton(0, EncodedValue::double(0.0))
        );
    }

    #[test]
    fn decode_and_rekey_round_trip() {
        let mut src = Dict::new();
        let red = src.encode_value(&Value::str("red"));
        let mut pairs = vec![(2, red), (0, EncodedValue::int(4))];
        let key = RelKey::from_pairs(&mut pairs);
        let decoded = key.decode(&src);
        assert_eq!(&*decoded, &[(0, Value::int(4)), (2, Value::str("red"))]);
        // Rekey into a dictionary where "red" gets a different id.
        let mut dst = Dict::new();
        dst.intern("occupied");
        let moved = key.rekey(&src, &mut dst);
        assert_ne!(moved, key, "string ids differ across dictionaries");
        assert_eq!(&*moved.decode(&dst), &*decoded);
        // Int-only keys pass through untouched.
        let ints = k(&[(1, 3)]);
        assert_eq!(ints.rekey(&src, &mut dst), ints);
    }

    #[test]
    #[should_panic(expected = "exceeds 255")]
    fn oversized_attribute_ids_are_rejected() {
        let _ = RelKey::singleton(300, EncodedValue::int(1));
    }
}
