//! Snapshot encode/decode for ring payloads: the [`PersistRing`] trait.
//!
//! The durability layer (`fivm_cdc`) serializes an engine's materialized
//! views; the payload half of every view entry is a ring value, and this
//! module defines its wire form.  Only the rings the engine snapshots
//! implement the trait — test oracles ([`crate::boxed`]) and experimental
//! rings stay out, which keeps [`crate::ring::Ring`] itself unchanged (no
//! breaking additions to every ad-hoc ring in the test suite).
//!
//! Invariants the format maintains:
//!
//! * **Bit-identical round-trips.**  Floats are stored as raw bits; no
//!   canonicalization happens on the persist path, so a restored payload
//!   compares `==` to the saved one.
//! * **Stored hashes travel with relational entries.**  [`RelValue`]
//!   interiors are written `(hash, key, weight)`; decode right-sizes the
//!   table ([`RelValue::from_hashed_entries`]) and re-buckets from the
//!   stored hashes, so a restore performs zero key hashing and zero growth
//!   rehashes — the hash-once and `ring_rehashes == 0` contracts survive
//!   restart.
//! * **Dictionary-local words stay local.**  Encoded words inside
//!   relational keys are only meaningful under the dictionary that encoded
//!   them; the engine snapshot serializes that dictionary alongside
//!   (`fivm_common::wire::put_dict`), and both are restored together.
//!   Payload bytes are never exchanged across engines on their own.

use crate::cofactor::{Cofactor, CofactorElem};
use crate::gencofactor::{GenCofactor, GenCofactorElem};
use crate::relkey::RelKey;
use crate::relvalue::RelValue;
use crate::ring::Ring;
use crate::symmatrix::SymMatrix;
use fivm_common::wire::{
    put_encoded_value, put_f64, put_i64, put_u32, put_u64, put_u8, read_encoded_value, WireError,
    WireReader, WireResult,
};

/// Upper bound on the cofactor dimension accepted while decoding.  Real
/// aggregate batches have tens of attributes; the cap rejects absurd
/// dimensions from corrupt input before they turn into giant allocations
/// (checksums catch corruption first, but decoding stays safe without them).
const MAX_DIM: usize = 1 << 16;

/// A ring whose values can be serialized into a snapshot and restored
/// bit-identically.  Extends [`Ring`]; implemented by the payload rings the
/// engine ships (`i64`, `f64`, [`Cofactor`], [`GenCofactor`], [`RelValue`]).
pub trait PersistRing: Ring {
    /// Stable format tag written into snapshot headers; a restore onto an
    /// engine of a different ring fails the header check instead of
    /// misinterpreting payload bytes.
    const RING_TAG: &'static str;

    /// Appends this value's wire form to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value written by [`PersistRing::encode`].
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self>;
}

impl PersistRing for i64 {
    const RING_TAG: &'static str = "i64";

    fn encode(&self, out: &mut Vec<u8>) {
        put_i64(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.i64()
    }
}

impl PersistRing for f64 {
    const RING_TAG: &'static str = "f64";

    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.f64()
    }
}

/// Reads a cofactor dimension, rejecting corrupt sizes.
fn read_dim(r: &mut WireReader<'_>) -> WireResult<usize> {
    let dim = r.u32()? as usize;
    if dim > MAX_DIM {
        return Err(WireError::Malformed("cofactor dimension out of range"));
    }
    Ok(dim)
}

impl PersistRing for Cofactor {
    const RING_TAG: &'static str = "cofactor";

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Cofactor::Scalar(c) => {
                put_u8(out, 0);
                put_f64(out, *c);
            }
            Cofactor::Elem(e) => {
                put_u8(out, 1);
                put_f64(out, e.count);
                let dim = e.dim();
                put_u32(out, dim as u32);
                for &s in &e.sums {
                    put_f64(out, s);
                }
                // Packed upper triangle, row-major — the matrix's own layout.
                for i in 0..dim {
                    for j in i..dim {
                        put_f64(out, e.prods.get(i, j));
                    }
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(Cofactor::Scalar(r.f64()?)),
            1 => {
                let count = r.f64()?;
                let dim = read_dim(r)?;
                let mut sums = Vec::with_capacity(dim);
                for _ in 0..dim {
                    sums.push(r.f64()?);
                }
                let mut prods = SymMatrix::zeros(dim);
                for i in 0..dim {
                    for j in i..dim {
                        prods.set(i, j, r.f64()?);
                    }
                }
                Ok(Cofactor::Elem(CofactorElem { count, sums, prods }))
            }
            _ => Err(WireError::Malformed("cofactor variant tag out of range")),
        }
    }
}

/// Writes one relational-key interior: pair count, then `(attr, value)`
/// pairs in the key's canonical order.
fn put_rel_key(out: &mut Vec<u8>, key: &RelKey) {
    put_u8(out, u8::try_from(key.len()).expect("relational key wider than 255 pairs"));
    for (attr, value) in key.pairs() {
        put_u32(out, attr);
        put_encoded_value(out, value);
    }
}

/// Reads a relational key written by [`put_rel_key`].  Rebuilding through
/// [`RelKey::from_pairs`] re-canonicalizes, so the restored key's words —
/// and its [`RelKey::fx_hash`] — match the saved key exactly.
fn read_rel_key(r: &mut WireReader<'_>) -> WireResult<RelKey> {
    let n = r.u8()? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = r.u32()?;
        let value = read_encoded_value(r)?;
        pairs.push((attr, value));
    }
    Ok(RelKey::from_pairs(&mut pairs))
}

impl PersistRing for RelValue {
    const RING_TAG: &'static str = "relvalue";

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for (hash, key, w) in self.iter_hashed() {
            put_u64(out, hash);
            put_rel_key(out, key);
            put_f64(out, w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = r.u32()? as usize;
        if len > r.remaining() {
            // Each entry needs well over one byte; an impossible length is
            // corruption, not a huge value.
            return Err(WireError::Malformed("relation entry count out of range"));
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let hash = r.u64()?;
            let key = read_rel_key(r)?;
            if hash != key.fx_hash() {
                return Err(WireError::Malformed("stored hash does not match key"));
            }
            let w = r.f64()?;
            entries.push((hash, key, w));
        }
        Ok(RelValue::from_hashed_entries(len, entries))
    }
}

impl PersistRing for GenCofactor {
    const RING_TAG: &'static str = "gen_cofactor";

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GenCofactor::Scalar(c) => {
                put_u8(out, 0);
                put_f64(out, *c);
            }
            GenCofactor::Elem(e) => {
                put_u8(out, 1);
                put_f64(out, e.count);
                let dim = e.dim();
                put_u32(out, dim as u32);
                // Components travel in composed form (empty-key scalar mass
                // folded back into each relation): the wire format predates
                // the split in-memory representation and stays compatible
                // with snapshots taken before it.
                for i in 0..dim {
                    e.sum(i).encode(out);
                }
                for i in 0..dim {
                    for j in i..dim {
                        e.prod(i, j).encode(out);
                    }
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(GenCofactor::Scalar(r.f64()?)),
            1 => {
                let count = r.f64()?;
                let dim = read_dim(r)?;
                let mut sums = Vec::with_capacity(dim);
                for _ in 0..dim {
                    sums.push(RelValue::decode(r)?);
                }
                let tri = dim * (dim + 1) / 2;
                let mut prods = Vec::with_capacity(tri);
                for _ in 0..tri {
                    prods.push(RelValue::decode(r)?);
                }
                // Split each composed component back into dense scalar mass
                // + cats-only interior; the relations are reused in place,
                // so the zero-growth-rehash restore property is preserved.
                Ok(GenCofactor::Elem(GenCofactorElem::from_composed(
                    count, sums, prods,
                )))
            }
            _ => Err(WireError::Malformed("cofactor variant tag out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::EncodedValue;

    fn round_trip<R: PersistRing>(v: &R) -> R {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let out = R::decode(&mut r).expect("decode");
        assert!(r.is_empty(), "decoder left trailing bytes");
        out
    }

    #[test]
    fn numeric_rings_round_trip() {
        assert_eq!(round_trip(&42i64), 42);
        assert_eq!(round_trip(&-7i64), -7);
        assert_eq!(round_trip(&2.5f64), 2.5);
        // Raw bits: -0.0 stays -0.0.
        assert_eq!(round_trip(&-0.0f64).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn cofactor_round_trips_bit_identically() {
        assert_eq!(round_trip(&Cofactor::Scalar(3.0)), Cofactor::Scalar(3.0));
        let mut e = CofactorElem::zeros(3);
        e.count = 5.0;
        e.sums = vec![1.5, -2.0, 0.25];
        e.prods.set(0, 1, 7.75);
        e.prods.set(2, 2, -0.125);
        let v = Cofactor::Elem(e);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn relvalue_round_trip_has_zero_rehashes() {
        let mut v = RelValue::scalar(2.0);
        for i in 0..200 {
            v.add_entry(
                &RelKey::singleton(3, EncodedValue::int(i)),
                (i as f64) + 0.5,
            );
        }
        let restored = round_trip(&v);
        assert_eq!(restored, v);
        // The restore right-sizes the table: no growth rehashes, and every
        // entry sits under its stored hash.
        assert_eq!(restored.table_rehashes(), 0);
    }

    #[test]
    fn gen_cofactor_round_trips() {
        // Mixed continuous/categorical element: the wire form composes each
        // component (empty-key mass folded in), decode splits it back.
        let mut v = GenCofactor::lift_continuous(2, 0, 1.5)
            .mul(&GenCofactor::lift_categorical(2, 1, 7, EncodedValue::int(9)));
        v.fma_lift_continuous(&GenCofactor::scalar(2.5), 2, 0, -1.0, 1);
        let restored = round_trip(&v);
        assert_eq!(restored, v);
        // Restored relational interiors are right-sized: zero growth rehashes.
        assert_eq!(restored.table_rehashes(), 0);
        assert_eq!(
            round_trip(&GenCofactor::Scalar(1.0)),
            GenCofactor::Scalar(1.0)
        );
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        // Bad variant tag.
        let mut r = WireReader::new(&[9u8]);
        assert!(Cofactor::decode(&mut r).is_err());
        // Truncated relation.
        let mut buf = Vec::new();
        RelValue::scalar(1.0).encode(&mut buf);
        let mut r = WireReader::new(&buf[..buf.len() - 2]);
        assert!(RelValue::decode(&mut r).is_err());
        // Stored hash that does not match its key.
        let mut buf = Vec::new();
        RelValue::weighted(1, EncodedValue::int(5), 2.0).encode(&mut buf);
        buf[4] ^= 0x40; // flip a bit inside the stored hash
        assert!(matches!(
            RelValue::decode(&mut WireReader::new(&buf)),
            Err(WireError::Malformed(_))
        ));
    }
}
