//! The generalized degree-m matrix ring with relational values.
//!
//! This is the composition of the cofactor ring with the relation ring used
//! by the paper to unify continuous and categorical attributes: the entries
//! of the sum vector `s` and the interaction matrix `Q` are relations
//! ([`RelValue`]) instead of scalars.
//!
//! * For a continuous attribute `X`, `s_X` and `Q_XX` hold relations over the
//!   empty schema (plain sums).
//! * For a categorical attribute `X`, `s_X = SUM(1) GROUP BY X` and
//!   `Q_XY = SUM(...) GROUP BY` the categorical attributes among `{X, Y}` —
//!   a compact one-hot encoding that only stores categories present in the
//!   join result.
//!
//! The very same structure doubles as the **mutual information (MI)** payload
//! when every attribute is lifted categorically: `c = SUM(1)`,
//! `s_X = SUM(1) GROUP BY X` and `Q_XY = SUM(1) GROUP BY (X, Y)` are exactly
//! the aggregates needed to compute pairwise MI.
//!
//! The count component stays a scalar: it is never grouped by anything.
//!
//! # The sparse lift path
//!
//! A lifted input value is extremely sparse: count 1, one non-zero `s`
//! entry, one non-zero `Q` entry.  Materializing it as a dense element
//! costs `dim + dim·(dim+1)/2` relation buffers per input row — the
//! dominant cost of GenCofactor-bound workloads.  The fused accumulators
//! [`GenCofactor::fma_lift_continuous`] and
//! [`GenCofactor::fma_lift_categorical`] apply `self += (acc · g(v)) ·
//! scale` directly from the lift's three non-zero components, touching only
//! the rows/columns of the lifted index beyond a scaled copy of `acc` —
//! the generalized-ring extension of the PR-1 in-place contract
//! (`fivm_ring::axioms::check_inplace_ops`), wired to the engine through
//! [`crate::LiftFn::with_fma_encoded`].

use crate::relkey::RelKey;
use crate::relvalue::RelValue;
use crate::ring::{approx_f64, ApproxEq, Ring};
use fivm_common::{Dict, EncodedValue};

/// A value of the generalized (relational) cofactor ring.
#[derive(Clone, Debug, PartialEq)]
pub enum GenCofactor {
    /// `(c, 0, 0)` — a pure count, valid for any dimension.
    Scalar(f64),
    /// A full `(c, s, Q)` triple with relational entries.
    Elem(GenCofactorElem),
}

/// Dense representation of a generalized cofactor element of dimension `m`:
/// `sums` has `m` entries and `prods` stores the packed upper triangle
/// (`m·(m+1)/2` entries).
#[derive(Clone, Debug, PartialEq)]
pub struct GenCofactorElem {
    /// The count aggregate `SUM(1)`.
    pub count: f64,
    /// Per-attribute linear aggregates (relations).
    pub sums: Vec<RelValue>,
    /// Pairwise interaction aggregates (relations), packed upper triangle.
    pub prods: Vec<RelValue>,
}

#[inline]
fn tri_len(dim: usize) -> usize {
    dim * (dim + 1) / 2
}

#[inline]
fn tri_index(dim: usize, i: usize, j: usize) -> usize {
    let (i, j) = if i <= j { (i, j) } else { (j, i) };
    debug_assert!(j < dim);
    i * dim - i * (i + 1) / 2 + j
}

impl GenCofactorElem {
    /// A zero element of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        GenCofactorElem {
            count: 0.0,
            sums: vec![RelValue::empty(); dim],
            prods: vec![RelValue::empty(); tri_len(dim)],
        }
    }

    /// The dimension `m`.
    pub fn dim(&self) -> usize {
        self.sums.len()
    }

    /// The interaction relation at `(i, j)`.
    pub fn prod(&self, i: usize, j: usize) -> &RelValue {
        &self.prods[tri_index(self.dim(), i, j)]
    }

    /// Mutable access to the interaction relation at `(i, j)`.
    pub fn prod_mut(&mut self, i: usize, j: usize) -> &mut RelValue {
        let idx = tri_index(self.dim(), i, j);
        &mut self.prods[idx]
    }
}

impl GenCofactor {
    /// Lifts a **continuous** attribute value: `s_idx = {() -> x}`,
    /// `Q_idx,idx = {() -> x²}`.
    pub fn lift_continuous(dim: usize, idx: usize, x: f64) -> Self {
        assert!(idx < dim, "lift index {idx} out of bounds for dimension {dim}");
        let mut e = GenCofactorElem::zeros(dim);
        e.count = 1.0;
        e.sums[idx] = RelValue::scalar(x);
        *e.prod_mut(idx, idx) = RelValue::scalar(x * x);
        GenCofactor::Elem(e)
    }

    /// Lifts a **categorical** attribute value: `s_idx = {(attr=v) -> 1}`,
    /// `Q_idx,idx = {(attr=v) -> 1}`.
    ///
    /// `attr` is the attribute tag used inside relational keys; by
    /// convention the engine passes the feature index so keys are
    /// self-describing.  The value is already dictionary-encoded — string
    /// categories go through the engine's [`crate::RingCtx`] (integer and
    /// double categories encode without a dictionary,
    /// [`EncodedValue::int`] / [`EncodedValue::double`]).
    pub fn lift_categorical(dim: usize, idx: usize, attr: usize, value: EncodedValue) -> Self {
        assert!(idx < dim, "lift index {idx} out of bounds for dimension {dim}");
        let mut e = GenCofactorElem::zeros(dim);
        e.count = 1.0;
        e.sums[idx] = RelValue::indicator(attr, value);
        *e.prod_mut(idx, idx) = RelValue::indicator(attr, value);
        GenCofactor::Elem(e)
    }

    /// A pure count element.
    pub fn scalar(c: f64) -> Self {
        GenCofactor::Scalar(c)
    }

    /// The count component.
    pub fn count(&self) -> f64 {
        match self {
            GenCofactor::Scalar(c) => *c,
            GenCofactor::Elem(e) => e.count,
        }
    }

    /// The linear aggregate relation for attribute `idx` (empty for scalars).
    pub fn sum(&self, idx: usize) -> RelValue {
        match self {
            GenCofactor::Scalar(_) => RelValue::empty(),
            GenCofactor::Elem(e) => e.sums.get(idx).cloned().unwrap_or_default(),
        }
    }

    /// Borrowed variant of [`GenCofactor::sum`] (`None` for scalars, which
    /// have no relational components to borrow).
    pub fn sum_ref(&self, idx: usize) -> Option<&RelValue> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => e.sums.get(idx),
        }
    }

    /// The interaction relation for `(i, j)` (empty for scalars).
    pub fn prod(&self, i: usize, j: usize) -> RelValue {
        match self {
            GenCofactor::Scalar(_) => RelValue::empty(),
            GenCofactor::Elem(e) => e.prod(i, j).clone(),
        }
    }

    /// Borrowed variant of [`GenCofactor::prod`].
    pub fn prod_ref(&self, i: usize, j: usize) -> Option<&RelValue> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => Some(e.prod(i, j)),
        }
    }

    /// The dimension, if the element carries one.
    pub fn dim(&self) -> Option<usize> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => Some(e.dim()),
        }
    }

    /// Materializes a dense element of dimension `dim`.
    pub fn to_dense(&self, dim: usize) -> GenCofactorElem {
        match self {
            GenCofactor::Scalar(c) => {
                let mut e = GenCofactorElem::zeros(dim);
                e.count = *c;
                e
            }
            GenCofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "generalized cofactor dimension mismatch");
                e.clone()
            }
        }
    }

    fn scale_all(&self, k: f64) -> Self {
        if k == 0.0 {
            return GenCofactor::Scalar(0.0);
        }
        match self {
            GenCofactor::Scalar(c) => GenCofactor::Scalar(c * k),
            GenCofactor::Elem(e) => {
                let scale = RelValue::scalar(k);
                GenCofactor::Elem(GenCofactorElem {
                    count: e.count * k,
                    sums: e.sums.iter().map(|s| s.mul(&scale)).collect(),
                    prods: e.prods.iter().map(|q| q.mul(&scale)).collect(),
                })
            }
        }
    }

    /// Turns `self` into a dense element of dimension `dim` (keeping the
    /// count) and returns it; allocates only when `self` was a scalar.
    fn promote_to_elem(&mut self, dim: usize) -> &mut GenCofactorElem {
        if let GenCofactor::Scalar(c) = *self {
            let mut e = GenCofactorElem::zeros(dim);
            e.count = c;
            *self = GenCofactor::Elem(e);
        }
        match self {
            GenCofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "generalized cofactor dimension mismatch");
                e
            }
            GenCofactor::Scalar(_) => unreachable!("promoted above"),
        }
    }

    /// Sparse-lift fused accumulate, continuous:
    /// `self += (acc · lift_continuous(dim, idx, x)) · scale` without
    /// materializing the lifted element.  For a scalar `acc` this touches
    /// three entries; for a dense `acc` it adds a scaled copy of `acc` plus
    /// the lifted row/column — never `O(dim²)` relation traffic for the
    /// lift's side.
    pub fn fma_lift_continuous(&mut self, acc: &GenCofactor, dim: usize, idx: usize, x: f64, scale: i64) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        let empty = RelKey::empty();
        let empty_hash = empty.fx_hash();
        match acc {
            GenCofactor::Scalar(c) => {
                if *c == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(dim);
                o.count += s * c;
                o.sums[idx].add_entry_prehashed(empty_hash, &empty, s * c * x);
                o.prod_mut(idx, idx)
                    .add_entry_prehashed(empty_hash, &empty, s * c * x * x);
            }
            GenCofactor::Elem(a) => {
                assert_eq!(a.dim(), dim, "generalized cofactor dimension mismatch");
                let o = self.promote_to_elem(dim);
                o.count += s * a.count;
                // The lift's count is 1: every component of `acc` joins a
                // plain scalar, i.e. accumulates as a scaled copy.
                for (dst, src) in o.sums.iter_mut().zip(a.sums.iter()) {
                    dst.add_scaled(src, s);
                }
                for (dst, src) in o.prods.iter_mut().zip(a.prods.iter()) {
                    dst.add_scaled(src, s);
                }
                // s_idx gains x per joined tuple: s · x · acc.count.
                o.sums[idx].add_entry_prehashed(empty_hash, &empty, s * x * a.count);
                // Cross terms touch only row/column idx; the (idx, idx) cell
                // receives both symmetric halves.
                for i in 0..dim {
                    let factor = if i == idx { 2.0 * s * x } else { s * x };
                    let q = &mut o.prods[tri_index(dim, i, idx)];
                    q.add_scaled(&a.sums[i], factor);
                }
                o.prod_mut(idx, idx)
                    .add_entry_prehashed(empty_hash, &empty, s * x * x * a.count);
            }
        }
    }

    /// Sparse-lift fused accumulate, categorical:
    /// `self += (acc · lift_categorical(dim, idx, attr, value)) · scale`.
    /// The singleton key `(attr = value)` is built and hashed exactly once;
    /// for a scalar `acc` the whole accumulation is three table upserts.
    pub fn fma_lift_categorical(
        &mut self,
        acc: &GenCofactor,
        dim: usize,
        idx: usize,
        attr: usize,
        value: EncodedValue,
        scale: i64,
    ) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        let key = RelKey::singleton(attr as u32, value);
        let hash = key.fx_hash();
        match acc {
            GenCofactor::Scalar(c) => {
                if *c == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(dim);
                o.count += s * c;
                o.sums[idx].add_entry_prehashed(hash, &key, s * c);
                o.prod_mut(idx, idx).add_entry_prehashed(hash, &key, s * c);
            }
            GenCofactor::Elem(a) => {
                assert_eq!(a.dim(), dim, "generalized cofactor dimension mismatch");
                let o = self.promote_to_elem(dim);
                o.count += s * a.count;
                for (dst, src) in o.sums.iter_mut().zip(a.sums.iter()) {
                    dst.add_scaled(src, s);
                }
                for (dst, src) in o.prods.iter_mut().zip(a.prods.iter()) {
                    dst.add_scaled(src, s);
                }
                // s_idx = SUM(1) GROUP BY attr over the joined tuples.
                o.sums[idx].add_entry_prehashed(hash, &key, s * a.count);
                // Cross terms: acc.s[i] ⋈ {attr = value}, row and column of
                // idx; (idx, idx) receives both symmetric halves.
                for i in 0..dim {
                    let q = &mut o.prods[tri_index(dim, i, idx)];
                    q.fma_indicator(&a.sums[i], attr as u32, value, s);
                    if i == idx {
                        q.fma_indicator(&a.sums[i], attr as u32, value, s);
                    }
                }
                o.prod_mut(idx, idx).add_entry_prehashed(hash, &key, s * a.count);
            }
        }
    }

    /// Sum of interior-table rehash events over every relational component.
    pub fn table_rehashes(&self) -> u64 {
        match self {
            GenCofactor::Scalar(_) => 0,
            GenCofactor::Elem(e) => e
                .sums
                .iter()
                .chain(e.prods.iter())
                .map(RelValue::table_rehashes)
                .sum(),
        }
    }

    /// Heap bytes of this element's interior allocations: the `sums`/
    /// `prods` vector buffers plus every component relation's table arrays
    /// (see [`RelValue::allocated_bytes`] for the accounting boundary).
    /// Scalars own nothing.
    pub fn allocated_bytes(&self) -> usize {
        match self {
            GenCofactor::Scalar(_) => 0,
            GenCofactor::Elem(e) => {
                (e.sums.capacity() + e.prods.capacity()) * std::mem::size_of::<RelValue>()
                    + e.sums
                        .iter()
                        .chain(e.prods.iter())
                        .map(RelValue::allocated_bytes)
                        .sum::<usize>()
            }
        }
    }
}

impl Ring for GenCofactor {
    fn zero() -> Self {
        GenCofactor::Scalar(0.0)
    }

    fn one() -> Self {
        GenCofactor::Scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        match self {
            GenCofactor::Scalar(c) => *c == 0.0,
            GenCofactor::Elem(e) => {
                e.count == 0.0
                    && e.sums.iter().all(RelValue::is_zero)
                    && e.prods.iter().all(RelValue::is_zero)
            }
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    fn add_assign(&mut self, rhs: &Self) {
        match (&mut *self, rhs) {
            (GenCofactor::Scalar(a), GenCofactor::Scalar(b)) => *a += b,
            (GenCofactor::Elem(a), GenCofactor::Scalar(b)) => a.count += b,
            (GenCofactor::Elem(a), GenCofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot add generalized cofactors of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                a.count += b.count;
                for (x, y) in a.sums.iter_mut().zip(b.sums.iter()) {
                    x.add_assign(y);
                }
                for (x, y) in a.prods.iter_mut().zip(b.prods.iter()) {
                    x.add_assign(y);
                }
            }
            (slot @ GenCofactor::Scalar(_), GenCofactor::Elem(b)) => {
                let mut out = b.clone();
                if let GenCofactor::Scalar(a) = slot {
                    out.count += *a;
                }
                *slot = GenCofactor::Elem(out);
            }
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (GenCofactor::Scalar(a), GenCofactor::Scalar(b)) => GenCofactor::Scalar(a * b),
            (GenCofactor::Scalar(a), other @ GenCofactor::Elem(_)) => other.scale_all(*a),
            (other @ GenCofactor::Elem(_), GenCofactor::Scalar(b)) => other.scale_all(*b),
            (GenCofactor::Elem(a), GenCofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot multiply generalized cofactors of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                let dim = a.dim();
                let ca = RelValue::scalar(a.count);
                let cb = RelValue::scalar(b.count);
                let mut out = GenCofactorElem::zeros(dim);
                out.count = a.count * b.count;
                for i in 0..dim {
                    out.sums[i] = a.sums[i].mul(&cb).add(&b.sums[i].mul(&ca));
                }
                for i in 0..dim {
                    for j in i..dim {
                        let mut q = a.prod(i, j).mul(&cb);
                        q.add_assign(&b.prod(i, j).mul(&ca));
                        // Cross terms: s_a[i]·s_b[j] + s_b[i]·s_a[j].
                        q.add_assign(&a.sums[i].mul(&b.sums[j]));
                        q.add_assign(&b.sums[i].mul(&a.sums[j]));
                        *out.prod_mut(i, j) = q;
                    }
                }
                GenCofactor::Elem(out)
            }
        }
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        match (a, b) {
            (GenCofactor::Scalar(x), GenCofactor::Scalar(y)) => match self {
                GenCofactor::Scalar(c) => *c += s * x * y,
                GenCofactor::Elem(e) => e.count += s * x * y,
            },
            (GenCofactor::Scalar(x), GenCofactor::Elem(e))
            | (GenCofactor::Elem(e), GenCofactor::Scalar(x)) => {
                let k = s * x;
                if k == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(e.dim());
                o.count += k * e.count;
                for (dst, src) in o.sums.iter_mut().zip(e.sums.iter()) {
                    dst.add_scaled(src, k);
                }
                for (dst, src) in o.prods.iter_mut().zip(e.prods.iter()) {
                    dst.add_scaled(src, k);
                }
            }
            (GenCofactor::Elem(ea), GenCofactor::Elem(eb)) => {
                assert_eq!(
                    ea.dim(),
                    eb.dim(),
                    "cannot multiply generalized cofactors of dimensions {} and {}",
                    ea.dim(),
                    eb.dim()
                );
                let dim = ea.dim();
                let o = self.promote_to_elem(dim);
                o.count += s * ea.count * eb.count;
                for i in 0..dim {
                    o.sums[i].add_scaled(&ea.sums[i], s * eb.count);
                    o.sums[i].add_scaled(&eb.sums[i], s * ea.count);
                }
                for i in 0..dim {
                    for j in i..dim {
                        let q = &mut o.prods[tri_index(dim, i, j)];
                        q.add_scaled(ea.prod(i, j), s * eb.count);
                        q.add_scaled(eb.prod(i, j), s * ea.count);
                        // Cross terms: s·(s_a[i] ⋈ s_b[j]) + s·(s_b[i] ⋈ s_a[j]).
                        q.add_product_scaled(&ea.sums[i], &eb.sums[j], s);
                        q.add_product_scaled(&eb.sums[i], &ea.sums[j], s);
                    }
                }
            }
        }
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        match (self, rhs) {
            (GenCofactor::Scalar(a), GenCofactor::Scalar(b)) => {
                *out = GenCofactor::Scalar(a * b);
            }
            _ => {
                // Reuse `out`'s relation buffers when its shape matches by
                // resetting it to zero and running the fused accumulate.
                let dim = self.dim().or(rhs.dim()).expect("one operand is dense");
                match out {
                    GenCofactor::Elem(o) if o.dim() == dim => {
                        o.count = 0.0;
                        for s in &mut o.sums {
                            s.clear();
                        }
                        for q in &mut o.prods {
                            q.clear();
                        }
                    }
                    _ => *out = GenCofactor::Elem(GenCofactorElem::zeros(dim)),
                }
                out.fma_scaled(self, rhs, 1);
            }
        }
    }

    fn neg(&self) -> Self {
        match self {
            GenCofactor::Scalar(c) => GenCofactor::Scalar(-c),
            GenCofactor::Elem(e) => GenCofactor::Elem(GenCofactorElem {
                count: -e.count,
                sums: e.sums.iter().map(Ring::neg).collect(),
                prods: e.prods.iter().map(Ring::neg).collect(),
            }),
        }
    }

    fn scale_int(&self, k: i64) -> Self {
        self.scale_all(k as f64)
    }

    fn reset_zero(&mut self) {
        match self {
            GenCofactor::Scalar(c) => *c = 0.0,
            GenCofactor::Elem(e) => {
                e.count = 0.0;
                for s in &mut e.sums {
                    s.reset_zero();
                }
                for q in &mut e.prods {
                    q.reset_zero();
                }
            }
        }
    }

    fn needs_rekey() -> bool {
        true
    }

    fn rekey(&self, src: &Dict, dst: &mut Dict) -> Self {
        match self {
            GenCofactor::Scalar(c) => GenCofactor::Scalar(*c),
            GenCofactor::Elem(e) => GenCofactor::Elem(GenCofactorElem {
                count: e.count,
                sums: e.sums.iter().map(|r| r.rekey_dicts(src, dst)).collect(),
                prods: e.prods.iter().map(|r| r.rekey_dicts(src, dst)).collect(),
            }),
        }
    }

    fn payload_rehashes(&self) -> u64 {
        self.table_rehashes()
    }

    fn payload_bytes(&self) -> usize {
        self.allocated_bytes()
    }
}

impl ApproxEq for GenCofactor {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let dim = self.dim().or(other.dim());
        match dim {
            None => approx_f64(self.count(), other.count(), tol),
            Some(dim) => {
                let a = self.to_dense(dim);
                let b = other.to_dense(dim);
                approx_f64(a.count, b.count, tol)
                    && a.sums
                        .iter()
                        .zip(b.sums.iter())
                        .all(|(x, y)| x.approx_eq(y, tol))
                    && a.prods
                        .iter()
                        .zip(b.prods.iter())
                        .all(|(x, y)| x.approx_eq(y, tol))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;
    use crate::ctx::RingCtx;
    use fivm_common::Value;

    fn ev(x: i64) -> EncodedValue {
        EncodedValue::int(x)
    }

    #[test]
    fn continuous_lift_matches_cofactor_semantics() {
        let g = GenCofactor::lift_continuous(3, 1, 4.0);
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(1).scalar_part(), 4.0);
        assert_eq!(g.prod(1, 1).scalar_part(), 16.0);
        assert!(g.prod(0, 1).is_zero());
    }

    #[test]
    fn categorical_lift_one_hot_encodes() {
        let ctx = RingCtx::new();
        let red = ctx.encode_value(&Value::str("red"));
        let g = GenCofactor::lift_categorical(3, 2, 2, red);
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(2).get(&[(2, red)]), 1.0);
        assert_eq!(g.prod(2, 2).get(&[(2, red)]), 1.0);
        assert!(g.sum(0).is_zero());
    }

    #[test]
    fn figure1_covar_with_categorical_c() {
        // Figure 1, COVAR with categorical C and continuous B, D (b_i = d_i = i).
        // Variables indexed: B = 0, C = 1, D = 2.
        let ctx = RingCtx::new();
        let c1 = ctx.encode_value(&Value::str("c1"));
        let c2 = ctx.encode_value(&Value::str("c2"));
        // V_S(a1) = g_C(c1)*g_D(d1) + g_C(c2)*g_D(d3)
        let term1 = GenCofactor::lift_categorical(3, 1, 1, c1)
            .mul(&GenCofactor::lift_continuous(3, 2, 1.0));
        let term2 = GenCofactor::lift_categorical(3, 1, 1, c2)
            .mul(&GenCofactor::lift_continuous(3, 2, 3.0));
        let vs_a1 = term1.add(&term2);
        assert_eq!(vs_a1.count(), 2.0);
        // s_C = SUM(1) GROUP BY C = {c1 -> 1, c2 -> 1}
        assert_eq!(vs_a1.sum(1).get(&[(1, c1)]), 1.0);
        assert_eq!(vs_a1.sum(1).get(&[(1, c2)]), 1.0);
        // s_D = SUM(D) = 1 + 3
        assert_eq!(vs_a1.sum(2).scalar_part(), 4.0);
        // Q_CD = SUM(D) GROUP BY C = {c1 -> 1, c2 -> 3}
        assert_eq!(vs_a1.prod(1, 2).get(&[(1, c1)]), 1.0);
        assert_eq!(vs_a1.prod(1, 2).get(&[(1, c2)]), 3.0);

        // Join with V_R(a1) = g_B(b1) (B continuous, b1 = 1).
        let vr_a1 = GenCofactor::lift_continuous(3, 0, 1.0);
        let q = vr_a1.mul(&vs_a1);
        assert_eq!(q.count(), 2.0);
        // Q_BC = SUM(B) GROUP BY C = {c1 -> 1, c2 -> 1}
        assert_eq!(q.prod(0, 1).get(&[(1, c1)]), 1.0);
        assert_eq!(q.prod(0, 1).get(&[(1, c2)]), 1.0);
        // Q_BD = SUM(B*D) = 1*1 + 1*3 = 4
        assert_eq!(q.prod(0, 2).scalar_part(), 4.0);
    }

    #[test]
    fn mi_payload_counts_pairwise_cooccurrences() {
        // All attributes categorical: the payload holds C_X and C_XY counts.
        let t1 = GenCofactor::lift_categorical(2, 0, 0, ev(1))
            .mul(&GenCofactor::lift_categorical(2, 1, 1, ev(10)));
        let t2 = GenCofactor::lift_categorical(2, 0, 0, ev(1))
            .mul(&GenCofactor::lift_categorical(2, 1, 1, ev(20)));
        let total = t1.add(&t2);
        assert_eq!(total.count(), 2.0);
        assert_eq!(total.sum(0).get(&[(0, ev(1))]), 2.0);
        assert_eq!(total.sum(1).get(&[(1, ev(10))]), 1.0);
        assert_eq!(total.prod(0, 1).get(&[(0, ev(1)), (1, ev(10))]), 1.0);
        assert_eq!(total.prod(0, 1).get(&[(0, ev(1)), (1, ev(20))]), 1.0);
    }

    #[test]
    fn deletes_cancel() {
        let ctx = RingCtx::new();
        let a = ctx.encode_value(&Value::str("a"));
        let x = GenCofactor::lift_categorical(2, 0, 0, a)
            .mul(&GenCofactor::lift_continuous(2, 1, 2.0));
        assert!(x.add(&x.neg()).is_zero());
        assert!(x.scale_int(0).is_zero());
        assert_eq!(x.scale_int(-1), x.neg());
    }

    #[test]
    fn scalar_interactions() {
        let e = GenCofactor::lift_categorical(2, 0, 0, ev(5));
        let s = GenCofactor::scalar(3.0);
        let prod = s.mul(&e);
        assert_eq!(prod.count(), 3.0);
        assert_eq!(prod.sum(0).get(&[(0, ev(5))]), 3.0);
        let sum = s.add(&e);
        assert_eq!(sum.count(), 4.0);
        assert_eq!(sum.sum(0).get(&[(0, ev(5))]), 1.0);
        let sum_rev = e.add(&s);
        assert_eq!(sum, sum_rev);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn dimension_mismatch_panics() {
        let _ = GenCofactor::lift_continuous(2, 0, 1.0)
            .mul(&GenCofactor::lift_continuous(3, 0, 1.0));
    }

    #[test]
    fn ring_axioms_hold_approximately() {
        let ctx = RingCtx::new();
        let x = ctx.encode_value(&Value::str("x"));
        let a = GenCofactor::lift_categorical(3, 0, 0, x);
        let b = GenCofactor::lift_continuous(3, 1, 2.5)
            .mul(&GenCofactor::lift_categorical(3, 2, 2, ev(7)));
        let c = GenCofactor::scalar(2.0).add(&GenCofactor::lift_continuous(3, 1, -1.0));
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    /// The sparse-lift fused accumulators must agree exactly with
    /// materialize-then-fma for every accumulator shape.
    #[test]
    fn sparse_lift_fma_matches_materialized_lift() {
        let dim = 3;
        let accs = [
            GenCofactor::zero(),
            GenCofactor::scalar(2.5),
            GenCofactor::lift_categorical(dim, 0, 0, ev(4))
                .mul(&GenCofactor::lift_continuous(dim, 1, 1.5)),
            GenCofactor::lift_categorical(dim, 2, 2, ev(9)),
        ];
        for acc in &accs {
            for scale in [-2i64, -1, 0, 1, 3] {
                // Continuous lift at idx 1.
                let mut fused = acc.mul(acc);
                let mut reference = fused.clone();
                fused.fma_lift_continuous(acc, dim, 1, 2.0, scale);
                reference.fma_scaled(acc, &GenCofactor::lift_continuous(dim, 1, 2.0), scale);
                assert_eq!(fused, reference, "continuous, scale={scale}");

                // Categorical lift at idx 2 — shares attribute 0 categories
                // with the accumulator to exercise the join filter.
                let mut fused = acc.mul(acc);
                let mut reference = fused.clone();
                fused.fma_lift_categorical(acc, dim, 2, 0, ev(4), scale);
                reference.fma_scaled(
                    acc,
                    &GenCofactor::lift_categorical(dim, 2, 0, ev(4)),
                    scale,
                );
                assert_eq!(fused, reference, "categorical, scale={scale}");
            }
        }
    }

    #[test]
    fn rekey_moves_string_categories_between_dictionaries() {
        let a = RingCtx::new();
        let red = a.encode_value(&Value::str("red"));
        let g = GenCofactor::lift_categorical(2, 0, 0, red)
            .mul(&GenCofactor::lift_continuous(2, 1, 2.0));
        let b = RingCtx::new();
        // "blue" takes id 0 in the destination — the same *encoding* as
        // "red" in the source.  Ids are dictionary-local; interpreting the
        // payload under `b` without rekeying would read the wrong string.
        let blue_first = b.encode_value(&Value::str("blue"));
        assert_eq!(red, blue_first);
        let moved = b.with_dict_mut(|dst| a.with_dict(|src| g.rekey(src, dst)));
        // Same decoded content under the destination dictionary.
        let red_b = b.encode_value(&Value::str("red"));
        assert_eq!(moved.sum(0).get(&[(0, red_b)]), 1.0);
        assert_eq!(moved.count(), g.count());
        assert!(GenCofactor::needs_rekey());
        assert!(!<f64 as Ring>::needs_rekey());
    }
}
