//! The generalized degree-m matrix ring with relational values.
//!
//! This is the composition of the cofactor ring with the relation ring used
//! by the paper to unify continuous and categorical attributes: the entries
//! of the sum vector `s` and the interaction matrix `Q` are relations
//! ([`RelValue`]) instead of scalars.
//!
//! * For a continuous attribute `X`, `s_X` and `Q_XX` hold relations over the
//!   empty schema (plain sums).
//! * For a categorical attribute `X`, `s_X = SUM(1) GROUP BY X` and
//!   `Q_XY = SUM(...) GROUP BY` the categorical attributes among `{X, Y}` —
//!   a compact one-hot encoding that only stores categories present in the
//!   join result.
//!
//! The very same structure doubles as the **mutual information (MI)** payload
//! when every attribute is lifted categorically: `c = SUM(1)`,
//! `s_X = SUM(1) GROUP BY X` and `Q_XY = SUM(1) GROUP BY (X, Y)` are exactly
//! the aggregates needed to compute pairwise MI.
//!
//! The count component stays a scalar: it is never grouped by anything.
//!
//! # The split representation
//!
//! Semantically every component is a relation, but its empty-key ("scalar")
//! mass — the continuous sums and products — behaves exactly like the plain
//! cofactor ring, and storing it inside a hash table makes every continuous
//! accumulation a table probe.  [`GenCofactorElem`] therefore *splits* each
//! component: the empty-key weights live in dense fields (`sums_scalar`, a
//! packed [`SymMatrix`] for the products — literally a [`crate::CofactorElem`]
//! shape, sharing its auto-vectorized slice kernels), and the interior
//! relations hold **only non-empty keys**.  That invariant makes the split
//! canonical, so derived equality is sound, and it turns the dense half of
//! every GenCofactor operation into straight-line `f64` slice arithmetic.
//! Composed views (empty key folded back in) are available at the output
//! boundary via [`GenCofactorElem::sum`] / [`GenCofactorElem::prod`].
//!
//! # The sparse lift path
//!
//! A lifted input value is extremely sparse: count 1, one non-zero `s`
//! entry, one non-zero `Q` entry.  Materializing it as a dense element
//! costs `dim + dim·(dim+1)/2` relation buffers per input row — the
//! dominant cost of GenCofactor-bound workloads.  The fused accumulators
//! [`GenCofactor::fma_lift_continuous`] and
//! [`GenCofactor::fma_lift_categorical`] apply `self += (acc · g(v)) ·
//! scale` directly from the lift's three non-zero components, touching only
//! the rows/columns of the lifted index beyond a scaled copy of `acc` —
//! the generalized-ring extension of the PR-1 in-place contract
//! (`fivm_ring::axioms::check_inplace_ops`), wired to the engine through
//! [`crate::LiftFn::with_fma_encoded`].  Their batch forms
//! ([`GenCofactor::fma_lift_continuous_sums`],
//! [`GenCofactor::fma_lift_categorical_weighted`]) accumulate a whole run of
//! scalar-weight delta rows with the promote/dispatch hoisted out of the
//! loop — the columnar kernel's `LiftFn::with_fma_batch` channel.

use crate::relkey::RelKey;
use crate::relvalue::RelValue;
use crate::ring::{approx_f64, ApproxEq, Ring};
use crate::symmatrix::SymMatrix;
use fivm_common::{Dict, EncodedValue};

/// A value of the generalized (relational) cofactor ring.
#[derive(Clone, Debug, PartialEq)]
pub enum GenCofactor {
    /// `(c, 0, 0)` — a pure count, valid for any dimension.
    Scalar(f64),
    /// A full `(c, s, Q)` triple with relational entries.
    Elem(GenCofactorElem),
}

/// Dense representation of a generalized cofactor element of dimension `m`,
/// in split form (see the module docs): continuous (empty-key) mass in
/// dense scalar fields, categorical mass in relations that never contain
/// the empty key.
#[derive(Clone, Debug, PartialEq)]
pub struct GenCofactorElem {
    /// The count aggregate `SUM(1)`.
    pub count: f64,
    /// Empty-key weight of each linear aggregate (`SUM(X_i)` for a
    /// continuous attribute `i`; 0 for categorical attributes).
    pub(crate) sums_scalar: Vec<f64>,
    /// Empty-key weights of the interaction aggregates (`SUM(X_i·X_j)`),
    /// packed upper triangle.
    pub(crate) prods_scalar: SymMatrix,
    /// Categorical parts of the linear aggregates.  Invariant: no empty
    /// keys — that mass lives in `sums_scalar`.
    pub(crate) sums_cats: Vec<RelValue>,
    /// Categorical parts of the interaction aggregates, packed upper
    /// triangle.  Invariant: no empty keys.
    pub(crate) prods_cats: Vec<RelValue>,
}

#[inline]
fn tri_len(dim: usize) -> usize {
    dim * (dim + 1) / 2
}

#[inline]
fn tri_index(dim: usize, i: usize, j: usize) -> usize {
    let (i, j) = if i <= j { (i, j) } else { (j, i) };
    debug_assert!(j < dim);
    i * dim - i * (i + 1) / 2 + j
}

/// The composed (relation) view of a split component: the categorical part
/// plus the empty-key scalar mass.
fn compose(scalar: f64, cats: &RelValue) -> RelValue {
    let mut out = cats.clone();
    if scalar != 0.0 {
        out.add_entry(&RelKey::empty(), scalar);
    }
    out
}

impl GenCofactorElem {
    /// A zero element of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        GenCofactorElem {
            count: 0.0,
            sums_scalar: vec![0.0; dim],
            prods_scalar: SymMatrix::zeros(dim),
            sums_cats: vec![RelValue::empty(); dim],
            prods_cats: vec![RelValue::empty(); tri_len(dim)],
        }
    }

    /// Builds an element from *composed* per-component relations (empty-key
    /// mass included), splitting each into the dense scalar fields and the
    /// cats-only interior — the snapshot-decode constructor.  The input
    /// relations are reused in place, so restored components keep their
    /// right-sized tables (zero growth rehashes).
    pub fn from_composed(count: f64, mut sums: Vec<RelValue>, mut prods: Vec<RelValue>) -> Self {
        let dim = sums.len();
        assert_eq!(prods.len(), tri_len(dim), "packed triangle length mismatch");
        let mut sums_scalar = vec![0.0; dim];
        for (dst, s) in sums_scalar.iter_mut().zip(&mut sums) {
            *dst = s.take_scalar_part();
        }
        let mut prods_scalar = SymMatrix::zeros(dim);
        let mut t = 0;
        for i in 0..dim {
            for j in i..dim {
                let w = prods[t].take_scalar_part();
                if w != 0.0 {
                    prods_scalar.set(i, j, w);
                }
                t += 1;
            }
        }
        GenCofactorElem {
            count,
            sums_scalar,
            prods_scalar,
            sums_cats: sums,
            prods_cats: prods,
        }
    }

    /// The dimension `m`.
    pub fn dim(&self) -> usize {
        self.sums_scalar.len()
    }

    /// The empty-key (continuous) mass of the linear aggregate `idx`.
    #[inline]
    pub fn sum_scalar(&self, idx: usize) -> f64 {
        self.sums_scalar[idx]
    }

    /// The categorical part of the linear aggregate `idx` (no empty keys).
    #[inline]
    pub fn sum_cats(&self, idx: usize) -> &RelValue {
        &self.sums_cats[idx]
    }

    /// The empty-key (continuous) mass of the interaction `(i, j)`.
    #[inline]
    pub fn prod_scalar(&self, i: usize, j: usize) -> f64 {
        self.prods_scalar.get(i, j)
    }

    /// The categorical part of the interaction `(i, j)` (no empty keys).
    #[inline]
    pub fn prod_cats(&self, i: usize, j: usize) -> &RelValue {
        &self.prods_cats[tri_index(self.dim(), i, j)]
    }

    /// The composed linear aggregate `idx` as a relation (output boundary;
    /// allocates a fresh relation).
    pub fn sum(&self, idx: usize) -> RelValue {
        compose(self.sums_scalar[idx], &self.sums_cats[idx])
    }

    /// The composed interaction `(i, j)` as a relation (output boundary;
    /// allocates a fresh relation).
    pub fn prod(&self, i: usize, j: usize) -> RelValue {
        compose(self.prod_scalar(i, j), self.prod_cats(i, j))
    }
}

impl GenCofactor {
    /// Lifts a **continuous** attribute value: `s_idx = {() -> x}`,
    /// `Q_idx,idx = {() -> x²}` — stored directly in the dense scalar
    /// fields of the split representation.
    pub fn lift_continuous(dim: usize, idx: usize, x: f64) -> Self {
        assert!(idx < dim, "lift index {idx} out of bounds for dimension {dim}");
        let mut e = GenCofactorElem::zeros(dim);
        e.count = 1.0;
        e.sums_scalar[idx] = x;
        e.prods_scalar.set(idx, idx, x * x);
        GenCofactor::Elem(e)
    }

    /// Lifts a **categorical** attribute value: `s_idx = {(attr=v) -> 1}`,
    /// `Q_idx,idx = {(attr=v) -> 1}`.
    ///
    /// `attr` is the attribute tag used inside relational keys; by
    /// convention the engine passes the feature index so keys are
    /// self-describing.  The value is already dictionary-encoded — string
    /// categories go through the engine's [`crate::RingCtx`] (integer and
    /// double categories encode without a dictionary,
    /// [`EncodedValue::int`] / [`EncodedValue::double`]).
    pub fn lift_categorical(dim: usize, idx: usize, attr: usize, value: EncodedValue) -> Self {
        assert!(idx < dim, "lift index {idx} out of bounds for dimension {dim}");
        let mut e = GenCofactorElem::zeros(dim);
        e.count = 1.0;
        e.sums_cats[idx] = RelValue::indicator(attr, value);
        let d = tri_index(dim, idx, idx);
        e.prods_cats[d] = RelValue::indicator(attr, value);
        GenCofactor::Elem(e)
    }

    /// A pure count element.
    pub fn scalar(c: f64) -> Self {
        GenCofactor::Scalar(c)
    }

    /// The count component.
    pub fn count(&self) -> f64 {
        match self {
            GenCofactor::Scalar(c) => *c,
            GenCofactor::Elem(e) => e.count,
        }
    }

    /// The composed linear aggregate relation for attribute `idx` (empty
    /// for scalars).  Output boundary — allocates; hot paths use
    /// [`GenCofactor::sum_scalar`] / [`GenCofactor::sum_cats`].
    pub fn sum(&self, idx: usize) -> RelValue {
        match self {
            GenCofactor::Scalar(_) => RelValue::empty(),
            GenCofactor::Elem(e) => {
                if idx < e.dim() {
                    e.sum(idx)
                } else {
                    RelValue::empty()
                }
            }
        }
    }

    /// The empty-key (continuous) mass of linear aggregate `idx` (0 for
    /// scalars).
    pub fn sum_scalar(&self, idx: usize) -> f64 {
        match self {
            GenCofactor::Scalar(_) => 0.0,
            GenCofactor::Elem(e) => e.sums_scalar.get(idx).copied().unwrap_or(0.0),
        }
    }

    /// The categorical part of linear aggregate `idx` (`None` for scalars,
    /// which have no relational components to borrow).
    pub fn sum_cats(&self, idx: usize) -> Option<&RelValue> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => e.sums_cats.get(idx),
        }
    }

    /// The composed interaction relation for `(i, j)` (empty for scalars).
    /// Output boundary — allocates; hot paths use
    /// [`GenCofactor::prod_scalar`] / [`GenCofactor::prod_cats`].
    pub fn prod(&self, i: usize, j: usize) -> RelValue {
        match self {
            GenCofactor::Scalar(_) => RelValue::empty(),
            GenCofactor::Elem(e) => e.prod(i, j),
        }
    }

    /// The empty-key (continuous) mass of interaction `(i, j)` (0 for
    /// scalars).
    pub fn prod_scalar(&self, i: usize, j: usize) -> f64 {
        match self {
            GenCofactor::Scalar(_) => 0.0,
            GenCofactor::Elem(e) => e.prod_scalar(i, j),
        }
    }

    /// The categorical part of interaction `(i, j)` (`None` for scalars).
    pub fn prod_cats(&self, i: usize, j: usize) -> Option<&RelValue> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => Some(e.prod_cats(i, j)),
        }
    }

    /// The dimension, if the element carries one.
    pub fn dim(&self) -> Option<usize> {
        match self {
            GenCofactor::Scalar(_) => None,
            GenCofactor::Elem(e) => Some(e.dim()),
        }
    }

    /// Materializes a dense element of dimension `dim`.
    pub fn to_dense(&self, dim: usize) -> GenCofactorElem {
        match self {
            GenCofactor::Scalar(c) => {
                let mut e = GenCofactorElem::zeros(dim);
                e.count = *c;
                e
            }
            GenCofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "generalized cofactor dimension mismatch");
                e.clone()
            }
        }
    }

    fn scale_all(&self, k: f64) -> Self {
        if k == 0.0 {
            return GenCofactor::Scalar(0.0);
        }
        match self {
            GenCofactor::Scalar(c) => GenCofactor::Scalar(c * k),
            GenCofactor::Elem(e) => {
                let mut prods_scalar = e.prods_scalar.clone();
                prods_scalar.scale_in_place(k);
                GenCofactor::Elem(GenCofactorElem {
                    count: e.count * k,
                    sums_scalar: e.sums_scalar.iter().map(|&x| x * k).collect(),
                    prods_scalar,
                    sums_cats: e
                        .sums_cats
                        .iter()
                        .map(|s| s.map_weights(|w| w * k))
                        .collect(),
                    prods_cats: e
                        .prods_cats
                        .iter()
                        .map(|q| q.map_weights(|w| w * k))
                        .collect(),
                })
            }
        }
    }

    /// Turns `self` into a dense element of dimension `dim` (keeping the
    /// count) and returns it; allocates only when `self` was a scalar.
    fn promote_to_elem(&mut self, dim: usize) -> &mut GenCofactorElem {
        if let GenCofactor::Scalar(c) = *self {
            let mut e = GenCofactorElem::zeros(dim);
            e.count = c;
            *self = GenCofactor::Elem(e);
        }
        match self {
            GenCofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "generalized cofactor dimension mismatch");
                e
            }
            GenCofactor::Scalar(_) => unreachable!("promoted above"),
        }
    }

    /// Sparse-lift fused accumulate, continuous:
    /// `self += (acc · lift_continuous(dim, idx, x)) · scale` without
    /// materializing the lifted element.  For a scalar `acc` this touches
    /// three dense scalars (no table traffic at all in the split
    /// representation); for a dense `acc` the continuous half is slice
    /// arithmetic plus a rank-one cross update on the packed triangle, and
    /// only the categorical parts walk relation tables.
    pub fn fma_lift_continuous(
        &mut self,
        acc: &GenCofactor,
        dim: usize,
        idx: usize,
        x: f64,
        scale: i64,
    ) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        match acc {
            GenCofactor::Scalar(c) => {
                if *c == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(dim);
                let sc = s * c;
                o.count += sc;
                o.sums_scalar[idx] += sc * x;
                o.prods_scalar.add_at(idx, idx, sc * x * x);
            }
            GenCofactor::Elem(a) => {
                assert_eq!(a.dim(), dim, "generalized cofactor dimension mismatch");
                let o = self.promote_to_elem(dim);
                o.count += s * a.count;
                // The lift's count is 1: every component of `acc` joins a
                // plain scalar, i.e. accumulates as a scaled copy.
                for (dst, &src) in o.sums_scalar.iter_mut().zip(&a.sums_scalar) {
                    *dst += s * src;
                }
                for (dst, src) in o.sums_cats.iter_mut().zip(&a.sums_cats) {
                    dst.add_scaled(src, s);
                }
                o.prods_scalar.add_scaled(&a.prods_scalar, s);
                for (dst, src) in o.prods_cats.iter_mut().zip(&a.prods_cats) {
                    dst.add_scaled(src, s);
                }
                // s_idx gains x per joined tuple: s · x · acc.count.
                o.sums_scalar[idx] += s * x * a.count;
                // Cross terms touch only row/column idx; the (idx, idx)
                // cell receives both symmetric halves.
                o.prods_scalar
                    .add_rank_one_cross_scaled(idx, &a.sums_scalar, s * x);
                for i in 0..dim {
                    let factor = if i == idx { 2.0 * s * x } else { s * x };
                    o.prods_cats[tri_index(dim, i, idx)].add_scaled(&a.sums_cats[i], factor);
                }
                o.prods_scalar.add_at(idx, idx, s * x * x * a.count);
            }
        }
    }

    /// Batch-fused continuous lift for a run of **scalar-weight**
    /// accumulators: `self += Σ_i w_i · lift_continuous(dim, idx, x_i)`
    /// reduced to its three horizontal sums `(Σw, Σw·x, Σw·x²)` — the whole
    /// run costs three dense scalar updates.  The batch channel behind
    /// `LiftFn::with_fma_batch` for the generalized continuous lift.
    pub fn fma_lift_continuous_sums(
        &mut self,
        dim: usize,
        idx: usize,
        sw: f64,
        swx: f64,
        swx2: f64,
    ) {
        if sw == 0.0 && swx == 0.0 && swx2 == 0.0 {
            return;
        }
        let o = self.promote_to_elem(dim);
        o.count += sw;
        o.sums_scalar[idx] += swx;
        o.prods_scalar.add_at(idx, idx, swx2);
    }

    /// Sparse-lift fused accumulate, categorical:
    /// `self += (acc · lift_categorical(dim, idx, attr, value)) · scale`.
    /// The singleton key `(attr = value)` is built and hashed exactly once;
    /// for a scalar `acc` the whole accumulation is two table upserts.
    pub fn fma_lift_categorical(
        &mut self,
        acc: &GenCofactor,
        dim: usize,
        idx: usize,
        attr: usize,
        value: EncodedValue,
        scale: i64,
    ) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        let key = RelKey::singleton(attr as u32, value);
        let hash = key.fx_hash();
        match acc {
            GenCofactor::Scalar(c) => {
                if *c == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(dim);
                let sc = s * c;
                o.count += sc;
                o.sums_cats[idx].add_entry_prehashed(hash, &key, sc);
                o.prods_cats[tri_index(dim, idx, idx)].add_entry_prehashed(hash, &key, sc);
            }
            GenCofactor::Elem(a) => {
                assert_eq!(a.dim(), dim, "generalized cofactor dimension mismatch");
                let o = self.promote_to_elem(dim);
                o.count += s * a.count;
                for (dst, &src) in o.sums_scalar.iter_mut().zip(&a.sums_scalar) {
                    *dst += s * src;
                }
                for (dst, src) in o.sums_cats.iter_mut().zip(&a.sums_cats) {
                    dst.add_scaled(src, s);
                }
                o.prods_scalar.add_scaled(&a.prods_scalar, s);
                for (dst, src) in o.prods_cats.iter_mut().zip(&a.prods_cats) {
                    dst.add_scaled(src, s);
                }
                // s_idx = SUM(1) GROUP BY attr over the joined tuples.
                o.sums_cats[idx].add_entry_prehashed(hash, &key, s * a.count);
                // Cross terms: acc.s[i] ⋈ {attr = value}, row and column of
                // idx; (idx, idx) receives both symmetric halves.  The
                // accumulator's empty-key mass joins the singleton to a
                // singleton, so every contribution lands in cats.
                for i in 0..dim {
                    let scalar_i = a.sums_scalar[i];
                    let q = &mut o.prods_cats[tri_index(dim, i, idx)];
                    if scalar_i != 0.0 {
                        q.add_entry_prehashed(hash, &key, s * scalar_i);
                    }
                    q.fma_indicator(&a.sums_cats[i], attr as u32, value, s);
                    if i == idx {
                        if scalar_i != 0.0 {
                            q.add_entry_prehashed(hash, &key, s * scalar_i);
                        }
                        q.fma_indicator(&a.sums_cats[i], attr as u32, value, s);
                    }
                }
                o.prods_cats[tri_index(dim, idx, idx)].add_entry_prehashed(hash, &key, s * a.count);
            }
        }
    }

    /// Batch-fused categorical lift for a run of **scalar-weight**
    /// accumulators: `self += Σ_i w_i · lift_categorical(dim, idx, attr,
    /// ev_i)`.  One promote/dispatch for the whole run; each row is one
    /// hashed singleton key and two prehashed upserts (rows applied in
    /// slice order, so per-key accumulation matches the per-row sequence
    /// exactly).  The batch channel behind `LiftFn::with_fma_batch` for the
    /// generalized categorical lift.
    pub fn fma_lift_categorical_weighted(
        &mut self,
        dim: usize,
        idx: usize,
        attr: usize,
        evs: &[EncodedValue],
        ws: &[f64],
    ) {
        debug_assert_eq!(evs.len(), ws.len());
        let o = self.promote_to_elem(dim);
        let diag = tri_index(dim, idx, idx);
        for (&ev, &w) in evs.iter().zip(ws) {
            if w == 0.0 {
                continue;
            }
            let key = RelKey::singleton(attr as u32, ev);
            let hash = key.fx_hash();
            o.count += w;
            o.sums_cats[idx].add_entry_prehashed(hash, &key, w);
            o.prods_cats[diag].add_entry_prehashed(hash, &key, w);
        }
    }

    /// Sum of interior-table rehash events over every relational component.
    pub fn table_rehashes(&self) -> u64 {
        match self {
            GenCofactor::Scalar(_) => 0,
            GenCofactor::Elem(e) => e
                .sums_cats
                .iter()
                .chain(e.prods_cats.iter())
                .map(RelValue::table_rehashes)
                .sum(),
        }
    }

    /// Heap bytes of this element's interior allocations: the dense scalar
    /// buffers, the `sums`/`prods` vector buffers, plus every component
    /// relation's table arrays (see [`RelValue::allocated_bytes`] for the
    /// accounting boundary).  Scalars own nothing.
    pub fn allocated_bytes(&self) -> usize {
        match self {
            GenCofactor::Scalar(_) => 0,
            GenCofactor::Elem(e) => {
                e.sums_scalar.capacity() * std::mem::size_of::<f64>()
                    + e.prods_scalar.heap_bytes()
                    + (e.sums_cats.capacity() + e.prods_cats.capacity())
                        * std::mem::size_of::<RelValue>()
                    + e.sums_cats
                        .iter()
                        .chain(e.prods_cats.iter())
                        .map(RelValue::allocated_bytes)
                        .sum::<usize>()
            }
        }
    }
}

impl Ring for GenCofactor {
    fn zero() -> Self {
        GenCofactor::Scalar(0.0)
    }

    fn one() -> Self {
        GenCofactor::Scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        match self {
            GenCofactor::Scalar(c) => *c == 0.0,
            GenCofactor::Elem(e) => {
                e.count == 0.0
                    && e.sums_scalar.iter().all(|&x| x == 0.0)
                    && e.prods_scalar.is_zero()
                    && e.sums_cats.iter().all(RelValue::is_zero)
                    && e.prods_cats.iter().all(RelValue::is_zero)
            }
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    fn add_assign(&mut self, rhs: &Self) {
        match (&mut *self, rhs) {
            (GenCofactor::Scalar(a), GenCofactor::Scalar(b)) => *a += b,
            (GenCofactor::Elem(a), GenCofactor::Scalar(b)) => a.count += b,
            (GenCofactor::Elem(a), GenCofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot add generalized cofactors of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                a.count += b.count;
                for (x, &y) in a.sums_scalar.iter_mut().zip(&b.sums_scalar) {
                    *x += y;
                }
                a.prods_scalar.add_scaled(&b.prods_scalar, 1.0);
                for (x, y) in a.sums_cats.iter_mut().zip(&b.sums_cats) {
                    x.add_assign(y);
                }
                for (x, y) in a.prods_cats.iter_mut().zip(&b.prods_cats) {
                    x.add_assign(y);
                }
            }
            (slot @ GenCofactor::Scalar(_), GenCofactor::Elem(b)) => {
                let mut out = b.clone();
                if let GenCofactor::Scalar(a) = slot {
                    out.count += *a;
                }
                *slot = GenCofactor::Elem(out);
            }
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // The fused accumulate into a fresh zero covers every shape pair
        // (scalar arms stay scalar; zero factors never promote).
        let mut out = GenCofactor::zero();
        out.fma_scaled(self, rhs, 1);
        out
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        match (a, b) {
            (GenCofactor::Scalar(x), GenCofactor::Scalar(y)) => match self {
                GenCofactor::Scalar(c) => *c += s * x * y,
                GenCofactor::Elem(e) => e.count += s * x * y,
            },
            (GenCofactor::Scalar(x), GenCofactor::Elem(e))
            | (GenCofactor::Elem(e), GenCofactor::Scalar(x)) => {
                let k = s * x;
                if k == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(e.dim());
                o.count += k * e.count;
                for (dst, &src) in o.sums_scalar.iter_mut().zip(&e.sums_scalar) {
                    *dst += k * src;
                }
                o.prods_scalar.add_scaled(&e.prods_scalar, k);
                for (dst, src) in o.sums_cats.iter_mut().zip(&e.sums_cats) {
                    dst.add_scaled(src, k);
                }
                for (dst, src) in o.prods_cats.iter_mut().zip(&e.prods_cats) {
                    dst.add_scaled(src, k);
                }
            }
            (GenCofactor::Elem(ea), GenCofactor::Elem(eb)) => {
                assert_eq!(
                    ea.dim(),
                    eb.dim(),
                    "cannot multiply generalized cofactors of dimensions {} and {}",
                    ea.dim(),
                    eb.dim()
                );
                let dim = ea.dim();
                let o = self.promote_to_elem(dim);
                let (ka, kb) = (s * eb.count, s * ea.count);
                o.count += s * ea.count * eb.count;
                // Dense half: exactly the cofactor-ring fused multiply-add,
                // on the same vectorized SymMatrix/slice kernels.
                for (dst, &src) in o.sums_scalar.iter_mut().zip(&ea.sums_scalar) {
                    *dst += ka * src;
                }
                for (dst, &src) in o.sums_scalar.iter_mut().zip(&eb.sums_scalar) {
                    *dst += kb * src;
                }
                o.prods_scalar.add_scaled(&ea.prods_scalar, ka);
                o.prods_scalar.add_scaled(&eb.prods_scalar, kb);
                o.prods_scalar
                    .add_symmetric_outer_scaled(&ea.sums_scalar, &eb.sums_scalar, s);
                // Categorical half.
                for i in 0..dim {
                    o.sums_cats[i].add_scaled(&ea.sums_cats[i], ka);
                    o.sums_cats[i].add_scaled(&eb.sums_cats[i], kb);
                }
                for i in 0..dim {
                    for j in i..dim {
                        let t = tri_index(dim, i, j);
                        let q = &mut o.prods_cats[t];
                        q.add_scaled(&ea.prods_cats[t], ka);
                        q.add_scaled(&eb.prods_cats[t], kb);
                        // Cross terms s·(s_a[i] ⋈ s_b[j]) + s·(s_b[i] ⋈
                        // s_a[j]), with the scalar×scalar parts already in
                        // `prods_scalar` via the symmetric outer above:
                        // scalar×cats scales a copy, cats×cats joins.
                        q.add_scaled(&eb.sums_cats[j], s * ea.sums_scalar[i]);
                        q.add_scaled(&ea.sums_cats[i], s * eb.sums_scalar[j]);
                        q.add_product_scaled(&ea.sums_cats[i], &eb.sums_cats[j], s);
                        q.add_scaled(&ea.sums_cats[j], s * eb.sums_scalar[i]);
                        q.add_scaled(&eb.sums_cats[i], s * ea.sums_scalar[j]);
                        q.add_product_scaled(&eb.sums_cats[i], &ea.sums_cats[j], s);
                    }
                }
            }
        }
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        match (self, rhs) {
            (GenCofactor::Scalar(a), GenCofactor::Scalar(b)) => {
                *out = GenCofactor::Scalar(a * b);
            }
            _ => {
                // Reuse `out`'s relation buffers when its shape matches by
                // resetting it to zero and running the fused accumulate.
                let dim = self.dim().or(rhs.dim()).expect("one operand is dense");
                match out {
                    GenCofactor::Elem(o) if o.dim() == dim => {
                        o.count = 0.0;
                        o.sums_scalar.fill(0.0);
                        o.prods_scalar.clear();
                        for s in &mut o.sums_cats {
                            s.clear();
                        }
                        for q in &mut o.prods_cats {
                            q.clear();
                        }
                    }
                    _ => *out = GenCofactor::Elem(GenCofactorElem::zeros(dim)),
                }
                out.fma_scaled(self, rhs, 1);
            }
        }
    }

    fn neg(&self) -> Self {
        self.scale_all(-1.0)
    }

    fn scale_int(&self, k: i64) -> Self {
        self.scale_all(k as f64)
    }

    fn reset_zero(&mut self) {
        match self {
            GenCofactor::Scalar(c) => *c = 0.0,
            GenCofactor::Elem(e) => {
                e.count = 0.0;
                e.sums_scalar.fill(0.0);
                e.prods_scalar.fill_zero();
                for s in &mut e.sums_cats {
                    s.reset_zero();
                }
                for q in &mut e.prods_cats {
                    q.reset_zero();
                }
            }
        }
    }

    fn needs_rekey() -> bool {
        true
    }

    fn rekey(&self, src: &Dict, dst: &mut Dict) -> Self {
        match self {
            GenCofactor::Scalar(c) => GenCofactor::Scalar(*c),
            GenCofactor::Elem(e) => GenCofactor::Elem(GenCofactorElem {
                count: e.count,
                sums_scalar: e.sums_scalar.clone(),
                prods_scalar: e.prods_scalar.clone(),
                sums_cats: e
                    .sums_cats
                    .iter()
                    .map(|r| r.rekey_dicts(src, dst))
                    .collect(),
                prods_cats: e
                    .prods_cats
                    .iter()
                    .map(|r| r.rekey_dicts(src, dst))
                    .collect(),
            }),
        }
    }

    fn payload_rehashes(&self) -> u64 {
        self.table_rehashes()
    }

    fn payload_bytes(&self) -> usize {
        self.allocated_bytes()
    }

    fn scalar_weight(&self) -> Option<f64> {
        match self {
            GenCofactor::Scalar(c) => Some(*c),
            GenCofactor::Elem(_) => None,
        }
    }
}

impl ApproxEq for GenCofactor {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let dim = self.dim().or(other.dim());
        match dim {
            None => approx_f64(self.count(), other.count(), tol),
            Some(dim) => {
                let a = self.to_dense(dim);
                let b = other.to_dense(dim);
                approx_f64(a.count, b.count, tol)
                    && a.sums_scalar
                        .iter()
                        .zip(&b.sums_scalar)
                        .all(|(x, y)| approx_f64(*x, *y, tol))
                    && a.prods_scalar.approx_eq(&b.prods_scalar, tol)
                    && a.sums_cats
                        .iter()
                        .zip(&b.sums_cats)
                        .all(|(x, y)| x.approx_eq(y, tol))
                    && a.prods_cats
                        .iter()
                        .zip(&b.prods_cats)
                        .all(|(x, y)| x.approx_eq(y, tol))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;
    use crate::ctx::RingCtx;
    use fivm_common::Value;

    fn ev(x: i64) -> EncodedValue {
        EncodedValue::int(x)
    }

    #[test]
    fn continuous_lift_matches_cofactor_semantics() {
        let g = GenCofactor::lift_continuous(3, 1, 4.0);
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(1).scalar_part(), 4.0);
        assert_eq!(g.prod(1, 1).scalar_part(), 16.0);
        assert!(g.prod(0, 1).is_zero());
        // Split representation: the continuous mass lives in the dense
        // fields, the categorical interior stays empty.
        assert_eq!(g.sum_scalar(1), 4.0);
        assert_eq!(g.prod_scalar(1, 1), 16.0);
        assert!(g.sum_cats(1).expect("dense").is_empty());
    }

    #[test]
    fn categorical_lift_one_hot_encodes() {
        let ctx = RingCtx::new();
        let red = ctx.encode_value(&Value::str("red"));
        let g = GenCofactor::lift_categorical(3, 2, 2, red);
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(2).get(&[(2, red)]), 1.0);
        assert_eq!(g.prod(2, 2).get(&[(2, red)]), 1.0);
        assert!(g.sum(0).is_zero());
        assert_eq!(g.sum_scalar(2), 0.0);
    }

    #[test]
    fn figure1_covar_with_categorical_c() {
        // Figure 1, COVAR with categorical C and continuous B, D (b_i = d_i = i).
        // Variables indexed: B = 0, C = 1, D = 2.
        let ctx = RingCtx::new();
        let c1 = ctx.encode_value(&Value::str("c1"));
        let c2 = ctx.encode_value(&Value::str("c2"));
        // V_S(a1) = g_C(c1)*g_D(d1) + g_C(c2)*g_D(d3)
        let term1 = GenCofactor::lift_categorical(3, 1, 1, c1)
            .mul(&GenCofactor::lift_continuous(3, 2, 1.0));
        let term2 = GenCofactor::lift_categorical(3, 1, 1, c2)
            .mul(&GenCofactor::lift_continuous(3, 2, 3.0));
        let vs_a1 = term1.add(&term2);
        assert_eq!(vs_a1.count(), 2.0);
        // s_C = SUM(1) GROUP BY C = {c1 -> 1, c2 -> 1}
        assert_eq!(vs_a1.sum(1).get(&[(1, c1)]), 1.0);
        assert_eq!(vs_a1.sum(1).get(&[(1, c2)]), 1.0);
        // s_D = SUM(D) = 1 + 3
        assert_eq!(vs_a1.sum(2).scalar_part(), 4.0);
        // Q_CD = SUM(D) GROUP BY C = {c1 -> 1, c2 -> 3}
        assert_eq!(vs_a1.prod(1, 2).get(&[(1, c1)]), 1.0);
        assert_eq!(vs_a1.prod(1, 2).get(&[(1, c2)]), 3.0);

        // Join with V_R(a1) = g_B(b1) (B continuous, b1 = 1).
        let vr_a1 = GenCofactor::lift_continuous(3, 0, 1.0);
        let q = vr_a1.mul(&vs_a1);
        assert_eq!(q.count(), 2.0);
        // Q_BC = SUM(B) GROUP BY C = {c1 -> 1, c2 -> 1}
        assert_eq!(q.prod(0, 1).get(&[(1, c1)]), 1.0);
        assert_eq!(q.prod(0, 1).get(&[(1, c2)]), 1.0);
        // Q_BD = SUM(B*D) = 1*1 + 1*3 = 4
        assert_eq!(q.prod(0, 2).scalar_part(), 4.0);
    }

    #[test]
    fn mi_payload_counts_pairwise_cooccurrences() {
        // All attributes categorical: the payload holds C_X and C_XY counts.
        let t1 = GenCofactor::lift_categorical(2, 0, 0, ev(1))
            .mul(&GenCofactor::lift_categorical(2, 1, 1, ev(10)));
        let t2 = GenCofactor::lift_categorical(2, 0, 0, ev(1))
            .mul(&GenCofactor::lift_categorical(2, 1, 1, ev(20)));
        let total = t1.add(&t2);
        assert_eq!(total.count(), 2.0);
        assert_eq!(total.sum(0).get(&[(0, ev(1))]), 2.0);
        assert_eq!(total.sum(1).get(&[(1, ev(10))]), 1.0);
        assert_eq!(total.prod(0, 1).get(&[(0, ev(1)), (1, ev(10))]), 1.0);
        assert_eq!(total.prod(0, 1).get(&[(0, ev(1)), (1, ev(20))]), 1.0);
    }

    #[test]
    fn deletes_cancel() {
        let ctx = RingCtx::new();
        let a = ctx.encode_value(&Value::str("a"));
        let x = GenCofactor::lift_categorical(2, 0, 0, a)
            .mul(&GenCofactor::lift_continuous(2, 1, 2.0));
        assert!(x.add(&x.neg()).is_zero());
        assert!(x.scale_int(0).is_zero());
        assert_eq!(x.scale_int(-1), x.neg());
    }

    #[test]
    fn scalar_interactions() {
        let e = GenCofactor::lift_categorical(2, 0, 0, ev(5));
        let s = GenCofactor::scalar(3.0);
        let prod = s.mul(&e);
        assert_eq!(prod.count(), 3.0);
        assert_eq!(prod.sum(0).get(&[(0, ev(5))]), 3.0);
        let sum = s.add(&e);
        assert_eq!(sum.count(), 4.0);
        assert_eq!(sum.sum(0).get(&[(0, ev(5))]), 1.0);
        let sum_rev = e.add(&s);
        assert_eq!(sum, sum_rev);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn dimension_mismatch_panics() {
        let _ = GenCofactor::lift_continuous(2, 0, 1.0)
            .mul(&GenCofactor::lift_continuous(3, 0, 1.0));
    }

    #[test]
    fn ring_axioms_hold_approximately() {
        let ctx = RingCtx::new();
        let x = ctx.encode_value(&Value::str("x"));
        let a = GenCofactor::lift_categorical(3, 0, 0, x);
        let b = GenCofactor::lift_continuous(3, 1, 2.5)
            .mul(&GenCofactor::lift_categorical(3, 2, 2, ev(7)));
        let c = GenCofactor::scalar(2.0).add(&GenCofactor::lift_continuous(3, 1, -1.0));
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    /// The sparse-lift fused accumulators must agree exactly with
    /// materialize-then-fma for every accumulator shape.
    #[test]
    fn sparse_lift_fma_matches_materialized_lift() {
        let dim = 3;
        let accs = [
            GenCofactor::zero(),
            GenCofactor::scalar(2.5),
            GenCofactor::lift_categorical(dim, 0, 0, ev(4))
                .mul(&GenCofactor::lift_continuous(dim, 1, 1.5)),
            GenCofactor::lift_categorical(dim, 2, 2, ev(9)),
        ];
        for acc in &accs {
            for scale in [-2i64, -1, 0, 1, 3] {
                // Continuous lift at idx 1.
                let mut fused = acc.mul(acc);
                let mut reference = fused.clone();
                fused.fma_lift_continuous(acc, dim, 1, 2.0, scale);
                reference.fma_scaled(acc, &GenCofactor::lift_continuous(dim, 1, 2.0), scale);
                assert_eq!(fused, reference, "continuous, scale={scale}");

                // Categorical lift at idx 2 — shares attribute 0 categories
                // with the accumulator to exercise the join filter.
                let mut fused = acc.mul(acc);
                let mut reference = fused.clone();
                fused.fma_lift_categorical(acc, dim, 2, 0, ev(4), scale);
                reference.fma_scaled(
                    acc,
                    &GenCofactor::lift_categorical(dim, 2, 0, ev(4)),
                    scale,
                );
                assert_eq!(fused, reference, "categorical, scale={scale}");
            }
        }
    }

    /// The batch (run-of-scalar-weights) lift accumulators must agree with
    /// the per-row fused path exactly.
    #[test]
    fn batch_lifts_match_per_row_fma() {
        let dim = 3;
        let xs = [2.0, -1.5, 0.25, 4.0];
        let ws = [1.0, 2.0, -1.0, 3.0];
        // Continuous: per-row over scalar accumulators vs horizontal sums.
        let mut per_row = GenCofactor::zero();
        let (mut sw, mut swx, mut swx2) = (0.0, 0.0, 0.0);
        for (&x, &w) in xs.iter().zip(&ws) {
            per_row.fma_lift_continuous(&GenCofactor::scalar(w), dim, 1, x, 1);
            sw += w;
            swx += w * x;
            swx2 += w * x * x;
        }
        let mut batch = GenCofactor::zero();
        batch.fma_lift_continuous_sums(dim, 1, sw, swx, swx2);
        assert!(batch.approx_eq(&per_row, 1e-12));

        // Categorical: integer weights, exact equality.
        let evs = [ev(1), ev(2), ev(1), ev(3)];
        let mut per_row = GenCofactor::zero();
        for (&v, &w) in evs.iter().zip(&ws) {
            per_row.fma_lift_categorical(&GenCofactor::scalar(w), dim, 2, 2, v, 1);
        }
        let mut batch = GenCofactor::zero();
        batch.fma_lift_categorical_weighted(dim, 2, 2, &evs, &ws);
        assert_eq!(batch, per_row);
    }

    /// The split invariant: relational components never hold the empty key;
    /// `from_composed` splits exactly what `sum`/`prod` compose.
    #[test]
    fn split_representation_round_trips_through_composed_form() {
        let dim = 2;
        let mixed = GenCofactor::lift_continuous(dim, 0, 3.0)
            .mul(&GenCofactor::lift_categorical(dim, 1, 1, ev(7)))
            .add(&GenCofactor::lift_continuous(dim, 0, -1.0));
        let GenCofactor::Elem(e) = &mixed else {
            panic!("dense element expected");
        };
        for i in 0..dim {
            assert_eq!(e.sum_cats(i).scalar_part(), 0.0, "empty key leaked into sums_cats[{i}]");
            for j in i..dim {
                assert_eq!(e.prod_cats(i, j).scalar_part(), 0.0, "empty key leaked into prods_cats");
            }
        }
        let sums: Vec<RelValue> = (0..dim).map(|i| e.sum(i)).collect();
        let prods: Vec<RelValue> = (0..dim)
            .flat_map(|i| (i..dim).map(move |j| (i, j)))
            .map(|(i, j)| e.prod(i, j))
            .collect();
        let rebuilt = GenCofactorElem::from_composed(e.count, sums, prods);
        assert_eq!(&rebuilt, e);
    }

    #[test]
    fn rekey_moves_string_categories_between_dictionaries() {
        let a = RingCtx::new();
        let red = a.encode_value(&Value::str("red"));
        let g = GenCofactor::lift_categorical(2, 0, 0, red)
            .mul(&GenCofactor::lift_continuous(2, 1, 2.0));
        let b = RingCtx::new();
        // "blue" takes id 0 in the destination — the same *encoding* as
        // "red" in the source.  Ids are dictionary-local; interpreting the
        // payload under `b` without rekeying would read the wrong string.
        let blue_first = b.encode_value(&Value::str("blue"));
        assert_eq!(red, blue_first);
        let moved = b.with_dict_mut(|dst| a.with_dict(|src| g.rekey(src, dst)));
        // Same decoded content under the destination dictionary.
        let red_b = b.encode_value(&Value::str("red"));
        assert_eq!(moved.sum(0).get(&[(0, red_b)]), 1.0);
        assert_eq!(moved.count(), g.count());
        assert!(GenCofactor::needs_rekey());
        assert!(!<f64 as Ring>::needs_rekey());
    }
}
