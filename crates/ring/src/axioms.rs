//! Reusable ring-axiom checkers.
//!
//! These helpers are used by the unit and property tests of every ring
//! implementation (and by downstream crates that define their own payloads)
//! to verify that the algebraic laws the F-IVM engine relies on actually
//! hold, up to a floating-point tolerance.

use crate::ring::{ApproxEq, Ring};

/// Asserts `a + b == b + a`.
pub fn check_add_commutative<R: Ring + ApproxEq>(a: &R, b: &R, tol: f64) {
    let ab = a.add(b);
    let ba = b.add(a);
    assert!(
        ab.approx_eq(&ba, tol),
        "addition not commutative:\n  a+b = {ab:?}\n  b+a = {ba:?}"
    );
}

/// Asserts `(a + b) + c == a + (b + c)`.
pub fn check_add_associative<R: Ring + ApproxEq>(a: &R, b: &R, c: &R, tol: f64) {
    let left = a.add(b).add(c);
    let right = a.add(&b.add(c));
    assert!(
        left.approx_eq(&right, tol),
        "addition not associative:\n  (a+b)+c = {left:?}\n  a+(b+c) = {right:?}"
    );
}

/// Asserts `a + 0 == a` and `a + (-a) == 0`.
pub fn check_add_identity_and_inverse<R: Ring + ApproxEq>(a: &R, tol: f64) {
    let with_zero = a.add(&R::zero());
    assert!(
        with_zero.approx_eq(a, tol),
        "zero is not the additive identity: a+0 = {with_zero:?}, a = {a:?}"
    );
    let cancelled = a.add(&a.neg());
    assert!(
        cancelled.approx_eq(&R::zero(), tol),
        "negation is not the additive inverse: a + (-a) = {cancelled:?}"
    );
}

/// Asserts `(a * b) * c == a * (b * c)`.
pub fn check_mul_associative<R: Ring + ApproxEq>(a: &R, b: &R, c: &R, tol: f64) {
    let left = a.mul(b).mul(c);
    let right = a.mul(&b.mul(c));
    assert!(
        left.approx_eq(&right, tol),
        "multiplication not associative:\n  (a*b)*c = {left:?}\n  a*(b*c) = {right:?}"
    );
}

/// Asserts `a * 1 == a == 1 * a` and `a * 0 == 0`.
pub fn check_mul_identity_and_annihilator<R: Ring + ApproxEq>(a: &R, tol: f64) {
    assert!(
        a.mul(&R::one()).approx_eq(a, tol),
        "one is not a right multiplicative identity for {a:?}"
    );
    assert!(
        R::one().mul(a).approx_eq(a, tol),
        "one is not a left multiplicative identity for {a:?}"
    );
    assert!(
        a.mul(&R::zero()).approx_eq(&R::zero(), tol),
        "zero does not annihilate under multiplication for {a:?}"
    );
}

/// Asserts both distributive laws.
pub fn check_distributive<R: Ring + ApproxEq>(a: &R, b: &R, c: &R, tol: f64) {
    let left = a.mul(&b.add(c));
    let right = a.mul(b).add(&a.mul(c));
    assert!(
        left.approx_eq(&right, tol),
        "left distributivity fails:\n  a*(b+c) = {left:?}\n  a*b+a*c = {right:?}"
    );
    let left = b.add(c).mul(a);
    let right = b.mul(a).add(&c.mul(a));
    assert!(
        left.approx_eq(&right, tol),
        "right distributivity fails:\n  (b+c)*a = {left:?}\n  b*a+c*a = {right:?}"
    );
}

/// Asserts `scale_int` agrees with repeated addition for small factors.
pub fn check_scale_int<R: Ring + ApproxEq>(a: &R, tol: f64) {
    let mut acc = R::zero();
    for k in 0..=4i64 {
        assert!(
            a.scale_int(k).approx_eq(&acc, tol),
            "scale_int({k}) disagrees with repeated addition"
        );
        assert!(
            a.scale_int(-k).approx_eq(&acc.neg(), tol),
            "scale_int({}) disagrees with negated repeated addition",
            -k
        );
        acc.add_assign(a);
    }
}

/// Asserts the in-place operations agree with their allocating
/// counterparts: `mul_into` with `out` of various prior shapes matches
/// `mul`, and `fma_scaled` matches `acc + (a·b)·k` for small `k`.
///
/// Also asserts the **zero-erasure** half of the in-place contract: adding
/// a value's exact additive inverse *in place* must leave an accumulator
/// that reports [`Ring::is_zero`] — even though it may still own buffers.
/// (`x + (-x)` is exact per component in IEEE arithmetic, so this holds
/// for every ring; a pair of opposing `fma_scaled` passes, by contrast,
/// may legitimately leave non-associativity residues.)  Rings with keyed
/// interiors (the relation ring) must prune cancelled keys eagerly for
/// `is_zero` to stay exact; the engine relies on it to erase zero payloads
/// in place.
pub fn check_inplace_ops<R: Ring + ApproxEq>(a: &R, b: &R, c: &R, tol: f64) {
    // Zero erasure under in-place addition of the exact inverse.
    let p = a.mul(b);
    let mut acc = p.clone();
    acc.add_assign(&p.neg());
    assert!(
        acc.is_zero(),
        "in-place addition of the exact inverse left a non-zero accumulator: {acc:?}"
    );
    // ...and the zeroed accumulator is still a working accumulator.
    acc.fma_scaled(a, b, 1);
    assert!(
        acc.approx_eq(&p, tol),
        "a cancelled-to-zero accumulator no longer accumulates correctly"
    );
    let expected = a.mul(b);
    // mul_into over accumulators of every prior shape that can occur on
    // the maintenance path: zero, one, and an arbitrary same-ring element.
    for prior in [R::zero(), R::one(), c.clone(), expected.clone()] {
        let mut out = prior;
        a.mul_into(b, &mut out);
        assert!(
            out.approx_eq(&expected, tol),
            "mul_into disagrees with mul:\n  got      {out:?}\n  expected {expected:?}"
        );
    }
    for k in -2i64..=2 {
        let mut acc = c.clone();
        acc.fma_scaled(a, b, k);
        let expected = c.add(&a.mul(b).scale_int(k));
        assert!(
            acc.approx_eq(&expected, tol),
            "fma_scaled(k={k}) disagrees with add(mul·k):\n  got      {acc:?}\n  expected {expected:?}"
        );
        // Accumulating into zero must also work (the fresh-key case).
        let mut acc = R::zero();
        acc.fma_scaled(a, b, k);
        assert!(
            acc.approx_eq(&a.mul(b).scale_int(k), tol),
            "fma_scaled(k={k}) into zero disagrees with mul·k"
        );
    }
}

/// Runs every axiom check on a triple of elements.
pub fn check_ring_axioms<R: Ring + ApproxEq>(a: &R, b: &R, c: &R, tol: f64) {
    check_add_commutative(a, b, tol);
    check_add_associative(a, b, c, tol);
    check_add_identity_and_inverse(a, tol);
    check_add_identity_and_inverse(b, tol);
    check_mul_associative(a, b, c, tol);
    check_mul_identity_and_annihilator(a, tol);
    check_mul_identity_and_annihilator(c, tol);
    check_distributive(a, b, c, tol);
    check_scale_int(a, tol);
    check_inplace_ops(a, b, c, tol);
    // sub is consistent with add/neg.
    assert!(
        a.sub(b).approx_eq(&a.add(&b.neg()), tol),
        "sub is inconsistent with add/neg"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axioms_pass_for_integers() {
        check_ring_axioms(&3i64, &-7i64, &11i64, 0.0);
    }

    #[test]
    #[should_panic(expected = "additive inverse")]
    fn broken_ring_is_detected() {
        // A deliberately broken "ring" whose neg is the identity.
        #[derive(Clone, Debug, PartialEq)]
        struct Broken(i64);
        impl Ring for Broken {
            fn zero() -> Self {
                Broken(0)
            }
            fn one() -> Self {
                Broken(1)
            }
            fn is_zero(&self) -> bool {
                self.0 == 0
            }
            fn add(&self, rhs: &Self) -> Self {
                Broken(self.0 + rhs.0)
            }
            fn mul(&self, rhs: &Self) -> Self {
                Broken(self.0 * rhs.0)
            }
            fn neg(&self) -> Self {
                Broken(self.0) // wrong on purpose
            }
        }
        impl ApproxEq for Broken {
            fn approx_eq(&self, other: &Self, _tol: f64) -> bool {
                self == other
            }
        }
        check_add_identity_and_inverse(&Broken(2), 0.0);
    }
}
