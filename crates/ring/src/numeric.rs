//! Numeric rings: `Z` (i64), the reals (f64), and the product of two rings.

use crate::ring::{approx_f64, ApproxEq, Ring};

impl Ring for i64 {
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn one() -> Self {
        1
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        *self += rhs;
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    #[inline]
    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        *out = self * rhs;
    }
    #[inline]
    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        *self += a * b * scale;
    }
    #[inline]
    fn neg(&self) -> Self {
        -self
    }
    #[inline]
    fn scale_int(&self, k: i64) -> Self {
        self * k
    }
    #[inline]
    fn scalar_weight(&self) -> Option<f64> {
        // Counts above 2^53 would round in the f64 batch channel; such
        // rows fall back to the per-row path instead.
        if self.unsigned_abs() <= (1u64 << 53) {
            Some(*self as f64)
        } else {
            None
        }
    }
}

impl Ring for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        *self += rhs;
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    #[inline]
    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        *out = self * rhs;
    }
    #[inline]
    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        *self += a * b * (scale as f64);
    }
    #[inline]
    fn neg(&self) -> Self {
        -self
    }
    #[inline]
    fn scale_int(&self, k: i64) -> Self {
        self * (k as f64)
    }
    #[inline]
    fn scalar_weight(&self) -> Option<f64> {
        Some(*self)
    }
}

/// The product ring of two rings: component-wise addition and multiplication.
///
/// Useful for maintaining two applications over the same view tree in one
/// pass, e.g. a count alongside a COVAR matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct PairRing<A, B>(pub A, pub B);

impl<A: Ring, B: Ring> Ring for PairRing<A, B> {
    fn zero() -> Self {
        PairRing(A::zero(), B::zero())
    }
    fn one() -> Self {
        PairRing(A::one(), B::one())
    }
    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero()
    }
    fn add(&self, rhs: &Self) -> Self {
        PairRing(self.0.add(&rhs.0), self.1.add(&rhs.1))
    }
    fn add_assign(&mut self, rhs: &Self) {
        self.0.add_assign(&rhs.0);
        self.1.add_assign(&rhs.1);
    }
    fn mul(&self, rhs: &Self) -> Self {
        PairRing(self.0.mul(&rhs.0), self.1.mul(&rhs.1))
    }
    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        self.0.mul_into(&rhs.0, &mut out.0);
        self.1.mul_into(&rhs.1, &mut out.1);
    }
    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        self.0.fma_scaled(&a.0, &b.0, scale);
        self.1.fma_scaled(&a.1, &b.1, scale);
    }
    fn neg(&self) -> Self {
        PairRing(self.0.neg(), self.1.neg())
    }
    fn scale_int(&self, k: i64) -> Self {
        PairRing(self.0.scale_int(k), self.1.scale_int(k))
    }
}

impl<A: ApproxEq, B: ApproxEq> ApproxEq for PairRing<A, B> {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.0.approx_eq(&other.0, tol) && self.1.approx_eq(&other.1, tol)
    }
}

/// Approximate equality for floating point helpers re-exported for callers.
pub fn f64_approx_eq(a: f64, b: f64, tol: f64) -> bool {
    approx_f64(a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;

    #[test]
    fn z_ring_basic_ops() {
        assert_eq!(<i64 as Ring>::zero(), 0);
        assert_eq!(<i64 as Ring>::one(), 1);
        assert_eq!(3i64.add(&4), 7);
        assert_eq!(3i64.mul(&4), 12);
        assert_eq!(3i64.neg(), -3);
        assert_eq!(3i64.sub(&5), -2);
        assert_eq!(3i64.scale_int(-2), -6);
        assert!(0i64.is_zero());
        assert!(!1i64.is_zero());
    }

    #[test]
    fn real_ring_basic_ops() {
        assert_eq!(2.5f64.add(&0.5), 3.0);
        assert_eq!(2.0f64.mul(&4.0), 8.0);
        assert_eq!(2.0f64.neg(), -2.0);
        assert_eq!(1.5f64.scale_int(4), 6.0);
        assert!(<f64 as Ring>::zero().is_zero());
    }

    #[test]
    fn z_ring_axioms() {
        for (a, b, c) in [(1, 2, 3), (-4, 7, 0), (100, -100, 17)] {
            axioms::check_ring_axioms(&a, &b, &c, 0.0);
        }
    }

    #[test]
    fn real_ring_axioms() {
        for (a, b, c) in [(1.5, -2.25, 3.0), (0.0, 4.0, -1.0)] {
            axioms::check_ring_axioms(&a, &b, &c, 1e-12);
        }
    }

    #[test]
    fn pair_ring_combines_componentwise() {
        let a = PairRing(2i64, 3.0f64);
        let b = PairRing(5i64, 0.5f64);
        assert_eq!(a.add(&b), PairRing(7, 3.5));
        assert_eq!(a.mul(&b), PairRing(10, 1.5));
        assert_eq!(a.neg(), PairRing(-2, -3.0));
        assert_eq!(a.scale_int(3), PairRing(6, 9.0));
        assert_eq!(PairRing::<i64, f64>::one(), PairRing(1, 1.0));
        assert!(PairRing::<i64, f64>::zero().is_zero());
        axioms::check_ring_axioms(&a, &b, &PairRing(-1, 2.0), 1e-12);
    }
}
