//! Attribute functions ("lifts"): per-variable maps from attribute values
//! into ring elements.
//!
//! The engine applies the lift of a variable `X` when it marginalizes `X`
//! away at the view `V@X` — this is the `[lift<k>](X)` factor in the M3 code
//! of Figure 2d.  Variables that are plain join keys use the identity lift
//! (`g_X(x) = 1`), which the engine can skip entirely.
//!
//! # The encoded fast path
//!
//! On the maintenance hot path the engine holds the lifted variable's value
//! in **dictionary-encoded** form (a tagged `u64` word); decoding it to a
//! [`Value`] just so the lift can re-encode it would materialize an
//! `Arc<str>` per row.  A lift can therefore attach an *encoded* fused
//! lift-multiply-accumulate ([`LiftFn::with_fma_encoded`]) that consumes
//! the [`EncodedValue`] directly; the engine prefers it, falling back to
//! decode + the `Value`-level path only for lifts without one.  Lifts whose
//! rings key interior tables by encoded words (the relational rings) must
//! share the engine's dictionary — they are built against the engine's
//! [`RingCtx`] (see `fivm_core::apps`).

use crate::cofactor::Cofactor;
use crate::ctx::RingCtx;
use crate::gencofactor::GenCofactor;
use crate::relvalue::RelValue;
use crate::ring::Ring;
use fivm_common::{EncodedValue, Value, VarId};
use std::fmt;
use std::sync::Arc;

/// Signature of a fused lift-multiply-accumulate:
/// `slot += (acc · g(v)) · scale`.
pub type LiftFmaFn<R> = Arc<dyn Fn(&Value, &R, i64, &mut R) + Send + Sync>;

/// Signature of the encoded fused lift-multiply-accumulate:
/// `slot += (acc · g(decode(v))) · scale` computed directly from the
/// dictionary-encoded value.
pub type LiftFmaEncodedFn<R> = Arc<dyn Fn(EncodedValue, &R, i64, &mut R) + Send + Sync>;

/// Signature of the columnar batch lift-accumulate:
/// `slot += Σ_i w_i · g(ev_i)` over parallel value/weight column slices.
///
/// The weights are the rows' accumulator masses with the delta scale already
/// folded in (see [`crate::Ring::scalar_weight`]); the columnar kernel only
/// takes this path when every row in a run reduced to a scalar weight, so
/// the whole run costs one lift dispatch instead of one per row.
pub type LiftFmaBatchFn<R> = Arc<dyn Fn(&[EncodedValue], &[f64], &mut R) + Send + Sync>;

/// A lift (attribute function) producing payloads of ring `R`.
#[derive(Clone)]
pub struct LiftFn<R> {
    name: String,
    is_identity: bool,
    f: Arc<dyn Fn(&Value) -> R + Send + Sync>,
    /// Optional fused lift-multiply-accumulate.  Lift elements are usually
    /// extremely sparse (one linear entry, one quadratic entry), so a fused
    /// form can accumulate `acc · g(v)` into a slot in `O(dim)` work and
    /// without materializing the dense lifted element — the engine uses it
    /// on the maintenance hot path when present.
    fma: Option<LiftFmaFn<R>>,
    /// Optional encoded variant of `fma`, consuming the dictionary-encoded
    /// value without materializing a [`Value`] at all.
    fma_encoded: Option<LiftFmaEncodedFn<R>>,
    /// Optional columnar batch variant: one dispatch applies the lift over
    /// a whole run of scalar-weight rows (see [`LiftFmaBatchFn`]).
    fma_batch: Option<LiftFmaBatchFn<R>>,
}

impl<R: Ring> LiftFn<R> {
    /// Wraps an arbitrary attribute function.
    pub fn new<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&Value) -> R + Send + Sync + 'static,
    {
        LiftFn {
            name: name.into(),
            is_identity: false,
            f: Arc::new(f),
            fma: None,
            fma_encoded: None,
            fma_batch: None,
        }
    }

    /// Attaches a fused lift-multiply-accumulate implementation.
    ///
    /// The closure must satisfy `slot += (acc · g(v)) · scale` for the same
    /// `g` as the plain apply function; `fivm_ring::axioms` offers
    /// [`crate::axioms::check_inplace_ops`]-style coverage via the engine's
    /// equivalence tests.
    pub fn with_fma<F>(mut self, fma: F) -> Self
    where
        F: Fn(&Value, &R, i64, &mut R) + Send + Sync + 'static,
    {
        self.fma = Some(Arc::new(fma));
        self
    }

    /// Attaches the encoded fused lift-multiply-accumulate.  Must agree
    /// with the `Value`-level path under `g(decode(v))` for every encoded
    /// value the engine can produce.
    pub fn with_fma_encoded<F>(mut self, fma: F) -> Self
    where
        F: Fn(EncodedValue, &R, i64, &mut R) + Send + Sync + 'static,
    {
        self.fma_encoded = Some(Arc::new(fma));
        self
    }

    /// Attaches the columnar batch accumulate.  Must satisfy
    /// `slot += Σ_i w_i · g(decode(ev_i))` for the same `g` as the apply
    /// function; the kernel's batch path is only exact when the lift's
    /// per-key accumulation is (integer weights, or tolerance-covered
    /// reassociation of continuous sums — see the kernel contract in
    /// ROADMAP.md).
    pub fn with_fma_batch<F>(mut self, fma: F) -> Self
    where
        F: Fn(&[EncodedValue], &[f64], &mut R) + Send + Sync + 'static,
    {
        self.fma_batch = Some(Arc::new(fma));
        self
    }

    /// The columnar batch accumulate, when the lift carries one.
    #[inline]
    pub fn fma_batch(&self) -> Option<&LiftFmaBatchFn<R>> {
        self.fma_batch.as_ref()
    }

    /// The identity lift `g_X(x) = 1`, used for join keys that do not
    /// participate in the aggregate batch.
    pub fn identity() -> Self {
        LiftFn {
            name: "1".to_string(),
            is_identity: true,
            f: Arc::new(|_| R::one()),
            fma: None,
            fma_encoded: None,
            fma_batch: None,
        }
    }

    /// Whether this is the identity lift (so multiplication can be skipped).
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.is_identity
    }

    /// Best-effort check that two lifts sharing a name are behaviorally
    /// interchangeable — the checkable side of the DAG fingerprint
    /// contract's "equal names ⟺ equal behavior" requirement.  Closure
    /// *behavior* is not decidable, so this compares what is: the name,
    /// the shared-closure fast path (`Arc::ptr_eq`), the identity flag,
    /// and which fma channels are attached.  `DagEngine::register`
    /// debug-asserts this when a fingerprint unifies two queries' lifts.
    pub fn same_behavior_shape(&self, other: &LiftFn<R>) -> bool {
        if self.name != other.name {
            return false;
        }
        if Arc::ptr_eq(&self.f, &other.f) {
            return true;
        }
        self.is_identity == other.is_identity
            && self.fma.is_some() == other.fma.is_some()
            && self.fma_encoded.is_some() == other.fma_encoded.is_some()
            && self.fma_batch.is_some() == other.fma_batch.is_some()
    }

    /// A short human-readable name, used when rendering plans.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the lift to a value.
    #[inline]
    pub fn apply(&self, v: &Value) -> R {
        (self.f)(v)
    }

    /// Fused accumulate `slot += (acc · g(v)) · scale`, using the attached
    /// specialization when present and the generic materialize-then-fma
    /// path otherwise.
    #[inline]
    pub fn fma_apply(&self, v: &Value, acc: &R, scale: i64, slot: &mut R) {
        match &self.fma {
            Some(fma) => fma(v, acc, scale, slot),
            None => slot.fma_scaled(acc, &self.apply(v), scale),
        }
    }

    /// Fused accumulate from the dictionary-encoded value.  The engine's
    /// hot path: when the lift carries an encoded specialization no
    /// [`Value`] materializes at all; otherwise `decode` is called once and
    /// the `Value`-level path takes over.
    #[inline]
    pub fn fma_apply_encoded(
        &self,
        ev: EncodedValue,
        decode: impl FnOnce(EncodedValue) -> Value,
        acc: &R,
        scale: i64,
        slot: &mut R,
    ) {
        match &self.fma_encoded {
            Some(fma) => fma(ev, acc, scale, slot),
            None => self.fma_apply(&decode(ev), acc, scale, slot),
        }
    }
}

impl<R> fmt::Debug for LiftFn<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LiftFn({})", self.name)
    }
}

/// Lifts for the count / `Z` ring: every value maps to 1.
pub fn count_lift() -> LiftFn<i64> {
    LiftFn::identity()
}

/// Horizontal sums of a weighted continuous column: `(Σw, Σw·x, Σw·x²)`
/// with `x = as_f64(ev)` — the whole-run reduction behind the continuous
/// lifts' batch channel.  Accumulated in slice order, but note the batch
/// path *reassociates* relative to per-row application (per-row folds each
/// row fully into the slot before the next); exact for integer data,
/// tolerance-covered for raw floats.
fn continuous_sums(evs: &[EncodedValue], ws: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(evs.len(), ws.len());
    let (mut sw, mut swx, mut swx2) = (0.0, 0.0, 0.0);
    for (&ev, &w) in evs.iter().zip(ws) {
        let x = ev.as_f64().unwrap_or(0.0);
        sw += w;
        swx += w * x;
        swx2 += w * x * x;
    }
    (sw, swx, swx2)
}

/// Lift of a continuous attribute into the real ring: `g_X(x) = x`.
pub fn real_value_lift(name: &str) -> LiftFn<f64> {
    LiftFn::new(format!("val({name})"), |v| v.as_f64().unwrap_or(0.0))
}

/// Lift of a continuous attribute `idx` of an aggregate batch of size `dim`
/// into the cofactor (COVAR) ring.
///
/// Carries the fused lift-multiply-accumulate
/// ([`Cofactor::fma_lift_continuous`]) in both `Value` and encoded form,
/// which the engine uses on the hot path: `O(dim)` accumulation without
/// materializing the lifted element (or, on the encoded path, the value).
pub fn cofactor_continuous_lift(dim: usize, idx: usize, name: &str) -> LiftFn<Cofactor> {
    LiftFn::new(format!("cofactor<{dim}>[{idx}]({name})"), move |v| {
        Cofactor::lift(dim, idx, v.as_f64().unwrap_or(0.0))
    })
    .with_fma(move |v, acc, scale, slot| {
        slot.fma_lift_continuous(acc, dim, idx, v.as_f64().unwrap_or(0.0), scale);
    })
    .with_fma_encoded(move |ev, acc, scale, slot| {
        slot.fma_lift_continuous(acc, dim, idx, ev.as_f64().unwrap_or(0.0), scale);
    })
    .with_fma_batch(move |evs, ws, slot| {
        let (sw, swx, swx2) = continuous_sums(evs, ws);
        slot.fma_lift_continuous_sums(dim, idx, sw, swx, swx2);
    })
}

/// Lift of a continuous attribute into the generalized cofactor ring.
/// Carries the sparse-lift fused accumulate
/// ([`GenCofactor::fma_lift_continuous`]) in both forms.
pub fn gen_continuous_lift(dim: usize, idx: usize, name: &str) -> LiftFn<GenCofactor> {
    LiftFn::new(format!("gen_cofactor<{dim}>[{idx}:cont]({name})"), move |v| {
        GenCofactor::lift_continuous(dim, idx, v.as_f64().unwrap_or(0.0))
    })
    .with_fma(move |v, acc, scale, slot| {
        slot.fma_lift_continuous(acc, dim, idx, v.as_f64().unwrap_or(0.0), scale);
    })
    .with_fma_encoded(move |ev, acc, scale, slot| {
        slot.fma_lift_continuous(acc, dim, idx, ev.as_f64().unwrap_or(0.0), scale);
    })
    .with_fma_batch(move |evs, ws, slot| {
        let (sw, swx, swx2) = continuous_sums(evs, ws);
        slot.fma_lift_continuous_sums(dim, idx, sw, swx, swx2);
    })
}

/// Lift of a categorical attribute into the generalized cofactor ring; the
/// attribute tag `attr` is stored inside relational keys (one-hot encoding).
///
/// Relational keys are dictionary-encoded, so the lift is built against the
/// engine's [`RingCtx`]: the `Value`-level path interns through it, while
/// the encoded fast path consumes the engine's already-encoded word
/// directly ([`GenCofactor::fma_lift_categorical`] — three table upserts
/// for a scalar accumulator, no dictionary access, no allocation beyond
/// table growth).
pub fn gen_categorical_lift(
    dim: usize,
    idx: usize,
    attr: VarId,
    name: &str,
    ctx: &RingCtx,
) -> LiftFn<GenCofactor> {
    let apply_ctx = ctx.clone();
    let fma_ctx = ctx.clone();
    LiftFn::new(
        format!("gen_cofactor<{dim}>[{idx}:cat@{attr}]({name})"),
        move |v| GenCofactor::lift_categorical(dim, idx, attr, apply_ctx.encode_value(v)),
    )
    .with_fma(move |v, acc, scale, slot| {
        slot.fma_lift_categorical(acc, dim, idx, attr, fma_ctx.encode_value(v), scale);
    })
    .with_fma_encoded(move |ev, acc, scale, slot| {
        slot.fma_lift_categorical(acc, dim, idx, attr, ev, scale);
    })
    .with_fma_batch(move |evs, ws, slot| {
        slot.fma_lift_categorical_weighted(dim, idx, attr, evs, ws);
    })
}

/// Lift of an attribute into the relation ring: `g_X(x) = {(X = x) -> 1}`.
///
/// Maintaining the query with these lifts maintains the listing
/// representation of the (projected) join result — factorized query
/// evaluation.  Built against the engine's [`RingCtx`] like
/// [`gen_categorical_lift`]; the encoded fast path extends every
/// accumulator key in place ([`RelValue::fma_indicator`]).
pub fn relational_lift(attr: VarId, name: &str, ctx: &RingCtx) -> LiftFn<RelValue> {
    let apply_ctx = ctx.clone();
    let fma_ctx = ctx.clone();
    LiftFn::new(format!("rel[@{attr}:{name}]"), move |v| {
        RelValue::indicator(attr, apply_ctx.encode_value(v))
    })
    .with_fma(move |v, acc, scale, slot| {
        slot.fma_indicator(acc, attr as u32, fma_ctx.encode_value(v), scale as f64);
    })
    .with_fma_encoded(move |ev, acc, scale, slot| {
        slot.fma_indicator(acc, attr as u32, ev, scale as f64);
    })
    .with_fma_batch(move |evs, ws, slot| {
        slot.fma_indicator_weighted(attr as u32, evs, ws);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ApproxEq;

    #[test]
    fn identity_lift_is_one_and_flagged() {
        let l: LiftFn<i64> = LiftFn::identity();
        assert!(l.is_identity());
        assert_eq!(l.apply(&Value::int(42)), 1);
        assert_eq!(l.name(), "1");
        assert_eq!(format!("{l:?}"), "LiftFn(1)");
    }

    #[test]
    fn real_and_count_lifts() {
        assert_eq!(count_lift().apply(&Value::str("x")), 1);
        assert_eq!(real_value_lift("B").apply(&Value::double(2.5)), 2.5);
        assert_eq!(real_value_lift("B").apply(&Value::int(3)), 3.0);
        assert_eq!(real_value_lift("B").apply(&Value::str("oops")), 0.0);
    }

    #[test]
    fn cofactor_lifts_produce_expected_shape() {
        let l = cofactor_continuous_lift(3, 1, "C");
        let g = l.apply(&Value::double(4.0));
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(1), 4.0);
        assert_eq!(g.prod(1, 1), 16.0);
        assert!(!l.is_identity());
        assert!(l.name().contains("cofactor<3>[1]"));
    }

    #[test]
    fn generalized_lifts_produce_expected_shape() {
        let ctx = RingCtx::new();
        let cont = gen_continuous_lift(2, 0, "B").apply(&Value::int(2));
        assert_eq!(cont.sum(0).scalar_part(), 2.0);
        let cat = gen_categorical_lift(2, 1, 7, "C", &ctx).apply(&Value::str("red"));
        let red = ctx.encode_value(&Value::str("red"));
        assert_eq!(cat.sum(1).get(&[(7, red)]), 1.0);
    }

    #[test]
    fn relational_lift_builds_indicators() {
        let ctx = RingCtx::new();
        let l = relational_lift(3, "D", &ctx);
        let r = l.apply(&Value::int(9));
        assert_eq!(r.get(&[(3, EncodedValue::int(9))]), 1.0);
    }

    /// Every lift's three application paths (apply, fma, encoded fma) must
    /// agree: `fma(v, acc, k, slot)` ≡ `slot += (acc · apply(v)) · k`.
    #[test]
    fn fma_paths_agree_with_apply() {
        let ctx = RingCtx::new();
        fn check<R: Ring + ApproxEq>(lift: &LiftFn<R>, ctx: &RingCtx, v: &Value, acc: &R) {
            for scale in [-1i64, 1, 2] {
                let mut expect = acc.mul(acc);
                expect.fma_scaled(acc, &lift.apply(v), scale);
                let mut via_fma = acc.mul(acc);
                lift.fma_apply(v, acc, scale, &mut via_fma);
                assert!(via_fma.approx_eq(&expect, 1e-12), "fma diverges from apply");
                let mut via_encoded = acc.mul(acc);
                let ev = ctx.encode_value(v);
                lift.fma_apply_encoded(ev, |e| ctx.decode_value(e), acc, scale, &mut via_encoded);
                assert!(
                    via_encoded.approx_eq(&expect, 1e-12),
                    "encoded fma diverges from apply"
                );
            }
        }
        let cof_acc = Cofactor::lift(3, 0, 2.0).mul(&Cofactor::lift(3, 2, -1.0));
        check(&cofactor_continuous_lift(3, 1, "B"), &ctx, &Value::double(4.5), &cof_acc);

        let gen_acc = GenCofactor::lift_categorical(3, 0, 0, ctx.encode_value(&Value::str("red")))
            .mul(&GenCofactor::lift_continuous(3, 1, 2.0));
        check(&gen_continuous_lift(3, 2, "D"), &ctx, &Value::int(3), &gen_acc);
        check(
            &gen_categorical_lift(3, 2, 2, "C", &ctx),
            &ctx,
            &Value::str("blue"),
            &gen_acc,
        );
        check(
            &gen_categorical_lift(3, 2, 0, "C'", &ctx),
            &ctx,
            &Value::str("red"),
            &gen_acc,
        );

        let rel_acc = RelValue::indicator(0, ctx.encode_value(&Value::str("red")))
            .add(&RelValue::scalar(2.0));
        check(&relational_lift(1, "D", &ctx), &ctx, &Value::int(7), &rel_acc);
        check(&relational_lift(0, "A", &ctx), &ctx, &Value::str("red"), &rel_acc);
    }

    /// The batch channel must agree with the per-row encoded fma over runs
    /// of scalar-weight rows: `batch(evs, ws)` ≡ `Σ_i fma(ev_i, w_i, 1)`.
    #[test]
    fn batch_channel_agrees_with_per_row_fma() {
        let ctx = RingCtx::new();
        fn check<R: Ring + ApproxEq>(lift: &LiftFn<R>, evs: &[EncodedValue], ws: &[f64]) {
            let batch = lift.fma_batch().expect("lift carries a batch channel");
            let mut via_batch = R::zero();
            batch(evs, ws, &mut via_batch);
            let mut per_row = R::zero();
            for (&ev, &w) in evs.iter().zip(ws) {
                // A scalar weight w is an accumulator R::one() scaled by w;
                // integer test weights make the per-row reference exact.
                let acc = R::one().scale_int(w as i64);
                lift.fma_apply_encoded(ev, |_| unreachable!("encoded path"), &acc, 1, &mut per_row);
            }
            assert!(
                via_batch.approx_eq(&per_row, 1e-12),
                "batch channel diverges from per-row fma"
            );
        }
        let ws = [1.0, -2.0, 3.0, 1.0];
        let ints: Vec<EncodedValue> = [4i64, -1, 0, 7].iter().map(|&x| EncodedValue::int(x)).collect();
        let cats: Vec<EncodedValue> = ["a", "b", "a", "c"]
            .iter()
            .map(|s| ctx.encode_value(&Value::str(s)))
            .collect();
        check(&cofactor_continuous_lift(3, 1, "B"), &ints, &ws);
        check(&gen_continuous_lift(3, 2, "D"), &ints, &ws);
        check(&gen_categorical_lift(3, 0, 0, "C", &ctx), &cats, &ws);
        check(&relational_lift(2, "A", &ctx), &cats, &ws);
    }
}
