//! Attribute functions ("lifts"): per-variable maps from attribute values
//! into ring elements.
//!
//! The engine applies the lift of a variable `X` when it marginalizes `X`
//! away at the view `V@X` — this is the `[lift<k>](X)` factor in the M3 code
//! of Figure 2d.  Variables that are plain join keys use the identity lift
//! (`g_X(x) = 1`), which the engine can skip entirely.

use crate::cofactor::Cofactor;
use crate::gencofactor::GenCofactor;
use crate::relvalue::RelValue;
use crate::ring::Ring;
use fivm_common::{Value, VarId};
use std::fmt;
use std::sync::Arc;

/// Signature of a fused lift-multiply-accumulate:
/// `slot += (acc · g(v)) · scale`.
pub type LiftFmaFn<R> = Arc<dyn Fn(&Value, &R, i64, &mut R) + Send + Sync>;

/// A lift (attribute function) producing payloads of ring `R`.
#[derive(Clone)]
pub struct LiftFn<R> {
    name: String,
    is_identity: bool,
    f: Arc<dyn Fn(&Value) -> R + Send + Sync>,
    /// Optional fused lift-multiply-accumulate.  Lift elements are usually
    /// extremely sparse (one linear entry, one quadratic entry), so a fused
    /// form can accumulate `acc · g(v)` into a slot in `O(dim)` work and
    /// without materializing the dense lifted element — the engine uses it
    /// on the maintenance hot path when present.
    fma: Option<LiftFmaFn<R>>,
}

impl<R: Ring> LiftFn<R> {
    /// Wraps an arbitrary attribute function.
    pub fn new<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&Value) -> R + Send + Sync + 'static,
    {
        LiftFn {
            name: name.into(),
            is_identity: false,
            f: Arc::new(f),
            fma: None,
        }
    }

    /// Attaches a fused lift-multiply-accumulate implementation.
    ///
    /// The closure must satisfy `slot += (acc · g(v)) · scale` for the same
    /// `g` as the plain apply function; `fivm_ring::axioms` offers
    /// [`crate::axioms::check_inplace_ops`]-style coverage via the engine's
    /// equivalence tests.
    pub fn with_fma<F>(mut self, fma: F) -> Self
    where
        F: Fn(&Value, &R, i64, &mut R) + Send + Sync + 'static,
    {
        self.fma = Some(Arc::new(fma));
        self
    }

    /// The identity lift `g_X(x) = 1`, used for join keys that do not
    /// participate in the aggregate batch.
    pub fn identity() -> Self {
        LiftFn {
            name: "1".to_string(),
            is_identity: true,
            f: Arc::new(|_| R::one()),
            fma: None,
        }
    }

    /// Whether this is the identity lift (so multiplication can be skipped).
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.is_identity
    }

    /// A short human-readable name, used when rendering plans.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the lift to a value.
    #[inline]
    pub fn apply(&self, v: &Value) -> R {
        (self.f)(v)
    }

    /// Fused accumulate `slot += (acc · g(v)) · scale`, using the attached
    /// specialization when present and the generic materialize-then-fma
    /// path otherwise.
    #[inline]
    pub fn fma_apply(&self, v: &Value, acc: &R, scale: i64, slot: &mut R) {
        match &self.fma {
            Some(fma) => fma(v, acc, scale, slot),
            None => slot.fma_scaled(acc, &self.apply(v), scale),
        }
    }
}

impl<R> fmt::Debug for LiftFn<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LiftFn({})", self.name)
    }
}

/// Lifts for the count / `Z` ring: every value maps to 1.
pub fn count_lift() -> LiftFn<i64> {
    LiftFn::identity()
}

/// Lift of a continuous attribute into the real ring: `g_X(x) = x`.
pub fn real_value_lift(name: &str) -> LiftFn<f64> {
    LiftFn::new(format!("val({name})"), |v| v.as_f64().unwrap_or(0.0))
}

/// Lift of a continuous attribute `idx` of an aggregate batch of size `dim`
/// into the cofactor (COVAR) ring.
///
/// Carries the fused lift-multiply-accumulate
/// ([`Cofactor::fma_lift_continuous`]), which the engine uses on the hot
/// path: `O(dim)` accumulation without materializing the lifted element.
pub fn cofactor_continuous_lift(dim: usize, idx: usize, name: &str) -> LiftFn<Cofactor> {
    LiftFn::new(format!("cofactor<{dim}>[{idx}]({name})"), move |v| {
        Cofactor::lift(dim, idx, v.as_f64().unwrap_or(0.0))
    })
    .with_fma(move |v, acc, scale, slot| {
        slot.fma_lift_continuous(acc, dim, idx, v.as_f64().unwrap_or(0.0), scale);
    })
}

/// Lift of a continuous attribute into the generalized cofactor ring.
pub fn gen_continuous_lift(dim: usize, idx: usize, name: &str) -> LiftFn<GenCofactor> {
    LiftFn::new(format!("gen_cofactor<{dim}>[{idx}:cont]({name})"), move |v| {
        GenCofactor::lift_continuous(dim, idx, v.as_f64().unwrap_or(0.0))
    })
}

/// Lift of a categorical attribute into the generalized cofactor ring; the
/// attribute tag `attr` is stored inside relational keys (one-hot encoding).
pub fn gen_categorical_lift(dim: usize, idx: usize, attr: VarId, name: &str) -> LiftFn<GenCofactor> {
    LiftFn::new(format!("gen_cofactor<{dim}>[{idx}:cat]({name})"), move |v| {
        GenCofactor::lift_categorical(dim, idx, attr, v.clone())
    })
}

/// Lift of an attribute into the relation ring: `g_X(x) = {(X = x) -> 1}`.
///
/// Maintaining the query with these lifts maintains the listing
/// representation of the (projected) join result — factorized query
/// evaluation.
pub fn relational_lift(attr: VarId, name: &str) -> LiftFn<RelValue> {
    LiftFn::new(format!("rel[{name}]"), move |v| {
        RelValue::indicator(attr, v.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_lift_is_one_and_flagged() {
        let l: LiftFn<i64> = LiftFn::identity();
        assert!(l.is_identity());
        assert_eq!(l.apply(&Value::int(42)), 1);
        assert_eq!(l.name(), "1");
        assert_eq!(format!("{l:?}"), "LiftFn(1)");
    }

    #[test]
    fn real_and_count_lifts() {
        assert_eq!(count_lift().apply(&Value::str("x")), 1);
        assert_eq!(real_value_lift("B").apply(&Value::double(2.5)), 2.5);
        assert_eq!(real_value_lift("B").apply(&Value::int(3)), 3.0);
        assert_eq!(real_value_lift("B").apply(&Value::str("oops")), 0.0);
    }

    #[test]
    fn cofactor_lifts_produce_expected_shape() {
        let l = cofactor_continuous_lift(3, 1, "C");
        let g = l.apply(&Value::double(4.0));
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(1), 4.0);
        assert_eq!(g.prod(1, 1), 16.0);
        assert!(!l.is_identity());
        assert!(l.name().contains("cofactor<3>[1]"));
    }

    #[test]
    fn generalized_lifts_produce_expected_shape() {
        let cont = gen_continuous_lift(2, 0, "B").apply(&Value::int(2));
        assert_eq!(cont.sum(0).scalar_part(), 2.0);
        let cat = gen_categorical_lift(2, 1, 7, "C").apply(&Value::str("red"));
        assert_eq!(cat.sum(1).get(&[(7, Value::str("red"))]), 1.0);
    }

    #[test]
    fn relational_lift_builds_indicators() {
        let l = relational_lift(3, "D");
        let r = l.apply(&Value::int(9));
        assert_eq!(r.get(&[(3, Value::int(9))]), 1.0);
    }
}
