#![forbid(unsafe_code)]
//! Application-specific rings for F-IVM.
//!
//! F-IVM maintains aggregates over joins by storing, for every key of every
//! materialized view, a *payload* drawn from a ring `(R, +, *, 0, 1)`.  The
//! maintenance algorithm only ever adds, multiplies and negates payloads, so
//! swapping the ring swaps the application without touching the engine:
//!
//! | Ring | Application |
//! |------|-------------|
//! | [`i64`] (`Z`) | tuple multiplicities, count aggregates |
//! | [`f64`] | single sum/product aggregates |
//! | [`Cofactor`] | COVAR matrix over continuous attributes → ridge linear regression |
//! | [`RelValue`] | the relation ring → factorized conjunctive query evaluation |
//! | [`GenCofactor`] | COVAR/MI over mixed continuous and categorical attributes → model selection, Chow-Liu trees |
//! | [`MatrixValue`] | matrix chain multiplication |
//! | [`PairRing`] | product of two rings (compose applications) |
//!
//! Inserts and deletes are handled uniformly: a delete is an insert whose
//! payload is the additive inverse ([`Ring::neg`]).
//!
//! The [`lift`] module provides the *attribute functions* `g_X` from the
//! paper: per-variable maps from attribute values into ring elements, applied
//! by the engine when a variable is marginalized.

pub mod axioms;
pub mod boxed;
pub mod cofactor;
pub mod ctx;
pub mod gencofactor;
pub mod lift;
pub mod matrix;
pub mod numeric;
pub mod persist;
pub mod relkey;
pub mod relvalue;
pub mod ring;
pub mod symmatrix;

pub use boxed::{BoxedCatKey, BoxedRelValue};
pub use cofactor::Cofactor;
pub use ctx::RingCtx;
pub use gencofactor::GenCofactor;
pub use lift::LiftFn;
pub use matrix::MatrixValue;
pub use numeric::PairRing;
pub use persist::PersistRing;
pub use relkey::RelKey;
pub use relvalue::{DecodedRelEntry, RelValue};
pub use ring::{ApproxEq, Ring};
pub use symmatrix::SymMatrix;
