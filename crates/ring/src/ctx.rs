//! The ring context: a shared handle to the engine's string dictionary.
//!
//! The relational rings ([`crate::RelValue`], [`crate::GenCofactor`]) key
//! their interior tables by dictionary-encoded words.  Integers, doubles and
//! NULL encode without any dictionary; **string** categories need the same
//! interner the engine uses for view keys, so that the encoded values the
//! engine hands to lifts on the hot path and the values a lift encodes
//! itself (from a raw [`Value`]) agree bit for bit.  A [`RingCtx`] is that
//! shared handle: the engine and every lift built for it hold clones of one
//! context, and therefore one dictionary.
//!
//! Ownership rules (the "ring-key contract", see ROADMAP.md):
//!
//! * **One context per engine/shard.**  Encoded ring keys are meaningful
//!   only under the dictionary that produced them; moving ring values
//!   across engines goes through [`crate::Ring::rekey`].
//! * **Ring operations never touch the context.**  `add`/`mul`/`fma` work
//!   on already-encoded words; only *lift application* (raw `Value` in) and
//!   *output-boundary decoding* (raw `Value` out) lock the dictionary.
//!   This is what makes the lock uncontended and deadlock-free: the engine
//!   never holds the guard across a ring or lift call.

use fivm_common::{Dict, EncodedValue, Value};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A cloneable, thread-safe handle to one engine's [`Dict`].
#[derive(Clone, Debug, Default)]
pub struct RingCtx {
    dict: Arc<Mutex<Dict>>,
}

impl RingCtx {
    /// A fresh context with an empty dictionary.
    pub fn new() -> RingCtx {
        RingCtx::default()
    }

    /// Locks the dictionary.  Callers must not invoke ring or lift code
    /// while holding the guard (see the module docs); the lock is
    /// single-owner in practice and never blocks on the maintenance path.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, Dict> {
        self.dict.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Encodes one value, interning strings on first sight.
    #[inline]
    pub fn encode_value(&self, v: &Value) -> EncodedValue {
        match v {
            // The common non-string cases encode without touching the lock.
            Value::Null => EncodedValue::NULL,
            Value::Int(x) => EncodedValue::int(*x),
            Value::Double(x) => EncodedValue::double(x.get()),
            Value::Str(_) => self.lock().encode_value(v),
        }
    }

    /// Encodes one value without interning; `None` for an unseen string
    /// (such a value cannot be part of any stored ring key).
    #[inline]
    pub fn try_encode_value(&self, v: &Value) -> Option<EncodedValue> {
        match v {
            Value::Str(_) => self.lock().try_encode_value(v),
            other => Some(self.encode_value(other)),
        }
    }

    /// Decodes one value (output boundary).
    #[inline]
    pub fn decode_value(&self, ev: EncodedValue) -> Value {
        match ev.decode_dictless() {
            Some(v) => v,
            None => self.lock().decode_value(ev),
        }
    }

    /// A point-in-time copy of the dictionary (used when ring values leave
    /// the engine, e.g. a shard attaching its dictionary to a result reply).
    pub fn snapshot(&self) -> Dict {
        self.lock().clone()
    }

    /// Runs a closure over the locked dictionary (shared-read use cases at
    /// output boundaries).
    pub fn with_dict<T>(&self, f: impl FnOnce(&Dict) -> T) -> T {
        f(&self.lock())
    }

    /// Runs a closure over the locked dictionary with mutable access.
    pub fn with_dict_mut<T>(&self, f: impl FnOnce(&mut Dict) -> T) -> T {
        f(&mut self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_shares_interning() {
        let a = RingCtx::new();
        let b = a.clone();
        let red_a = a.encode_value(&Value::str("red"));
        let red_b = b.encode_value(&Value::str("red"));
        assert_eq!(red_a, red_b, "clones must share one dictionary");
        assert_eq!(a.decode_value(red_b), Value::str("red"));
        assert_eq!(b.try_encode_value(&Value::str("unseen")), None);
    }

    #[test]
    fn non_string_encoding_is_dictionary_free() {
        let ctx = RingCtx::new();
        assert_eq!(ctx.encode_value(&Value::int(7)), EncodedValue::int(7));
        assert_eq!(
            ctx.encode_value(&Value::double(-0.0)),
            EncodedValue::double(0.0)
        );
        assert_eq!(ctx.decode_value(EncodedValue::int(7)), Value::int(7));
        assert_eq!(ctx.with_dict(Dict::len), 0, "no interning happened");
    }
}
