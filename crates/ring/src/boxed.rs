//! The boxed-key reference implementation of the relation ring.
//!
//! This is the representation [`crate::RelValue`] used before the ring
//! interior moved onto the hash-once machinery: keys are heap-boxed slices
//! of `(attribute id, Value)` pairs inside an `FxHashMap`, so every ring
//! operation re-hashes dynamically typed values (enum-tag matching, string
//! refcount traffic, one allocation per constructed key).
//!
//! It is kept — deliberately unoptimized — as
//!
//! * the **oracle** of the seeded encoded-vs-boxed differential suite
//!   (`crates/ring/tests/relvalue_differential.rs`), and
//! * the **boxed side** of the `RING-*` ablation records emitted by
//!   `exp_throughput`, which isolate what the encoded ring interior buys on
//!   identical workloads.
//!
//! It must stay semantically identical to [`crate::RelValue`]; it is not
//! exported for production use.

use crate::ring::{approx_f64, ApproxEq, Ring};
use fivm_common::{FxHashMap, Value, VarId};

/// The key of one entry: categorical assignments, sorted by attribute id.
pub type BoxedCatKey = Box<[(u32, Value)]>;

/// A relation-valued ring element keyed by boxed `Value` tuples (reference
/// implementation; see the module docs).
#[derive(Clone, Debug, Default)]
pub struct BoxedRelValue {
    entries: FxHashMap<BoxedCatKey, f64>,
}

impl BoxedRelValue {
    /// The empty relation (ring zero).
    pub fn empty() -> Self {
        BoxedRelValue::default()
    }

    /// The relation `{() -> w}` over the empty schema.
    pub fn scalar(w: f64) -> Self {
        let mut entries = FxHashMap::default();
        if w != 0.0 {
            entries.insert(Vec::new().into_boxed_slice(), w);
        }
        BoxedRelValue { entries }
    }

    /// The singleton relation `{(attr = value) -> w}`.
    pub fn weighted(attr: VarId, value: Value, w: f64) -> Self {
        let mut entries = FxHashMap::default();
        if w != 0.0 {
            entries.insert(vec![(attr as u32, value)].into_boxed_slice(), w);
        }
        BoxedRelValue { entries }
    }

    /// The indicator relation `{(attr = value) -> 1}`.
    pub fn indicator(attr: VarId, value: Value) -> Self {
        Self::weighted(attr, value, 1.0)
    }

    /// Number of tuples with non-zero weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of a key given as (unsorted) pairs, or 0 if absent.
    pub fn get(&self, key: &[(u32, Value)]) -> f64 {
        let mut k: Vec<(u32, Value)> = key.to_vec();
        k.sort_by_key(|(a, _)| *a);
        self.entries.get(k.as_slice()).copied().unwrap_or(0.0)
    }

    /// Approximate heap bytes of this relation: the hash-map bucket array
    /// (per usable slot: the entry pair plus one control byte, the
    /// hashbrown shape behind `std`) plus every boxed key's pair slice.
    /// `std` does not expose exact allocation sizes, so this is an
    /// *estimate* — the boxed side of the `MEM-*` ablation records, where
    /// a few percent of error cannot affect the conclusion (the boxed
    /// layout costs multiples of the encoded one).
    pub fn approx_heap_bytes(&self) -> usize {
        let slot = std::mem::size_of::<(BoxedCatKey, f64)>() + 1;
        let key_bytes: usize = self
            .entries
            .keys()
            .map(|k| k.len() * std::mem::size_of::<(u32, Value)>())
            .sum();
        self.entries.capacity() * slot + key_bytes
    }

    /// The entries as a sorted `(pairs, weight)` listing — the same
    /// canonical form as [`crate::RelValue::decode_entries`], which is how
    /// the differential suite compares the two representations.
    pub fn sorted_entries(&self) -> Vec<(BoxedCatKey, f64)> {
        let mut out: Vec<(BoxedCatKey, f64)> = self
            .entries
            .iter()
            .map(|(k, &w)| (k.clone(), w))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// `self += k * other`.
    pub fn add_scaled(&mut self, other: &BoxedRelValue, k: f64) {
        if k == 0.0 {
            return;
        }
        for (key, &w) in &other.entries {
            match self.entries.get_mut(key) {
                Some(slot) => *slot += k * w,
                None => {
                    self.entries.insert(key.clone(), k * w);
                }
            }
        }
        self.entries.retain(|_, w| *w != 0.0);
    }

    /// `self += k * (a ⋈ b)` without materializing the product.
    pub fn add_product_scaled(&mut self, a: &BoxedRelValue, b: &BoxedRelValue, k: f64) {
        if k == 0.0 || a.is_empty() || b.is_empty() {
            return;
        }
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        for (ka, &wa) in &small.entries {
            for (kb, &wb) in &large.entries {
                if let Some(key) = Self::join_keys(ka, kb) {
                    match self.entries.get_mut(&key) {
                        Some(slot) => *slot += k * wa * wb,
                        None => {
                            self.entries.insert(key, k * wa * wb);
                        }
                    }
                }
            }
        }
        self.entries.retain(|_, w| *w != 0.0);
    }

    /// Joins two keys: shared attributes must match, the union is returned
    /// in attribute order; `None` if the shared attributes disagree.
    fn join_keys(a: &BoxedCatKey, b: &BoxedCatKey) -> Option<BoxedCatKey> {
        let mut out: Vec<(u32, Value)> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(out.into_boxed_slice())
    }

    fn map_weights(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut entries = FxHashMap::default();
        for (k, &w) in &self.entries {
            let nw = f(w);
            if nw != 0.0 {
                entries.insert(k.clone(), nw);
            }
        }
        BoxedRelValue { entries }
    }
}

impl PartialEq for BoxedRelValue {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Ring for BoxedRelValue {
    fn zero() -> Self {
        BoxedRelValue::empty()
    }

    fn one() -> Self {
        BoxedRelValue::scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    fn add_assign(&mut self, rhs: &Self) {
        self.add_scaled(rhs, 1.0);
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = BoxedRelValue::empty();
        out.add_product_scaled(self, rhs, 1.0);
        out
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        out.entries.clear();
        out.add_product_scaled(self, rhs, 1.0);
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        self.add_product_scaled(a, b, scale as f64);
    }

    fn neg(&self) -> Self {
        self.map_weights(|w| -w)
    }

    fn scale_int(&self, k: i64) -> Self {
        if k == 0 {
            return BoxedRelValue::empty();
        }
        self.map_weights(|w| w * k as f64)
    }
}

impl ApproxEq for BoxedRelValue {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for (k, &w) in &self.entries {
            if !approx_f64(w, other.entries.get(k).copied().unwrap_or(0.0), tol) {
                return false;
            }
        }
        for (k, &w) in &other.entries {
            if !approx_f64(w, self.entries.get(k).copied().unwrap_or(0.0), tol) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;

    #[test]
    fn boxed_reference_satisfies_the_ring_axioms() {
        let a = BoxedRelValue::indicator(0, Value::int(1))
            .add(&BoxedRelValue::weighted(1, Value::int(2), 3.0));
        let b = BoxedRelValue::scalar(2.0).add(&BoxedRelValue::indicator(0, Value::int(1)));
        let c = BoxedRelValue::weighted(2, Value::str("z"), -1.5);
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    #[test]
    fn join_and_cancellation_semantics() {
        let a = BoxedRelValue::weighted(0, Value::int(1), 2.0);
        let b = BoxedRelValue::weighted(1, Value::int(5), 3.0);
        assert_eq!(
            a.mul(&b).get(&[(0, Value::int(1)), (1, Value::int(5))]),
            6.0
        );
        assert!(a.add(&a.neg()).is_zero());
        assert!(a.mul(&BoxedRelValue::indicator(0, Value::int(2))).is_zero());
    }
}
