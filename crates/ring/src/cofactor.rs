//! The degree-m matrix ring ("cofactor ring") over continuous attributes.
//!
//! An element is the compound aggregate `(c, s, Q)` from the paper:
//!
//! * `c` — the count aggregate `SUM(1)`,
//! * `s` — the vector of linear aggregates `SUM(X)` for each of the `m`
//!   attributes in the aggregate batch,
//! * `Q` — the symmetric matrix of quadratic aggregates `SUM(X*Y)`.
//!
//! Addition is component-wise; multiplication is
//!
//! ```text
//! (ca, sa, Qa) * (cb, sb, Qb)
//!   = (ca·cb,  cb·sa + ca·sb,  cb·Qa + ca·Qb + sa·sbᵀ + sb·saᵀ)
//! ```
//!
//! Together these make the COVAR matrix over the join computable by pushing
//! the compound aggregate past the joins exactly like a count.
//!
//! The ring's `zero`/`one` cannot know the query-dependent dimension `m`, so
//! elements with no linear/quadratic part are represented by the
//! [`Cofactor::Scalar`] variant (`Scalar(c)` ≡ `(c, 0, 0)` for every `m`).

use crate::ring::{approx_f64, ApproxEq, Ring};
use crate::symmatrix::SymMatrix;

/// A value of the degree-m cofactor ring.
#[derive(Clone, Debug, PartialEq)]
pub enum Cofactor {
    /// `(c, 0, 0)` — a pure count, valid for any dimension.
    Scalar(f64),
    /// A full `(c, s, Q)` triple with a concrete dimension.
    Elem(CofactorElem),
}

/// The dense representation of a cofactor element.
#[derive(Clone, Debug, PartialEq)]
pub struct CofactorElem {
    /// The count aggregate `SUM(1)`.
    pub count: f64,
    /// Linear aggregates `SUM(X_i)`, one per attribute in the batch.
    pub sums: Vec<f64>,
    /// Quadratic aggregates `SUM(X_i * X_j)`.
    pub prods: SymMatrix,
}

impl CofactorElem {
    /// A zero element of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        CofactorElem {
            count: 0.0,
            sums: vec![0.0; dim],
            prods: SymMatrix::zeros(dim),
        }
    }

    /// The dimension `m` of the aggregate batch.
    pub fn dim(&self) -> usize {
        self.sums.len()
    }
}

impl Cofactor {
    /// Lifts a continuous attribute value `x` of attribute `idx` into the
    /// ring: `(1, e_idx·x, e_idx e_idxᵀ·x²)`.
    ///
    /// This is the attribute function `g_X(x)` from the paper.
    pub fn lift(dim: usize, idx: usize, x: f64) -> Self {
        assert!(idx < dim, "lift index {idx} out of bounds for dimension {dim}");
        let mut e = CofactorElem::zeros(dim);
        e.count = 1.0;
        e.sums[idx] = x;
        e.prods.set(idx, idx, x * x);
        Cofactor::Elem(e)
    }

    /// A pure count element `(c, 0, 0)`.
    pub fn scalar(c: f64) -> Self {
        Cofactor::Scalar(c)
    }

    /// The count component `c`.
    pub fn count(&self) -> f64 {
        match self {
            Cofactor::Scalar(c) => *c,
            Cofactor::Elem(e) => e.count,
        }
    }

    /// The linear aggregate `SUM(X_idx)`, or 0 for scalar elements.
    pub fn sum(&self, idx: usize) -> f64 {
        match self {
            Cofactor::Scalar(_) => 0.0,
            Cofactor::Elem(e) => e.sums.get(idx).copied().unwrap_or(0.0),
        }
    }

    /// The quadratic aggregate `SUM(X_i * X_j)`, or 0 for scalar elements.
    pub fn prod(&self, i: usize, j: usize) -> f64 {
        match self {
            Cofactor::Scalar(_) => 0.0,
            Cofactor::Elem(e) => e.prods.get(i, j),
        }
    }

    /// The dimension, if the element carries one.
    pub fn dim(&self) -> Option<usize> {
        match self {
            Cofactor::Scalar(_) => None,
            Cofactor::Elem(e) => Some(e.dim()),
        }
    }

    /// Materializes the element as a dense `(c, s, Q)` triple of dimension
    /// `dim` (scalar elements expand to zero vectors/matrices).
    pub fn to_dense(&self, dim: usize) -> CofactorElem {
        match self {
            Cofactor::Scalar(c) => {
                let mut e = CofactorElem::zeros(dim);
                e.count = *c;
                e
            }
            Cofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "cofactor dimension mismatch");
                e.clone()
            }
        }
    }

    fn scale_all(&self, k: f64) -> Self {
        match self {
            Cofactor::Scalar(c) => Cofactor::Scalar(c * k),
            Cofactor::Elem(e) => {
                let mut out = e.clone();
                out.count *= k;
                for s in &mut out.sums {
                    *s *= k;
                }
                out.prods.scale_in_place(k);
                Cofactor::Elem(out)
            }
        }
    }

    /// Fused lift-multiply-accumulate:
    /// `self += (acc · g_idx(x)) · k`, where `g_idx(x)` is the continuous
    /// lift [`Cofactor::lift`] of dimension `dim`.
    ///
    /// The lift element is `(1, x·e_idx, x²·E_idx,idx)`, so the product has
    /// the closed form
    /// `(c, s + c·x·e_idx, Q + c·x²·E_idx,idx + x·(s e_idxᵀ + e_idx sᵀ))`
    /// for `acc = (c, s, Q)` — accumulated here without materializing the
    /// (almost entirely zero) lifted element.  For a scalar `acc` this
    /// touches `O(1)` entries; for a dense `acc` it saves the dense scans
    /// of the lift's zero sum/product blocks.
    pub fn fma_lift_continuous(&mut self, acc: &Cofactor, dim: usize, idx: usize, x: f64, k: i64) {
        if k == 0 {
            return;
        }
        let kf = k as f64;
        match acc {
            Cofactor::Scalar(c) => {
                if *c == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(dim);
                let kc = kf * c;
                o.count += kc;
                o.sums[idx] += kc * x;
                o.prods.add_at(idx, idx, kc * x * x);
            }
            Cofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "cofactor dimension mismatch in lift fma");
                let o = self.promote_to_elem(dim);
                o.count += kf * e.count;
                for (dst, src) in o.sums.iter_mut().zip(e.sums.iter()) {
                    *dst += kf * src;
                }
                o.sums[idx] += kf * e.count * x;
                o.prods.add_scaled(&e.prods, kf);
                o.prods.add_at(idx, idx, kf * e.count * x * x);
                o.prods.add_rank_one_cross_scaled(idx, &e.sums, kf * x);
            }
        }
    }

    /// Batch-fused continuous lift for a run of **scalar-weight**
    /// accumulators: `self += Σ_i w_i · g_idx(x_i)` reduced to its three
    /// horizontal sums `(Σw, Σw·x, Σw·x²)` — the whole run costs three
    /// scalar updates regardless of length.  This is the batch channel
    /// behind `LiftFn::with_fma_batch` for the cofactor continuous lift.
    pub fn fma_lift_continuous_sums(
        &mut self,
        dim: usize,
        idx: usize,
        sw: f64,
        swx: f64,
        swx2: f64,
    ) {
        if sw == 0.0 && swx == 0.0 && swx2 == 0.0 {
            return;
        }
        let o = self.promote_to_elem(dim);
        o.count += sw;
        o.sums[idx] += swx;
        o.prods.add_at(idx, idx, swx2);
    }

    /// Turns `self` into a dense element of dimension `dim` (keeping the
    /// count) and returns it; allocates only when `self` was a scalar.
    fn promote_to_elem(&mut self, dim: usize) -> &mut CofactorElem {
        if let Cofactor::Scalar(c) = *self {
            let mut e = CofactorElem::zeros(dim);
            e.count = c;
            *self = Cofactor::Elem(e);
        }
        match self {
            Cofactor::Elem(e) => {
                assert_eq!(e.dim(), dim, "cofactor dimension mismatch");
                e
            }
            Cofactor::Scalar(_) => unreachable!("promoted above"),
        }
    }
}

impl Ring for Cofactor {
    fn zero() -> Self {
        Cofactor::Scalar(0.0)
    }

    fn one() -> Self {
        Cofactor::Scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        match self {
            Cofactor::Scalar(c) => *c == 0.0,
            Cofactor::Elem(e) => {
                e.count == 0.0 && e.sums.iter().all(|&x| x == 0.0) && e.prods.is_zero()
            }
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (Cofactor::Scalar(a), Cofactor::Scalar(b)) => Cofactor::Scalar(a + b),
            (Cofactor::Scalar(a), Cofactor::Elem(e)) | (Cofactor::Elem(e), Cofactor::Scalar(a)) => {
                let mut out = e.clone();
                out.count += a;
                Cofactor::Elem(out)
            }
            (Cofactor::Elem(a), Cofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot add cofactor elements of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                let mut out = a.clone();
                out.count += b.count;
                for (x, y) in out.sums.iter_mut().zip(b.sums.iter()) {
                    *x += y;
                }
                out.prods.add_scaled(&b.prods, 1.0);
                Cofactor::Elem(out)
            }
        }
    }

    fn add_assign(&mut self, rhs: &Self) {
        match (&mut *self, rhs) {
            (Cofactor::Scalar(a), Cofactor::Scalar(b)) => *a += b,
            (Cofactor::Elem(a), Cofactor::Scalar(b)) => a.count += b,
            (Cofactor::Elem(a), Cofactor::Elem(b)) => {
                assert_eq!(a.dim(), b.dim(), "cofactor dimension mismatch in add_assign");
                a.count += b.count;
                for (x, y) in a.sums.iter_mut().zip(b.sums.iter()) {
                    *x += y;
                }
                a.prods.add_scaled(&b.prods, 1.0);
            }
            (slot @ Cofactor::Scalar(_), Cofactor::Elem(_)) => {
                let merged = slot.add(rhs);
                *slot = merged;
            }
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (Cofactor::Scalar(a), Cofactor::Scalar(b)) => Cofactor::Scalar(a * b),
            (Cofactor::Scalar(a), other @ Cofactor::Elem(_)) => other.scale_all(*a),
            (other @ Cofactor::Elem(_), Cofactor::Scalar(b)) => other.scale_all(*b),
            (Cofactor::Elem(a), Cofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot multiply cofactor elements of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                let dim = a.dim();
                let mut out = CofactorElem::zeros(dim);
                out.count = a.count * b.count;
                for i in 0..dim {
                    out.sums[i] = b.count * a.sums[i] + a.count * b.sums[i];
                }
                out.prods.add_scaled(&a.prods, b.count);
                out.prods.add_scaled(&b.prods, a.count);
                out.prods.add_symmetric_outer(&a.sums, &b.sums);
                Cofactor::Elem(out)
            }
        }
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        match (self, rhs) {
            (Cofactor::Scalar(a), Cofactor::Scalar(b)) => *out = Cofactor::Scalar(a * b),
            (Cofactor::Scalar(a), Cofactor::Elem(e)) | (Cofactor::Elem(e), Cofactor::Scalar(a)) => {
                if let Cofactor::Elem(o) = out {
                    if o.dim() == e.dim() {
                        o.count = a * e.count;
                        for (dst, src) in o.sums.iter_mut().zip(e.sums.iter()) {
                            *dst = a * src;
                        }
                        o.prods.assign_scaled(&e.prods, *a);
                        return;
                    }
                }
                *out = self.mul(rhs);
            }
            (Cofactor::Elem(a), Cofactor::Elem(b)) => {
                assert_eq!(
                    a.dim(),
                    b.dim(),
                    "cannot multiply cofactor elements of dimensions {} and {}",
                    a.dim(),
                    b.dim()
                );
                let dim = a.dim();
                let reusable = matches!(out, Cofactor::Elem(o) if o.dim() == dim);
                if !reusable {
                    *out = Cofactor::Elem(CofactorElem::zeros(dim));
                }
                let Cofactor::Elem(o) = out else {
                    unreachable!("out replaced with a dense element above")
                };
                o.count = a.count * b.count;
                for i in 0..dim {
                    o.sums[i] = b.count * a.sums[i] + a.count * b.sums[i];
                }
                o.prods.clear();
                o.prods.add_scaled(&a.prods, b.count);
                o.prods.add_scaled(&b.prods, a.count);
                o.prods.add_symmetric_outer(&a.sums, &b.sums);
            }
        }
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        match (a, b) {
            (Cofactor::Scalar(x), Cofactor::Scalar(y)) => match self {
                Cofactor::Scalar(c) => *c += s * x * y,
                Cofactor::Elem(e) => e.count += s * x * y,
            },
            (Cofactor::Scalar(x), Cofactor::Elem(e)) | (Cofactor::Elem(e), Cofactor::Scalar(x)) => {
                let k = s * x;
                if k == 0.0 {
                    return;
                }
                let o = self.promote_to_elem(e.dim());
                o.count += k * e.count;
                for (dst, src) in o.sums.iter_mut().zip(e.sums.iter()) {
                    *dst += k * src;
                }
                o.prods.add_scaled(&e.prods, k);
            }
            (Cofactor::Elem(ea), Cofactor::Elem(eb)) => {
                assert_eq!(
                    ea.dim(),
                    eb.dim(),
                    "cannot multiply cofactor elements of dimensions {} and {}",
                    ea.dim(),
                    eb.dim()
                );
                let dim = ea.dim();
                // The hot case of the maintenance path: a dense accumulator
                // receiving dense products.  Everything below accumulates
                // into existing buffers — no heap allocation.
                let o = self.promote_to_elem(dim);
                o.count += s * ea.count * eb.count;
                for i in 0..dim {
                    o.sums[i] += s * (eb.count * ea.sums[i] + ea.count * eb.sums[i]);
                }
                o.prods.add_scaled(&ea.prods, s * eb.count);
                o.prods.add_scaled(&eb.prods, s * ea.count);
                o.prods.add_symmetric_outer_scaled(&ea.sums, &eb.sums, s);
            }
        }
    }

    fn reset_zero(&mut self) {
        match self {
            Cofactor::Scalar(c) => *c = 0.0,
            Cofactor::Elem(e) => {
                e.count = 0.0;
                e.sums.fill(0.0);
                e.prods.fill_zero();
            }
        }
    }

    fn neg(&self) -> Self {
        self.scale_all(-1.0)
    }

    fn scale_int(&self, k: i64) -> Self {
        self.scale_all(k as f64)
    }

    fn payload_bytes(&self) -> usize {
        match self {
            Cofactor::Scalar(_) => 0,
            Cofactor::Elem(e) => {
                e.sums.capacity() * std::mem::size_of::<f64>() + e.prods.heap_bytes()
            }
        }
    }

    fn scalar_weight(&self) -> Option<f64> {
        match self {
            Cofactor::Scalar(c) => Some(*c),
            Cofactor::Elem(_) => None,
        }
    }
}

impl ApproxEq for Cofactor {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        // Compare in a dense representation so Scalar(c) == Elem(c, 0, 0).
        let dim = self.dim().or(other.dim()).unwrap_or(0);
        let a = self.to_dense_or_scalar(dim);
        let b = other.to_dense_or_scalar(dim);
        match (a, b) {
            (Cofactor::Scalar(x), Cofactor::Scalar(y)) => approx_f64(x, y, tol),
            (Cofactor::Elem(x), Cofactor::Elem(y)) => {
                approx_f64(x.count, y.count, tol)
                    && x.sums
                        .iter()
                        .zip(y.sums.iter())
                        .all(|(p, q)| approx_f64(*p, *q, tol))
                    && x.prods.approx_eq(&y.prods, tol)
            }
            _ => false,
        }
    }
}

impl Cofactor {
    fn to_dense_or_scalar(&self, dim: usize) -> Cofactor {
        if dim == 0 {
            match self {
                Cofactor::Scalar(c) => Cofactor::Scalar(*c),
                Cofactor::Elem(e) => Cofactor::Scalar(e.count),
            }
        } else {
            Cofactor::Elem(self.to_dense(dim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;

    #[test]
    fn lift_produces_unit_count_and_squared_diagonal() {
        let g = Cofactor::lift(3, 1, 4.0);
        assert_eq!(g.count(), 1.0);
        assert_eq!(g.sum(0), 0.0);
        assert_eq!(g.sum(1), 4.0);
        assert_eq!(g.prod(1, 1), 16.0);
        assert_eq!(g.prod(0, 1), 0.0);
        assert_eq!(g.dim(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn lift_rejects_out_of_range_index() {
        let _ = Cofactor::lift(2, 2, 1.0);
    }

    #[test]
    fn paper_multiplication_formula_on_two_lifts() {
        // g_C(c) * g_D(d) with dim 3, indices 1 and 2 (as in Figure 1's V_S):
        // count 1, sums = [0, c, d], Q = [[0,0,0],[0,c²,cd],[0,cd,d²]].
        let c = 5.0;
        let d = 7.0;
        let p = Cofactor::lift(3, 1, c).mul(&Cofactor::lift(3, 2, d));
        assert_eq!(p.count(), 1.0);
        assert_eq!(p.sum(1), c);
        assert_eq!(p.sum(2), d);
        assert_eq!(p.prod(1, 1), c * c);
        assert_eq!(p.prod(2, 2), d * d);
        assert_eq!(p.prod(1, 2), c * d);
        assert_eq!(p.prod(0, 1), 0.0);
    }

    #[test]
    fn figure1_covar_payload_for_a1() {
        // Figure 1, continuous B, C, D with b_i = c_i = d_i = i.
        // V_S(a1) = g_C(c1)*g_D(d1) + g_C(c2)*g_D(d3) (c1=1, d1=1, c2=2, d3=3)
        let vs_a1 = Cofactor::lift(3, 1, 1.0)
            .mul(&Cofactor::lift(3, 2, 1.0))
            .add(&Cofactor::lift(3, 1, 2.0).mul(&Cofactor::lift(3, 2, 3.0)));
        assert_eq!(vs_a1.count(), 2.0);
        assert_eq!(vs_a1.sum(1), 3.0); // c1 + c2
        assert_eq!(vs_a1.sum(2), 4.0); // d1 + d3
        assert_eq!(vs_a1.prod(1, 2), 1.0 * 1.0 + 2.0 * 3.0);

        // V_R(a1) = g_B(b1), b1 = 1
        let vr_a1 = Cofactor::lift(3, 0, 1.0);
        let q_a1 = vr_a1.mul(&vs_a1);
        // count = 2 tuples joining through a1
        assert_eq!(q_a1.count(), 2.0);
        // SUM(B) over the two joined tuples = 1 + 1
        assert_eq!(q_a1.sum(0), 2.0);
        // SUM(B*C) = 1*1 + 1*2 = 3
        assert_eq!(q_a1.prod(0, 1), 3.0);
        // SUM(B*D) = 1*1 + 1*3 = 4
        assert_eq!(q_a1.prod(0, 2), 4.0);
    }

    #[test]
    fn scalar_acts_as_count_only_element() {
        let e = Cofactor::lift(2, 0, 3.0);
        let s = Cofactor::scalar(2.0);
        let prod = s.mul(&e);
        assert_eq!(prod.count(), 2.0);
        assert_eq!(prod.sum(0), 6.0);
        assert_eq!(prod.prod(0, 0), 18.0);
        let sum = s.add(&e);
        assert_eq!(sum.count(), 3.0);
        assert_eq!(sum.sum(0), 3.0);
    }

    #[test]
    fn add_assign_matches_add() {
        let a = Cofactor::lift(2, 0, 1.5);
        let b = Cofactor::lift(2, 1, -2.0);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        let mut s = Cofactor::scalar(2.0);
        s.add_assign(&b);
        assert_eq!(s, Cofactor::scalar(2.0).add(&b));
    }

    #[test]
    fn deletes_cancel_inserts() {
        let x = Cofactor::lift(3, 0, 2.0).mul(&Cofactor::lift(3, 1, 5.0));
        let cancelled = x.add(&x.neg());
        assert!(cancelled.is_zero());
        assert_eq!(x.scale_int(-1), x.neg());
        assert!(x.scale_int(0).is_zero());
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn mixing_dimensions_panics() {
        let _ = Cofactor::lift(2, 0, 1.0).add(&Cofactor::lift(3, 0, 1.0));
    }

    #[test]
    fn ring_axioms_hold_approximately() {
        let a = Cofactor::lift(3, 0, 1.5);
        let b = Cofactor::lift(3, 1, -2.0).mul(&Cofactor::lift(3, 2, 0.5));
        let c = Cofactor::scalar(3.0).add(&Cofactor::lift(3, 2, 4.0));
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    #[test]
    fn approx_eq_bridges_scalar_and_dense() {
        let s = Cofactor::scalar(2.0);
        let mut e = CofactorElem::zeros(3);
        e.count = 2.0;
        assert!(s.approx_eq(&Cofactor::Elem(e), 1e-12));
        assert!(!s.approx_eq(&Cofactor::scalar(3.0), 1e-12));
    }
}
