//! The relation ring: relations as ring values.
//!
//! A [`RelValue`] is a (small) relation mapping tuples of categorical values
//! to real weights.  Addition is union with summed weights; multiplication is
//! natural join with multiplied weights; the empty relation is `0`; the
//! relation containing only the empty tuple with weight 1 is `1`.
//!
//! Keys are sorted `(attribute id, value)` pairs so the join is schema-aware
//! without threading schemas through ring operations: shared attributes must
//! match, the remaining attributes are concatenated in attribute order.
//!
//! # Storage: the hash-once interior
//!
//! Entries live in a [`RawTable`] keyed by [`RelKey`] — the same
//! dictionary-encoded flat-word keys and caller-hashed open addressing the
//! view layer uses (ROADMAP "hash-once" contract), pushed *inside* the ring:
//!
//! * a key is hashed exactly once, when it is constructed (lift, join
//!   merge, or rebuild); every upsert, lookup and table-to-table copy
//!   reuses that hash ([`RawTable::iter_hashed`] carries stored hashes, so
//!   `add_assign` never re-hashes the right-hand side);
//! * string categories are dictionary ids (interned through the engine's
//!   [`crate::RingCtx`] at lift time), so hashing and equality are word
//!   compares with no `Arc` traffic;
//! * exact cancellation prunes the key immediately (tombstone), keeping
//!   [`Ring::is_zero`] exact as the in-place contract requires.
//!
//! `RelValue` is used in two places:
//!
//! * on its own, it is the ring of the paper's *factorized conjunctive query
//!   evaluation*: maintaining the query with `RelValue` payloads maintains a
//!   (listing of the) join result,
//! * as the scalar type of the generalized cofactor ring
//!   ([`crate::GenCofactor`]) that handles categorical attributes and the
//!   mutual-information matrix.
//!
//! The boxed-`Value` representation this module replaces survives as
//! [`crate::BoxedRelValue`], the reference implementation for differential
//! tests and the `RING-*` ablation benchmarks.

use crate::relkey::RelKey;
use crate::ring::{approx_f64, ApproxEq, Ring};
use fivm_common::{Dict, EncodedValue, Probe, RawTable, Value, VarId};

/// One decoded relation entry: `(attr, Value)` pairs plus the weight — the
/// output-boundary form of a [`RelValue`] entry.
pub type DecodedRelEntry = (Box<[(u32, Value)]>, f64);

/// Largest interior-table footprint, in **bytes** of table allocation
/// ([`RawTable::allocated_bytes`]), that [`Ring::reset_zero`] keeps alive
/// for buffer reuse; anything bigger is released.
///
/// The threshold is deliberately a byte budget, not a slot or entry count:
/// the point of the pool hygiene is bounding how much *memory* a recycled
/// payload can drag into a tiny delta (where iteration and cloning pay for
/// the retained capacity), and bytes are the unit that survives layout
/// changes.  8 KiB keeps every table up to 128 slots of the current
/// 48-byte `RelKey`/`f64` slot layout — roughly the "up to ~96 live
/// entries" regime the old entry-count intent described, without the old
/// bug of comparing a *slot* count against an *entry* budget (which
/// dropped buffers from ~49 live entries on, because 64 entries already
/// need 128 slots).  The keep/release boundary is pinned by
/// `reset_zero_pools_by_bytes` below.
const POOL_KEEP_BYTES: usize = 8 * 1024;

/// A relation-valued ring element with a hash-once encoded interior.
#[derive(Debug, Default)]
pub struct RelValue {
    entries: RawTable<RelKey, f64>,
}

impl Clone for RelValue {
    /// Clones are **right-sized**: the copy is rebuilt at the capacity its
    /// entries need (from their stored hashes — nothing is re-hashed), so
    /// materialized copies — view payloads cloned from scratch deltas,
    /// result snapshots — never inherit the working capacity of the buffer
    /// they were accumulated in.
    fn clone(&self) -> Self {
        let mut entries = if self.entries.is_empty() {
            RawTable::new()
        } else {
            RawTable::with_capacity(self.entries.len())
        };
        for (h, k, &w) in self.entries.iter_hashed() {
            entries.insert(h, k.clone(), w);
        }
        RelValue { entries }
    }
}

impl RelValue {
    /// The empty relation (ring zero).  Allocation-free: the table does not
    /// allocate until the first entry is inserted.
    pub fn empty() -> Self {
        RelValue::default()
    }

    /// The relation `{() -> w}` over the empty schema.  `scalar(0.0)` is the
    /// zero element and performs no allocation.
    pub fn scalar(w: f64) -> Self {
        let mut out = RelValue::empty();
        if w != 0.0 {
            let key = RelKey::empty();
            out.entries.insert(key.fx_hash(), key, w);
        }
        out
    }

    /// The indicator relation `{(attr = value) -> 1}` used to one-hot encode
    /// a categorical value.
    pub fn indicator(attr: VarId, value: EncodedValue) -> Self {
        Self::weighted(attr, value, 1.0)
    }

    /// The singleton relation `{(attr = value) -> w}`.  `weighted(.., 0.0)`
    /// is the zero element and performs no allocation.
    pub fn weighted(attr: VarId, value: EncodedValue, w: f64) -> Self {
        let mut out = RelValue::empty();
        if w != 0.0 {
            let key = RelKey::singleton(attr as u32, value);
            out.entries.insert(key.fx_hash(), key, w);
        }
        out
    }

    /// Builds a relation from `(pairs, weight)` entries; pairs need not be
    /// sorted.
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Vec<(u32, EncodedValue)>, f64)>,
    {
        let mut out = RelValue::empty();
        for (mut pairs, w) in entries {
            out.add_entry(&RelKey::from_pairs(&mut pairs), w);
        }
        out
    }

    /// Number of tuples with non-zero weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of the empty tuple (the "scalar part"), or 0.
    pub fn scalar_part(&self) -> f64 {
        self.get_key(&RelKey::empty())
    }

    /// Removes the empty-tuple entry and returns its weight (0 if absent).
    /// This is the *split* step of the generalized-cofactor decode path:
    /// [`crate::GenCofactorElem`] stores continuous (empty-key) mass in
    /// dense scalar fields, with the invariant that its interior relations
    /// never contain the empty key.
    pub fn take_scalar_part(&mut self) -> f64 {
        let key = RelKey::empty();
        match self.entries.find_idx(key.fx_hash(), |k, _| *k == key) {
            Some(idx) => {
                let w = *self.entries.value_at_mut(idx);
                self.entries.remove_at(idx);
                w
            }
            None => 0.0,
        }
    }

    /// Weight of a specific key, or 0 if absent.
    pub fn get_key(&self, key: &RelKey) -> f64 {
        self.entries
            .get(key.fx_hash(), key)
            .copied()
            .unwrap_or(0.0)
    }

    /// Weight of the key given as (unsorted) encoded pairs, or 0 if absent.
    pub fn get(&self, pairs: &[(u32, EncodedValue)]) -> f64 {
        let mut pairs = pairs.to_vec();
        self.get_key(&RelKey::from_pairs(&mut pairs))
    }

    /// Weight of a `Value`-level key (output boundary: encodes through the
    /// dictionary without interning; an unseen string means the key cannot
    /// be stored, so its weight is 0).
    pub fn get_values(&self, dict: &Dict, pairs: &[(u32, Value)]) -> f64 {
        let mut encoded = Vec::with_capacity(pairs.len());
        for (attr, v) in pairs {
            match dict.try_encode_value(v) {
                Some(ev) => encoded.push((*attr, ev)),
                None => return 0.0,
            }
        }
        self.get_key(&RelKey::from_pairs(&mut encoded))
    }

    /// Iterates over `(key, weight)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&RelKey, f64)> + '_ {
        self.entries.iter().map(|(k, &w)| (k, w))
    }

    /// Iterates `(stored hash, key, weight)` entries.  The snapshot encoder
    /// (`fivm_ring::persist`) writes the *stored* hashes next to the keys,
    /// so a restore re-buckets from them without hashing any key.
    pub fn iter_hashed(&self) -> impl Iterator<Item = (u64, &RelKey, f64)> + '_ {
        self.entries.iter_hashed().map(|(h, k, &w)| (h, k, w))
    }

    /// Rebuilds a relation from `(stored hash, key, weight)` entries with
    /// distinct keys — the snapshot-restore constructor.  Like [`Clone`],
    /// the interior table is right-sized up front ([`RawTable::with_capacity`]
    /// for `len` entries), so inserting the entries performs **zero** growth
    /// rehashes and the restored value reports `table_rehashes() == 0`,
    /// keeping the ring half of the "rehashes pinned to 0" contract intact
    /// across a restart.
    pub fn from_hashed_entries<I>(len: usize, entries: I) -> Self
    where
        I: IntoIterator<Item = (u64, RelKey, f64)>,
    {
        let mut table = if len == 0 {
            RawTable::new()
        } else {
            RawTable::with_capacity(len)
        };
        for (h, k, w) in entries {
            if w != 0.0 {
                table.insert(h, k, w);
            }
        }
        RelValue { entries: table }
    }

    /// Sum of all weights (the count aggregate if weights are counts).
    pub fn total(&self) -> f64 {
        self.iter().map(|(_, w)| w).sum()
    }

    /// Decodes every entry into owned `(attr, Value)` pairs, sorted by key —
    /// the canonical output-boundary listing (stable across dictionaries,
    /// so it is also how cross-engine results are compared).
    pub fn decode_entries(&self, dict: &Dict) -> Vec<DecodedRelEntry> {
        let mut out: Vec<DecodedRelEntry> =
            self.iter().map(|(k, w)| (k.decode(dict), w)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Rehash (growth/compaction) events of the interior table; the ring
    /// half of the steady-state "rehashes pinned to 0" contract.
    pub fn table_rehashes(&self) -> u64 {
        self.entries.rehashes()
    }

    /// Heap bytes of the interior table's own arrays (control bytes,
    /// stored hashes, `(RelKey, f64)` slots).  Boxes spilled by wide
    /// (≥ 3-pair) keys are *not* counted — they are owned by the keys, and
    /// every key of the COVAR/MI workloads is slot-inline (see
    /// `crate::relkey`).  This is the `RelValue` leaf of the engine-wide
    /// byte rollup (`Ring::payload_bytes` → `MaterializedView::table_bytes`
    /// → `EngineStats::table_bytes`).
    pub fn allocated_bytes(&self) -> usize {
        self.entries.allocated_bytes()
    }

    /// Slot capacity of the interior table (introspection for the memory
    /// ablation and the pool tests; the byte rollup is
    /// [`RelValue::allocated_bytes`]).
    pub fn table_capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Modeled bytes of the **pre-diet** `Vec<Option<(u64, RelKey, f64)>>`
    /// slot layout for a table with this one's construction history: one
    /// control byte plus one `Option` slot per slot, under the old 8-slot
    /// minimum capacity (the growth policy is otherwise unchanged, so the
    /// old capacity is `max(capacity, 8)`).  The per-slot cost comes from
    /// `size_of`, so the model tracks the compiler's real `Option` layout.
    ///
    /// This is the *single* comparator behind both the `MEM-ring-option`
    /// ablation records and the bytes/entry regression gate
    /// (`crates/ring/tests/mem_gate.rs`) — one model, so the published
    /// numbers and the gate cannot silently diverge.
    pub fn option_layout_bytes(&self) -> usize {
        if self.entries.capacity() == 0 {
            return 0;
        }
        self.entries.capacity().max(8)
            * (1 + std::mem::size_of::<Option<(u64, RelKey, f64)>>())
    }

    /// The shared hit path of the upserts: accumulates into an existing
    /// entry (pruning on exact cancellation) and reports whether the key
    /// was found.  Uses [`RawTable::find_idx`], which never reserves:
    /// accumulating into existing keys — the steady-state regime — must
    /// not trigger table growth even when the table sits at the
    /// load-factor boundary ([`RawTable::probe`] reserves up front,
    /// because its vacant slot must stay valid).
    #[inline]
    fn upsert_hit(&mut self, hash: u64, key: &RelKey, w: f64) -> bool {
        let Some(idx) = self.entries.find_idx(hash, |k, _| k == key) else {
            return false;
        };
        let slot = self.entries.value_at_mut(idx);
        *slot += w;
        if *slot == 0.0 {
            self.entries.remove_at(idx);
        }
        true
    }

    /// Upserts `w` under a borrowed key whose hash is already computed
    /// (cloning the key only on fresh insert).
    #[inline]
    fn upsert(&mut self, hash: u64, key: &RelKey, w: f64) {
        // xlint:allow(probe-upsert): the find_idx hit path ran first — it lives in `upsert_hit`, one call up, outside this function's lexical body; the reserving probe only runs on a confirmed miss.
        if w == 0.0 || self.upsert_hit(hash, key, w) {
            return;
        }
        match self.entries.probe(hash, |k, _| k == key) {
            Probe::Vacant(idx) => self.entries.occupy(idx, hash, key.clone(), w),
            Probe::Found(_) => unreachable!("key was just absent"),
        }
    }

    /// Upserts `w` under an owned key (no clone on the fresh-insert path).
    #[inline]
    fn upsert_owned(&mut self, hash: u64, key: RelKey, w: f64) {
        // xlint:allow(probe-upsert): same discipline as `upsert` — the find_idx hit path is `upsert_hit`, called first; the probe runs only on a confirmed miss.
        if w == 0.0 || self.upsert_hit(hash, &key, w) {
            return;
        }
        match self.entries.probe(hash, |k, _| *k == key) {
            Probe::Vacant(idx) => self.entries.occupy(idx, hash, key, w),
            Probe::Found(_) => unreachable!("key was just absent"),
        }
    }

    /// Accumulates `w` under `key`, hashing the key once.
    pub fn add_entry(&mut self, key: &RelKey, w: f64) {
        self.upsert(key.fx_hash(), key, w);
    }

    /// Accumulates `w` under a key whose hash the caller already computed —
    /// the hash-once primitive behind the sparse-lift accumulators, which
    /// touch several component relations with one key.
    pub fn add_entry_prehashed(&mut self, hash: u64, key: &RelKey, w: f64) {
        debug_assert_eq!(hash, key.fx_hash(), "prehashed key/hash mismatch");
        self.upsert(hash, key, w);
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `self += k * other`, reusing `other`'s stored hashes (no key is
    /// re-hashed) and pruning exactly cancelled keys so [`Ring::is_zero`]
    /// stays exact.
    pub fn add_scaled(&mut self, other: &RelValue, k: f64) {
        if k == 0.0 {
            return;
        }
        for (hash, key, &w) in other.entries.iter_hashed() {
            self.upsert(hash, key, k * w);
        }
    }

    /// `self += k * (a ⋈ b)` — the fused multiply-add on the relation
    /// ring, accumulating the weighted join directly into `self` without
    /// materializing the product relation.  Merged keys are gathered by
    /// word copies and hashed exactly once each.
    pub fn add_product_scaled(&mut self, a: &RelValue, b: &RelValue, k: f64) {
        if k == 0.0 || a.is_empty() || b.is_empty() {
            return;
        }
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        for (ka, wa) in small.iter() {
            for (kb, wb) in large.iter() {
                if let Some(key) = ka.join(kb) {
                    self.upsert_owned(key.fx_hash(), key, k * wa * wb);
                }
            }
        }
    }

    /// `self += k * (acc ⋈ {attr = value})` — the singleton-lift fused
    /// accumulate behind categorical lifts and the relational listing lift.
    /// Joining with a singleton either extends a key by one pair (gathered
    /// copy-only for inline-sized keys) or filters on an already-bound
    /// attribute; nothing is materialized.
    pub fn fma_indicator(&mut self, acc: &RelValue, attr: u32, value: EncodedValue, k: f64) {
        if k == 0.0 {
            return;
        }
        for (hash, key, &w) in acc.entries.iter_hashed() {
            match key.get(attr) {
                // Attribute already bound: the join keeps or drops the key
                // unchanged — its stored hash is reused, nothing re-hashes.
                Some(bound) => {
                    if bound == value {
                        self.upsert(hash, key, k * w);
                    }
                }
                None => {
                    let merged = key
                        .join(&RelKey::singleton(attr, value))
                        .expect("disjoint attributes always join");
                    self.upsert_owned(merged.fx_hash(), merged, k * w);
                }
            }
        }
    }

    /// Batch form of the singleton-lift accumulate for runs of
    /// **scalar-weight** accumulators: `self += Σ_i w_i · {attr = ev_i}` —
    /// one prehashed upsert per row, with the per-row lift dispatch and
    /// accumulator-table walk of [`RelValue::fma_indicator`] hoisted out of
    /// the loop.  Rows are applied in slice order, so per-key accumulation
    /// order matches the equivalent per-row sequence exactly.
    pub fn fma_indicator_weighted(&mut self, attr: u32, evs: &[EncodedValue], ws: &[f64]) {
        debug_assert_eq!(evs.len(), ws.len());
        for (&ev, &w) in evs.iter().zip(ws) {
            if w != 0.0 {
                let key = RelKey::singleton(attr, ev);
                self.upsert_owned(key.fx_hash(), key, w);
            }
        }
    }

    pub(crate) fn map_weights(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut entries = RawTable::with_capacity(self.len());
        for (hash, k, &w) in self.entries.iter_hashed() {
            let nw = f(w);
            if nw != 0.0 {
                entries.insert(hash, k.clone(), nw);
            }
        }
        RelValue { entries }
    }

    /// Re-encodes every key from `src`'s dictionary into `dst`'s — the only
    /// sanctioned way to move a relation value between engines (string ids
    /// are dictionary-local; see the ring-key contract in ROADMAP.md).
    pub fn rekey_dicts(&self, src: &Dict, dst: &mut Dict) -> RelValue {
        let mut entries = RawTable::with_capacity(self.len());
        for (hash, k, &w) in self.entries.iter_hashed() {
            let nk = k.rekey(src, dst);
            // Int/double-only keys keep their words, hence their hash.
            let nh = if &nk == k { hash } else { nk.fx_hash() };
            entries.insert(nh, nk, w);
        }
        RelValue { entries }
    }
}

impl PartialEq for RelValue {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .entries
                .iter_hashed()
                .all(|(h, k, w)| other.entries.get(h, k) == Some(w))
    }
}

impl Ring for RelValue {
    fn zero() -> Self {
        RelValue::empty()
    }

    fn one() -> Self {
        RelValue::scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    fn add_assign(&mut self, rhs: &Self) {
        self.add_scaled(rhs, 1.0);
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = RelValue::empty();
        out.add_product_scaled(self, rhs, 1.0);
        out
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        out.entries.clear();
        out.add_product_scaled(self, rhs, 1.0);
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        self.add_product_scaled(a, b, scale as f64);
    }

    fn neg(&self) -> Self {
        self.map_weights(|w| -w)
    }

    fn scale_int(&self, k: i64) -> Self {
        if k == 0 {
            return RelValue::empty();
        }
        self.map_weights(|w| w * k as f64)
    }

    fn reset_zero(&mut self) {
        // Pool hygiene: small tables are kept for reuse, but a buffer that
        // grew large (a root-level delta) is dropped — a recycled payload
        // may serve a tiny delta next, and iterating or cloning it must
        // not drag a root-sized capacity along.  The threshold is a byte
        // budget on the table allocation (see [`POOL_KEEP_BYTES`]).
        if self.entries.allocated_bytes() > POOL_KEEP_BYTES {
            self.entries = RawTable::new();
        } else {
            self.entries.clear();
        }
    }

    fn needs_rekey() -> bool {
        true
    }

    fn rekey(&self, src: &Dict, dst: &mut Dict) -> Self {
        self.rekey_dicts(src, dst)
    }

    fn payload_rehashes(&self) -> u64 {
        self.table_rehashes()
    }

    fn payload_bytes(&self) -> usize {
        self.allocated_bytes()
    }

    fn scalar_weight(&self) -> Option<f64> {
        // Scalar shapes: the empty relation (zero) and the single
        // empty-tuple entry `{() -> w}`.  Anything carrying a bound
        // attribute is more than a count and must take the per-row path.
        match self.len() {
            0 => Some(0.0),
            1 => {
                let (k, w) = self.iter().next().expect("len checked");
                (*k == RelKey::empty()).then_some(w)
            }
            _ => None,
        }
    }
}

impl ApproxEq for RelValue {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        // Every key of either side must match approximately.
        self.entries
            .iter_hashed()
            .all(|(h, k, &w)| approx_f64(w, other.entries.get(h, k).copied().unwrap_or(0.0), tol))
            && other
                .entries
                .iter_hashed()
                .all(|(h, k, &w)| approx_f64(w, self.entries.get(h, k).copied().unwrap_or(0.0), tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;
    use crate::ctx::RingCtx;

    fn ev(x: i64) -> EncodedValue {
        EncodedValue::int(x)
    }

    fn key(parts: &[(u32, i64)]) -> Vec<(u32, EncodedValue)> {
        parts.iter().map(|(a, v)| (*a, ev(*v))).collect()
    }

    #[test]
    fn scalar_and_indicator_construction() {
        let s = RelValue::scalar(3.0);
        assert_eq!(s.scalar_part(), 3.0);
        assert_eq!(s.len(), 1);
        assert!(RelValue::scalar(0.0).is_empty());
        assert!(RelValue::weighted(0, ev(1), 0.0).is_empty());

        let ctx = RingCtx::new();
        let red = ctx.encode_value(&Value::str("red"));
        let blue = ctx.encode_value(&Value::str("blue"));
        let ind = RelValue::indicator(2, red);
        assert_eq!(ind.get(&[(2, red)]), 1.0);
        assert_eq!(ind.get(&[(2, blue)]), 0.0);
        assert_eq!(ind.total(), 1.0);
        // The Value-level probe agrees and refuses to intern.
        ctx.with_dict(|d| {
            assert_eq!(ind.get_values(d, &[(2, Value::str("red"))]), 1.0);
            assert_eq!(ind.get_values(d, &[(2, Value::str("unseen"))]), 0.0);
        });
    }

    #[test]
    fn addition_is_union_with_summed_weights() {
        let a = RelValue::indicator(0, ev(1));
        let b = RelValue::indicator(0, ev(1));
        let c = RelValue::indicator(0, ev(2));
        let sum = a.add(&b).add(&c);
        assert_eq!(sum.get(&[(0, ev(1))]), 2.0);
        assert_eq!(sum.get(&[(0, ev(2))]), 1.0);
        assert_eq!(sum.len(), 2);
        assert_eq!(sum.total(), 3.0);
    }

    #[test]
    fn deletion_cancels_and_removes_keys() {
        let a = RelValue::indicator(0, ev(1));
        let cancelled = a.add(&a.neg());
        assert!(cancelled.is_zero());
        assert_eq!(cancelled.len(), 0);
        assert!(a.scale_int(0).is_zero());
        assert_eq!(a.scale_int(-2).get(&[(0, ev(1))]), -2.0);
    }

    #[test]
    fn multiplication_is_join_on_shared_attributes() {
        // {(A=1) -> 2} * {(B=5) -> 3} = {(A=1, B=5) -> 6}
        let a = RelValue::weighted(0, ev(1), 2.0);
        let b = RelValue::weighted(1, ev(5), 3.0);
        let ab = a.mul(&b);
        assert_eq!(ab.get(&key(&[(0, 1), (1, 5)])), 6.0);

        // Shared attribute must match: {(A=1)} * {(A=2)} = empty.
        let c = RelValue::indicator(0, ev(2));
        assert!(a.mul(&c).is_zero());
        // Matching shared attribute multiplies weights.
        let a2 = RelValue::weighted(0, ev(1), 5.0);
        assert_eq!(a.mul(&a2).get(&key(&[(0, 1)])), 10.0);
    }

    #[test]
    fn multiplication_by_scalar_scales_weights() {
        let ctx = RingCtx::new();
        let x = ctx.encode_value(&Value::str("x"));
        let a = RelValue::indicator(3, x);
        let s = RelValue::scalar(4.0);
        let out = a.mul(&s);
        assert_eq!(out.get(&[(3, x)]), 4.0);
        // One is the multiplicative identity.
        assert_eq!(a.mul(&RelValue::one()), a);
        assert!(a.mul(&RelValue::zero()).is_zero());
    }

    #[test]
    fn join_orders_attributes_canonically() {
        let a = RelValue::indicator(5, ev(9));
        let b = RelValue::indicator(1, ev(4));
        let ab = a.mul(&b);
        let ba = b.mul(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(&key(&[(1, 4), (5, 9)])), 1.0);
    }

    #[test]
    fn from_entries_normalizes_key_order() {
        let r = RelValue::from_entries(vec![
            (key(&[(3, 7), (1, 2)]), 1.5),
            (key(&[(1, 2), (3, 7)]), 0.5),
        ]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&key(&[(1, 2), (3, 7)])), 2.0);
    }

    #[test]
    fn fma_indicator_matches_materialized_join() {
        let acc = RelValue::weighted(0, ev(1), 2.0)
            .add(&RelValue::weighted(1, ev(7), 3.0))
            .add(&RelValue::scalar(0.5));
        for (attr, v) in [(1u32, ev(7)), (1, ev(8)), (2, ev(4))] {
            let mut fused = RelValue::empty();
            fused.fma_indicator(&acc, attr, v, 2.0);
            let expected = acc
                .mul(&RelValue::indicator(attr as VarId, v))
                .scale_int(2);
            assert_eq!(fused, expected, "attr={attr}");
        }
        // k = 0 is a no-op.
        let mut noop = acc.clone();
        noop.fma_indicator(&acc, 0, ev(1), 0.0);
        assert_eq!(noop, acc);
    }

    #[test]
    fn decode_entries_is_sorted_and_dictionary_stable() {
        let ctx = RingCtx::new();
        let red = ctx.encode_value(&Value::str("red"));
        let r = RelValue::weighted(1, red, 2.0).add(&RelValue::weighted(0, ev(5), 1.0));
        let entries = ctx.with_dict(|d| r.decode_entries(d));
        assert_eq!(entries.len(), 2);
        assert_eq!(&*entries[0].0, &[(0, Value::int(5))]);
        assert_eq!(&*entries[1].0, &[(1, Value::str("red"))]);
        // Rekey into a fresh dictionary: encoded form changes, decoded
        // listing does not, weights are bit-identical.
        let other = RingCtx::new();
        other.with_dict_mut(|dst| {
            dst.intern("shift");
            let moved = ctx.with_dict(|src| r.rekey_dicts(src, dst));
            assert_eq!(moved.decode_entries(dst), entries);
        });
    }

    #[test]
    fn ring_axioms_hold() {
        let ctx = RingCtx::new();
        let z = ctx.encode_value(&Value::str("z"));
        let a = RelValue::indicator(0, ev(1)).add(&RelValue::weighted(1, ev(2), 3.0));
        let b = RelValue::scalar(2.0).add(&RelValue::indicator(0, ev(1)));
        let c = RelValue::weighted(2, z, -1.5);
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    /// A relation with `n` distinct integer keys under attribute 0.
    fn with_keys(n: usize) -> RelValue {
        let mut r = RelValue::empty();
        for i in 0..n {
            r.add_entry(&RelKey::singleton(0, ev(i as i64)), 1.0);
        }
        r
    }

    use crate::relkey::RelKey;

    #[test]
    fn reset_zero_pools_by_bytes() {
        // The keep/release boundary of the delta-payload pool is a *byte*
        // budget on the interior table, not a slot or entry count.  Grow a
        // relation until its table allocation first exceeds the budget:
        // one entry fewer must be kept (buffers reused), the grown one
        // must be released.
        let mut n = 1;
        while with_keys(n).allocated_bytes() <= POOL_KEEP_BYTES {
            n += 1;
            assert!(n < 1_000_000, "pool budget never exceeded");
        }
        let mut over = with_keys(n);
        let mut under = with_keys(n - 1);
        assert!(over.allocated_bytes() > POOL_KEEP_BYTES);
        assert!(under.allocated_bytes() <= POOL_KEEP_BYTES);

        under.reset_zero();
        assert!(under.is_zero(), "reset_zero must leave an exact zero");
        assert!(
            under.allocated_bytes() > 0 && under.allocated_bytes() <= POOL_KEEP_BYTES,
            "an in-budget buffer must be kept for reuse"
        );

        over.reset_zero();
        assert!(over.is_zero());
        assert_eq!(
            over.allocated_bytes(),
            0,
            "an over-budget buffer must be released"
        );

        // Regression for the old slot-vs-entry confusion: a relation of
        // ~49 entries (128 slots under the 3/4 load factor) sits far below
        // the byte budget and must be pooled, not dropped.
        let mut mid = with_keys(49);
        assert!(mid.table_capacity() >= 128 - 64, "test premise: table grew");
        let bytes = mid.allocated_bytes();
        assert!(bytes <= POOL_KEEP_BYTES, "49 entries are {bytes} bytes");
        mid.reset_zero();
        assert!(mid.allocated_bytes() > 0, "49-entry buffer must be kept");
    }

    #[test]
    fn allocated_bytes_reflects_interior_growth() {
        let empty = RelValue::empty();
        assert_eq!(empty.allocated_bytes(), 0);
        let one = RelValue::scalar(1.0);
        let small = one.allocated_bytes();
        assert!(small > 0);
        let many = with_keys(1000);
        assert!(many.allocated_bytes() > small * 100);
        // Right-sized clones never exceed the source's footprint.
        assert!(many.clone().allocated_bytes() <= many.allocated_bytes());
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = RelValue::weighted(0, ev(1), 1.0);
        let b = RelValue::weighted(0, ev(1), 1.0 + 1e-13);
        assert!(a.approx_eq(&b, 1e-9));
        let c = RelValue::weighted(0, ev(2), 1.0);
        assert!(!a.approx_eq(&c, 1e-9));
    }
}
