//! The relation ring: relations as ring values.
//!
//! A [`RelValue`] is a (small) relation mapping tuples of categorical values
//! to real weights.  Addition is union with summed weights; multiplication is
//! natural join with multiplied weights; the empty relation is `0`; the
//! relation containing only the empty tuple with weight 1 is `1`.
//!
//! Keys are sorted lists of `(attribute id, value)` pairs so the join is
//! schema-aware without threading schemas through ring operations: shared
//! attributes must match, the remaining attributes are concatenated in
//! attribute order.
//!
//! `RelValue` is used in two places:
//!
//! * on its own, it is the ring of the paper's *factorized conjunctive query
//!   evaluation*: maintaining the query with `RelValue` payloads maintains a
//!   (listing of the) join result,
//! * as the scalar type of the generalized cofactor ring
//!   ([`crate::GenCofactor`]) that handles categorical attributes and the
//!   mutual-information matrix.

use crate::ring::{approx_f64, ApproxEq, Ring};
use fivm_common::{FxHashMap, Value, VarId};

/// The key of one entry: categorical assignments, sorted by attribute id.
pub type CatKey = Box<[(u32, Value)]>;

/// A relation-valued ring element.
#[derive(Clone, Debug, Default)]
pub struct RelValue {
    entries: FxHashMap<CatKey, f64>,
}

impl RelValue {
    /// The empty relation (ring zero).
    pub fn empty() -> Self {
        RelValue::default()
    }

    /// The relation `{() -> w}` over the empty schema.
    pub fn scalar(w: f64) -> Self {
        let mut entries = FxHashMap::default();
        if w != 0.0 {
            entries.insert(Vec::new().into_boxed_slice(), w);
        }
        RelValue { entries }
    }

    /// The indicator relation `{(attr = value) -> 1}` used to one-hot encode a
    /// categorical value.
    pub fn indicator(attr: VarId, value: Value) -> Self {
        Self::weighted(attr, value, 1.0)
    }

    /// The singleton relation `{(attr = value) -> w}`.
    pub fn weighted(attr: VarId, value: Value, w: f64) -> Self {
        let mut entries = FxHashMap::default();
        if w != 0.0 {
            entries.insert(vec![(attr as u32, value)].into_boxed_slice(), w);
        }
        RelValue { entries }
    }

    /// Builds a relation from `(key, weight)` pairs; keys need not be sorted.
    pub fn from_entries<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Vec<(u32, Value)>, f64)>,
    {
        let mut out = RelValue::empty();
        for (mut key, w) in pairs {
            key.sort_by_key(|(a, _)| *a);
            out.add_entry(key.into_boxed_slice(), w);
        }
        out
    }

    /// Number of tuples with non-zero weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of the empty tuple (the "scalar part"), or 0.
    pub fn scalar_part(&self) -> f64 {
        self.get(&[])
    }

    /// Weight of a specific key, or 0 if absent.  The key need not be sorted.
    pub fn get(&self, key: &[(u32, Value)]) -> f64 {
        let mut k: Vec<(u32, Value)> = key.to_vec();
        k.sort_by_key(|(a, _)| *a);
        self.entries.get(k.as_slice()).copied().unwrap_or(0.0)
    }

    /// Iterates over `(key, weight)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&CatKey, f64)> + '_ {
        self.entries.iter().map(|(k, &w)| (k, w))
    }

    /// Sum of all weights (the count aggregate if weights are counts).
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    fn add_entry(&mut self, key: CatKey, w: f64) {
        if w == 0.0 {
            return;
        }
        let slot = self.entries.entry(key).or_insert(0.0);
        *slot += w;
        if *slot == 0.0 {
            // Exact cancellation (e.g. insert followed by delete): drop key.
            let key_to_remove: Vec<CatKey> = self
                .entries
                .iter()
                .filter(|(_, &v)| v == 0.0)
                .map(|(k, _)| k.clone())
                .collect();
            for k in key_to_remove {
                self.entries.remove(&k);
            }
        }
    }

    /// Joins two keys: shared attributes must match, the union is returned in
    /// attribute order.  Returns `None` if the shared attributes disagree.
    fn join_keys(a: &CatKey, b: &CatKey) -> Option<CatKey> {
        let mut out: Vec<(u32, Value)> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(out.into_boxed_slice())
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `self += k * other`, pruning exactly cancelled keys so
    /// [`Ring::is_zero`] stays exact.
    pub fn add_scaled(&mut self, other: &RelValue, k: f64) {
        if k == 0.0 {
            return;
        }
        for (key, &w) in &other.entries {
            match self.entries.get_mut(key) {
                Some(slot) => *slot += k * w,
                None => {
                    self.entries.insert(key.clone(), k * w);
                }
            }
        }
        self.entries.retain(|_, w| *w != 0.0);
    }

    /// `self += k * (a ⋈ b)` — the fused multiply-add on the relation
    /// ring, accumulating the weighted join directly into `self` without
    /// materializing the product relation.
    pub fn add_product_scaled(&mut self, a: &RelValue, b: &RelValue, k: f64) {
        if k == 0.0 || a.is_empty() || b.is_empty() {
            return;
        }
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        for (ka, &wa) in &small.entries {
            for (kb, &wb) in &large.entries {
                if let Some(key) = Self::join_keys(ka, kb) {
                    match self.entries.get_mut(&key) {
                        Some(slot) => *slot += k * wa * wb,
                        None => {
                            self.entries.insert(key, k * wa * wb);
                        }
                    }
                }
            }
        }
        self.entries.retain(|_, w| *w != 0.0);
    }

    fn map_weights(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut entries = FxHashMap::default();
        for (k, &w) in &self.entries {
            let nw = f(w);
            if nw != 0.0 {
                entries.insert(k.clone(), nw);
            }
        }
        RelValue { entries }
    }
}

impl PartialEq for RelValue {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Ring for RelValue {
    fn zero() -> Self {
        RelValue::empty()
    }

    fn one() -> Self {
        RelValue::scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    fn add_assign(&mut self, rhs: &Self) {
        for (k, &w) in &rhs.entries {
            let slot = self.entries.entry(k.clone()).or_insert(0.0);
            *slot += w;
        }
        self.entries.retain(|_, w| *w != 0.0);
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Iterate over the smaller operand on the outside.
        let (small, large) = if self.len() <= rhs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = RelValue::empty();
        for (ka, &wa) in &small.entries {
            for (kb, &wb) in &large.entries {
                if let Some(key) = Self::join_keys(ka, kb) {
                    let slot = out.entries.entry(key).or_insert(0.0);
                    *slot += wa * wb;
                }
            }
        }
        out.entries.retain(|_, w| *w != 0.0);
        out
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        out.entries.clear();
        out.add_product_scaled(self, rhs, 1.0);
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        self.add_product_scaled(a, b, scale as f64);
    }

    fn neg(&self) -> Self {
        self.map_weights(|w| -w)
    }

    fn scale_int(&self, k: i64) -> Self {
        if k == 0 {
            return RelValue::empty();
        }
        self.map_weights(|w| w * k as f64)
    }
}

impl ApproxEq for RelValue {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        // Every key of either side must match approximately.
        for (k, &w) in &self.entries {
            if !approx_f64(w, other.entries.get(k).copied().unwrap_or(0.0), tol) {
                return false;
            }
        }
        for (k, &w) in &other.entries {
            if !approx_f64(w, self.entries.get(k).copied().unwrap_or(0.0), tol) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms;

    fn key(parts: &[(u32, i64)]) -> Vec<(u32, Value)> {
        parts.iter().map(|(a, v)| (*a, Value::int(*v))).collect()
    }

    #[test]
    fn scalar_and_indicator_construction() {
        let s = RelValue::scalar(3.0);
        assert_eq!(s.scalar_part(), 3.0);
        assert_eq!(s.len(), 1);
        assert!(RelValue::scalar(0.0).is_empty());

        let ind = RelValue::indicator(2, Value::str("red"));
        assert_eq!(ind.get(&[(2, Value::str("red"))]), 1.0);
        assert_eq!(ind.get(&[(2, Value::str("blue"))]), 0.0);
        assert_eq!(ind.total(), 1.0);
    }

    #[test]
    fn addition_is_union_with_summed_weights() {
        let a = RelValue::indicator(0, Value::int(1));
        let b = RelValue::indicator(0, Value::int(1));
        let c = RelValue::indicator(0, Value::int(2));
        let sum = a.add(&b).add(&c);
        assert_eq!(sum.get(&[(0, Value::int(1))]), 2.0);
        assert_eq!(sum.get(&[(0, Value::int(2))]), 1.0);
        assert_eq!(sum.len(), 2);
        assert_eq!(sum.total(), 3.0);
    }

    #[test]
    fn deletion_cancels_and_removes_keys() {
        let a = RelValue::indicator(0, Value::int(1));
        let cancelled = a.add(&a.neg());
        assert!(cancelled.is_zero());
        assert_eq!(cancelled.len(), 0);
        assert!(a.scale_int(0).is_zero());
        assert_eq!(a.scale_int(-2).get(&[(0, Value::int(1))]), -2.0);
    }

    #[test]
    fn multiplication_is_join_on_shared_attributes() {
        // {(A=1) -> 2} * {(B=5) -> 3} = {(A=1, B=5) -> 6}
        let a = RelValue::weighted(0, Value::int(1), 2.0);
        let b = RelValue::weighted(1, Value::int(5), 3.0);
        let ab = a.mul(&b);
        assert_eq!(ab.get(&key(&[(0, 1), (1, 5)])), 6.0);

        // Shared attribute must match: {(A=1)} * {(A=2)} = empty.
        let c = RelValue::indicator(0, Value::int(2));
        assert!(a.mul(&c).is_zero());
        // Matching shared attribute multiplies weights.
        let a2 = RelValue::weighted(0, Value::int(1), 5.0);
        assert_eq!(a.mul(&a2).get(&key(&[(0, 1)])), 10.0);
    }

    #[test]
    fn multiplication_by_scalar_scales_weights() {
        let a = RelValue::indicator(3, Value::str("x"));
        let s = RelValue::scalar(4.0);
        let out = a.mul(&s);
        assert_eq!(out.get(&[(3, Value::str("x"))]), 4.0);
        // One is the multiplicative identity.
        assert_eq!(a.mul(&RelValue::one()), a);
        assert!(a.mul(&RelValue::zero()).is_zero());
    }

    #[test]
    fn join_orders_attributes_canonically() {
        let a = RelValue::indicator(5, Value::int(9));
        let b = RelValue::indicator(1, Value::int(4));
        let ab = a.mul(&b);
        let ba = b.mul(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(&key(&[(1, 4), (5, 9)])), 1.0);
    }

    #[test]
    fn from_entries_normalizes_key_order() {
        let r = RelValue::from_entries(vec![
            (key(&[(3, 7), (1, 2)]), 1.5),
            (key(&[(1, 2), (3, 7)]), 0.5),
        ]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&key(&[(1, 2), (3, 7)])), 2.0);
    }

    #[test]
    fn ring_axioms_hold() {
        let a = RelValue::indicator(0, Value::int(1)).add(&RelValue::weighted(1, Value::int(2), 3.0));
        let b = RelValue::scalar(2.0).add(&RelValue::indicator(0, Value::int(1)));
        let c = RelValue::weighted(2, Value::str("z"), -1.5);
        axioms::check_ring_axioms(&a, &b, &c, 1e-9);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = RelValue::weighted(0, Value::int(1), 1.0);
        let b = RelValue::weighted(0, Value::int(1), 1.0 + 1e-13);
        assert!(a.approx_eq(&b, 1e-9));
        let c = RelValue::weighted(0, Value::int(2), 1.0);
        assert!(!a.approx_eq(&c, 1e-9));
    }
}
