//! A dynamically sized matrix ring, used for the paper's matrix chain
//! multiplication application.
//!
//! Elements are either a scalar multiple of the identity (shape-free, so the
//! ring has a well-defined `zero`/`one`) or a dense `rows × cols` matrix.
//! Addition is element-wise, multiplication is matrix multiplication.  The
//! ring is non-commutative; the F-IVM engine multiplies children in a
//! deterministic order, so chain products such as `A·B·C` are maintained
//! correctly under updates to any factor.

use crate::ring::{approx_f64, ApproxEq, Ring};

/// A value of the dynamic matrix ring.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixValue {
    /// `c · I` for every compatible shape.
    Scalar(f64),
    /// A dense matrix.
    Mat(DenseMatrix),
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Builds a matrix from row-major data; panics if sizes disagree.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Heap bytes of the element buffer (the matrix leaf of the
    /// engine-wide byte rollup).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        self.matmul_accumulate(other, &mut out, 1.0);
        out
    }

    /// `out += scale * (self * other)`, accumulating into `out`'s existing
    /// buffer; panics if any shape disagrees.
    fn matmul_accumulate(&self, other: &DenseMatrix, out: &mut DenseMatrix, scale: f64) {
        assert_eq!(
            self.cols, other.rows,
            "matrix shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matrix accumulator shape mismatch"
        );
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = scale * self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
    }

    /// `self += scale * other` element-wise; panics on shape mismatch.
    fn add_scaled(&mut self, other: &DenseMatrix, scale: f64) {
        assert_eq!(self.rows, other.rows, "matrix row mismatch in add");
        assert_eq!(self.cols, other.cols, "matrix col mismatch in add");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Adds `c` to the diagonal; panics if the matrix is not square.
    fn add_diagonal(&mut self, c: f64) {
        assert_eq!(
            self.rows, self.cols,
            "cannot add a scalar identity to a non-square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += c;
        }
    }

    fn scaled(&self, k: f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }
}

impl MatrixValue {
    /// Wraps a dense matrix.
    pub fn matrix(m: DenseMatrix) -> Self {
        MatrixValue::Mat(m)
    }

    /// Builds a dense matrix value from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        MatrixValue::Mat(DenseMatrix::new(rows, cols, data))
    }

    /// The dense matrix, materializing `Scalar(c)` as `c·I(n)`.
    pub fn to_dense(&self, n: usize) -> DenseMatrix {
        match self {
            MatrixValue::Scalar(c) => DenseMatrix::identity(n).scaled(*c),
            MatrixValue::Mat(m) => m.clone(),
        }
    }

    /// Entry `(i, j)` of a dense value; panics for scalar values.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            MatrixValue::Scalar(_) => panic!("get() on a scalar matrix value"),
            MatrixValue::Mat(m) => m.get(i, j),
        }
    }
}

impl Ring for MatrixValue {
    fn zero() -> Self {
        MatrixValue::Scalar(0.0)
    }

    fn one() -> Self {
        MatrixValue::Scalar(1.0)
    }

    fn is_zero(&self) -> bool {
        match self {
            MatrixValue::Scalar(c) => *c == 0.0,
            MatrixValue::Mat(m) => m.data.iter().all(|&x| x == 0.0),
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (MatrixValue::Scalar(a), MatrixValue::Scalar(b)) => MatrixValue::Scalar(a + b),
            (MatrixValue::Scalar(a), MatrixValue::Mat(m))
            | (MatrixValue::Mat(m), MatrixValue::Scalar(a)) => {
                assert_eq!(
                    m.rows, m.cols,
                    "cannot add a scalar identity to a non-square matrix"
                );
                let mut out = m.clone();
                for i in 0..m.rows {
                    out.data[i * m.cols + i] += a;
                }
                MatrixValue::Mat(out)
            }
            (MatrixValue::Mat(a), MatrixValue::Mat(b)) => {
                assert_eq!(a.rows, b.rows, "matrix row mismatch in add");
                assert_eq!(a.cols, b.cols, "matrix col mismatch in add");
                let mut out = a.clone();
                for (x, y) in out.data.iter_mut().zip(b.data.iter()) {
                    *x += y;
                }
                MatrixValue::Mat(out)
            }
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (MatrixValue::Scalar(a), MatrixValue::Scalar(b)) => MatrixValue::Scalar(a * b),
            (MatrixValue::Scalar(a), MatrixValue::Mat(m)) => MatrixValue::Mat(m.scaled(*a)),
            (MatrixValue::Mat(m), MatrixValue::Scalar(b)) => MatrixValue::Mat(m.scaled(*b)),
            (MatrixValue::Mat(a), MatrixValue::Mat(b)) => MatrixValue::Mat(a.matmul(b)),
        }
    }

    fn mul_into(&self, rhs: &Self, out: &mut Self) {
        match (self, rhs) {
            (MatrixValue::Mat(a), MatrixValue::Mat(b)) => {
                if let MatrixValue::Mat(o) = out {
                    if (o.rows, o.cols) == (a.rows, b.cols) {
                        o.data.iter_mut().for_each(|x| *x = 0.0);
                        a.matmul_accumulate(b, o, 1.0);
                        return;
                    }
                }
                *out = MatrixValue::Mat(a.matmul(b));
            }
            _ => *out = self.mul(rhs),
        }
    }

    fn fma_scaled(&mut self, a: &Self, b: &Self, scale: i64) {
        if scale == 0 {
            return;
        }
        let s = scale as f64;
        match (a, b) {
            (MatrixValue::Scalar(x), MatrixValue::Scalar(y)) => match self {
                MatrixValue::Scalar(c) => *c += s * x * y,
                MatrixValue::Mat(m) => m.add_diagonal(s * x * y),
            },
            (MatrixValue::Scalar(x), MatrixValue::Mat(m))
            | (MatrixValue::Mat(m), MatrixValue::Scalar(x)) => match self {
                MatrixValue::Mat(o) => o.add_scaled(m, s * x),
                MatrixValue::Scalar(c) => {
                    let mut o = m.scaled(s * x);
                    if *c != 0.0 {
                        o.add_diagonal(*c);
                    }
                    *self = MatrixValue::Mat(o);
                }
            },
            (MatrixValue::Mat(ma), MatrixValue::Mat(mb)) => match self {
                MatrixValue::Mat(o) => ma.matmul_accumulate(mb, o, s),
                MatrixValue::Scalar(c) => {
                    let mut o = DenseMatrix::zeros(ma.rows, mb.cols);
                    ma.matmul_accumulate(mb, &mut o, s);
                    if *c != 0.0 {
                        o.add_diagonal(*c);
                    }
                    *self = MatrixValue::Mat(o);
                }
            },
        }
    }

    fn neg(&self) -> Self {
        match self {
            MatrixValue::Scalar(c) => MatrixValue::Scalar(-c),
            MatrixValue::Mat(m) => MatrixValue::Mat(m.scaled(-1.0)),
        }
    }

    fn scale_int(&self, k: i64) -> Self {
        match self {
            MatrixValue::Scalar(c) => MatrixValue::Scalar(c * k as f64),
            MatrixValue::Mat(m) => MatrixValue::Mat(m.scaled(k as f64)),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            MatrixValue::Scalar(_) => 0,
            MatrixValue::Mat(m) => m.heap_bytes(),
        }
    }
}

impl ApproxEq for MatrixValue {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        match (self, other) {
            (MatrixValue::Scalar(a), MatrixValue::Scalar(b)) => approx_f64(*a, *b, tol),
            (MatrixValue::Mat(a), MatrixValue::Mat(b)) => {
                a.rows == b.rows
                    && a.cols == b.cols
                    && a.data
                        .iter()
                        .zip(b.data.iter())
                        .all(|(x, y)| approx_f64(*x, *y, tol))
            }
            (MatrixValue::Scalar(a), MatrixValue::Mat(m))
            | (MatrixValue::Mat(m), MatrixValue::Scalar(a)) => {
                m.rows == m.cols
                    && m.approx_eq_dense(&DenseMatrix::identity(m.rows).scaled(*a), tol)
            }
        }
    }
}

impl DenseMatrix {
    fn approx_eq_dense(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(x, y)| approx_f64(*x, *y, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> MatrixValue {
        MatrixValue::from_rows(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn matrix_multiplication() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        let ab = a.mul(&b);
        assert_eq!(ab.get(0, 0), 19.0);
        assert_eq!(ab.get(0, 1), 22.0);
        assert_eq!(ab.get(1, 0), 43.0);
        assert_eq!(ab.get(1, 1), 50.0);
    }

    #[test]
    fn rectangular_chain() {
        // (2x3) * (3x1) = 2x1
        let a = MatrixValue::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        let b = MatrixValue::from_rows(3, 1, vec![3.0, 4.0, 5.0]);
        let ab = a.mul(&b);
        assert_eq!(ab.get(0, 0), 13.0);
        assert_eq!(ab.get(1, 0), 9.0);
    }

    #[test]
    fn scalar_identity_behaviour() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        assert_eq!(MatrixValue::one().mul(&a), a);
        assert_eq!(a.mul(&MatrixValue::one()), a);
        assert!(MatrixValue::zero().mul(&a).is_zero());
        let shifted = a.add(&MatrixValue::Scalar(10.0));
        assert_eq!(shifted.get(0, 0), 11.0);
        assert_eq!(shifted.get(1, 1), 14.0);
        assert_eq!(shifted.get(0, 1), 2.0);
    }

    #[test]
    fn addition_negation_scaling() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(0.5, 0.5, 0.5, 0.5);
        assert_eq!(a.add(&b), m2(1.5, 2.5, 3.5, 4.5));
        assert!(a.add(&a.neg()).is_zero());
        assert_eq!(a.scale_int(2), m2(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a.sub(&b), m2(0.5, 1.5, 2.5, 3.5));
    }

    #[test]
    fn identity_and_dense_materialization() {
        let i3 = DenseMatrix::identity(3);
        assert_eq!(i3.get(1, 1), 1.0);
        assert_eq!(i3.get(0, 1), 0.0);
        let dense = MatrixValue::Scalar(2.0).to_dense(2);
        assert_eq!(dense.get(0, 0), 2.0);
        assert_eq!(dense.get(0, 1), 0.0);
        assert!(MatrixValue::Scalar(1.0).approx_eq(&MatrixValue::Mat(DenseMatrix::identity(4)), 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = MatrixValue::from_rows(2, 3, vec![0.0; 6]);
        let b = MatrixValue::from_rows(2, 3, vec![0.0; 6]);
        let _ = a.mul(&b);
    }
}
