#![forbid(unsafe_code)]
//! The F-IVM incremental view maintenance engine.
//!
//! This crate is the paper's primary contribution: maintenance of batches of
//! aggregates over project-join queries under inserts and deletes, by
//! materializing a tree of views whose payloads live in an
//! application-specific ring and propagating deltas along leaf-to-root paths.
//!
//! The typical flow is:
//!
//! ```
//! use fivm_core::apps;
//! use fivm_query::{VariableOrder, ViewTree, EliminationHeuristic};
//! use fivm_relation::tuple;
//! use fivm_common::Value;
//!
//! // SELECT SUM(1) FROM R(A, B) NATURAL JOIN S(A, C, D)
//! let spec = fivm_query::spec::figure1_query(false);
//! let order = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
//! let tree = ViewTree::new(spec, order).unwrap();
//! let mut engine = apps::count_engine(tree).unwrap();
//!
//! engine.apply_rows(0, vec![(tuple([Value::int(1), Value::int(10)]), 1)]).unwrap();
//! engine.apply_rows(1, vec![(tuple([Value::int(1), Value::int(7), Value::int(8)]), 1)]).unwrap();
//! assert_eq!(engine.result(), 1);
//!
//! // Deletes are inserts with negative multiplicity.
//! engine.apply_rows(0, vec![(tuple([Value::int(1), Value::int(10)]), -1)]).unwrap();
//! assert_eq!(engine.result(), 0);
//! ```
//!
//! Modules:
//!
//! * [`engine`] — the generic, ring-agnostic maintenance engine.
//! * [`plan`] — compilation of view trees into static probe/index plans.
//! * [`view`] — materialized views with planned secondary indexes.
//! * [`kernel`] — the shared delta-propagation kernel (grouping, probing,
//!   lift application), driven by both the single-tree engine and the
//!   multi-query DAG (`fivm_dag`).
//! * [`apps`] — preconfigured engines for the paper's applications (count,
//!   COVAR, mixed COVAR, mutual information, factorized evaluation).
//! * [`error`] — typed [`EngineError`] for the public maintenance and
//!   snapshot surface.

pub mod apps;
pub mod engine;
pub mod error;
pub mod kernel;
pub mod plan;
pub mod view;

pub use apps::{AggregateLayout, BinSpec};
pub use engine::{Engine, EngineStats, UpdateOutcome};
pub use error::{EngineError, EngineResult};
pub use kernel::KernelMode;
pub use plan::ExecutionPlan;
pub use view::MaterializedView;
