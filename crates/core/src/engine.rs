//! The F-IVM maintenance engine.
//!
//! An [`Engine`] materializes every view of a view tree (plus one leaf view
//! per base relation) with payloads from an application ring `R`, and keeps
//! them consistent under inserts and deletes:
//!
//! 1. An update to relation `K` is turned into a delta over the leaf view's
//!    key (payload = `1` scaled by the signed multiplicity).
//! 2. The delta is propagated along the leaf-to-root maintenance path.  At
//!    each view `V@X`, the delta of the updating child is joined against the
//!    *materialized* sibling views (using the probes fixed by the
//!    [`ExecutionPlan`]), multiplied by the lift `g_X`, marginalized over
//!    `X`, applied to `V@X`, and handed to the parent as its child delta.
//! 3. Views on other branches are untouched — this is the core of F-IVM's
//!    efficiency.
//!
//! The engine is completely generic in the ring; the applications in
//! [`crate::apps`] merely pick a ring and a set of lifts.

use crate::plan::{DeltaPlan, ExecutionPlan, NodePlan, ProbeKind, ALREADY_BOUND};
use crate::view::MaterializedView;
use fivm_common::{FivmError, FxHashMap, RelId, Result, Value};
use fivm_query::ViewTree;
use fivm_relation::{Database, Relation, Tuple, Update};
use fivm_ring::{LiftFn, Ring};

/// Counters describing the work performed by the engine so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of update batches applied.
    pub updates_applied: usize,
    /// Number of input rows across all update batches.
    pub rows_applied: usize,
    /// Number of delta entries pushed into views (all levels).
    pub delta_entries: usize,
}

/// Result of applying one update batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Rows in the input batch.
    pub input_rows: usize,
    /// Delta entries written across all views on the maintenance path.
    pub delta_entries: usize,
}

/// The F-IVM engine for a fixed query, view tree and ring.
pub struct Engine<R: Ring> {
    plan: ExecutionPlan,
    lifts: Vec<LiftFn<R>>,
    views: Vec<MaterializedView<R>>,
    /// Per-relation column bindings: for each relation variable, the column
    /// of the source table it is read from.  Set by [`Engine::bind_table`] /
    /// [`Engine::load_database`]; identity if never bound.
    bindings: Vec<Option<Vec<usize>>>,
    stats: EngineStats,
}

impl<R: Ring> Engine<R> {
    /// Builds an engine from a view tree and one lift per query variable.
    ///
    /// `lifts[v]` is the attribute function `g_v`; pass
    /// [`LiftFn::identity`] for join keys.
    pub fn new(tree: ViewTree, lifts: Vec<LiftFn<R>>) -> Result<Self> {
        if lifts.len() != tree.spec().num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "expected {} lifts (one per variable), got {}",
                tree.spec().num_vars(),
                lifts.len()
            )));
        }
        let plan = ExecutionPlan::compile(tree)?;
        let mut views = Vec::with_capacity(plan.num_views());
        for np in plan.node_plans() {
            views.push(MaterializedView::new(np.key_vars.clone()));
        }
        for lp in plan.leaf_plans() {
            views.push(MaterializedView::new(lp.vars.clone()));
        }
        // Register the planned secondary indexes, in plan order so the ids
        // used by `ProbeKind::Index` line up.
        for (view_idx, reqs) in plan.index_requirements().iter().enumerate() {
            for positions in reqs {
                views[view_idx].ensure_index(positions.clone());
            }
        }
        let num_rels = plan.leaf_plans().len();
        Ok(Engine {
            plan,
            lifts,
            views,
            bindings: vec![None; num_rels],
            stats: EngineStats::default(),
        })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The query's view tree.
    pub fn tree(&self) -> &ViewTree {
        self.plan.tree()
    }

    /// Work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The materialized view of a view-tree node, as a relation.
    pub fn view_relation(&self, node_id: usize) -> Relation<R> {
        self.views[node_id].to_relation()
    }

    /// Number of keys stored across all materialized views.
    pub fn total_view_entries(&self) -> usize {
        self.views.iter().map(MaterializedView::len).sum()
    }

    /// The query result for queries without group-by variables: the product
    /// of the root views' payloads (each keyed by the empty tuple).
    pub fn result(&self) -> R {
        let empty: Tuple = Vec::new().into_boxed_slice();
        let mut acc = R::one();
        for &root in self.plan.tree().roots() {
            match self.views[root].get(&empty) {
                Some(p) => acc = acc.mul(p),
                None => return R::zero(),
            }
        }
        acc
    }

    /// The query result as a relation over the free variables (general form;
    /// equals a singleton over the empty key when there is no group-by).
    pub fn result_relation(&self) -> Relation<R> {
        let roots = self.plan.tree().roots();
        let mut acc: Option<Relation<R>> = None;
        for &root in roots {
            let rel = self.views[root].to_relation();
            acc = Some(match acc {
                None => rel,
                Some(prev) => prev.natural_join(&rel),
            });
        }
        acc.unwrap_or_else(|| {
            let mut r = Relation::new(Vec::new());
            r.add(Vec::new().into_boxed_slice(), R::one());
            r
        })
    }

    /// Binds a relation of the query to the column layout of a source table:
    /// each relation variable is matched to the table column with the same
    /// name.  Rows of subsequent updates to this relation are expected in the
    /// table's layout.
    pub fn bind_table(&mut self, rel: RelId, schema: &fivm_relation::Schema) -> Result<()> {
        let spec = self.plan.tree().spec();
        let def = spec.relation(rel);
        let mut cols = Vec::with_capacity(def.vars.len());
        for &v in &def.vars {
            let name = spec.var_name(v);
            let col = schema.position(name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!(
                    "table bound to relation `{}` has no column `{name}`",
                    def.name
                ))
            })?;
            cols.push(col);
        }
        self.bindings[rel] = Some(cols);
        Ok(())
    }

    /// Loads an initial database: every table whose name matches a query
    /// relation is bound by column name and its rows are applied as inserts.
    pub fn load_database(&mut self, db: &Database) -> Result<()> {
        let spec = self.plan.tree().spec().clone();
        for rel in 0..spec.num_relations() {
            let name = &spec.relation(rel).name;
            let table = db.table(name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!("database has no table named `{name}`"))
            })?;
            self.bind_table(rel, &table.schema)?;
            self.apply_rows(rel, table.rows.iter().cloned())?;
        }
        Ok(())
    }

    /// Applies an update batch addressed by table name.
    pub fn apply_update(&mut self, update: &Update) -> Result<UpdateOutcome> {
        let rel = self
            .plan
            .tree()
            .spec()
            .relation_id(&update.table)
            .ok_or_else(|| {
                FivmError::InvalidUpdate(format!(
                    "update targets unknown relation `{}`",
                    update.table
                ))
            })?;
        self.apply_rows(rel, update.rows.iter().cloned())
    }

    /// Applies a batch of `(row, multiplicity)` changes to a relation.
    ///
    /// Rows are in the bound table layout if [`Engine::bind_table`] was
    /// called for this relation, otherwise they must list exactly the
    /// relation's query variables in declaration order.
    pub fn apply_rows<I>(&mut self, rel: RelId, rows: I) -> Result<UpdateOutcome>
    where
        I: IntoIterator<Item = (Tuple, i64)>,
    {
        let leaf = &self.plan.leaf_plans()[rel];
        let arity = leaf.vars.len();
        let binding = self.bindings[rel].clone();

        // Accumulate the leaf delta, merging duplicate keys.
        let mut delta: FxHashMap<Tuple, R> = FxHashMap::default();
        let mut input_rows = 0usize;
        for (row, mult) in rows {
            input_rows += 1;
            if mult == 0 {
                continue;
            }
            let key: Tuple = match &binding {
                Some(cols) => cols
                    .iter()
                    .map(|&c| {
                        row.get(c).cloned().ok_or_else(|| {
                            FivmError::InvalidUpdate(format!(
                                "row has {} columns but column {c} was bound",
                                row.len()
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?
                    .into_boxed_slice(),
                None => {
                    if row.len() != arity {
                        return Err(FivmError::InvalidUpdate(format!(
                            "row arity {} does not match relation arity {arity}",
                            row.len()
                        )));
                    }
                    row
                }
            };
            let payload = R::one().scale_int(mult);
            match delta.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(payload);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    o.get_mut().add_assign(&payload);
                }
            }
        }
        delta.retain(|_, p| !p.is_zero());

        let mut outcome = UpdateOutcome {
            input_rows,
            delta_entries: 0,
        };
        if delta.is_empty() {
            self.stats.updates_applied += 1;
            self.stats.rows_applied += input_rows;
            return Ok(outcome);
        }

        // Apply to the leaf view.
        let leaf_view_idx = leaf.view_idx;
        let mut current: Vec<(Tuple, R)> = delta.into_iter().collect();
        for (k, p) in &current {
            self.views[leaf_view_idx].add(k.clone(), p.clone());
        }
        outcome.delta_entries += current.len();

        // Propagate along the maintenance path.
        let (mut node_id, mut child_pos) = leaf.parent;
        loop {
            let produced = self.propagate_at_node(node_id, child_pos, &current);
            outcome.delta_entries += produced.len();
            for (k, p) in &produced {
                self.views[node_id].add(k.clone(), p.clone());
            }
            current = produced;
            if current.is_empty() {
                break;
            }
            match self.plan.node_plans()[node_id].parent {
                Some((parent, pos)) => {
                    node_id = parent;
                    child_pos = pos;
                }
                None => break,
            }
        }

        self.stats.updates_applied += 1;
        self.stats.rows_applied += input_rows;
        self.stats.delta_entries += outcome.delta_entries;
        Ok(outcome)
    }

    /// Computes the delta of view `node_id` given the delta of its child at
    /// position `child_pos`, without modifying any view.
    fn propagate_at_node(
        &self,
        node_id: usize,
        child_pos: usize,
        child_delta: &[(Tuple, R)],
    ) -> Vec<(Tuple, R)> {
        let np = &self.plan.node_plans()[node_id];
        let dp = &np.delta_plans[child_pos];
        let lift = &self.lifts[np.var];
        let mut out: FxHashMap<Tuple, R> = FxHashMap::default();
        let mut assignment: Vec<Value> = vec![Value::Null; np.local_vars.len()];

        for (key, payload) in child_delta {
            for (col, &pos) in dp.scatter.iter().enumerate() {
                assignment[pos] = key[col].clone();
            }
            self.extend_assignment(np, dp, lift, 0, &mut assignment, payload, &mut out);
        }

        out.retain(|_, p| !p.is_zero());
        out.into_iter().collect()
    }

    /// Recursively extends a partial assignment by probing siblings, then
    /// applies the lift and emits the marginalized contribution.
    #[allow(clippy::too_many_arguments)]
    fn extend_assignment(
        &self,
        np: &NodePlan,
        dp: &DeltaPlan,
        lift: &LiftFn<R>,
        step_idx: usize,
        assignment: &mut Vec<Value>,
        acc: &R,
        out: &mut FxHashMap<Tuple, R>,
    ) {
        if step_idx == dp.steps.len() {
            let mut payload = acc.clone();
            if !lift.is_identity() {
                payload = payload.mul(&lift.apply(&assignment[dp.var_position]));
            }
            if payload.is_zero() {
                return;
            }
            let key: Tuple = dp
                .key_positions
                .iter()
                .map(|&p| assignment[p].clone())
                .collect::<Vec<_>>()
                .into_boxed_slice();
            match out.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(payload);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    o.get_mut().add_assign(&payload);
                }
            }
            return;
        }

        let step = &dp.steps[step_idx];
        let view = &self.views[step.sibling_view];
        let probe: Tuple = step
            .probe_positions
            .iter()
            .map(|&p| assignment[p].clone())
            .collect::<Vec<_>>()
            .into_boxed_slice();

        match &step.probe {
            ProbeKind::Primary => {
                if let Some(p) = view.get(&probe) {
                    let next = acc.mul(p);
                    if !next.is_zero() {
                        self.extend_assignment(np, dp, lift, step_idx + 1, assignment, &next, out);
                    }
                }
            }
            ProbeKind::Index(idx) => {
                // Collect matches first to keep the borrow of `self.views`
                // from overlapping with the recursive call's mutable use of
                // `assignment` only (views are only read).
                let matches: Vec<(Tuple, R)> = view
                    .probe_index(*idx, &probe)
                    .map(|(k, p)| (k.clone(), p.clone()))
                    .collect();
                for (full_key, p) in matches {
                    for (col, &pos) in step.write_positions.iter().enumerate() {
                        if pos != ALREADY_BOUND {
                            assignment[pos] = full_key[col].clone();
                        }
                    }
                    let next = acc.mul(&p);
                    if !next.is_zero() {
                        self.extend_assignment(np, dp, lift, step_idx + 1, assignment, &next, out);
                    }
                }
            }
        }
    }
}

impl<R: Ring> std::fmt::Debug for Engine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("views", &self.views.len())
            .field("stats", &self.stats)
            .finish()
    }
}
