//! The F-IVM maintenance engine.
//!
//! An [`Engine`] materializes every view of a view tree (plus one leaf view
//! per base relation) with payloads from an application ring `R`, and keeps
//! them consistent under inserts and deletes:
//!
//! 1. An update batch to relation `K` is **grouped by key** into one delta
//!    entry per distinct key (payload = `1` scaled by the summed signed
//!    multiplicity) — rows that cancel inside the batch never propagate.
//! 2. The delta is propagated along the leaf-to-root maintenance path.  At
//!    each view `V@X`, the delta of the updating child is joined against the
//!    *materialized* sibling views (using the probes fixed by the
//!    [`ExecutionPlan`]), multiplied by the lift `g_X`, marginalized over
//!    `X`, applied to `V@X`, and handed to the parent as its child delta.
//! 3. Views on other branches are untouched — this is the core of F-IVM's
//!    efficiency.
//!
//! The hot path is allocation- and *memory*-conscious.  Keys are
//! dictionary-encoded once, at ingestion, into flat-word
//! [`EncodedKey`]s (strings interned in the engine's [`Dict`]) and decoded
//! only at output boundaries.  Every key is **hashed at most once per
//! propagation level**: the grouped leaf delta, the per-level delta
//! accumulator and every view table are [`RawTable`]s keyed by precomputed
//! hashes, and a level's delta carries its hashes along when it is applied
//! to the view and handed to the parent.  Probe keys are gathered out of an
//! encoded assignment by plain word copies, a per-level memo short-circuits
//! repeated probes of the same (skewed) key, partial products along a probe
//! chain are computed with [`Ring::mul_into`] into per-depth scratch
//! buffers, and contributions are accumulated with [`Ring::fma_scaled`].
//! Zero payloads are erased in place after each level.
//!
//! The engine is completely generic in the ring; the applications in
//! [`crate::apps`] merely pick a ring and a set of lifts.

use crate::error::{EngineError, EngineResult};
use crate::kernel::{direct_level, group_row, probe_level, KernelMode, PropagationScratch};
use crate::plan::{ExecutionPlan, ProbeKind};
use crate::view::MaterializedView;
use fivm_common::{wire, EncodedKey, FivmError, RelId, Result, WireReader};
use fivm_query::ViewTree;
use fivm_relation::{Database, Relation, Tuple, Update};
use fivm_ring::{LiftFn, PersistRing, Ring, RingCtx};

/// Counters describing the work performed by the engine so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of update batches applied.
    pub updates_applied: usize,
    /// Number of input rows across all update batches.
    pub rows_applied: usize,
    /// Number of delta entries pushed into views (all levels).
    pub delta_entries: usize,
    /// Number of ring additions (`add_assign` and the add half of
    /// `fma_scaled`) performed on the maintenance path.
    pub ring_adds: usize,
    /// Number of ring multiplications (`mul`, `mul_into`, and the multiply
    /// half of `fma_scaled`) performed on the maintenance path.
    pub ring_muls: usize,
    /// Number of sibling-view probe lookups requested during delta
    /// propagation (primary-map and secondary-index probes; memo-served
    /// repeats count too, so the number reflects algorithmic probe volume,
    /// not cache luck).
    pub probes: usize,
    /// Probes that found a matching entry/bucket.
    pub probe_hits: usize,
    /// Table rehash events (growth or tombstone compaction) across all
    /// view tables.  Rehashing re-buckets entries from their *stored*
    /// hashes — keys are never re-hashed, so this counts bucket moves, not
    /// extra key hashing.
    pub rehashes: usize,
    /// Rehash events inside *ring payloads* materialized in views (the
    /// relational rings keep hash tables of their own; see the ring-key
    /// contract in ROADMAP.md).  Steady state must stay at 0, exactly like
    /// `rehashes`.
    pub ring_rehashes: usize,
    /// Deferred secondary-index builds: indexes are registered at plan
    /// time but only built (one slab scan) when the active update pattern
    /// first probes them; until then they cost no per-row upkeep.
    pub deferred_index_builds: usize,
    /// Heap bytes of all materialized view storage: primary maps,
    /// secondary indexes, slot slabs and ring-payload interiors
    /// (`MaterializedView::table_bytes` summed over the views).  Unlike
    /// the other fields this is a **gauge** (current footprint), not a
    /// monotone counter: [`EngineStats::delta_since`] carries the later
    /// snapshot's footprint through unchanged (a difference of a value
    /// that can shrink is meaningless, and every consumer wants the
    /// resident footprint), and [`EngineStats::merge`] sums the
    /// per-shard footprints.
    pub table_bytes: usize,
}

impl EngineStats {
    /// The work performed since an earlier snapshot (field-wise
    /// difference) — useful for excluding initial load from measurements.
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied - earlier.updates_applied,
            rows_applied: self.rows_applied - earlier.rows_applied,
            delta_entries: self.delta_entries - earlier.delta_entries,
            ring_adds: self.ring_adds - earlier.ring_adds,
            ring_muls: self.ring_muls - earlier.ring_muls,
            probes: self.probes - earlier.probes,
            probe_hits: self.probe_hits - earlier.probe_hits,
            rehashes: self.rehashes - earlier.rehashes,
            ring_rehashes: self.ring_rehashes - earlier.ring_rehashes,
            deferred_index_builds: self.deferred_index_builds - earlier.deferred_index_builds,
            table_bytes: self.table_bytes,
        }
    }

    /// Combines the counters of two engines (field-wise sum) — the
    /// aggregate view of a sharded deployment, where every counter is the
    /// total work performed across all shards.  For broadcast relations,
    /// `rows_applied` counts every per-shard application of a row, so the
    /// sum reflects work, not distinct input rows.
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied + other.updates_applied,
            rows_applied: self.rows_applied + other.rows_applied,
            delta_entries: self.delta_entries + other.delta_entries,
            ring_adds: self.ring_adds + other.ring_adds,
            ring_muls: self.ring_muls + other.ring_muls,
            probes: self.probes + other.probes,
            probe_hits: self.probe_hits + other.probe_hits,
            rehashes: self.rehashes + other.rehashes,
            ring_rehashes: self.ring_rehashes + other.ring_rehashes,
            deferred_index_builds: self.deferred_index_builds + other.deferred_index_builds,
            table_bytes: self.table_bytes + other.table_bytes,
        }
    }
}

/// Result of applying one update batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Rows in the input batch.
    pub input_rows: usize,
    /// Delta entries written across all views on the maintenance path.
    pub delta_entries: usize,
}

impl UpdateOutcome {
    /// Combines the outcomes of the same batch applied by several engines
    /// (field-wise sum).  A sharded deployment partitions a hash-routed
    /// batch across shards, so summed `input_rows` equals the original
    /// batch size; for broadcast batches each shard processes every row and
    /// the sum counts per-shard applications.
    pub fn merge(&self, other: &UpdateOutcome) -> UpdateOutcome {
        UpdateOutcome {
            input_rows: self.input_rows + other.input_rows,
            delta_entries: self.delta_entries + other.delta_entries,
        }
    }
}

/// The F-IVM engine for a fixed query, view tree and ring.
pub struct Engine<R: Ring> {
    plan: ExecutionPlan,
    lifts: Vec<LiftFn<R>>,
    views: Vec<MaterializedView<R>>,
    /// The shared handle to the per-engine string dictionary: every key the
    /// engine stores or probes is encoded through it (interning at
    /// ingestion, decoding at output boundaries), and lifts of relational
    /// rings built against the same context encode their ring-interior
    /// keys through the very same dictionary (the ring-key contract).
    ctx: RingCtx,
    /// Per-relation column bindings: for each relation variable, the column
    /// of the source table it is read from.  Set by [`Engine::bind_table`] /
    /// [`Engine::load_database`]; identity if never bound.
    bindings: Vec<Option<Vec<usize>>>,
    scratch: PropagationScratch<R>,
    stats: EngineStats,
}

impl<R: Ring> Engine<R> {
    /// Builds an engine from a view tree and one lift per query variable.
    ///
    /// `lifts[v]` is the attribute function `g_v`; pass
    /// [`LiftFn::identity`] for join keys.
    pub fn new(tree: ViewTree, lifts: Vec<LiftFn<R>>) -> Result<Self> {
        let plan = ExecutionPlan::compile(tree)?;
        Self::with_plan(plan, lifts)
    }

    /// Builds an engine from a view tree, lifts and the [`RingCtx`] the
    /// lifts were built against, so lifts and engine share one dictionary.
    ///
    /// Lift sets that encode ring-interior keys (the relational rings)
    /// **must** be constructed this way — the encoded values the engine
    /// hands to lifts on the hot path are only meaningful under the
    /// engine's own dictionary.  [`crate::apps`] threads the context
    /// correctly for every shipped application.
    pub fn new_with_ctx(tree: ViewTree, lifts: Vec<LiftFn<R>>, ctx: RingCtx) -> Result<Self> {
        let plan = ExecutionPlan::compile(tree)?;
        Self::with_plan_ctx(plan, lifts, ctx)
    }

    /// Builds an engine from an already compiled plan.
    ///
    /// A sharded deployment constructs N identical engines; compiling the
    /// view tree once and cloning the plan avoids redoing the probe/index
    /// planning per shard.  Each engine still owns fresh (empty) views and
    /// its own [`Dict`] — encoded keys must never cross engines (see the
    /// hash-once contract in ROADMAP.md).
    pub fn with_plan(plan: ExecutionPlan, lifts: Vec<LiftFn<R>>) -> Result<Self> {
        Self::with_plan_ctx(plan, lifts, RingCtx::new())
    }

    /// [`Engine::with_plan`] with an explicit ring context (see
    /// [`Engine::new_with_ctx`]).
    pub fn with_plan_ctx(plan: ExecutionPlan, lifts: Vec<LiftFn<R>>, ctx: RingCtx) -> Result<Self> {
        if lifts.len() != plan.tree().spec().num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "expected {} lifts (one per variable), got {}",
                plan.tree().spec().num_vars(),
                lifts.len()
            )));
        }
        let mut views = Vec::with_capacity(plan.num_views());
        for np in plan.node_plans() {
            views.push(MaterializedView::new(np.key_vars.clone()));
        }
        for lp in plan.leaf_plans() {
            views.push(MaterializedView::new(lp.vars.clone()));
        }
        // Register the planned secondary indexes, in plan order so the ids
        // used by `ProbeKind::Index` line up.
        for (view_idx, reqs) in plan.index_requirements().iter().enumerate() {
            for positions in reqs {
                views[view_idx].ensure_index(positions.clone());
            }
        }
        let max_probe_depth = plan
            .node_plans()
            .iter()
            .flat_map(|np| np.delta_plans.iter())
            .map(|dp| dp.steps.len())
            .max()
            .unwrap_or(0);
        let max_local_vars = plan
            .node_plans()
            .iter()
            .map(|np| np.local_vars.len())
            .max()
            .unwrap_or(0);
        let num_rels = plan.leaf_plans().len();
        let pool_enabled = lifts.iter().any(|l| !l.is_identity());
        Ok(Engine {
            plan,
            lifts,
            views,
            ctx,
            bindings: vec![None; num_rels],
            scratch: PropagationScratch::new(max_probe_depth, max_local_vars, pool_enabled),
            stats: EngineStats::default(),
        })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The query's view tree.
    pub fn tree(&self) -> &ViewTree {
        self.plan.tree()
    }

    /// The engine's ring context (the shared dictionary handle).  Cloning
    /// the handle is how output boundaries — ML consumers decoding
    /// relational payload entries, result merging — reach the dictionary.
    pub fn ctx(&self) -> &RingCtx {
        &self.ctx
    }

    /// Work counters.  `rehashes`, `ring_rehashes` and `table_bytes` are
    /// read live from the view tables; the other counters accumulate on
    /// the maintenance path.  `table_bytes` covers the materialized views
    /// (the state that must stay resident); transient propagation scratch
    /// and the delta-payload pool are excluded — they are bounded by the
    /// same `reset_zero` byte budget the memory contract documents.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.rehashes = self
            .views
            .iter()
            .map(|v| v.rehashes())
            .sum::<u64>() as usize;
        stats.ring_rehashes = self
            .views
            .iter()
            .map(MaterializedView::payload_rehashes)
            .sum::<u64>() as usize;
        stats.table_bytes = self
            .views
            .iter()
            .map(MaterializedView::table_bytes)
            .sum::<usize>();
        stats
    }

    /// Selects the kernel probe-free levels run ([`KernelMode::Auto`] by
    /// default).  Forcing [`KernelMode::Scalar`] or [`KernelMode::Columnar`]
    /// pins one path — the differential suites run both and compare.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.scratch.mode = mode;
    }

    /// The materialized view of a view-tree node, as a relation (an output
    /// boundary: keys are decoded through the dictionary).
    pub fn view_relation(&self, node_id: usize) -> Relation<R> {
        self.ctx.with_dict(|dict| self.views[node_id].to_relation(dict))
    }

    /// Number of keys stored across all materialized views.
    pub fn total_view_entries(&self) -> usize {
        self.views.iter().map(MaterializedView::len).sum()
    }

    /// The query result for queries without group-by variables: the product
    /// of the root views' payloads (each keyed by the empty tuple).
    pub fn result(&self) -> R {
        let empty = EncodedKey::empty();
        let hash = empty.fx_hash();
        let mut acc = R::one();
        for &root in self.plan.tree().roots() {
            match self.views[root].get_encoded(hash, &empty) {
                Some(p) => acc = acc.mul(p),
                None => return R::zero(),
            }
        }
        acc
    }

    /// The query result as a relation over the free variables (general form;
    /// equals a singleton over the empty key when there is no group-by).
    pub fn result_relation(&self) -> Relation<R> {
        let roots = self.plan.tree().roots();
        let mut acc: Option<Relation<R>> = None;
        for &root in roots {
            let rel = self
                .ctx
                .with_dict(|dict| self.views[root].to_relation(dict));
            acc = Some(match acc {
                None => rel,
                Some(prev) => prev.natural_join(&rel),
            });
        }
        acc.unwrap_or_else(|| {
            let mut r = Relation::new(Vec::new());
            r.add(Vec::new().into_boxed_slice(), R::one());
            r
        })
    }

    /// Binds a relation of the query to the column layout of a source table:
    /// each relation variable is matched to the table column with the same
    /// name.  Rows of subsequent updates to this relation are expected in the
    /// table's layout.
    pub fn bind_table(&mut self, rel: RelId, schema: &fivm_relation::Schema) -> EngineResult<()> {
        let spec = self.plan.tree().spec();
        self.check_rel(rel)?;
        let def = spec.relation(rel);
        let mut cols = Vec::with_capacity(def.vars.len());
        for &v in &def.vars {
            let name = spec.var_name(v);
            let col = schema.position(name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!(
                    "table bound to relation `{}` has no column `{name}`",
                    def.name
                ))
            })?;
            cols.push(col);
        }
        self.bindings[rel] = Some(cols);
        Ok(())
    }

    /// Loads an initial database: every table whose name matches a query
    /// relation is bound by column name and its rows are applied as inserts.
    pub fn load_database(&mut self, db: &Database) -> EngineResult<()> {
        let spec = self.plan.tree().spec().clone();
        for rel in 0..spec.num_relations() {
            let name = &spec.relation(rel).name;
            let table = db.table(name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!("database has no table named `{name}`"))
            })?;
            self.bind_table(rel, &table.schema)?;
            self.apply_rows(rel, table.rows.iter().cloned())?;
        }
        Ok(())
    }

    /// Applies an update batch addressed by table name.
    ///
    /// Works by reference: rows are encoded straight into the grouped
    /// leaf delta without cloning whole tuples first.
    pub fn apply_update(&mut self, update: &Update) -> EngineResult<UpdateOutcome> {
        let rel = self
            .plan
            .tree()
            .spec()
            .relation_id(&update.table)
            .ok_or_else(|| {
                FivmError::InvalidUpdate(format!(
                    "update targets unknown relation `{}`",
                    update.table
                ))
            })?;
        let arity = self.plan.leaf_plans()[rel].vars.len();
        let one = R::one();
        let mut input_rows = 0usize;
        {
            // One dictionary lock per batch; `group_row` performs no ring
            // or lift calls that could re-enter the context (ring ops are
            // dictionary-free by contract).
            let mut dict = self.ctx.lock();
            for (row, mult) in &update.rows {
                input_rows += 1;
                group_row(
                    &mut self.scratch.next,
                    &mut dict,
                    &mut self.stats,
                    &one,
                    self.bindings[rel].as_deref(),
                    arity,
                    row,
                    *mult,
                )?;
            }
        }
        Ok(self.propagate_grouped(rel, input_rows)?)
    }

    /// Applies a batch of `(row, multiplicity)` changes to a relation.
    ///
    /// Rows are in the bound table layout if [`Engine::bind_table`] was
    /// called for this relation, otherwise they must list exactly the
    /// relation's query variables in declaration order.
    ///
    /// The whole batch is grouped by key before propagation, so the
    /// per-level work is bounded by the number of *distinct* keys, not the
    /// number of input rows.
    pub fn apply_rows<I>(&mut self, rel: RelId, rows: I) -> EngineResult<UpdateOutcome>
    where
        I: IntoIterator<Item = (Tuple, i64)>,
    {
        self.check_rel(rel)?;
        let arity = self.plan.leaf_plans()[rel].vars.len();
        let one = R::one();
        let mut input_rows = 0usize;
        {
            let mut dict = self.ctx.lock();
            for (row, mult) in rows {
                input_rows += 1;
                group_row(
                    &mut self.scratch.next,
                    &mut dict,
                    &mut self.stats,
                    &one,
                    self.bindings[rel].as_deref(),
                    arity,
                    &row,
                    mult,
                )?;
            }
        }
        Ok(self.propagate_grouped(rel, input_rows)?)
    }

    /// Rejects relation ids outside the compiled query — the typed form of
    /// what used to be an index panic on the public surface.
    fn check_rel(&self, rel: RelId) -> EngineResult<()> {
        let n = self.plan.leaf_plans().len();
        if rel >= n {
            return Err(EngineError::State(format!(
                "relation id {rel} is out of range (query has {n} relations)"
            )));
        }
        Ok(())
    }

    /// Shared tail of every update path: erases cancelled keys from the
    /// grouped leaf delta waiting in `scratch.next`, applies it to the leaf
    /// view and propagates level by level to the root.  Hashes travel with
    /// the delta: a key is hashed when it is first built and never again.
    fn propagate_grouped(&mut self, rel: RelId, input_rows: usize) -> Result<UpdateOutcome> {
        let leaf = &self.plan.leaf_plans()[rel];
        let leaf_view_idx = leaf.view_idx;
        let leaf_parent = leaf.parent;

        let delta = &mut self.scratch.next;
        delta.retain(|_, p| !p.is_zero());

        let mut outcome = UpdateOutcome {
            input_rows,
            delta_entries: 0,
        };
        self.stats.updates_applied += 1;
        self.stats.rows_applied += input_rows;
        if delta.is_empty() {
            return Ok(outcome);
        }

        // Apply to the leaf view and start the leaf-to-root walk.
        let current = &mut self.scratch.current;
        current.clear();
        delta.drain_into(current);
        for (hash, key, payload) in current.iter() {
            if self.views[leaf_view_idx].add_encoded(*hash, key, payload) {
                self.stats.ring_adds += 1;
            }
        }
        outcome.delta_entries += current.len();

        // Propagate along the maintenance path.
        let (mut node_id, mut child_pos) = leaf_parent;
        loop {
            // Deferred secondary indexes: build the ones this level is
            // about to probe (a no-op bool check once built).  Mutable
            // view access must happen before the immutable probing pass.
            for si in 0..self.plan.node_plans()[node_id].delta_plans[child_pos].steps.len() {
                let step = &self.plan.node_plans()[node_id].delta_plans[child_pos].steps[si];
                if let ProbeKind::Index(idx) = &step.probe {
                    let (sibling, idx) = (step.sibling_view, *idx);
                    if self.views[sibling].ensure_index_built(idx) {
                        self.stats.deferred_index_builds += 1;
                    }
                }
            }

            let np = &self.plan.node_plans()[node_id];
            let dp = &np.delta_plans[child_pos];
            let lift = &self.lifts[np.var];
            let produced = &mut self.scratch.next;
            debug_assert!(produced.is_empty(), "scratch delta not drained");

            if let Some(direct) = &dp.direct {
                // Probe-free level: the output key is a plain projection of
                // the delta key — no assignment scatter, no probes.  The
                // kernel picks the scalar or columnar path per `mode`.
                direct_level(
                    direct,
                    lift,
                    &self.ctx,
                    &self.scratch.current,
                    produced,
                    &mut self.scratch.columns,
                    &mut self.scratch.pool,
                    self.scratch.mode,
                    &mut self.stats,
                );
            } else {
                // Probe level: the kernel scatters, probes the sibling
                // views and accumulates — scalar per-row walk or columnar
                // run fusion per `mode`.
                probe_level(
                    &self.views,
                    &self.ctx,
                    dp,
                    lift,
                    &self.scratch.current,
                    produced,
                    &mut self.scratch.columns,
                    &mut self.scratch.memo,
                    &mut self.scratch.assignment,
                    &mut self.scratch.partials,
                    &mut self.scratch.pool,
                    self.scratch.pool_enabled,
                    self.scratch.mode,
                    &mut self.stats,
                );
            }

            // Erase zero payloads in place before the delta is applied or
            // handed to the parent.
            produced.retain(|_, p| !p.is_zero());

            // Recycle the previous level's payloads before refilling
            // `current` with the delta just produced.
            self.scratch.recycle_current();
            let scratch = &mut self.scratch;
            scratch.next.drain_into(&mut scratch.current);
            let current = &mut scratch.current;
            outcome.delta_entries += current.len();
            for (hash, key, payload) in current.iter() {
                if self.views[node_id].add_encoded(*hash, key, payload) {
                    self.stats.ring_adds += 1;
                }
            }
            if current.is_empty() {
                break;
            }
            match self.plan.node_plans()[node_id].parent {
                Some((parent, pos)) => {
                    node_id = parent;
                    child_pos = pos;
                }
                None => break,
            }
        }
        self.scratch.recycle_current();

        self.stats.delta_entries += outcome.delta_entries;
        Ok(outcome)
    }
}

/// Version of the engine-state wire format written by [`Engine::save_state`].
const STATE_VERSION: u32 = 1;

/// Snapshot save/restore, available for rings that implement
/// [`PersistRing`] (the shipped payload rings).  The byte body produced
/// here carries **no framing or checksums** — `fivm_cdc::snapshot` wraps it
/// in length + CRC framing before it touches disk; this layer only defines
/// what the state *is*.
impl<R: PersistRing> Engine<R> {
    /// Serializes the engine's complete materialized state: a plan
    /// fingerprint (ring tag, per-view key variables, lift count), the
    /// dictionary (strings in id order, so every encoded word in the state
    /// stays valid on restore), and every view's live entries as
    /// `(stored hash, encoded key, ring payload)`.
    ///
    /// Not serialized: the plan itself and the lifts (code, reconstructed
    /// by building the engine the same way), table bindings (the recovery
    /// flow re-binds via [`Engine::bind_table`] / `load_database`-style
    /// schema information it already owns), accumulated [`EngineStats`]
    /// counters (work counters restart from zero; the live gauges —
    /// `rehashes`, `ring_rehashes`, `table_bytes` — are recomputed from the
    /// restored tables), and secondary-index bucket maps (restored views
    /// keep their indexes *deferred* and rebuild them on first probe,
    /// exactly like a cold engine).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        wire::put_u32(out, STATE_VERSION);
        wire::put_str(out, R::RING_TAG);
        wire::put_u32(out, self.views.len() as u32);
        for view in &self.views {
            wire::put_u32(out, view.key_vars().len() as u32);
            for &v in view.key_vars() {
                wire::put_u32(out, v as u32);
            }
        }
        wire::put_u32(out, self.lifts.len() as u32);
        self.ctx.with_dict(|dict| wire::put_dict(out, dict));
        for view in &self.views {
            wire::put_u64(out, view.len() as u64);
            for (hash, key, payload) in view.iter_hashed() {
                wire::put_u64(out, hash);
                wire::put_encoded_key(out, key);
                payload.encode(out);
            }
        }
    }

    /// Restores state saved by [`Engine::save_state`] into this engine,
    /// which must be **freshly constructed** (empty views) with the same
    /// plan, ring and lifts as the engine that was saved.
    ///
    /// The restore is rehash-free: each view's primary map is pre-sized
    /// ([`MaterializedView::reserve_restore`]) and entries are re-bucketed
    /// from their stored hashes, so after the call `rehashes` and
    /// `ring_rehashes` read 0 — the hash-once contract survives the
    /// restart.  Fingerprint mismatches return [`EngineError::State`];
    /// truncated or corrupt bytes return [`EngineError::Corrupt`] with the
    /// engine left in an unspecified but memory-safe state (a recovery
    /// driver discards the engine on error).
    pub fn load_state(&mut self, bytes: &[u8]) -> EngineResult<()> {
        if self.total_view_entries() != 0 {
            return Err(EngineError::State(
                "load_state requires a freshly constructed (empty) engine".into(),
            ));
        }
        let r = &mut WireReader::new(bytes);
        let version = r.u32()?;
        if version != STATE_VERSION {
            return Err(EngineError::State(format!(
                "unsupported engine state version {version} (expected {STATE_VERSION})"
            )));
        }
        let tag = r.str()?;
        if tag != R::RING_TAG {
            return Err(EngineError::State(format!(
                "snapshot was taken with ring `{tag}`, engine uses `{}`",
                R::RING_TAG
            )));
        }
        let num_views = r.u32()? as usize;
        if num_views != self.views.len() {
            return Err(EngineError::State(format!(
                "snapshot has {num_views} views, engine plan has {}",
                self.views.len()
            )));
        }
        for view in &self.views {
            let arity = r.u32()? as usize;
            if arity != view.key_vars().len() {
                return Err(EngineError::State("view key arity mismatch".into()));
            }
            for &v in view.key_vars() {
                if r.u32()? as usize != v {
                    return Err(EngineError::State("view key variables mismatch".into()));
                }
            }
        }
        let num_lifts = r.u32()? as usize;
        if num_lifts != self.lifts.len() {
            return Err(EngineError::State("lift count mismatch".into()));
        }
        // Dictionary first: every encoded word decoded below is only
        // meaningful under it.  Replacing (rather than merging) is correct
        // because the target engine is empty and its lifts were built
        // against the same construction path as the saved engine's.
        let dict = wire::read_dict(r)?;
        self.ctx.with_dict_mut(|d| *d = dict);
        for view in &mut self.views {
            let len = r.u64()? as usize;
            if len > bytes.len() {
                return Err(EngineError::Corrupt("view entry count out of range".into()));
            }
            view.reserve_restore(len);
            for _ in 0..len {
                let hash = r.u64()?;
                let key = wire::read_encoded_key(r)?;
                if hash != key.fx_hash() {
                    return Err(EngineError::Corrupt(
                        "stored view-key hash does not match its key".into(),
                    ));
                }
                let payload = R::decode(r)?;
                if payload.is_zero() {
                    return Err(EngineError::Corrupt(
                        "snapshot contains a zero payload".into(),
                    ));
                }
                view.add_encoded(hash, &key, &payload);
            }
        }
        if !r.is_empty() {
            return Err(EngineError::Corrupt(
                "trailing bytes after engine state".into(),
            ));
        }
        Ok(())
    }
}

/// Send audit: a sharded deployment constructs engines on the coordinating
/// thread and moves them onto workers, and the CDC service front end
/// (`fivm-cdc`) moves the engine onto its commit thread the same way, so
/// `Engine<R>` must be `Send` for every ring.  This never runs — it exists
/// because its body only *typechecks* while every engine component (views,
/// dictionary, scratch, lifts) stays `Send`; adding a non-`Send` field
/// breaks the build here instead of in the shard or cdc crate.
#[allow(dead_code)]
fn engine_is_send<R: Ring>() {
    fn assert_send<T: Send>() {}
    assert_send::<Engine<R>>();
}

impl<R: Ring> std::fmt::Debug for Engine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("views", &self.views.len())
            .field("stats", &self.stats)
            .finish()
    }
}
