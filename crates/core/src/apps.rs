//! Ready-made engine configurations for the paper's applications.
//!
//! Each constructor picks a ring and installs the matching attribute
//! functions (lifts) for the query's feature/label variables:
//!
//! * [`count_engine`] — the `Z` ring; maintains `COUNT(*)` of the join.
//! * [`covar_engine`] — the degree-m cofactor ring over the continuous
//!   features/label; maintains the COVAR matrix used by ridge regression.
//! * [`gen_covar_engine`] — the generalized cofactor ring; COVAR over a mix
//!   of continuous and categorical attributes (categorical interactions are
//!   grouped relations, i.e. compact one-hot encodings).
//! * [`mi_engine`] — the generalized cofactor ring with *every* aggregate
//!   attribute lifted categorically (continuous ones via equi-width
//!   binning); maintains the count aggregates needed for pairwise mutual
//!   information.
//! * [`relational_engine`] — the relation ring; maintains the listing of the
//!   join result projected onto the aggregate attributes (factorized
//!   conjunctive query evaluation).

use crate::engine::Engine;
use fivm_common::{AttrKind, FivmError, Result, Value, VarId};
use fivm_query::{QuerySpec, ViewTree};
use fivm_common::EncodedValue;
use fivm_ring::lift::{
    cofactor_continuous_lift, gen_categorical_lift, gen_continuous_lift, relational_lift,
};
use fivm_ring::{Cofactor, GenCofactor, LiftFn, RelValue, RingCtx};
use std::collections::HashMap;

/// The layout of the aggregate batch: which query variables participate, in
/// which order, and with which kind.  Positions in this layout are the
/// indices used by the cofactor rings and by the ML routines downstream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateLayout {
    /// The participating variables (features first, label last).
    pub vars: Vec<VarId>,
    /// Their names, aligned with `vars`.
    pub names: Vec<String>,
    /// Their kinds, aligned with `vars`.
    pub kinds: Vec<AttrKind>,
    /// Index (within `vars`) of the label, if the query declared one.
    pub label: Option<usize>,
}

impl AggregateLayout {
    /// Extracts the aggregate layout of a query.
    pub fn of(spec: &QuerySpec) -> Self {
        let vars = spec.aggregate_vars();
        let names = vars.iter().map(|&v| spec.var_name(v).to_string()).collect();
        let kinds = vars.iter().map(|&v| spec.var(v).kind).collect();
        let label = spec
            .label_var()
            .and_then(|l| vars.iter().position(|&v| v == l));
        AggregateLayout {
            vars,
            names,
            kinds,
            label,
        }
    }

    /// Number of attributes in the batch (the cofactor dimension `m`).
    pub fn dim(&self) -> usize {
        self.vars.len()
    }

    /// The batch index of a variable, if it participates.
    pub fn index_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }
}

/// Equi-width binning of a continuous attribute, used to discretize it for
/// the mutual-information application (as the paper does).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinSpec {
    /// Lower bound of the value range.
    pub lo: f64,
    /// Upper bound of the value range.
    pub hi: f64,
    /// Number of bins.
    pub bins: usize,
}

impl BinSpec {
    /// Creates a binning over `[lo, hi]` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "binning needs at least one bin");
        assert!(hi > lo, "binning range must be non-empty");
        BinSpec { lo, hi, bins }
    }

    /// The bin index of a value (clamped to the range).
    pub fn bin(&self, x: f64) -> i64 {
        let width = (self.hi - self.lo) / self.bins as f64;
        let raw = ((x - self.lo) / width).floor() as i64;
        raw.clamp(0, self.bins as i64 - 1)
    }

    /// Bins a [`Value`], interpreting non-numeric values as bin 0.
    pub fn bin_value(&self, v: &Value) -> Value {
        Value::Int(self.bin(v.as_f64().unwrap_or(0.0)))
    }
}

/// The lifts of the count application (`Z` ring): identity everywhere.
pub fn count_lifts(spec: &QuerySpec) -> Vec<LiftFn<i64>> {
    vec![LiftFn::identity(); spec.num_vars()]
}

/// The lifts of the continuous COVAR application (one per variable,
/// identity for join keys).
///
/// Returns an error if any feature/label variable is categorical — use
/// [`gen_covar_lifts`] for mixed attribute kinds.
pub fn covar_lifts(spec: &QuerySpec) -> Result<Vec<LiftFn<Cofactor>>> {
    let layout = AggregateLayout::of(spec);
    let dim = layout.dim();
    let mut lifts: Vec<LiftFn<Cofactor>> = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        if spec.var(v).kind == AttrKind::Categorical {
            return Err(FivmError::RingMismatch(format!(
                "variable `{}` is categorical; the plain cofactor ring only supports \
                 continuous attributes (use gen_covar_engine)",
                spec.var_name(v)
            )));
        }
        lifts[v] = cofactor_continuous_lift(dim, idx, spec.var_name(v));
    }
    Ok(lifts)
}

/// The lifts of the generalized (mixed continuous/categorical) COVAR
/// application.  Categorical values are tagged with their *batch index*
/// inside relational keys, which are dictionary-encoded through `ctx` —
/// the same context the engine must be built with
/// ([`crate::Engine::new_with_ctx`]); [`gen_covar_engine`] wires both
/// sides.
pub fn gen_covar_lifts(spec: &QuerySpec, ctx: &RingCtx) -> Vec<LiftFn<GenCofactor>> {
    let layout = AggregateLayout::of(spec);
    let dim = layout.dim();
    let mut lifts: Vec<LiftFn<GenCofactor>> = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        let name = spec.var_name(v);
        lifts[v] = match spec.var(v).kind {
            AttrKind::Continuous => gen_continuous_lift(dim, idx, name),
            AttrKind::Categorical => gen_categorical_lift(dim, idx, idx, name, ctx),
        };
    }
    lifts
}

/// The lifts of the mutual-information application: every aggregate
/// attribute lifted categorically, continuous attributes discretized
/// through the supplied equi-width binnings (keyed by variable id).
///
/// Returns an error if a continuous aggregate attribute has no binning.
pub fn mi_lifts(
    spec: &QuerySpec,
    binnings: &HashMap<VarId, BinSpec>,
    ctx: &RingCtx,
) -> Result<Vec<LiftFn<GenCofactor>>> {
    let layout = AggregateLayout::of(spec);
    let dim = layout.dim();
    let mut lifts: Vec<LiftFn<GenCofactor>> = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        let name = spec.var_name(v).to_string();
        lifts[v] = match spec.var(v).kind {
            AttrKind::Categorical => gen_categorical_lift(dim, idx, idx, &name, ctx),
            AttrKind::Continuous => {
                let bin = *binnings.get(&v).ok_or_else(|| {
                    FivmError::InvalidQuery(format!(
                        "continuous variable `{name}` needs a BinSpec for the MI application"
                    ))
                })?;
                // Bin indices are integers — they encode without the
                // dictionary, so both paths are context-free.
                // The bin spec is part of the name: lift names double as
                // behavior tags for DAG node identity (fivm_dag), so two MI
                // queries binning the same column differently must not share.
                LiftFn::new(
                    format!(
                        "mi_binned<{dim}>[{idx}]({name};{}..{}/{})",
                        bin.lo, bin.hi, bin.bins
                    ),
                    move |value| {
                        GenCofactor::lift_categorical(
                            dim,
                            idx,
                            idx,
                            EncodedValue::int(bin.bin(value.as_f64().unwrap_or(0.0))),
                        )
                    },
                )
                .with_fma(move |value, acc, scale, slot| {
                    let b = bin.bin(value.as_f64().unwrap_or(0.0));
                    slot.fma_lift_categorical(acc, dim, idx, idx, EncodedValue::int(b), scale);
                })
                .with_fma_encoded(move |ev, acc, scale, slot| {
                    let b = bin.bin(ev.as_f64().unwrap_or(0.0));
                    slot.fma_lift_categorical(acc, dim, idx, idx, EncodedValue::int(b), scale);
                })
            }
        };
    }
    Ok(lifts)
}

/// The lifts of the factorized-evaluation application (relation ring): the
/// payload is the listing of the join result projected onto the aggregate
/// attributes, keyed by variable id and encoded through `ctx`.
pub fn relational_lifts(spec: &QuerySpec, ctx: &RingCtx) -> Vec<LiftFn<RelValue>> {
    let layout = AggregateLayout::of(spec);
    let mut lifts: Vec<LiftFn<RelValue>> = vec![LiftFn::identity(); spec.num_vars()];
    for &v in &layout.vars {
        lifts[v] = relational_lift(v, spec.var_name(v), ctx);
    }
    lifts
}

/// Builds a count engine (`Z` ring): every variable uses the identity lift.
pub fn count_engine(tree: ViewTree) -> Result<Engine<i64>> {
    let lifts = count_lifts(tree.spec());
    Engine::new(tree, lifts)
}

/// Builds a COVAR engine over continuous attributes only.
///
/// Returns an error if any feature/label variable is categorical — use
/// [`gen_covar_engine`] for mixed attribute kinds.
pub fn covar_engine(tree: ViewTree) -> Result<Engine<Cofactor>> {
    let lifts = covar_lifts(tree.spec())?;
    Engine::new(tree, lifts)
}

/// Builds a COVAR engine over mixed continuous/categorical attributes using
/// the generalized cofactor ring.  Lifts and engine share one freshly
/// created [`RingCtx`] (the ring-key contract).
pub fn gen_covar_engine(tree: ViewTree) -> Result<Engine<GenCofactor>> {
    let ctx = RingCtx::new();
    let lifts = gen_covar_lifts(tree.spec(), &ctx);
    Engine::new_with_ctx(tree, lifts, ctx)
}

/// Builds a mutual-information engine; see [`mi_lifts`].
pub fn mi_engine(
    tree: ViewTree,
    binnings: &HashMap<VarId, BinSpec>,
) -> Result<Engine<GenCofactor>> {
    let ctx = RingCtx::new();
    let lifts = mi_lifts(tree.spec(), binnings, &ctx)?;
    Engine::new_with_ctx(tree, lifts, ctx)
}

/// Builds a factorized-evaluation engine over the relation ring; see
/// [`relational_lifts`].
pub fn relational_engine(tree: ViewTree) -> Result<Engine<RelValue>> {
    let ctx = RingCtx::new();
    let lifts = relational_lifts(tree.spec(), &ctx);
    Engine::new_with_ctx(tree, lifts, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_query::spec::figure1_query;
    use fivm_query::{EliminationHeuristic, VariableOrder, ViewTree};

    fn tree(categorical_c: bool) -> ViewTree {
        let spec = figure1_query(categorical_c);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        ViewTree::new(spec, vo).unwrap()
    }

    #[test]
    fn aggregate_layout_of_figure1() {
        let spec = figure1_query(true);
        let layout = AggregateLayout::of(&spec);
        assert_eq!(layout.dim(), 3);
        assert_eq!(layout.names, vec!["B", "C", "D"]);
        assert_eq!(layout.kinds[1], AttrKind::Categorical);
        assert_eq!(layout.label, None);
        assert_eq!(layout.index_of(spec.var_id("D").unwrap()), Some(2));
        assert_eq!(layout.index_of(spec.var_id("A").unwrap()), None);
    }

    #[test]
    fn covar_engine_rejects_categorical_features() {
        let err = covar_engine(tree(true)).unwrap_err();
        assert_eq!(err.kind(), "ring_mismatch");
        assert!(covar_engine(tree(false)).is_ok());
    }

    #[test]
    fn mi_engine_requires_binnings_for_continuous() {
        let t = tree(false);
        let err = mi_engine(t.clone(), &HashMap::new()).unwrap_err();
        assert_eq!(err.kind(), "invalid_query");
        let spec = t.spec().clone();
        let mut bins = HashMap::new();
        for name in ["B", "C", "D"] {
            bins.insert(spec.var_id(name).unwrap(), BinSpec::new(0.0, 10.0, 5));
        }
        assert!(mi_engine(t, &bins).is_ok());
    }

    #[test]
    fn bin_spec_clamps_and_bins() {
        let b = BinSpec::new(0.0, 10.0, 5);
        assert_eq!(b.bin(-3.0), 0);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(3.9), 1);
        assert_eq!(b.bin(9.99), 4);
        assert_eq!(b.bin(123.0), 4);
        assert_eq!(b.bin_value(&Value::double(4.1)), Value::Int(2));
        assert_eq!(b.bin_value(&Value::str("x")), Value::Int(0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn bin_spec_rejects_zero_bins() {
        let _ = BinSpec::new(0.0, 1.0, 0);
    }

    #[test]
    fn other_engines_construct() {
        assert!(count_engine(tree(false)).is_ok());
        assert!(gen_covar_engine(tree(true)).is_ok());
        assert!(relational_engine(tree(true)).is_ok());
    }
}
