//! Compilation of a [`ViewTree`] into an executable maintenance plan.
//!
//! The plan fixes, ahead of time, everything the engine does per update:
//!
//! * the layout of the *assignment* (the variables bound while joining at a
//!   node, `local_vars = key(X) ∪ {X}`),
//! * for every (node, updating child) pair, the sequence of sibling probes
//!   (with the secondary index each probe uses) that extends a delta tuple of
//!   the child to full assignments of the node,
//! * which secondary indexes every materialized view must maintain.
//!
//! Planning probes statically keeps the hot maintenance path free of any
//! decision making and guarantees the engine never builds an index lazily.

use fivm_common::{FivmError, RelId, Result, VarId};
use fivm_query::{ChildRef, ViewTree};

/// A marker for "this sibling column is already bound by the assignment".
pub const ALREADY_BOUND: usize = usize::MAX;

/// How a sibling is probed during delta propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// The probe key covers the sibling's whole key: use the primary map.
    Primary,
    /// Use the secondary index with this id (per-view numbering).
    Index(usize),
}

/// One sibling probe performed while extending a delta assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaStep {
    /// Index (into the engine's view array) of the sibling being probed.
    pub sibling_view: usize,
    /// Primary-map or secondary-index probe.
    pub probe: ProbeKind,
    /// Assignment positions to gather, in the order expected by the probe
    /// (primary: the sibling's key order; index: the index's column order).
    pub probe_positions: Vec<usize>,
    /// For every column of the sibling's key: the assignment position to
    /// write the matched value into, or [`ALREADY_BOUND`] if the column was
    /// part of the probe.
    pub write_positions: Vec<usize>,
}

/// The full recipe for propagating a delta arriving from one child of a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaPlan {
    /// For every column of the incoming delta tuple: its assignment position.
    pub scatter: Vec<usize>,
    /// Sibling probes, in execution order.
    pub steps: Vec<DeltaStep>,
    /// Assignment position of the node's own variable (read by the lift).
    pub var_position: usize,
    /// Assignment positions forming the output key (the node's `key_vars`).
    pub key_positions: Vec<usize>,
    /// Precomputed shortcut for probe-free (single-child) nodes: the output
    /// key and lifted variable read directly from delta-key columns, so the
    /// engine skips the assignment scatter/gather round-trip entirely.
    pub direct: Option<DirectEmit>,
}

/// Direct projection from an incoming delta key to a node's output, for
/// delta plans with no probe steps (every local variable is bound by the
/// updating child).  Positions are delta-key *columns*, not assignment
/// positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectEmit {
    /// Delta-key columns forming the output key, in `key_vars` order.
    pub key_cols: Vec<usize>,
    /// Delta-key column holding the node's own variable (read by the lift).
    pub var_col: usize,
    /// Whether `key_cols` is the identity over the *full* incoming delta
    /// key: the output key equals the input key, so its precomputed hash
    /// can be reused verbatim (no projection, no rehash).
    pub passthrough: bool,
}

/// A child of a node, as seen by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildInfo {
    /// Index into the engine's view array (lower view or relation leaf view).
    pub view_idx: usize,
    /// The variables of the child's key, in its column order.
    pub cover: Vec<VarId>,
}

/// The compiled plan of one view-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodePlan {
    /// The node id (also the index of the node's view in the view array).
    pub node_id: usize,
    /// The variable marginalized at this node.
    pub var: VarId,
    /// The node's group-by variables.
    pub key_vars: Vec<VarId>,
    /// `key_vars ∪ {var}`, the assignment layout.
    pub local_vars: Vec<VarId>,
    /// The node's children.
    pub children: Vec<ChildInfo>,
    /// One delta plan per child position.
    pub delta_plans: Vec<DeltaPlan>,
    /// `(parent node id, this node's position among the parent's children)`.
    pub parent: Option<(usize, usize)>,
}

/// The compiled plan of one base-relation leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafPlan {
    /// The relation id.
    pub rel: RelId,
    /// Index of the leaf's view in the engine's view array.
    pub view_idx: usize,
    /// The relation's variables (the leaf view's key).
    pub vars: Vec<VarId>,
    /// `(attachment node id, position among that node's children)`.
    pub parent: (usize, usize),
}

/// Compiles the delta plan for one `(node, updating child)` pair: the
/// scatter of the incoming delta tuple, the greedy sibling probe order and
/// the direct-emit shortcut for probe-free nodes.
///
/// `register_index(sibling_view, probe_cols)` is called whenever a probe
/// needs a secondary index on the sibling and must return the per-view
/// index id.  [`ExecutionPlan::compile`] collects requirements into the
/// plan's `index_requirements`; the multi-query DAG (`fivm_dag`) registers
/// them directly on its already-constructed shared views — both produce
/// `ProbeKind::Index` ids that line up with
/// `MaterializedView::ensure_index` order.
pub fn compile_delta_plan(
    node_id: usize,
    var: VarId,
    key_vars: &[VarId],
    local_vars: &[VarId],
    children: &[ChildInfo],
    updating_idx: usize,
    register_index: &mut dyn FnMut(usize, Vec<usize>) -> usize,
) -> Result<DeltaPlan> {
    // xlint:allow(no-panic): the expects below state plan-compiler invariants over an already-validated view tree (`remaining` non-empty while steps are being chosen; no-step plans cover every local var) — a failure is a compiler bug, and callers hold no partial plan to recover.
    let pos_of = |v: VarId| -> Result<usize> {
        local_vars.iter().position(|&x| x == v).ok_or_else(|| {
            FivmError::InvalidVariableOrder(format!(
                "variable {v} not among local variables of view {node_id}"
            ))
        })
    };
    let updating = &children[updating_idx];

    // Scatter: delta tuple columns (the child's cover) into the assignment.
    let scatter = updating
        .cover
        .iter()
        .map(|&v| pos_of(v))
        .collect::<Result<Vec<_>>>()?;

    let mut known: Vec<VarId> = updating.cover.clone();
    let mut remaining: Vec<usize> = (0..children.len())
        .filter(|&i| i != updating_idx)
        .collect();
    let mut steps = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Greedily pick the sibling sharing the most variables with the
        // already-bound set (ties by child order) to keep intermediate
        // fan-out small.
        let best_i = *remaining
            .iter()
            .max_by_key(|&&i| {
                let overlap = children[i]
                    .cover
                    .iter()
                    .filter(|v| known.contains(v))
                    .count();
                (overlap, usize::MAX - i)
            })
            .expect("remaining is non-empty");
        remaining.retain(|&i| i != best_i);
        let sibling = &children[best_i];

        // Probe columns: sibling key columns already bound.
        let probe_cols: Vec<usize> = sibling
            .cover
            .iter()
            .enumerate()
            .filter(|(_, v)| known.contains(v))
            .map(|(c, _)| c)
            .collect();
        let probe_positions = probe_cols
            .iter()
            .map(|&c| pos_of(sibling.cover[c]))
            .collect::<Result<Vec<_>>>()?;
        let probe = if probe_cols.len() == sibling.cover.len() {
            ProbeKind::Primary
        } else {
            // Register the secondary index on the sibling view.
            ProbeKind::Index(register_index(sibling.view_idx, probe_cols.clone()))
        };
        // For primary probes the gather order must be the sibling's full
        // key order.
        let probe_positions = if probe == ProbeKind::Primary {
            sibling
                .cover
                .iter()
                .map(|&v| pos_of(v))
                .collect::<Result<Vec<_>>>()?
        } else {
            probe_positions
        };

        let write_positions = sibling
            .cover
            .iter()
            .map(|&v| {
                if known.contains(&v) {
                    Ok(ALREADY_BOUND)
                } else {
                    pos_of(v)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        for &v in &sibling.cover {
            if !known.contains(&v) {
                known.push(v);
            }
        }
        steps.push(DeltaStep {
            sibling_view: sibling.view_idx,
            probe,
            probe_positions,
            write_positions,
        });
    }

    // Sanity: all local variables are bound after all steps.
    for &v in local_vars {
        if !known.contains(&v) {
            return Err(FivmError::InvalidVariableOrder(format!(
                "variable {v} of view {node_id} is never bound when child {updating_idx} is updated"
            )));
        }
    }

    // Probe-free plans read everything from the delta key; map
    // output-key/var variables back to delta-key columns once, here,
    // instead of scattering per delta entry at runtime.
    let direct = if steps.is_empty() {
        let col_of = |v: VarId| {
            updating
                .cover
                .iter()
                .position(|&c| c == v)
                .expect("no-step plans bind every local var from the child")
        };
        let key_cols: Vec<usize> = key_vars.iter().map(|&v| col_of(v)).collect();
        let passthrough = key_cols.len() == updating.cover.len()
            && key_cols.iter().enumerate().all(|(i, &c)| i == c);
        Some(DirectEmit {
            key_cols,
            var_col: col_of(var),
            passthrough,
        })
    } else {
        None
    };

    Ok(DeltaPlan {
        scatter,
        steps,
        var_position: pos_of(var)?,
        key_positions: key_vars
            .iter()
            .map(|&v| pos_of(v))
            .collect::<Result<Vec<_>>>()?,
        direct,
    })
}

/// The complete executable plan.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    tree: ViewTree,
    node_plans: Vec<NodePlan>,
    leaf_plans: Vec<LeafPlan>,
    /// Secondary indexes required per view (view idx → list of key-position
    /// lists).  Engine construction registers them in this exact order, so
    /// [`ProbeKind::Index`] ids line up with `MaterializedView::ensure_index`.
    index_requirements: Vec<Vec<Vec<usize>>>,
}

impl ExecutionPlan {
    /// Compiles a view tree into an execution plan.
    pub fn compile(tree: ViewTree) -> Result<Self> {
        // xlint:allow(no-panic): the expects below assert parent/child back-links of a validated ViewTree (a parent lists each child; an attachment node lists its relation) — structural invariants the tree constructor guarantees, not runtime error paths.
        let num_nodes = tree.len();
        let num_rels = tree.spec().num_relations();
        let num_views = num_nodes + num_rels;
        let mut index_requirements: Vec<Vec<Vec<usize>>> = vec![Vec::new(); num_views];

        // Child covers and view indices.
        let child_info = |child: &ChildRef| -> ChildInfo {
            match child {
                ChildRef::View(c) => ChildInfo {
                    view_idx: *c,
                    cover: tree.node(*c).key_vars.clone(),
                },
                ChildRef::Relation(r) => ChildInfo {
                    view_idx: num_nodes + r,
                    cover: tree.spec().relation(*r).vars.clone(),
                },
            }
        };

        let mut node_plans = Vec::with_capacity(num_nodes);
        for node in tree.nodes() {
            let children: Vec<ChildInfo> = node.children.iter().map(child_info).collect();
            let local_vars = node.local_vars.clone();

            let mut delta_plans = Vec::with_capacity(children.len());
            for j in 0..children.len() {
                delta_plans.push(compile_delta_plan(
                    node.id,
                    node.var,
                    &node.key_vars,
                    &local_vars,
                    &children,
                    j,
                    &mut |sibling_view, probe_cols| {
                        let reqs = &mut index_requirements[sibling_view];
                        match reqs.iter().position(|r| *r == probe_cols) {
                            Some(id) => id,
                            None => {
                                reqs.push(probe_cols);
                                reqs.len() - 1
                            }
                        }
                    },
                )?);
            }

            let parent = node.parent.map(|p| {
                let pos = tree
                    .node(p)
                    .children
                    .iter()
                    .position(|c| *c == ChildRef::View(node.id))
                    .expect("parent lists this node as a child");
                (p, pos)
            });

            node_plans.push(NodePlan {
                node_id: node.id,
                var: node.var,
                key_vars: node.key_vars.clone(),
                local_vars,
                children,
                delta_plans,
                parent,
            });
        }

        let leaf_plans = (0..num_rels)
            .map(|r| {
                let attach = tree.attach_node(r);
                let pos = tree
                    .node(attach)
                    .children
                    .iter()
                    .position(|c| *c == ChildRef::Relation(r))
                    .expect("attachment node lists the relation as a child");
                LeafPlan {
                    rel: r,
                    view_idx: num_nodes + r,
                    vars: tree.spec().relation(r).vars.clone(),
                    parent: (attach, pos),
                }
            })
            .collect();

        Ok(ExecutionPlan {
            tree,
            node_plans,
            leaf_plans,
            index_requirements,
        })
    }

    /// The view tree this plan was compiled from.
    pub fn tree(&self) -> &ViewTree {
        &self.tree
    }

    /// Per-node plans, indexed by node id.
    pub fn node_plans(&self) -> &[NodePlan] {
        &self.node_plans
    }

    /// Per-relation leaf plans, indexed by relation id.
    pub fn leaf_plans(&self) -> &[LeafPlan] {
        &self.leaf_plans
    }

    /// Secondary-index requirements per view.
    pub fn index_requirements(&self) -> &[Vec<Vec<usize>>] {
        &self.index_requirements
    }

    /// Total number of materialized views (variable views + relation leaves).
    pub fn num_views(&self) -> usize {
        self.node_plans.len() + self.leaf_plans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_query::spec::figure1_query;
    use fivm_query::ViewTree;

    fn figure1_plan() -> ExecutionPlan {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        let tree = ViewTree::from_parent_vars(spec, &parents).unwrap();
        ExecutionPlan::compile(tree).unwrap()
    }

    #[test]
    fn plan_has_views_for_variables_and_leaves() {
        let plan = figure1_plan();
        assert_eq!(plan.node_plans().len(), 4);
        assert_eq!(plan.leaf_plans().len(), 2);
        assert_eq!(plan.num_views(), 6);
        assert_eq!(plan.index_requirements().len(), 6);
    }

    #[test]
    fn root_delta_plans_probe_the_sibling_view() {
        let plan = figure1_plan();
        let spec = plan.tree().spec().clone();
        let a_node = plan.tree().vorder().node_of(spec.var_id("A").unwrap());
        let np = &plan.node_plans()[a_node];
        assert_eq!(np.children.len(), 2);
        // When either child changes, the other is probed on its full key (A).
        for dp in &np.delta_plans {
            assert_eq!(dp.steps.len(), 1);
            assert_eq!(dp.steps[0].probe, ProbeKind::Primary);
        }
        assert!(np.key_vars.is_empty());
        assert_eq!(np.parent, None);
    }

    #[test]
    fn single_child_nodes_have_no_probe_steps() {
        let plan = figure1_plan();
        let spec = plan.tree().spec().clone();
        let b_node = plan.tree().vorder().node_of(spec.var_id("B").unwrap());
        let np = &plan.node_plans()[b_node];
        assert_eq!(np.children.len(), 1);
        assert_eq!(np.delta_plans[0].steps.len(), 0);
        // The delta plan projects (A, B) down to (A).
        assert_eq!(np.delta_plans[0].key_positions.len(), 1);
        // B's parent is the root.
        let a_node = plan.tree().vorder().node_of(spec.var_id("A").unwrap());
        assert_eq!(np.parent.unwrap().0, a_node);
    }

    #[test]
    fn leaf_plans_point_to_attachment_nodes() {
        let plan = figure1_plan();
        let spec = plan.tree().spec().clone();
        let lp_r = &plan.leaf_plans()[0];
        assert_eq!(lp_r.vars, spec.relation(0).vars);
        assert_eq!(
            plan.node_plans()[lp_r.parent.0].var,
            spec.var_id("B").unwrap()
        );
        let lp_s = &plan.leaf_plans()[1];
        assert_eq!(
            plan.node_plans()[lp_s.parent.0].var,
            spec.var_id("D").unwrap()
        );
    }
}
