//! Materialized views with planned secondary indexes, stored hash-once.
//!
//! Each view stores a primary map from its group-by key to a ring payload.
//! Delta propagation needs to probe *sibling* views on subsets of their key
//! variables (the variables already bound by the incoming delta), so views
//! additionally maintain secondary indexes from those sub-keys to the full
//! keys.  Which indexes exist is decided once, at plan compilation time —
//! never ad hoc during maintenance.
//!
//! Storage layout (the hash-once design):
//!
//! * Entries live in a **slot slab** (`Vec<Slot>` plus a free list): the
//!   dictionary-encoded full key next to its payload, addressed by a stable
//!   `u32` slot id.
//! * The **primary map** is a [`RawTable`] from precomputed key hashes to
//!   slot ids — the caller supplies the hash, so a key given to
//!   [`MaterializedView::add_encoded`] or probed via
//!   [`MaterializedView::find_slot`] is never re-hashed here.
//! * **Secondary indexes** map an encoded sub-key to the `Vec<u32>` of slot
//!   ids carrying it.  Buckets store slot ids, not cloned keys, so an index
//!   probe streams `(full key, payload)` pairs straight out of the slab
//!   with no second primary-map lookup per match (the pre-encoding design
//!   paid one full-key hash + probe for every index hit).
//!
//! Freed slots keep their (exactly zero) payload: re-inserting into a freed
//! slot accumulates into that zero with [`Ring::add_assign`], reusing the
//! payload's buffers instead of cloning a fresh payload.

use fivm_common::{Dict, EncodedKey, Probe, RawTable, Value, VarId};
use fivm_relation::Relation;
use fivm_ring::Ring;

/// One slab entry: a full view key and its payload.
#[derive(Clone, Debug)]
struct Slot<R> {
    key: EncodedKey,
    payload: R,
}

/// A secondary index: maps an encoded projection of the key to the slot ids
/// of the entries carrying it.
///
/// Indexes are **lazy**: registration records the positions, but the
/// bucket map is only populated — and from then on maintained — once the
/// index is actually probed by the active update pattern
/// ([`MaterializedView::ensure_index_built`], called by the engine before
/// each propagation level that plans an index probe).  A leaf view whose
/// indexes the workload never probes (e.g. the fact table under a
/// fact-only update stream) pays zero index upkeep per row.
#[derive(Clone, Debug)]
struct SecondaryIndex {
    /// Positions (within the view key) of the indexed columns.
    positions: Vec<usize>,
    /// Whether the bucket map reflects the view contents.  `false` until
    /// the first probe forces a build; unbuilt indexes are skipped by
    /// insert/remove maintenance.
    built: bool,
    /// Encoded probe sub-key → slot ids.  Sub-keys are hashed once, when
    /// the bucket is touched; buckets never store key copies.
    map: RawTable<EncodedKey, Vec<u32>>,
}

impl SecondaryIndex {
    fn insert(&mut self, full_key: &EncodedKey, slot: u32) {
        let sub = full_key.project(&self.positions);
        let hash = sub.fx_hash();
        // Hit-path first: index buckets are long-lived, and `probe`
        // reserves capacity even on hits (kernel contract) — an existing
        // bucket must not grow the map.
        if let Some(idx) = self.map.find_idx(hash, |k, _| *k == sub) {
            self.map.value_at_mut(idx).push(slot);
            return;
        }
        match self.map.probe(hash, |k, _| *k == sub) {
            Probe::Found(idx) => self.map.value_at_mut(idx).push(slot),
            Probe::Vacant(idx) => self.map.occupy(idx, hash, sub, vec![slot]),
        }
    }

    fn remove(&mut self, full_key: &EncodedKey, slot: u32) {
        let sub = full_key.project(&self.positions);
        let hash = sub.fx_hash();
        if let Some(idx) = self.map.find_idx(hash, |k, _| *k == sub) {
            let bucket = self.map.value_at_mut(idx);
            if let Some(pos) = bucket.iter().position(|&s| s == slot) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.map.remove_at(idx);
            }
        }
    }
}

/// A materialized view: group-by keys over `key_vars` mapped to ring
/// payloads, plus the secondary indexes registered by the execution plan.
///
/// All hot-path operations take **precomputed** hashes and encoded keys;
/// the `Value`-level API ([`MaterializedView::get`],
/// [`MaterializedView::to_relation`]) is the output boundary and needs the
/// engine's [`Dict`].
#[derive(Clone, Debug)]
pub struct MaterializedView<R: Ring> {
    key_vars: Vec<VarId>,
    slots: Vec<Slot<R>>,
    free: Vec<u32>,
    map: RawTable<u32, ()>,
    indexes: Vec<SecondaryIndex>,
}

impl<R: Ring> MaterializedView<R> {
    /// An empty view keyed by the given variables.
    pub fn new(key_vars: Vec<VarId>) -> Self {
        MaterializedView {
            key_vars,
            slots: Vec::new(),
            free: Vec::new(),
            map: RawTable::new(),
            indexes: Vec::new(),
        }
    }

    /// The view's group-by variables.
    pub fn key_vars(&self) -> &[VarId] {
        &self.key_vars
    }

    /// Registers (or reuses) a secondary index over the given key positions
    /// and returns its id.  Registration is cheap: the index stays
    /// *deferred* (no bucket map, no per-insert upkeep) until
    /// [`MaterializedView::ensure_index_built`] forces a build on first
    /// probe.
    pub fn ensure_index(&mut self, positions: Vec<usize>) -> usize {
        if let Some(existing) = self.indexes.iter().position(|i| i.positions == positions) {
            return existing;
        }
        self.indexes.push(SecondaryIndex {
            positions,
            built: false,
            map: RawTable::new(),
        });
        self.indexes.len() - 1
    }

    /// Builds a deferred secondary index from the current view contents (a
    /// single slab scan); afterwards the index is maintained incrementally.
    /// Returns whether a deferred build was performed — the engine counts
    /// these in `EngineStats::deferred_index_builds`.
    pub fn ensure_index_built(&mut self, index_id: usize) -> bool {
        if self.indexes[index_id].built {
            return false;
        }
        let (slots, map, index) = (&self.slots, &self.map, &mut self.indexes[index_id]);
        index.built = true;
        for (&sid, ()) in map.iter() {
            index.insert(&slots[sid as usize].key, sid);
        }
        true
    }

    /// Whether a secondary index has been built (probed at least once).
    pub fn index_is_built(&self, index_id: usize) -> bool {
        self.indexes[index_id].built
    }

    /// Number of registered secondary indexes.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Number of keys with a non-zero payload.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total rehash (growth/compaction) events across the primary map and
    /// all secondary indexes — the `rehashes` engine counter.
    pub fn rehashes(&self) -> u64 {
        self.map.rehashes() + self.indexes.iter().map(|i| i.map.rehashes()).sum::<u64>()
    }

    /// Total rehash events inside the *payloads* of this view (the ring
    /// half of the hash-once contract; rings without interior tables
    /// report 0).  Parked (zeroed) slots are included: their buffers — and
    /// rehash history — survive for reuse.
    pub fn payload_rehashes(&self) -> u64 {
        self.slots.iter().map(|s| s.payload.payload_rehashes()).sum()
    }

    /// Heap bytes of this view's storage: the primary map and secondary
    /// index tables ([`RawTable::allocated_bytes`]), index bucket vectors,
    /// the slot slab, and every slot payload's interior buffers
    /// ([`Ring::payload_bytes`]).  Parked (freed) slots are included —
    /// their zero payloads keep buffers for reuse, and those bytes are
    /// resident.  Per-key heap (spilled `EncodedKey` words) is not
    /// counted; see the memory contract in ROADMAP.md for the boundary.
    pub fn table_bytes(&self) -> usize {
        let index_bytes: usize = self
            .indexes
            .iter()
            .map(|i| {
                i.map.allocated_bytes()
                    + i.map
                        .iter()
                        .map(|(_, bucket)| bucket.capacity() * std::mem::size_of::<u32>())
                        .sum::<usize>()
            })
            .sum();
        self.map.allocated_bytes()
            + index_bytes
            + self.slots.capacity() * std::mem::size_of::<Slot<R>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.slots.iter().map(|s| s.payload.payload_bytes()).sum::<usize>()
    }

    /// The slot id of a key, probed with its precomputed hash.
    #[inline]
    pub fn find_slot(&self, hash: u64, key: &EncodedKey) -> Option<u32> {
        let slots = &self.slots;
        self.map
            .find(hash, |&sid, _| slots[sid as usize].key == *key)
            .map(|(&sid, ())| sid)
    }

    /// The full key stored in a slot.
    #[inline]
    pub fn slot_key(&self, slot: u32) -> &EncodedKey {
        &self.slots[slot as usize].key
    }

    /// The payload stored in a slot.
    #[inline]
    pub fn slot_payload(&self, slot: u32) -> &R {
        &self.slots[slot as usize].payload
    }

    /// The payload of an encoded key, probed with its precomputed hash.
    #[inline]
    pub fn get_encoded(&self, hash: u64, key: &EncodedKey) -> Option<&R> {
        self.find_slot(hash, key).map(|sid| self.slot_payload(sid))
    }

    /// The payload of a `Value`-level key, if present (output boundary;
    /// encodes through the dictionary without interning).
    pub fn get(&self, dict: &Dict, key: &[Value]) -> Option<&R> {
        let encoded = dict.try_encode_key(key)?;
        self.get_encoded(encoded.fx_hash(), &encoded)
    }

    /// Adds a delta payload to a key whose hash the caller has already
    /// computed, maintaining secondary indexes and removing the key if its
    /// payload becomes zero.  The key is borrowed: the occupied case clones
    /// nothing, and a fresh insert copies the key into the slab (a word
    /// copy for inline-sized keys).
    ///
    /// Returns whether a ring addition was performed (an existing payload
    /// was accumulated into) — fresh inserts and zero deltas return
    /// `false`, so callers can keep exact ring-op counters.
    pub fn add_encoded(&mut self, hash: u64, key: &EncodedKey, delta: &R) -> bool {
        if delta.is_zero() {
            return false;
        }
        // Hit-path first: the primary map is the longest-lived table in
        // the engine, and `probe` reserves capacity even on hits (kernel
        // contract) — accumulating into an existing key must not grow it.
        let (map, slots) = (&mut self.map, &self.slots);
        if let Some(idx) = map.find_idx(hash, |&sid, _| slots[sid as usize].key == *key) {
            let sid = *map.at(idx).0;
            let slot = &mut self.slots[sid as usize];
            slot.payload.add_assign(delta);
            if slot.payload.is_zero() {
                // Erase: unlink from the primary map and every index,
                // then park the slot (its exactly-zero payload keeps
                // its buffers for the next insert reusing this slot).
                self.map.remove_at(idx);
                for index in &mut self.indexes {
                    if index.built {
                        index.remove(key, sid);
                    }
                }
                self.free.push(sid);
            }
            return true;
        }
        let (map, slots) = (&mut self.map, &self.slots);
        match map.probe(hash, |&sid, _| slots[sid as usize].key == *key) {
            // `find_idx` just missed, so the key cannot be present.
            Probe::Found(_) => unreachable!("key appeared between find_idx and probe"),
            Probe::Vacant(idx) => {
                let sid = match self.free.pop() {
                    Some(sid) => {
                        let slot = &mut self.slots[sid as usize];
                        slot.key = key.clone();
                        // The parked payload is exactly zero: accumulating
                        // the delta into it reuses its buffers.
                        slot.payload.add_assign(delta);
                        sid
                    }
                    None => {
                        // xlint:allow(no-panic): slot ids are u32 by layout contract; a
                        // view exceeding 2^32 entries has exhausted the id space and no
                        // typed error can make the caller's maintained state consistent.
                        let sid = u32::try_from(self.slots.len()).expect("view slot overflow");
                        self.slots.push(Slot {
                            key: key.clone(),
                            payload: delta.clone(),
                        });
                        sid
                    }
                };
                self.map.occupy(idx, hash, sid, ());
                for index in &mut self.indexes {
                    if index.built {
                        index.insert(key, sid);
                    }
                }
                false
            }
        }
    }

    /// Adds a delta payload to a `Value`-level key (test/boundary
    /// convenience; the hot path uses [`MaterializedView::add_encoded`]).
    pub fn add(&mut self, dict: &mut Dict, key: &[Value], delta: R) {
        let encoded = dict.encode_key(key);
        self.add_encoded(encoded.fx_hash(), &encoded, &delta);
    }

    /// Iterates `(stored hash, key, payload)` over the live entries — the
    /// snapshot encoder writes the stored hashes next to the keys so a
    /// restore re-buckets from them without hashing any key.
    pub fn iter_hashed(&self) -> impl Iterator<Item = (u64, &EncodedKey, &R)> + '_ {
        self.map.iter_hashed().map(|(h, &sid, ())| {
            let slot = &self.slots[sid as usize];
            (h, &slot.key, &slot.payload)
        })
    }

    /// Pre-sizes an **empty** view for `n` restored entries: the primary
    /// map is rebuilt at [`RawTable::with_capacity`] so inserting the
    /// snapshot entries performs zero growth rehashes, and the slot slab is
    /// reserved up front.  Part of the durability contract (ROADMAP.md):
    /// after a restore the view reports `rehashes() == 0`, exactly like a
    /// freshly warmed engine.
    ///
    /// Registered secondary indexes are untouched — they stay *deferred*
    /// and rebuild lazily from the restored slab on first probe, the same
    /// path a cold engine takes.
    pub fn reserve_restore(&mut self, n: usize) {
        assert!(
            self.map.is_empty() && self.slots.is_empty(),
            "reserve_restore on a non-empty view"
        );
        if n > 0 {
            self.map = RawTable::with_capacity(n);
            self.slots = Vec::with_capacity(n);
        }
    }

    /// The table index of a secondary-index bucket, probed with the
    /// sub-key's precomputed hash.  The returned handle is stable until the
    /// view is next mutated — the engine memoizes it per propagation level.
    #[inline]
    pub fn find_index_bucket(&self, index_id: usize, hash: u64, probe: &EncodedKey) -> Option<usize> {
        debug_assert!(
            self.indexes[index_id].built,
            "probing a deferred secondary index; call ensure_index_built first"
        );
        self.indexes[index_id].map.find_idx(hash, |k, _| k == probe)
    }

    /// The slot ids of a bucket handle returned by
    /// [`MaterializedView::find_index_bucket`].
    #[inline]
    pub fn index_bucket_at(&self, index_id: usize, bucket: usize) -> &[u32] {
        self.indexes[index_id].map.at(bucket).1
    }

    /// The slot ids a secondary index stores for a probe sub-key.
    #[inline]
    pub fn index_bucket(&self, index_id: usize, hash: u64, probe: &EncodedKey) -> Option<&[u32]> {
        self.find_index_bucket(index_id, hash, probe)
            .map(|b| self.index_bucket_at(index_id, b))
    }

    /// Probes a secondary index and visits every matching
    /// `(full key, payload)` pair straight out of the slab.
    pub fn probe_index<'a>(
        &'a self,
        index_id: usize,
        hash: u64,
        probe: &EncodedKey,
    ) -> impl Iterator<Item = (&'a EncodedKey, &'a R)> + 'a {
        self.index_bucket(index_id, hash, probe)
            .into_iter()
            .flatten()
            .map(move |&sid| {
                let slot = &self.slots[sid as usize];
                (&slot.key, &slot.payload)
            })
    }

    /// Iterates over all `(key, payload)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&EncodedKey, &R)> + '_ {
        let slots = &self.slots;
        self.map.iter().map(move |(&sid, ())| {
            let slot = &slots[sid as usize];
            (&slot.key, &slot.payload)
        })
    }

    /// Converts the view into a plain relation, decoding every key
    /// (output boundary).
    pub fn to_relation(&self, dict: &Dict) -> Relation<R> {
        Relation::from_entries(
            self.key_vars.clone(),
            self.iter().map(|(k, p)| (dict.decode_key(k), p.clone())),
        )
    }

    /// Sums all payloads.
    pub fn total(&self) -> R {
        let mut acc = R::zero();
        for (_, p) in self.iter() {
            acc.add_assign(p);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_relation::{tuple, Tuple};

    fn t(vals: &[i64]) -> Tuple {
        tuple(vals.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn add_get_and_zero_removal() {
        let mut dict = Dict::new();
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![0, 1]);
        v.add(&mut dict, &t(&[1, 2]), 3);
        v.add(&mut dict, &t(&[1, 2]), 4);
        assert_eq!(v.get(&dict, &t(&[1, 2])), Some(&7));
        v.add(&mut dict, &t(&[1, 2]), -7);
        assert!(v.get(&dict, &t(&[1, 2])).is_none());
        assert!(v.is_empty());
        v.add(&mut dict, &t(&[9, 9]), 0);
        assert!(v.is_empty());
        // The freed slot is reused by the next insert.
        v.add(&mut dict, &t(&[5, 5]), 11);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(&dict, &t(&[5, 5])), Some(&11));
    }

    #[test]
    fn secondary_index_tracks_inserts_and_removals() {
        let mut dict = Dict::new();
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![10, 20]);
        let idx = v.ensure_index(vec![0]);
        assert_eq!(idx, 0);
        // Re-registering the same positions reuses the index.
        assert_eq!(v.ensure_index(vec![0]), 0);
        assert_eq!(v.num_indexes(), 1);

        v.add(&mut dict, &t(&[1, 100]), 2);
        v.add(&mut dict, &t(&[1, 200]), 3);
        v.add(&mut dict, &t(&[2, 100]), 5);

        // The index is deferred until first probed; the build is lazy and
        // reported exactly once.
        assert!(!v.index_is_built(idx));
        assert!(v.ensure_index_built(idx));
        assert!(!v.ensure_index_built(idx), "second build is a no-op");
        assert!(v.index_is_built(idx));

        let probe = dict.encode_key(&t(&[1]));
        let hits: Vec<i64> = v
            .probe_index(idx, probe.fx_hash(), &probe)
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits.iter().sum::<i64>(), 5);

        // Deleting one entry removes it from the index bucket.
        v.add(&mut dict, &t(&[1, 100]), -2);
        let hits: Vec<i64> = v
            .probe_index(idx, probe.fx_hash(), &probe)
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(hits, vec![3]);
        // The surviving match streams the right full key out of the slab.
        let (full, _) = v.probe_index(idx, probe.fx_hash(), &probe).next().unwrap();
        assert_eq!(&*dict.decode_key(full), &*t(&[1, 200]));
        // Probing a missing key yields nothing.
        let missing = dict.encode_key(&t(&[42]));
        assert_eq!(v.probe_index(idx, missing.fx_hash(), &missing).count(), 0);
    }

    #[test]
    fn to_relation_and_total() {
        let mut dict = Dict::new();
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![0]);
        v.add(&mut dict, &t(&[1]), 2);
        v.add(&mut dict, &t(&[2]), 3);
        let r = v.to_relation(&dict);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&t(&[2])), Some(&3));
        assert_eq!(v.total(), 5);
        assert_eq!(v.key_vars(), &[0]);
    }

    #[test]
    fn unseen_string_probe_misses_without_interning() {
        let mut dict = Dict::new();
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![0]);
        v.add(&mut dict, &[Value::str("present")], 1);
        assert_eq!(v.get(&dict, &[Value::str("present")]), Some(&1));
        let before = dict.len();
        assert_eq!(v.get(&dict, &[Value::str("absent")]), None);
        assert_eq!(dict.len(), before, "probing must not intern");
    }
}
