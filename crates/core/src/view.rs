//! Materialized views with planned secondary indexes.
//!
//! Each view stores a primary map from its group-by key to a ring payload.
//! Delta propagation needs to probe *sibling* views on subsets of their key
//! variables (the variables already bound by the incoming delta), so views
//! additionally maintain secondary indexes from those sub-keys to the full
//! keys.  Which indexes exist is decided once, at plan compilation time —
//! never ad hoc during maintenance.

use fivm_common::{FxHashMap, Value, VarId};
use fivm_relation::{Relation, Tuple};
use fivm_ring::Ring;

/// A secondary index: maps a projection of the key to the list of full keys
/// currently present in the view.
#[derive(Clone, Debug)]
struct SecondaryIndex {
    /// Positions (within the view key) of the indexed columns.
    positions: Vec<usize>,
    /// Probe key → full keys with that probe key.
    map: FxHashMap<Tuple, Vec<Tuple>>,
    /// Reusable projection buffer, so probing an existing bucket allocates
    /// nothing (a boxed probe key is built only when a bucket is created).
    probe_buf: Vec<Value>,
}

impl SecondaryIndex {
    fn fill_probe_buf(&mut self, key: &[Value]) {
        self.probe_buf.clear();
        let positions = &self.positions;
        self.probe_buf.extend(positions.iter().map(|&p| key[p].clone()));
    }

    fn insert(&mut self, key: &Tuple) {
        self.fill_probe_buf(key);
        match self.map.get_mut(self.probe_buf.as_slice()) {
            Some(bucket) => bucket.push(key.clone()),
            None => {
                self.map
                    .insert(self.probe_buf.clone().into_boxed_slice(), vec![key.clone()]);
            }
        }
    }

    fn remove(&mut self, key: &Tuple) {
        self.fill_probe_buf(key);
        if let Some(bucket) = self.map.get_mut(self.probe_buf.as_slice()) {
            if let Some(pos) = bucket.iter().position(|k| k == key) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.map.remove(self.probe_buf.as_slice());
            }
        }
    }
}

/// A materialized view: group-by keys over `key_vars` mapped to ring
/// payloads, plus the secondary indexes registered by the execution plan.
#[derive(Clone, Debug)]
pub struct MaterializedView<R: Ring> {
    key_vars: Vec<VarId>,
    map: FxHashMap<Tuple, R>,
    indexes: Vec<SecondaryIndex>,
}

impl<R: Ring> MaterializedView<R> {
    /// An empty view keyed by the given variables.
    pub fn new(key_vars: Vec<VarId>) -> Self {
        MaterializedView {
            key_vars,
            map: FxHashMap::default(),
            indexes: Vec::new(),
        }
    }

    /// The view's group-by variables.
    pub fn key_vars(&self) -> &[VarId] {
        &self.key_vars
    }

    /// Registers (or reuses) a secondary index over the given key positions
    /// and returns its id.  Must be called before any data is inserted (the
    /// engine registers all indexes at construction time).
    pub fn ensure_index(&mut self, positions: Vec<usize>) -> usize {
        debug_assert!(
            self.map.is_empty(),
            "secondary indexes must be registered before loading data"
        );
        if let Some(existing) = self.indexes.iter().position(|i| i.positions == positions) {
            return existing;
        }
        self.indexes.push(SecondaryIndex {
            positions,
            map: FxHashMap::default(),
            probe_buf: Vec::new(),
        });
        self.indexes.len() - 1
    }

    /// Number of registered secondary indexes.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Number of keys with a non-zero payload.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The payload of a key, if present.
    pub fn get(&self, key: &[Value]) -> Option<&R> {
        self.map.get(key)
    }

    /// Adds a delta payload to a key, maintaining secondary indexes and
    /// removing the key if its payload becomes zero.
    ///
    /// Takes ownership of the key, so a fresh insert stores it without
    /// cloning; the secondary indexes read it from the entry in place
    /// (each index bucket keeps its own copy — the only clone left).
    pub fn add(&mut self, key: Tuple, delta: R) {
        if delta.is_zero() {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.map.entry(key) {
            Entry::Vacant(v) => {
                // Disjoint field borrows: `v` holds `self.map`, the index
                // maintenance walks `self.indexes`.
                for idx in &mut self.indexes {
                    idx.insert(v.key());
                }
                v.insert(delta);
            }
            Entry::Occupied(mut o) => {
                o.get_mut().add_assign(&delta);
                if o.get().is_zero() {
                    let (key, _) = o.remove_entry();
                    for idx in &mut self.indexes {
                        idx.remove(&key);
                    }
                }
            }
        }
    }

    /// Adds a delta payload by reference: the common occupied-key case
    /// accumulates with [`Ring::add_assign`] and clones nothing; only a
    /// fresh insert clones the key and payload.
    ///
    /// Returns whether a ring addition was performed (an existing payload
    /// was accumulated into) — fresh inserts and zero deltas return
    /// `false`, so callers can keep exact ring-op counters.
    pub fn add_ref(&mut self, key: &Tuple, delta: &R) -> bool {
        if delta.is_zero() {
            return false;
        }
        if let Some(slot) = self.map.get_mut(key) {
            slot.add_assign(delta);
            if slot.is_zero() {
                let (owned, _) = self.map.remove_entry(key).expect("key probed above");
                for idx in &mut self.indexes {
                    idx.remove(&owned);
                }
            }
            return true;
        }
        for idx in &mut self.indexes {
            idx.insert(key);
        }
        self.map.insert(key.clone(), delta.clone());
        false
    }

    /// Iterates over all `(key, payload)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> + '_ {
        self.map.iter()
    }

    /// Probes a secondary index with a probe key and visits every matching
    /// `(full key, payload)` pair.
    pub fn probe_index<'a>(
        &'a self,
        index_id: usize,
        probe: &[Value],
    ) -> impl Iterator<Item = (&'a Tuple, &'a R)> + 'a {
        self.index_bucket(index_id, probe)
            .into_iter()
            .flatten()
            .filter_map(move |k| self.map.get(k).map(|p| (k, p)))
    }

    /// The full keys a secondary index stores for a probe key.
    ///
    /// The returned slice borrows only the view (not `probe`), which lets
    /// the engine stream matches while reusing its probe-key buffer.
    pub fn index_bucket(&self, index_id: usize, probe: &[Value]) -> Option<&[Tuple]> {
        self.indexes[index_id].map.get(probe).map(Vec::as_slice)
    }

    /// Converts the view into a plain relation (copying all entries).
    pub fn to_relation(&self) -> Relation<R> {
        Relation::from_entries(
            self.key_vars.clone(),
            self.map.iter().map(|(k, p)| (k.clone(), p.clone())),
        )
    }

    /// Sums all payloads.
    pub fn total(&self) -> R {
        let mut acc = R::zero();
        for p in self.map.values() {
            acc.add_assign(p);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_relation::tuple;

    fn t(vals: &[i64]) -> Tuple {
        tuple(vals.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn add_get_and_zero_removal() {
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![0, 1]);
        v.add(t(&[1, 2]), 3);
        v.add(t(&[1, 2]), 4);
        assert_eq!(v.get(&t(&[1, 2])), Some(&7));
        v.add(t(&[1, 2]), -7);
        assert!(v.get(&t(&[1, 2])).is_none());
        assert!(v.is_empty());
        v.add(t(&[9, 9]), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn secondary_index_tracks_inserts_and_removals() {
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![10, 20]);
        let idx = v.ensure_index(vec![0]);
        assert_eq!(idx, 0);
        // Re-registering the same positions reuses the index.
        assert_eq!(v.ensure_index(vec![0]), 0);
        assert_eq!(v.num_indexes(), 1);

        v.add(t(&[1, 100]), 2);
        v.add(t(&[1, 200]), 3);
        v.add(t(&[2, 100]), 5);

        let hits: Vec<i64> = v
            .probe_index(idx, &t(&[1]))
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits.iter().sum::<i64>(), 5);

        // Deleting one entry removes it from the index bucket.
        v.add(t(&[1, 100]), -2);
        let hits: Vec<i64> = v.probe_index(idx, &t(&[1])).map(|(_, p)| *p).collect();
        assert_eq!(hits, vec![3]);
        // Probing a missing key yields nothing.
        assert_eq!(v.probe_index(idx, &t(&[42])).count(), 0);
    }

    #[test]
    fn to_relation_and_total() {
        let mut v: MaterializedView<i64> = MaterializedView::new(vec![0]);
        v.add(t(&[1]), 2);
        v.add(t(&[2]), 3);
        let r = v.to_relation();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&t(&[2])), Some(&3));
        assert_eq!(v.total(), 5);
        assert_eq!(v.key_vars(), &[0]);
    }
}
