//! Typed engine errors: [`EngineError`] and the [`EngineResult`] alias.
//!
//! The engine's public mutation surface (`apply_rows` / `apply_update` /
//! `load_database` / `bind_table`) and the snapshot surface (`save_state` /
//! `load_state`) report failures through one enum instead of a mix of
//! [`FivmError`] returns and out-of-bounds panics.  Query/update validation
//! errors still originate as [`FivmError`] deeper in the engine and are
//! wrapped (`From`), so `?` keeps working in engine internals and callers
//! can keep matching on [`EngineError::kind`] strings.

use fivm_common::{FivmError, WireError};
use std::fmt;

/// Result alias using [`EngineError`].
pub type EngineResult<T> = std::result::Result<T, EngineError>;

/// Errors raised by the engine's public maintenance and snapshot surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query/update-level failure (unknown relation, arity mismatch, ring
    /// shape mismatch, ...) — the pre-existing [`FivmError`] taxonomy.
    Query(FivmError),
    /// An operation does not fit the engine's current state: restoring a
    /// snapshot onto a non-empty engine, onto a different plan or ring, or
    /// addressing a relation id the compiled query does not have.
    State(String),
    /// Persisted state failed to decode (truncated or corrupt snapshot
    /// bytes, stored hash not matching its key).
    Corrupt(String),
}

impl EngineError {
    /// Short machine-readable category name, mirroring
    /// [`FivmError::kind`] for wrapped query errors.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Query(e) => e.kind(),
            EngineError::State(_) => "state",
            EngineError::Corrupt(_) => "corrupt",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => e.fmt(f),
            EngineError::State(msg) => write!(f, "engine state error: {msg}"),
            EngineError::Corrupt(msg) => write!(f, "corrupt engine state: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FivmError> for EngineError {
    fn from(e: FivmError) -> Self {
        EngineError::Query(e)
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        EngineError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let q = EngineError::from(FivmError::InvalidUpdate("bad row".into()));
        assert_eq!(q.kind(), "invalid_update");
        assert!(q.to_string().contains("bad row"));
        assert_eq!(EngineError::State("x".into()).kind(), "state");
        assert_eq!(EngineError::Corrupt("y".into()).kind(), "corrupt");
        let c = EngineError::from(WireError::Truncated);
        assert_eq!(c.kind(), "corrupt");
        assert!(c.to_string().contains("truncated"));
    }

    #[test]
    fn error_is_std_error_with_source() {
        use std::error::Error;
        let e = EngineError::from(FivmError::Numerical("singular".into()));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
        assert!(EngineError::State("s".into()).source().is_none());
    }

    #[test]
    fn source_of_wrapped_query_error_downcasts() {
        use std::error::Error;
        let e = EngineError::from(FivmError::RingMismatch("dim".into()));
        let src = e.source().unwrap();
        assert!(src.downcast_ref::<FivmError>().is_some());
    }
}
