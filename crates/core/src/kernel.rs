//! The shared delta-propagation kernel.
//!
//! Everything a maintenance pass needs at one view level — grouping input
//! rows into a keyed delta, probing sibling views to extend assignments,
//! applying lifts, accumulating contributions — lives here, decoupled from
//! any particular owner of the views.  [`crate::engine::Engine`] drives the
//! kernel along a single view tree's leaf-to-root path; `fivm_dag` drives
//! the very same functions across a shared multi-query DAG where one
//! produced delta fans out to several parents.  Keeping one implementation
//! guarantees the two agree bit for bit, which is what the DAG's
//! differential suite asserts.
//!
//! The kernel upholds the hash-once contract: every key is hashed exactly
//! once (when it is first gathered/encoded) and the hash travels with the
//! key through delta tables, view application and parent levels.

use crate::plan::{DeltaPlan, DeltaStep, DirectEmit, ProbeKind, ALREADY_BOUND};
use crate::view::MaterializedView;
use crate::EngineStats;
use fivm_common::{Dict, EncodedKey, EncodedValue, FivmError, Probe, RawTable, Result, Value};
use fivm_ring::{LiftFn, Ring, RingCtx};

/// Debug-only tally backing the hash-once contract: within one
/// propagation level, the kernel may compute at most one hash per key it
/// materializes.  [`hash_tally::LevelScope`] brackets a level
/// ([`direct_level`] / [`probe_level`]); `note_key` marks every key
/// materialization (project / gather / passthrough clone) and `note_hash`
/// every `fx_hash` call.  The scope's drop asserts `hashes <= keys` — a
/// second hash of an already-materialized key (the regression the
/// contract forbids) pushes the tally over.  Outside a scope (ingestion's
/// `group_row`, ad-hoc callers) the notes no-op; release builds compile
/// the whole thing away.
#[cfg(debug_assertions)]
pub(crate) mod hash_tally {
    use std::cell::Cell;

    thread_local! {
        static ACTIVE: Cell<bool> = const { Cell::new(false) };
        static KEYS: Cell<u64> = const { Cell::new(0) };
        static HASHES: Cell<u64> = const { Cell::new(0) };
    }

    /// RAII bracket around one propagation level.  `None` when a scope is
    /// already active on this thread (a nested level keeps the outer
    /// scope's tally — the contract is per outermost level).
    pub(crate) struct LevelScope {
        name: &'static str,
    }

    impl LevelScope {
        pub(crate) fn enter(name: &'static str) -> Option<LevelScope> {
            if ACTIVE.with(|a| a.replace(true)) {
                return None;
            }
            KEYS.with(|k| k.set(0));
            HASHES.with(|h| h.set(0));
            Some(LevelScope { name })
        }
    }

    impl Drop for LevelScope {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(false));
            if std::thread::panicking() {
                return;
            }
            let keys = KEYS.with(Cell::get);
            let hashes = HASHES.with(Cell::get);
            assert!(
                hashes <= keys,
                "hash-once contract violated in {}: {hashes} hashes computed \
                 for {keys} materialized keys",
                self.name
            );
        }
    }

    #[inline]
    pub(crate) fn note_key() {
        if ACTIVE.with(Cell::get) {
            KEYS.with(|k| k.set(k.get() + 1));
        }
    }

    #[inline]
    pub(crate) fn note_hash() {
        if ACTIVE.with(Cell::get) {
            HASHES.with(|h| h.set(h.get() + 1));
        }
    }
}

/// Release builds: the tally is free.
#[cfg(not(debug_assertions))]
pub(crate) mod hash_tally {
    pub(crate) struct LevelScope;

    impl LevelScope {
        #[inline(always)]
        pub(crate) fn enter(_name: &'static str) -> Option<LevelScope> {
            None
        }
    }

    #[inline(always)]
    pub(crate) fn note_key() {}

    #[inline(always)]
    pub(crate) fn note_hash() {}
}

/// A memoized probe result for one probe depth, valid for the duration of
/// one propagation level (views are immutable while a level's delta is
/// being extended).  Grouped deltas on skewed data repeatedly probe the
/// same sub-key; the memo answers those repeats with a stored slot/bucket
/// handle instead of a table walk.
pub struct StepMemo {
    hash: u64,
    key: EncodedKey,
    state: MemoState,
}

enum MemoState {
    /// The memo holds nothing (level boundary).
    Invalid,
    /// Last probe of this depth missed.
    Miss,
    /// Last primary probe hit this view slot.
    Slot(u32),
    /// Last index probe hit this bucket handle.
    Bucket(usize),
}

impl StepMemo {
    /// A fresh (invalid) memo.
    pub fn new() -> Self {
        StepMemo {
            hash: 0,
            key: EncodedKey::empty(),
            state: MemoState::Invalid,
        }
    }

    /// Forgets the stored probe result (call at every level boundary).
    pub fn invalidate(&mut self) {
        self.state = MemoState::Invalid;
    }

    #[inline]
    fn matches(&self, hash: u64, key: &EncodedKey) -> bool {
        !matches!(self.state, MemoState::Invalid) && self.hash == hash && self.key == *key
    }

    /// Resolves a primary probe, consulting the memo first.
    #[inline]
    pub fn probe_primary<R: Ring>(
        &mut self,
        view: &MaterializedView<R>,
        hash: u64,
        key: EncodedKey,
    ) -> Option<u32> {
        if self.matches(hash, &key) {
            return match self.state {
                MemoState::Slot(slot) => Some(slot),
                _ => None,
            };
        }
        let found = view.find_slot(hash, &key);
        self.hash = hash;
        self.key = key;
        self.state = match found {
            Some(slot) => MemoState::Slot(slot),
            None => MemoState::Miss,
        };
        found
    }

    /// Resolves a secondary-index probe, consulting the memo first.
    #[inline]
    pub fn probe_index<R: Ring>(
        &mut self,
        view: &MaterializedView<R>,
        index_id: usize,
        hash: u64,
        key: EncodedKey,
    ) -> Option<usize> {
        if self.matches(hash, &key) {
            return match self.state {
                MemoState::Bucket(bucket) => Some(bucket),
                _ => None,
            };
        }
        let found = view.find_index_bucket(index_id, hash, &key);
        self.hash = hash;
        self.key = key;
        self.state = match found {
            Some(bucket) => MemoState::Bucket(bucket),
            None => MemoState::Miss,
        };
        found
    }
}

impl Default for StepMemo {
    fn default() -> Self {
        StepMemo::new()
    }
}

/// Reusable buffers for delta propagation, kept across updates so the hot
/// path performs no per-update container allocation.
pub struct PropagationScratch<R: Ring> {
    /// The delta entering the current level, with the precomputed hash of
    /// every key (drained from `next`, hashes and all).
    pub current: Vec<(u64, EncodedKey, R)>,
    /// The delta being produced for the next level, keyed by precomputed
    /// hashes.
    pub next: RawTable<EncodedKey, R>,
    /// Per-probe-depth partial products (`acc * sibling payload`); their
    /// inner allocations (vectors, matrices, maps) are reused by
    /// [`Ring::mul_into`].
    pub partials: Vec<R>,
    /// Per-probe-depth memoized probe results (valid within one level).
    pub memo: Vec<StepMemo>,
    /// The assignment (bound variable values) at the current node, in
    /// encoded form — scatters and gathers are plain word copies.
    pub assignment: Vec<EncodedValue>,
    /// Recycled delta payloads: exact-zero ring values whose interior
    /// buffers (relation tables, cofactor matrices) are reused by the next
    /// level's accumulation instead of being freed and reallocated.
    /// Capped at [`POOL_CAP`], and disabled entirely for identity-only
    /// lift sets (e.g. COUNT): only the fused-lift emit arm draws from the
    /// pool, so an engine without non-identity lifts must not pay any
    /// pooling work (not even the pool vector's growth).
    pub pool: Vec<R>,
    /// Whether any lift can draw from the pool (see `pool`).
    pub pool_enabled: bool,
    /// Columnar scratch for probe-free levels (see [`direct_level`]); its
    /// column buffers are reused across updates like every other scratch
    /// buffer here.
    pub columns: LevelColumns,
    /// Which kernel the probe-free levels run (see [`KernelMode`]).
    pub mode: KernelMode,
}

/// Kernel selection for probe-free (direct-emit) propagation levels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Columnar for batches of at least [`COLUMNAR_MIN_ROWS`] rows, scalar
    /// below (sorting a handful of rows costs more than it fuses).
    #[default]
    Auto,
    /// Always the per-row scalar path (the differential baseline).
    Scalar,
    /// Always the columnar path, regardless of batch size.
    Columnar,
}

/// Smallest direct-level delta the [`KernelMode::Auto`] heuristic routes to
/// the columnar kernel.
pub const COLUMNAR_MIN_ROWS: usize = 8;

/// Struct-of-arrays scratch for one probe-free propagation level: parallel
/// hash/key/value/weight column slices over the incoming delta, plus the
/// run-local gather buffers the batch lift channel consumes.  Owned by
/// [`PropagationScratch`] so a warm engine fills these columns without
/// allocating.
#[derive(Default)]
pub struct LevelColumns {
    /// Output keys, one per input row.
    keys: Vec<EncodedKey>,
    /// The lifted variable's encoded value per row.
    evs: Vec<EncodedValue>,
    /// The row payload's scalar mass, when it has one
    /// ([`Ring::scalar_weight`]); rows with `None` force the run onto the
    /// per-row fused path.
    scalar_ws: Vec<Option<f64>>,
    /// `(run hash, input index)` per row — the output-key hash on direct
    /// levels, a mix of the probe-key and output-key hashes on probe
    /// levels.  Sorting this flat column groups equal hashes — hence equal
    /// run identities — into adjacent spans in arrival order, without
    /// touching key words in the comparator.
    ord: Vec<(u64, u32)>,
    /// Output-key hashes, one per row (probe levels only; on direct levels
    /// `ord` already carries them).
    out_hashes: Vec<u64>,
    /// Gathered probe keys, `steps.len()` per row, row-major (probe levels
    /// only).
    probe_keys: Vec<EncodedKey>,
    /// Probe-key hashes, same stride as `probe_keys`.
    probe_hashes: Vec<u64>,
    /// Gathered encoded values of the current run (batch-channel operand).
    run_evs: Vec<EncodedValue>,
    /// Gathered scalar weights of the current run (batch-channel operand).
    run_ws: Vec<f64>,
    /// Sibling view slots the current run's probes resolved to.
    run_slots: Vec<u32>,
}

impl LevelColumns {
    fn clear(&mut self) {
        self.keys.clear();
        self.evs.clear();
        self.scalar_ws.clear();
        self.ord.clear();
        self.out_hashes.clear();
        self.probe_keys.clear();
        self.probe_hashes.clear();
    }
}

/// Order-insensitive is not required here — a fixed left fold of the
/// probe-key hashes and the output-key hash into one run identity.  Equal
/// `(probe keys…, output key)` tuples always collide (good: they must land
/// in one run); unequal tuples colliding is handled by the key-uniformity
/// check in [`probe_level`].
#[inline]
fn mix_hash(acc: u64, h: u64) -> u64 {
    (acc.rotate_left(5) ^ h).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Upper bound on pooled delta payloads (see `PropagationScratch::pool`).
pub const POOL_CAP: usize = 4096;

impl<R: Ring> PropagationScratch<R> {
    /// Scratch sized for a plan's deepest probe chain and widest node.
    pub fn new(max_probe_depth: usize, max_local_vars: usize, pool_enabled: bool) -> Self {
        PropagationScratch {
            current: Vec::new(),
            next: RawTable::new(),
            partials: (0..max_probe_depth).map(|_| R::zero()).collect(),
            memo: (0..max_probe_depth).map(|_| StepMemo::new()).collect(),
            assignment: vec![EncodedValue::NULL; max_local_vars],
            pool: Vec::new(),
            pool_enabled,
            columns: LevelColumns::default(),
            mode: KernelMode::default(),
        }
    }

    /// Grows the per-depth and per-node buffers in place (registering a new
    /// query into a shared DAG can deepen the probe chains or widen the
    /// nodes after construction).  Never shrinks.
    pub fn grow(&mut self, max_probe_depth: usize, max_local_vars: usize, pool_enabled: bool) {
        while self.partials.len() < max_probe_depth {
            self.partials.push(R::zero());
            self.memo.push(StepMemo::new());
        }
        if self.assignment.len() < max_local_vars {
            self.assignment.resize(max_local_vars, EncodedValue::NULL);
        }
        self.pool_enabled |= pool_enabled;
    }

    /// Recycles the current level's delta payloads into the pool (they
    /// were applied to the view by reference): each is reset to an exact
    /// zero keeping its in-budget buffers, up to [`POOL_CAP`] payloads.
    pub fn recycle_current(&mut self) {
        for (_, _, payload) in self.current.drain(..) {
            if self.pool_enabled && self.pool.len() < POOL_CAP {
                let mut payload = payload;
                payload.reset_zero();
                self.pool.push(payload);
            }
        }
    }

    /// Recycles an arbitrary drained delta buffer into the pool — the DAG
    /// keeps one buffer per in-flight fan-out edge rather than a single
    /// `current`, but the pooling discipline is identical.
    pub fn recycle_buffer(&mut self, buffer: &mut Vec<(u64, EncodedKey, R)>) {
        for (_, _, payload) in buffer.drain(..) {
            if self.pool_enabled && self.pool.len() < POOL_CAP {
                let mut payload = payload;
                payload.reset_zero();
                self.pool.push(payload);
            }
        }
    }
}

/// Merges one input row into the grouped leaf delta: encodes the row
/// through the table binding (or validates its arity) directly into an
/// [`EncodedKey`], hashes the key **once**, then accumulates `1 · mult`
/// under that key.
///
/// Shared by the single-tree engine's update paths and the DAG's leaf
/// ingestion so the validation and grouping semantics cannot diverge.  On
/// error the grouped delta is cleared so the scratch stays drained for the
/// next batch.
#[allow(clippy::too_many_arguments)]
pub fn group_row<R: Ring>(
    delta: &mut RawTable<EncodedKey, R>,
    dict: &mut Dict,
    stats: &mut EngineStats,
    one: &R,
    binding: Option<&[usize]>,
    arity: usize,
    row: &[Value],
    mult: i64,
) -> Result<()> {
    if mult == 0 {
        return Ok(());
    }
    // Encode the projected row straight into the key — one pass, no
    // intermediate buffer.
    let key = match binding {
        Some(cols) => {
            if let Some(&c) = cols.iter().find(|&&c| c >= row.len()) {
                delta.clear();
                return Err(FivmError::InvalidUpdate(format!(
                    "row has {} columns but column {c} was bound",
                    row.len()
                )));
            }
            EncodedKey::from_fn(cols.len(), |i| dict.encode_value(&row[cols[i]]))
        }
        None => {
            if row.len() != arity {
                delta.clear();
                return Err(FivmError::InvalidUpdate(format!(
                    "row arity {} does not match relation arity {arity}",
                    row.len()
                )));
            }
            EncodedKey::from_fn(arity, |i| dict.encode_value(&row[i]))
        }
    };
    let hash = key.fx_hash();
    // xlint:allow(probe-upsert): `delta` is the ingestion-side grouping accumulator, an upsert table by definition (every row either lands on its group or opens one) — the reserving probe is one walk per row.
    match delta.probe(hash, |k, _| *k == key) {
        Probe::Found(idx) => {
            delta.value_at_mut(idx).fma_scaled(one, one, mult);
            stats.ring_adds += 1;
        }
        Probe::Vacant(idx) => {
            delta.occupy(idx, hash, key, one.scale_int(mult));
        }
    }
    Ok(())
}

/// Accumulates one contribution under an output key into a level's delta
/// table.  `hash` is the key's precomputed hash; `ev` is the lifted
/// variable's dictionary-encoded value, consumed directly by lifts with an
/// encoded fused accumulate — a raw [`Value`] materializes only for lifts
/// without one (the decode goes through the context, off the lock-free
/// path).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn emit<R: Ring>(
    out: &mut RawTable<EncodedKey, R>,
    lift: &LiftFn<R>,
    ev: EncodedValue,
    ctx: &RingCtx,
    key: EncodedKey,
    hash: u64,
    acc: &R,
    pool: &mut Vec<R>,
    stats: &mut EngineStats,
) {
    // xlint:allow(probe-upsert): `out` is the level-local delta table every caller drains per level — an upsert table where any lookup may insert, so the reserving probe is the single-walk discipline the kernel contract prescribes here.
    if lift.is_identity() {
        match out.probe(hash, |k, _| *k == key) {
            Probe::Found(idx) => {
                out.value_at_mut(idx).add_assign(acc);
                stats.ring_adds += 1;
            }
            Probe::Vacant(idx) => {
                // Clone rather than accumulate into a pooled zero: a pooled
                // buffer may carry a different zero *shape* (a recycled
                // dense element vs a scalar), and the stored payload's
                // representation must not depend on pool history.  The
                // fused-lift arm below is shape-deterministic (the lift
                // promotes to a dense element either way) and does pool.
                out.occupy(idx, hash, key, acc.clone());
            }
        }
    } else {
        // Fused lift-multiply-accumulate: `slot += acc · g(v)` without
        // materializing the (sparse) lifted element when the lift carries a
        // specialization.
        match out.probe(hash, |k, _| *k == key) {
            Probe::Found(idx) => {
                lift.fma_apply_encoded(ev, |e| ctx.decode_value(e), acc, 1, out.value_at_mut(idx));
                stats.ring_adds += 1;
                stats.ring_muls += 1;
            }
            Probe::Vacant(idx) => {
                let mut payload = pool.pop().unwrap_or_else(R::zero);
                debug_assert!(payload.is_zero(), "pooled payload must be zero");
                lift.fma_apply_encoded(ev, |e| ctx.decode_value(e), acc, 1, &mut payload);
                stats.ring_muls += 1;
                if !payload.is_zero() {
                    out.occupy(idx, hash, key, payload);
                } else {
                    pool.push(payload);
                }
            }
        }
    }
}

/// Runs one probe-free (direct-emit) propagation level: projects every
/// incoming delta row to its output key and accumulates the lifted
/// contributions into `out`.
///
/// `out` is the level-local delta table (the engine's drained scratch),
/// an *upsert* table: every lookup may be followed by an insert, so both
/// kernels use the reserving [`RawTable::probe`] — the correct discipline
/// here, exactly one table walk per lookup.  (The `find_idx`-first
/// discipline is for read-mostly hit paths — view probes, ring-interior
/// reads — where a reserving probe on a hit could rehash a warm table at
/// the load-factor boundary; that contract is pinned at the table layer,
/// see `rawtable_differential.rs`.)
///
/// Two kernels, selected by `mode` (identical results; see the kernel
/// contract in ROADMAP.md for the exactness fine print):
///
/// * **Scalar** — the per-row loop: project, hash, [`emit`].
/// * **Columnar** — fills struct-of-arrays column slices (one pass), sorts
///   the flat `(hash, input index)` column so rows sharing an output key
///   form adjacent *runs* in arrival order (equal keys hash equal; the
///   index tie-break keeps per-key accumulation order identical to the
///   scalar path), then applies each run with **one** reserving probe
///   instead of one per row.  A run whose rows all carry scalar payload
///   mass ([`Ring::scalar_weight`]) and whose lift has a batch channel
///   ([`LiftFn::fma_batch`]) collapses further into a single lift dispatch
///   over the gathered value/weight slices.  Distinct keys colliding on
///   the 64-bit hash would interleave inside a run, so a run that is not
///   key-uniform (checked with one linear scan) falls back to per-row
///   [`emit`] — vanishingly rare, semantics identical.
///
/// On passthrough levels (`direct.passthrough`) the output key *is* the
/// input key: both kernels reuse the incoming precomputed hash and clone
/// the key instead of projecting and rehashing — the hash-once contract
/// extended across the level boundary.
#[allow(clippy::too_many_arguments)]
pub fn direct_level<R: Ring>(
    direct: &DirectEmit,
    lift: &LiftFn<R>,
    ctx: &RingCtx,
    input: &[(u64, EncodedKey, R)],
    out: &mut RawTable<EncodedKey, R>,
    cols: &mut LevelColumns,
    pool: &mut Vec<R>,
    mode: KernelMode,
    stats: &mut EngineStats,
) {
    // xlint:allow(probe-upsert): `out` is the level-local delta upsert table — every lookup may insert, so the reserving probe is exactly one table walk per lookup (see the contract note in this function's doc).
    // xlint:allow(no-panic): the expects guard run invariants established two lines above each site (`batchable` implies every `scalar_ws` is Some and `batch` is Some) — unreachable by construction, not error paths.
    let _tally = hash_tally::LevelScope::enter("direct_level");
    let columnar = match mode {
        KernelMode::Scalar => false,
        KernelMode::Columnar => true,
        KernelMode::Auto => input.len() >= COLUMNAR_MIN_ROWS,
    };
    if !columnar {
        for (hash, key, payload) in input {
            let (out_key, out_hash) = if direct.passthrough {
                (key.clone(), *hash)
            } else {
                let k = key.project(&direct.key_cols);
                let h = k.fx_hash();
                (k, h)
            };
            emit(
                out,
                lift,
                key.col(direct.var_col),
                ctx,
                out_key,
                out_hash,
                payload,
                pool,
                stats,
            );
        }
        return;
    }

    // ---- Columnar kernel ----
    let n = input.len();
    cols.clear();
    for (i, (hash, key, payload)) in input.iter().enumerate() {
        let (out_key, out_hash) = if direct.passthrough {
            hash_tally::note_key();
            (key.clone(), *hash)
        } else {
            let k = key.project(&direct.key_cols);
            hash_tally::note_key();
            let h = k.fx_hash();
            hash_tally::note_hash();
            (k, h)
        };
        cols.ord.push((out_hash, i as u32));
        cols.keys.push(out_key);
        cols.evs.push(key.col(direct.var_col));
        cols.scalar_ws.push(payload.scalar_weight());
    }
    // Equal output keys hash equal, so sorting the packed (hash, index)
    // pairs groups each key's rows into one adjacent span — in arrival
    // order, thanks to the index tie-break — without a single key-word
    // compare in the comparator.
    cols.ord.sort_unstable();

    let identity = lift.is_identity();
    let batch = lift.fma_batch().cloned();
    let mut start = 0usize;
    while start < n {
        let (run_hash, i0) = cols.ord[start];
        let i0 = i0 as usize;
        let run_key = &cols.keys[i0];
        let mut end = start + 1;
        while end < n && cols.ord[end].0 == run_hash {
            end += 1;
        }
        // Distinct keys sharing a 64-bit hash would interleave inside the
        // span; such spans take the per-row scalar path, which handles each
        // row independently in arrival order.
        let uniform = cols.ord[start + 1..end]
            .iter()
            .all(|&(_, j)| cols.keys[j as usize] == *run_key);
        if !uniform {
            for &(h, j) in &cols.ord[start..end] {
                let j = j as usize;
                emit(
                    out,
                    lift,
                    cols.evs[j],
                    ctx,
                    cols.keys[j].clone(),
                    h,
                    &input[j].2,
                    pool,
                    stats,
                );
            }
            start = end;
            continue;
        }
        let len = end - start;
        // One reserving probe per run — the same upsert discipline as the
        // scalar path's `emit`, amortized over the whole run.
        let slot = out.probe(run_hash, |k, _| *k == *run_key);
        if identity {
            match slot {
                Probe::Found(idx) => {
                    let v = out.value_at_mut(idx);
                    for &(_, j) in &cols.ord[start..end] {
                        v.add_assign(&input[j as usize].2);
                    }
                    stats.ring_adds += len;
                }
                Probe::Vacant(idx) => {
                    // Clone the first payload rather than accumulate into a
                    // pooled zero — same shape-determinism rule as `emit`'s
                    // identity arm.
                    let mut payload = input[i0].2.clone();
                    for &(_, j) in &cols.ord[start + 1..end] {
                        payload.add_assign(&input[j as usize].2);
                    }
                    stats.ring_adds += len - 1;
                    if !payload.is_zero() {
                        out.occupy(idx, run_hash, run_key.clone(), payload);
                    }
                }
            }
        } else {
            // Batch-fuse the run when every row reduced to a scalar weight
            // and the lift can consume a weighted column slice; singleton,
            // mixed, or dense-payload runs fall back to per-row fused
            // accumulates (still amortizing the table lookup over the run).
            let batchable = len > 1
                && batch.is_some()
                && cols.ord[start..end]
                    .iter()
                    .all(|&(_, j)| cols.scalar_ws[j as usize].is_some());
            if batchable {
                cols.run_evs.clear();
                cols.run_ws.clear();
                for &(_, j) in &cols.ord[start..end] {
                    let j = j as usize;
                    cols.run_evs.push(cols.evs[j]);
                    cols.run_ws.push(cols.scalar_ws[j].expect("scalar run"));
                }
            }
            let batch_run = batchable.then(|| batch.as_ref().expect("batchable"));
            match slot {
                Probe::Found(idx) => {
                    let v = out.value_at_mut(idx);
                    match batch_run {
                        Some(b) => b(&cols.run_evs, &cols.run_ws, v),
                        None => {
                            for &(_, j) in &cols.ord[start..end] {
                                let j = j as usize;
                                lift.fma_apply_encoded(
                                    cols.evs[j],
                                    |e| ctx.decode_value(e),
                                    &input[j].2,
                                    1,
                                    v,
                                );
                            }
                        }
                    }
                    stats.ring_adds += len;
                    stats.ring_muls += len;
                }
                Probe::Vacant(idx) => {
                    let mut payload = pool.pop().unwrap_or_else(R::zero);
                    debug_assert!(payload.is_zero(), "pooled payload must be zero");
                    match batch_run {
                        Some(b) => b(&cols.run_evs, &cols.run_ws, &mut payload),
                        None => {
                            for &(_, j) in &cols.ord[start..end] {
                                let j = j as usize;
                                lift.fma_apply_encoded(
                                    cols.evs[j],
                                    |e| ctx.decode_value(e),
                                    &input[j].2,
                                    1,
                                    &mut payload,
                                );
                            }
                        }
                    }
                    stats.ring_muls += len;
                    stats.ring_adds += len - 1;
                    if !payload.is_zero() {
                        out.occupy(idx, run_hash, run_key.clone(), payload);
                    } else {
                        pool.push(payload);
                    }
                }
            }
        }
        start = end;
    }
}

/// Extends a partial assignment by probing the remaining siblings, then
/// applies the lift and accumulates the marginalized contribution into
/// `out`.
///
/// Probe keys and output keys are gathered from the encoded assignment by
/// word copies and hashed exactly once each; probe results are memoized per
/// depth for the duration of the level.  Partial products are written into
/// `partials` (one slot per probe depth, reused across calls via
/// [`Ring::mul_into`]); the final contribution is accumulated with
/// [`Ring::fma_scaled`], so the dense-payload hot path performs no ring
/// allocation.
#[allow(clippy::too_many_arguments)]
pub fn extend_assignment<R: Ring>(
    views: &[MaterializedView<R>],
    ctx: &RingCtx,
    dp: &DeltaPlan,
    lift: &LiftFn<R>,
    steps: &[DeltaStep],
    memo: &mut [StepMemo],
    assignment: &mut [EncodedValue],
    acc: &R,
    partials: &mut [R],
    out: &mut RawTable<EncodedKey, R>,
    pool: &mut Vec<R>,
    stats: &mut EngineStats,
) {
    let Some((step, rest)) = steps.split_first() else {
        // All siblings probed: apply the lift and emit the contribution
        // under the node's output key (hashed once, reused by the upsert
        // and, via `drain_into`, by the view application and parent level).
        let key = EncodedKey::gather(assignment, &dp.key_positions);
        hash_tally::note_key();
        let hash = key.fx_hash();
        hash_tally::note_hash();
        emit(
            out,
            lift,
            assignment[dp.var_position],
            ctx,
            key,
            hash,
            acc,
            pool,
            stats,
        );
        return;
    };

    // xlint:allow(no-panic): `memo` and `partials` are sized to the plan's probe depth at construction and consumed one slot per recursion step — the split_first expects are compiled-plan invariants, and no caller-visible error state exists when they break.
    let (step_memo, memo_rest) = memo.split_first_mut().expect("probe depth memo");
    let view = &views[step.sibling_view];
    let probe = EncodedKey::gather(assignment, &step.probe_positions);
    hash_tally::note_key();
    let hash = probe.fx_hash();
    hash_tally::note_hash();
    stats.probes += 1;

    match &step.probe {
        ProbeKind::Primary => {
            if let Some(slot) = step_memo.probe_primary(view, hash, probe) {
                stats.probe_hits += 1;
                let payload = view.slot_payload(slot);
                let (head, tail) = partials.split_first_mut().expect("probe depth scratch");
                acc.mul_into(payload, head);
                stats.ring_muls += 1;
                if !head.is_zero() {
                    // Move `head` out of the mutable borrow: recursion only
                    // needs it immutably, and `tail` covers deeper levels.
                    let next: &R = head;
                    extend_assignment(
                        views, ctx, dp, lift, rest, memo_rest, assignment, next, tail, out,
                        pool, stats,
                    );
                }
            }
        }
        ProbeKind::Index(idx) => {
            // The bucket stores slot ids: matches stream straight out of
            // the sibling's slab (full key and payload side by side), with
            // no per-match primary-map lookup and no cloned matches.
            let Some(bucket) = step_memo.probe_index(view, *idx, hash, probe) else {
                return;
            };
            stats.probe_hits += 1;
            let slots = view.index_bucket_at(*idx, bucket);
            for &slot in slots {
                let full_key = view.slot_key(slot);
                for (col, &pos) in step.write_positions.iter().enumerate() {
                    if pos != ALREADY_BOUND {
                        assignment[pos] = full_key.col(col);
                    }
                }
                let payload = view.slot_payload(slot);
                let (head, tail) = partials.split_first_mut().expect("probe depth scratch");
                acc.mul_into(payload, head);
                stats.ring_muls += 1;
                if !head.is_zero() {
                    let next: &R = head;
                    extend_assignment(
                        views, ctx, dp, lift, rest, memo_rest, assignment, next, tail, out,
                        pool, stats,
                    );
                }
            }
        }
    }
}

/// Runs one probe level end to end: scatters each delta row into the
/// assignment, joins against the sibling views, applies the lift,
/// marginalizes and accumulates into `out`.  The single entry point for
/// probe levels, shared by the engine and the DAG (mirroring
/// [`direct_level`] for probe-free ones).
///
/// Two kernels, selected by `mode`:
///
/// * **Scalar** — the per-row walk: scatter, then recursive
///   [`extend_assignment`].
/// * **Columnar** — applies only when every step is a primary probe (no
///   step binds new columns), so each row's probe keys and output key are
///   computable up front.  Rows are sorted by a mixed
///   `(probe keys…, output key)` hash; a *run* of rows agreeing on all of
///   them shares one probe per step and — exploiting ring commutativity —
///   one pass over the (large, aggregated) sibling payloads:
///
///   ```text
///   scalar:    slot += gₓ(ev_i) ⊗ ((acc_i ⊗ P₁) ⊗ … ⊗ Pₖ)   per row
///   columnar:  m = Σ_i acc_i ⊗ gₓ(ev_i)                     per row (small)
///              slot += (m ⊗ P₁ ⊗ … ⊗ Pₖ)                    per run (large)
///   ```
///
///   The per-row work shrinks to a lift FMA on the row's own (small) delta
///   payload; the expensive products against sibling payloads — aggregated
///   view entries that dwarf the delta — happen once per run instead of
///   once per row.  Equal output keys under different probe keys still
///   land in separate runs (the sibling product differs), and the final
///   product is fused into the output slot with [`Ring::fma_scaled`].
///   Requires the ring to be commutative — which F-IVM rings are by
///   definition; the reordering reassociates float work, so the exactness
///   contract matches the direct-level columnar kernel (bit-for-bit on
///   integer-valued payloads, tolerance on raw floats).
///
///   A level with any secondary-index step, or fewer than
///   [`COLUMNAR_MIN_ROWS`] rows under [`KernelMode::Auto`], takes the
///   scalar walk unchanged.  Mixed-hash spans that are not key-uniform
///   (64-bit collisions) fall back to per-row [`extend_assignment`].
#[allow(clippy::too_many_arguments)]
pub fn probe_level<R: Ring>(
    views: &[MaterializedView<R>],
    ctx: &RingCtx,
    dp: &DeltaPlan,
    lift: &LiftFn<R>,
    input: &[(u64, EncodedKey, R)],
    out: &mut RawTable<EncodedKey, R>,
    cols: &mut LevelColumns,
    memo: &mut [StepMemo],
    assignment: &mut [EncodedValue],
    partials: &mut [R],
    pool: &mut Vec<R>,
    pool_enabled: bool,
    mode: KernelMode,
    stats: &mut EngineStats,
) {
    // xlint:allow(probe-upsert): `out` is the level-local delta upsert table — every lookup may insert, so the reserving probe is the correct single-walk discipline (same rationale as `direct_level`; the kernel contract's find_idx-first rule targets long-lived read-mostly tables).
    // xlint:allow(no-panic): the two expects guard the `batchable` run predicate established immediately above them (every `scalar_ws` Some, `batch` Some) — compile-time-style invariants, not error paths.
    let _tally = hash_tally::LevelScope::enter("probe_level");
    assignment.iter_mut().for_each(|v| *v = EncodedValue::NULL);
    // Views are immutable for the whole level; probe memos reset at the
    // level boundary.
    for m in memo.iter_mut() {
        m.invalidate();
    }

    let k = dp.steps.len();
    let columnar = match mode {
        KernelMode::Scalar => false,
        KernelMode::Columnar => true,
        KernelMode::Auto => input.len() >= COLUMNAR_MIN_ROWS,
    } && k >= 1
        && dp
            .steps
            .iter()
            .all(|s| matches!(s.probe, ProbeKind::Primary));
    if !columnar {
        for (_, key, payload) in input {
            for (col, &pos) in dp.scatter.iter().enumerate() {
                assignment[pos] = key.col(col);
            }
            extend_assignment(
                views,
                ctx,
                dp,
                lift,
                &dp.steps,
                memo,
                assignment,
                payload,
                partials,
                out,
                pool,
                stats,
            );
        }
        return;
    }

    // ---- Columnar kernel ----
    let n = input.len();
    cols.clear();
    for (i, (_, key, payload)) in input.iter().enumerate() {
        for (col, &pos) in dp.scatter.iter().enumerate() {
            assignment[pos] = key.col(col);
        }
        let mut run_hash = 0u64;
        for step in &dp.steps {
            let pk = EncodedKey::gather(assignment, &step.probe_positions);
            hash_tally::note_key();
            let ph = pk.fx_hash();
            hash_tally::note_hash();
            run_hash = mix_hash(run_hash, ph);
            cols.probe_keys.push(pk);
            cols.probe_hashes.push(ph);
        }
        let out_key = EncodedKey::gather(assignment, &dp.key_positions);
        hash_tally::note_key();
        let out_hash = out_key.fx_hash();
        hash_tally::note_hash();
        run_hash = mix_hash(run_hash, out_hash);
        cols.ord.push((run_hash, i as u32));
        cols.keys.push(out_key);
        cols.out_hashes.push(out_hash);
        cols.evs.push(assignment[dp.var_position]);
        cols.scalar_ws.push(payload.scalar_weight());
    }
    cols.ord.sort_unstable();

    let identity = lift.is_identity();
    let batch = lift.fma_batch().cloned();
    let mut start = 0usize;
    while start < n {
        let (run_hash, i0) = cols.ord[start];
        let i0 = i0 as usize;
        let mut end = start + 1;
        while end < n && cols.ord[end].0 == run_hash {
            end += 1;
        }
        // The mixed hash identifies a run only up to 64-bit collisions:
        // verify every row agrees on the output key and all probe keys,
        // falling back to the per-row walk for the (vanishingly rare)
        // spans that do not.
        let uniform = cols.ord[start + 1..end].iter().all(|&(_, j)| {
            let j = j as usize;
            cols.keys[j] == cols.keys[i0]
                && cols.probe_keys[j * k..(j + 1) * k] == cols.probe_keys[i0 * k..(i0 + 1) * k]
        });
        if !uniform {
            for &(_, j) in &cols.ord[start..end] {
                let j = j as usize;
                let (_, key, payload) = &input[j];
                for (col, &pos) in dp.scatter.iter().enumerate() {
                    assignment[pos] = key.col(col);
                }
                extend_assignment(
                    views,
                    ctx,
                    dp,
                    lift,
                    &dp.steps,
                    memo,
                    assignment,
                    payload,
                    partials,
                    out,
                    pool,
                    stats,
                );
            }
            start = end;
            continue;
        }

        // One probe per step per run (memoized like the scalar walk).
        cols.run_slots.clear();
        let mut hit = true;
        for (s, step) in dp.steps.iter().enumerate() {
            let view = &views[step.sibling_view];
            let ph = cols.probe_hashes[i0 * k + s];
            let pk = cols.probe_keys[i0 * k + s].clone();
            stats.probes += 1;
            match memo[s].probe_primary(view, ph, pk) {
                Some(slot) => {
                    stats.probe_hits += 1;
                    cols.run_slots.push(slot);
                }
                None => {
                    hit = false;
                    break;
                }
            }
        }
        if !hit {
            start = end;
            continue;
        }

        let len = end - start;
        if len == 1 {
            // Singleton run — the common case on fact streams, where the
            // delta grain leaves nothing to fuse.  Materializing
            // `m = acc ⊗ g(ev)` here would cost one full ring op more than
            // the scalar walk, so instead chain the accumulator straight
            // through the sibling payloads and fold the lift into the
            // final slot FMA: `slot += g(ev) ⊗ (acc ⊗ P₁ ⊗ … ⊗ Pₖ)`,
            // the exact float order of the scalar walk (bit-for-bit).
            let acc: &R = &input[i0].2;
            let out_hash = cols.out_hashes[i0];
            let out_key = &cols.keys[i0];
            let depth = if identity { k - 1 } else { k };
            let mut zeroed = false;
            for s in 0..depth {
                let payload = views[dp.steps[s].sibling_view].slot_payload(cols.run_slots[s]);
                let (done, rest) = partials.split_at_mut(s);
                let dst = &mut rest[0];
                let cur: &R = if s == 0 { acc } else { &done[s - 1] };
                cur.mul_into(payload, dst);
                stats.ring_muls += 1;
                if dst.is_zero() {
                    zeroed = true;
                    break;
                }
            }
            if !zeroed {
                if identity {
                    let cur: &R = if k == 1 { acc } else { &partials[k - 2] };
                    let last =
                        views[dp.steps[k - 1].sibling_view].slot_payload(cols.run_slots[k - 1]);
                    match out.probe(out_hash, |key, _| *key == *out_key) {
                        Probe::Found(idx) => {
                            out.value_at_mut(idx).fma_scaled(cur, last, 1);
                            stats.ring_adds += 1;
                            stats.ring_muls += 1;
                        }
                        Probe::Vacant(idx) => {
                            let mut payload = if pool_enabled {
                                pool.pop().unwrap_or_else(R::zero)
                            } else {
                                R::zero()
                            };
                            debug_assert!(payload.is_zero(), "pooled payload must be zero");
                            payload.fma_scaled(cur, last, 1);
                            stats.ring_muls += 1;
                            if payload.is_zero() {
                                if pool_enabled && pool.len() < POOL_CAP {
                                    pool.push(payload);
                                }
                            } else {
                                out.occupy(idx, out_hash, out_key.clone(), payload);
                            }
                        }
                    }
                } else {
                    let chain: &R = &partials[k - 1];
                    let ev = cols.evs[i0];
                    match out.probe(out_hash, |key, _| *key == *out_key) {
                        Probe::Found(idx) => {
                            lift.fma_apply_encoded(
                                ev,
                                |e| ctx.decode_value(e),
                                chain,
                                1,
                                out.value_at_mut(idx),
                            );
                            stats.ring_adds += 1;
                            stats.ring_muls += 1;
                        }
                        Probe::Vacant(idx) => {
                            let mut payload = if pool_enabled {
                                pool.pop().unwrap_or_else(R::zero)
                            } else {
                                R::zero()
                            };
                            debug_assert!(payload.is_zero(), "pooled payload must be zero");
                            lift.fma_apply_encoded(
                                ev,
                                |e| ctx.decode_value(e),
                                chain,
                                1,
                                &mut payload,
                            );
                            stats.ring_muls += 1;
                            if payload.is_zero() {
                                if pool_enabled && pool.len() < POOL_CAP {
                                    pool.push(payload);
                                }
                            } else {
                                out.occupy(idx, out_hash, out_key.clone(), payload);
                            }
                        }
                    }
                }
            }
            start = end;
            continue;
        }

        // m = Σ_i acc_i ⊗ g(ev_i): the per-row half, touching only the
        // rows' own delta payloads.  Batch-fused when the run reduces to
        // scalar weights and the lift has a batch channel.
        let mut m;
        if identity {
            // Clone the first payload rather than accumulate into a pooled
            // zero — the shape-determinism rule from `emit`'s identity arm.
            m = input[i0].2.clone();
            for &(_, j) in &cols.ord[start + 1..end] {
                m.add_assign(&input[j as usize].2);
            }
            stats.ring_adds += len - 1;
        } else {
            m = if pool_enabled {
                pool.pop().unwrap_or_else(R::zero)
            } else {
                R::zero()
            };
            debug_assert!(m.is_zero(), "pooled payload must be zero");
            let batchable = len > 1
                && batch.is_some()
                && cols.ord[start..end]
                    .iter()
                    .all(|&(_, j)| cols.scalar_ws[j as usize].is_some());
            if batchable {
                cols.run_evs.clear();
                cols.run_ws.clear();
                for &(_, j) in &cols.ord[start..end] {
                    let j = j as usize;
                    cols.run_evs.push(cols.evs[j]);
                    cols.run_ws.push(cols.scalar_ws[j].expect("scalar run"));
                }
                (batch.as_ref().expect("batchable"))(&cols.run_evs, &cols.run_ws, &mut m);
            } else {
                for &(_, j) in &cols.ord[start..end] {
                    let j = j as usize;
                    lift.fma_apply_encoded(
                        cols.evs[j],
                        |e| ctx.decode_value(e),
                        &input[j].2,
                        1,
                        &mut m,
                    );
                }
            }
            stats.ring_muls += len;
            stats.ring_adds += len - 1;
        }
        if m.is_zero() {
            if pool_enabled && pool.len() < POOL_CAP {
                pool.push(m);
            }
            start = end;
            continue;
        }

        // The per-run half: multiply through the sibling payload chain,
        // fusing the last product straight into the output slot.
        let mut zeroed = false;
        for s in 0..k - 1 {
            let payload = views[dp.steps[s].sibling_view].slot_payload(cols.run_slots[s]);
            let (done, rest) = partials.split_at_mut(s);
            let dst = &mut rest[0];
            let cur: &R = if s == 0 { &m } else { &done[s - 1] };
            cur.mul_into(payload, dst);
            stats.ring_muls += 1;
            if dst.is_zero() {
                zeroed = true;
                break;
            }
        }
        if !zeroed {
            let cur: &R = if k == 1 { &m } else { &partials[k - 2] };
            let last = views[dp.steps[k - 1].sibling_view].slot_payload(cols.run_slots[k - 1]);
            let out_hash = cols.out_hashes[i0];
            let out_key = &cols.keys[i0];
            match out.probe(out_hash, |key, _| *key == *out_key) {
                Probe::Found(idx) => {
                    out.value_at_mut(idx).fma_scaled(cur, last, 1);
                    stats.ring_adds += 1;
                    stats.ring_muls += 1;
                }
                Probe::Vacant(idx) => {
                    let mut payload = if pool_enabled {
                        pool.pop().unwrap_or_else(R::zero)
                    } else {
                        R::zero()
                    };
                    debug_assert!(payload.is_zero(), "pooled payload must be zero");
                    payload.fma_scaled(cur, last, 1);
                    stats.ring_muls += 1;
                    if !payload.is_zero() {
                        out.occupy(idx, out_hash, out_key.clone(), payload);
                    } else if pool_enabled && pool.len() < POOL_CAP {
                        pool.push(payload);
                    }
                }
            }
        }
        if pool_enabled && pool.len() < POOL_CAP {
            m.reset_zero();
            pool.push(m);
        }
        start = end;
    }
}
