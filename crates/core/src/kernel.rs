//! The shared delta-propagation kernel.
//!
//! Everything a maintenance pass needs at one view level — grouping input
//! rows into a keyed delta, probing sibling views to extend assignments,
//! applying lifts, accumulating contributions — lives here, decoupled from
//! any particular owner of the views.  [`crate::engine::Engine`] drives the
//! kernel along a single view tree's leaf-to-root path; `fivm_dag` drives
//! the very same functions across a shared multi-query DAG where one
//! produced delta fans out to several parents.  Keeping one implementation
//! guarantees the two agree bit for bit, which is what the DAG's
//! differential suite asserts.
//!
//! The kernel upholds the hash-once contract: every key is hashed exactly
//! once (when it is first gathered/encoded) and the hash travels with the
//! key through delta tables, view application and parent levels.

use crate::plan::{DeltaPlan, DeltaStep, ProbeKind, ALREADY_BOUND};
use crate::view::MaterializedView;
use crate::EngineStats;
use fivm_common::{Dict, EncodedKey, EncodedValue, FivmError, Probe, RawTable, Result, Value};
use fivm_ring::{LiftFn, Ring, RingCtx};

/// A memoized probe result for one probe depth, valid for the duration of
/// one propagation level (views are immutable while a level's delta is
/// being extended).  Grouped deltas on skewed data repeatedly probe the
/// same sub-key; the memo answers those repeats with a stored slot/bucket
/// handle instead of a table walk.
pub struct StepMemo {
    hash: u64,
    key: EncodedKey,
    state: MemoState,
}

enum MemoState {
    /// The memo holds nothing (level boundary).
    Invalid,
    /// Last probe of this depth missed.
    Miss,
    /// Last primary probe hit this view slot.
    Slot(u32),
    /// Last index probe hit this bucket handle.
    Bucket(usize),
}

impl StepMemo {
    /// A fresh (invalid) memo.
    pub fn new() -> Self {
        StepMemo {
            hash: 0,
            key: EncodedKey::empty(),
            state: MemoState::Invalid,
        }
    }

    /// Forgets the stored probe result (call at every level boundary).
    pub fn invalidate(&mut self) {
        self.state = MemoState::Invalid;
    }

    #[inline]
    fn matches(&self, hash: u64, key: &EncodedKey) -> bool {
        !matches!(self.state, MemoState::Invalid) && self.hash == hash && self.key == *key
    }

    /// Resolves a primary probe, consulting the memo first.
    #[inline]
    pub fn probe_primary<R: Ring>(
        &mut self,
        view: &MaterializedView<R>,
        hash: u64,
        key: EncodedKey,
    ) -> Option<u32> {
        if self.matches(hash, &key) {
            return match self.state {
                MemoState::Slot(slot) => Some(slot),
                _ => None,
            };
        }
        let found = view.find_slot(hash, &key);
        self.hash = hash;
        self.key = key;
        self.state = match found {
            Some(slot) => MemoState::Slot(slot),
            None => MemoState::Miss,
        };
        found
    }

    /// Resolves a secondary-index probe, consulting the memo first.
    #[inline]
    pub fn probe_index<R: Ring>(
        &mut self,
        view: &MaterializedView<R>,
        index_id: usize,
        hash: u64,
        key: EncodedKey,
    ) -> Option<usize> {
        if self.matches(hash, &key) {
            return match self.state {
                MemoState::Bucket(bucket) => Some(bucket),
                _ => None,
            };
        }
        let found = view.find_index_bucket(index_id, hash, &key);
        self.hash = hash;
        self.key = key;
        self.state = match found {
            Some(bucket) => MemoState::Bucket(bucket),
            None => MemoState::Miss,
        };
        found
    }
}

impl Default for StepMemo {
    fn default() -> Self {
        StepMemo::new()
    }
}

/// Reusable buffers for delta propagation, kept across updates so the hot
/// path performs no per-update container allocation.
pub struct PropagationScratch<R: Ring> {
    /// The delta entering the current level, with the precomputed hash of
    /// every key (drained from `next`, hashes and all).
    pub current: Vec<(u64, EncodedKey, R)>,
    /// The delta being produced for the next level, keyed by precomputed
    /// hashes.
    pub next: RawTable<EncodedKey, R>,
    /// Per-probe-depth partial products (`acc * sibling payload`); their
    /// inner allocations (vectors, matrices, maps) are reused by
    /// [`Ring::mul_into`].
    pub partials: Vec<R>,
    /// Per-probe-depth memoized probe results (valid within one level).
    pub memo: Vec<StepMemo>,
    /// The assignment (bound variable values) at the current node, in
    /// encoded form — scatters and gathers are plain word copies.
    pub assignment: Vec<EncodedValue>,
    /// Recycled delta payloads: exact-zero ring values whose interior
    /// buffers (relation tables, cofactor matrices) are reused by the next
    /// level's accumulation instead of being freed and reallocated.
    /// Capped at [`POOL_CAP`], and disabled entirely for identity-only
    /// lift sets (e.g. COUNT): only the fused-lift emit arm draws from the
    /// pool, so an engine without non-identity lifts must not pay any
    /// pooling work (not even the pool vector's growth).
    pub pool: Vec<R>,
    /// Whether any lift can draw from the pool (see `pool`).
    pub pool_enabled: bool,
}

/// Upper bound on pooled delta payloads (see `PropagationScratch::pool`).
pub const POOL_CAP: usize = 4096;

impl<R: Ring> PropagationScratch<R> {
    /// Scratch sized for a plan's deepest probe chain and widest node.
    pub fn new(max_probe_depth: usize, max_local_vars: usize, pool_enabled: bool) -> Self {
        PropagationScratch {
            current: Vec::new(),
            next: RawTable::new(),
            partials: (0..max_probe_depth).map(|_| R::zero()).collect(),
            memo: (0..max_probe_depth).map(|_| StepMemo::new()).collect(),
            assignment: vec![EncodedValue::NULL; max_local_vars],
            pool: Vec::new(),
            pool_enabled,
        }
    }

    /// Grows the per-depth and per-node buffers in place (registering a new
    /// query into a shared DAG can deepen the probe chains or widen the
    /// nodes after construction).  Never shrinks.
    pub fn grow(&mut self, max_probe_depth: usize, max_local_vars: usize, pool_enabled: bool) {
        while self.partials.len() < max_probe_depth {
            self.partials.push(R::zero());
            self.memo.push(StepMemo::new());
        }
        if self.assignment.len() < max_local_vars {
            self.assignment.resize(max_local_vars, EncodedValue::NULL);
        }
        self.pool_enabled |= pool_enabled;
    }

    /// Recycles the current level's delta payloads into the pool (they
    /// were applied to the view by reference): each is reset to an exact
    /// zero keeping its in-budget buffers, up to [`POOL_CAP`] payloads.
    pub fn recycle_current(&mut self) {
        for (_, _, payload) in self.current.drain(..) {
            if self.pool_enabled && self.pool.len() < POOL_CAP {
                let mut payload = payload;
                payload.reset_zero();
                self.pool.push(payload);
            }
        }
    }

    /// Recycles an arbitrary drained delta buffer into the pool — the DAG
    /// keeps one buffer per in-flight fan-out edge rather than a single
    /// `current`, but the pooling discipline is identical.
    pub fn recycle_buffer(&mut self, buffer: &mut Vec<(u64, EncodedKey, R)>) {
        for (_, _, payload) in buffer.drain(..) {
            if self.pool_enabled && self.pool.len() < POOL_CAP {
                let mut payload = payload;
                payload.reset_zero();
                self.pool.push(payload);
            }
        }
    }
}

/// Merges one input row into the grouped leaf delta: encodes the row
/// through the table binding (or validates its arity) directly into an
/// [`EncodedKey`], hashes the key **once**, then accumulates `1 · mult`
/// under that key.
///
/// Shared by the single-tree engine's update paths and the DAG's leaf
/// ingestion so the validation and grouping semantics cannot diverge.  On
/// error the grouped delta is cleared so the scratch stays drained for the
/// next batch.
#[allow(clippy::too_many_arguments)]
pub fn group_row<R: Ring>(
    delta: &mut RawTable<EncodedKey, R>,
    dict: &mut Dict,
    stats: &mut EngineStats,
    one: &R,
    binding: Option<&[usize]>,
    arity: usize,
    row: &[Value],
    mult: i64,
) -> Result<()> {
    if mult == 0 {
        return Ok(());
    }
    // Encode the projected row straight into the key — one pass, no
    // intermediate buffer.
    let key = match binding {
        Some(cols) => {
            if let Some(&c) = cols.iter().find(|&&c| c >= row.len()) {
                delta.clear();
                return Err(FivmError::InvalidUpdate(format!(
                    "row has {} columns but column {c} was bound",
                    row.len()
                )));
            }
            EncodedKey::from_fn(cols.len(), |i| dict.encode_value(&row[cols[i]]))
        }
        None => {
            if row.len() != arity {
                delta.clear();
                return Err(FivmError::InvalidUpdate(format!(
                    "row arity {} does not match relation arity {arity}",
                    row.len()
                )));
            }
            EncodedKey::from_fn(arity, |i| dict.encode_value(&row[i]))
        }
    };
    let hash = key.fx_hash();
    match delta.probe(hash, |k, _| *k == key) {
        Probe::Found(idx) => {
            delta.value_at_mut(idx).fma_scaled(one, one, mult);
            stats.ring_adds += 1;
        }
        Probe::Vacant(idx) => {
            delta.occupy(idx, hash, key, one.scale_int(mult));
        }
    }
    Ok(())
}

/// Accumulates one contribution under an output key into a level's delta
/// table.  `hash` is the key's precomputed hash; `ev` is the lifted
/// variable's dictionary-encoded value, consumed directly by lifts with an
/// encoded fused accumulate — a raw [`Value`] materializes only for lifts
/// without one (the decode goes through the context, off the lock-free
/// path).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn emit<R: Ring>(
    out: &mut RawTable<EncodedKey, R>,
    lift: &LiftFn<R>,
    ev: EncodedValue,
    ctx: &RingCtx,
    key: EncodedKey,
    hash: u64,
    acc: &R,
    pool: &mut Vec<R>,
    stats: &mut EngineStats,
) {
    if lift.is_identity() {
        match out.probe(hash, |k, _| *k == key) {
            Probe::Found(idx) => {
                out.value_at_mut(idx).add_assign(acc);
                stats.ring_adds += 1;
            }
            Probe::Vacant(idx) => {
                // Clone rather than accumulate into a pooled zero: a pooled
                // buffer may carry a different zero *shape* (a recycled
                // dense element vs a scalar), and the stored payload's
                // representation must not depend on pool history.  The
                // fused-lift arm below is shape-deterministic (the lift
                // promotes to a dense element either way) and does pool.
                out.occupy(idx, hash, key, acc.clone());
            }
        }
    } else {
        // Fused lift-multiply-accumulate: `slot += acc · g(v)` without
        // materializing the (sparse) lifted element when the lift carries a
        // specialization.
        match out.probe(hash, |k, _| *k == key) {
            Probe::Found(idx) => {
                lift.fma_apply_encoded(ev, |e| ctx.decode_value(e), acc, 1, out.value_at_mut(idx));
                stats.ring_adds += 1;
                stats.ring_muls += 1;
            }
            Probe::Vacant(idx) => {
                let mut payload = pool.pop().unwrap_or_else(R::zero);
                debug_assert!(payload.is_zero(), "pooled payload must be zero");
                lift.fma_apply_encoded(ev, |e| ctx.decode_value(e), acc, 1, &mut payload);
                stats.ring_muls += 1;
                if !payload.is_zero() {
                    out.occupy(idx, hash, key, payload);
                } else {
                    pool.push(payload);
                }
            }
        }
    }
}

/// Extends a partial assignment by probing the remaining siblings, then
/// applies the lift and accumulates the marginalized contribution into
/// `out`.
///
/// Probe keys and output keys are gathered from the encoded assignment by
/// word copies and hashed exactly once each; probe results are memoized per
/// depth for the duration of the level.  Partial products are written into
/// `partials` (one slot per probe depth, reused across calls via
/// [`Ring::mul_into`]); the final contribution is accumulated with
/// [`Ring::fma_scaled`], so the dense-payload hot path performs no ring
/// allocation.
#[allow(clippy::too_many_arguments)]
pub fn extend_assignment<R: Ring>(
    views: &[MaterializedView<R>],
    ctx: &RingCtx,
    dp: &DeltaPlan,
    lift: &LiftFn<R>,
    steps: &[DeltaStep],
    memo: &mut [StepMemo],
    assignment: &mut [EncodedValue],
    acc: &R,
    partials: &mut [R],
    out: &mut RawTable<EncodedKey, R>,
    pool: &mut Vec<R>,
    stats: &mut EngineStats,
) {
    let Some((step, rest)) = steps.split_first() else {
        // All siblings probed: apply the lift and emit the contribution
        // under the node's output key (hashed once, reused by the upsert
        // and, via `drain_into`, by the view application and parent level).
        let key = EncodedKey::gather(assignment, &dp.key_positions);
        let hash = key.fx_hash();
        emit(
            out,
            lift,
            assignment[dp.var_position],
            ctx,
            key,
            hash,
            acc,
            pool,
            stats,
        );
        return;
    };

    let (step_memo, memo_rest) = memo.split_first_mut().expect("probe depth memo");
    let view = &views[step.sibling_view];
    let probe = EncodedKey::gather(assignment, &step.probe_positions);
    let hash = probe.fx_hash();
    stats.probes += 1;

    match &step.probe {
        ProbeKind::Primary => {
            if let Some(slot) = step_memo.probe_primary(view, hash, probe) {
                stats.probe_hits += 1;
                let payload = view.slot_payload(slot);
                let (head, tail) = partials.split_first_mut().expect("probe depth scratch");
                acc.mul_into(payload, head);
                stats.ring_muls += 1;
                if !head.is_zero() {
                    // Move `head` out of the mutable borrow: recursion only
                    // needs it immutably, and `tail` covers deeper levels.
                    let next: &R = head;
                    extend_assignment(
                        views, ctx, dp, lift, rest, memo_rest, assignment, next, tail, out,
                        pool, stats,
                    );
                }
            }
        }
        ProbeKind::Index(idx) => {
            // The bucket stores slot ids: matches stream straight out of
            // the sibling's slab (full key and payload side by side), with
            // no per-match primary-map lookup and no cloned matches.
            let Some(bucket) = step_memo.probe_index(view, *idx, hash, probe) else {
                return;
            };
            stats.probe_hits += 1;
            let slots = view.index_bucket_at(*idx, bucket);
            for &slot in slots {
                let full_key = view.slot_key(slot);
                for (col, &pos) in step.write_positions.iter().enumerate() {
                    if pos != ALREADY_BOUND {
                        assignment[pos] = full_key.col(col);
                    }
                }
                let payload = view.slot_payload(slot);
                let (head, tail) = partials.split_first_mut().expect("probe depth scratch");
                acc.mul_into(payload, head);
                stats.ring_muls += 1;
                if !head.is_zero() {
                    let next: &R = head;
                    extend_assignment(
                        views, ctx, dp, lift, rest, memo_rest, assignment, next, tail, out,
                        pool, stats,
                    );
                }
            }
        }
    }
}
