//! Verifies the acceptance criterion of the hash-once probe path: probing
//! materialized views — probe-key construction (gather/projection of
//! encoded keys), hashing, primary-map and secondary-index lookups, and
//! streaming matches out of the slab — performs **no heap allocation** on
//! the `Elem` hot path (inline-sized keys, dense cofactor payloads).  The
//! steady-state COUNT maintenance path is additionally held to zero
//! allocations per row end to end.
//!
//! A counting global allocator records every allocation, mirroring
//! `crates/ring/tests/alloc_fma.rs`.

use fivm_common::{Dict, EncodedKey, EncodedValue, Value};
use fivm_core::{apps, MaterializedView};
use fivm_query::spec::figure1_query;
use fivm_query::{EliminationHeuristic, VariableOrder, ViewTree};
use fivm_relation::{tuple, Update};
use fivm_ring::{Cofactor, Ring};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// A COVAR-shaped view (dense cofactor payloads) keyed by two columns with
/// a secondary index on the first.
fn dense_view(dict: &mut Dict, keys: i64) -> MaterializedView<Cofactor> {
    let dim = 8;
    let mut view: MaterializedView<Cofactor> = MaterializedView::new(vec![0, 1]);
    let idx = view.ensure_index(vec![0]);
    for a in 0..keys {
        for b in 0..4 {
            let payload = Cofactor::lift(dim, 1, a as f64).mul(&Cofactor::lift(dim, 4, b as f64));
            view.add(dict, &tuple([Value::int(a), Value::int(b)]), payload);
        }
    }
    // Indexes are lazy: build before the (immutable) probing under test.
    view.ensure_index_built(idx);
    view
}

#[test]
fn view_probes_do_not_allocate() {
    let mut dict = Dict::new();
    let view = dense_view(&mut dict, 64);
    assert_eq!(view.len(), 64 * 4);

    // Pre-encode the probe source: a full key and an encoded assignment,
    // as the engine holds them on the hot path.
    let full = dict.encode_key(&tuple([Value::int(17), Value::int(2)]));
    let assignment: Vec<EncodedValue> = (0..2)
        .map(|i| full.col(i))
        .collect();

    let allocs = allocations_during(|| {
        for _ in 0..1_000 {
            // Primary probe: gather the probe key from the assignment,
            // hash once, look up the slot, read the payload.
            let probe = EncodedKey::gather(&assignment, &[0, 1]);
            let hash = probe.fx_hash();
            let slot = view.find_slot(hash, &probe).expect("key present");
            black_box(view.slot_payload(slot));

            // Index probe: project the full key onto the index columns
            // (copy-only), hash once, stream every match out of the slab.
            let sub = full.project(&[0]);
            let sub_hash = sub.fx_hash();
            for (k, p) in view.probe_index(0, sub_hash, &sub) {
                black_box((k, p));
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "view probing allocated {allocs} times across 1000 probe rounds"
    );
}

#[test]
fn missed_probes_do_not_allocate_or_intern() {
    let mut dict = Dict::new();
    let view = dense_view(&mut dict, 8);
    let miss = dict.encode_key(&tuple([Value::int(999), Value::int(0)]));
    let allocs = allocations_during(|| {
        for _ in 0..1_000 {
            let hash = miss.fx_hash();
            assert!(view.find_slot(hash, &miss).is_none());
            let sub = miss.project(&[0]);
            assert!(view.index_bucket(0, sub.fx_hash(), &sub).is_none());
        }
    });
    assert_eq!(allocs, 0, "missed probes allocated {allocs} times");
}

#[test]
fn steady_state_count_maintenance_does_not_allocate() {
    // COUNT over the Figure-1 join: after one warm-up application sizes
    // the scratch tables, re-applying a batch of existing keys walks the
    // whole grouped-propagation path (group, probe, emit, apply) without
    // a single allocation.
    let spec = figure1_query(false);
    let order = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
    let tree = ViewTree::new(spec, order).unwrap();
    let mut engine = apps::count_engine(tree).unwrap();

    let r_batch = Update::inserts(
        "R",
        (0..32)
            .map(|i| tuple([Value::int(i % 8), Value::int(i)]))
            .collect(),
    );
    let s_batch = Update::inserts(
        "S",
        (0..32)
            .map(|i| tuple([Value::int(i % 8), Value::int(i % 5), Value::int(i)]))
            .collect(),
    );
    // Warm up: first application creates slots, grows tables and scratch.
    for _ in 0..2 {
        engine.apply_update(&r_batch).unwrap();
        engine.apply_update(&s_batch).unwrap();
    }

    let allocs = allocations_during(|| {
        engine.apply_update(&r_batch).unwrap();
        engine.apply_update(&s_batch).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "steady-state COUNT maintenance allocated {allocs} times for 64 rows"
    );
    assert!(engine.result() > 0);
}
