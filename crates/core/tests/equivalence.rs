//! Equivalence of incremental maintenance with from-scratch evaluation.
//!
//! For randomly generated databases and random insert/delete streams over a
//! multi-relation join, the engine's maintained result must equal the result
//! computed from scratch on the final database state.  The from-scratch
//! reference is built directly on `fivm_relation` joins, independent of the
//! engine's code paths.

use fivm_common::{Value, VarId};
use fivm_ring::RingCtx;
use fivm_core::apps;
use fivm_core::Engine;
use fivm_query::{EliminationHeuristic, QuerySpec, VariableOrder, ViewTree};
use fivm_relation::{tuple, Relation, Tuple};
use fivm_ring::{ApproxEq, Cofactor, GenCofactor, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A three-relation star query:
/// `R(A, B) ⋈ S(A, C, D) ⋈ T(C, E)` with continuous features B, D, E.
fn star_query() -> QuerySpec {
    let mut b = QuerySpec::builder("star");
    let a = b.key("A");
    let bb = b.continuous_feature("B");
    let c = b.key("C");
    let d = b.continuous_feature("D");
    let e = b.continuous_feature("E");
    b.relation("R", &[a, bb]);
    b.relation("S", &[a, c, d]);
    b.relation("T", &[c, e]);
    b.build().unwrap()
}

/// Same join shape but with categorical D and E, for the generalized ring.
fn star_query_mixed() -> QuerySpec {
    let mut b = QuerySpec::builder("star_mixed");
    let a = b.key("A");
    let bb = b.continuous_feature("B");
    let c = b.key("C");
    let d = b.categorical_feature("D");
    let e = b.categorical_feature("E");
    b.relation("R", &[a, bb]);
    b.relation("S", &[a, c, d]);
    b.relation("T", &[c, e]);
    b.build().unwrap()
}

fn tree_of(spec: &QuerySpec, heuristic: EliminationHeuristic) -> ViewTree {
    let vo = VariableOrder::heuristic(spec, heuristic).unwrap();
    ViewTree::new(spec.clone(), vo).unwrap()
}

/// Generates a random row for a relation: small key domains to force joins,
/// small value domains to force duplicate keys and cancellations.
fn random_row(rng: &mut StdRng, spec: &QuerySpec, rel: usize) -> Tuple {
    let vars = &spec.relation(rel).vars;
    tuple(vars.iter().map(|&v| {
        let name = spec.var_name(v);
        match name {
            "A" => Value::int(rng.gen_range(0..6)),
            "C" => Value::int(rng.gen_range(0..5)),
            _ => Value::int(rng.gen_range(1..8)),
        }
    }))
}

/// Tracks the exact multiset state of each base relation.
struct Shadow {
    relations: Vec<Relation<i64>>,
}

impl Shadow {
    fn new(spec: &QuerySpec) -> Self {
        Shadow {
            relations: spec
                .relations()
                .iter()
                .map(|r| Relation::new(r.vars.clone()))
                .collect(),
        }
    }

    fn apply(&mut self, rel: usize, row: &Tuple, mult: i64) {
        self.relations[rel].add(row.clone(), mult);
    }

    /// The full natural join of the current database state.
    fn join(&self) -> Relation<i64> {
        let mut acc = self.relations[0].clone();
        for r in &self.relations[1..] {
            acc = acc.natural_join(r);
        }
        acc
    }

    /// Folds a per-tuple ring contribution over the join result.
    fn aggregate<R: Ring>(&self, _spec: &QuerySpec, contribution: impl Fn(&[VarId], &Tuple) -> R) -> R {
        let join = self.join();
        let mut acc = R::zero();
        for (t, m) in join.iter() {
            acc.add_assign(&contribution(join.vars(), t).scale_int(*m));
        }
        acc
    }
}

fn value_of(vars: &[VarId], t: &Tuple, v: VarId) -> Value {
    let pos = vars.iter().position(|&x| x == v).unwrap();
    t[pos].clone()
}

/// Runs a random insert/delete stream through the engine and the shadow
/// database, then compares against the from-scratch aggregate.
fn run_stream<R: Ring + ApproxEq>(
    spec: &QuerySpec,
    mut engine: Engine<R>,
    reference: impl Fn(&Shadow) -> R,
    seed: u64,
    steps: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow = Shadow::new(spec);
    // Remember inserted rows so deletes target existing tuples most of the time.
    let mut history: Vec<(usize, Tuple)> = Vec::new();

    for step in 0..steps {
        let rel = rng.gen_range(0..spec.num_relations());
        let delete = !history.is_empty() && rng.gen_bool(0.3);
        let (rel, row, mult) = if delete {
            let idx = rng.gen_range(0..history.len());
            let (rel, row) = history.swap_remove(idx);
            (rel, row, -1)
        } else {
            let row = random_row(&mut rng, spec, rel);
            history.push((rel, row.clone()));
            (rel, row, 1)
        };
        shadow.apply(rel, &row, mult);
        engine.apply_rows(rel, vec![(row, mult)]).unwrap();

        // Check at a few points along the stream, not only at the end.
        if step % 25 == 24 || step + 1 == steps {
            let expected = reference(&shadow);
            let actual = engine.result();
            assert!(
                actual.approx_eq(&expected, 1e-7),
                "divergence at step {step}: engine={actual:?} expected={expected:?}"
            );
        }
    }
}

#[test]
fn count_matches_reevaluation_under_random_streams() {
    let spec = star_query();
    for (seed, heuristic) in [
        (1u64, EliminationHeuristic::MinDegree),
        (2, EliminationHeuristic::MinFill),
        (3, EliminationHeuristic::MinDegree),
    ] {
        let engine = apps::count_engine(tree_of(&spec, heuristic)).unwrap();
        run_stream(
            &spec,
            engine,
            |shadow| shadow.join().total(),
            seed,
            200,
        );
    }
}

#[test]
fn covar_matches_reevaluation_under_random_streams() {
    let spec = star_query();
    let layout = fivm_core::AggregateLayout::of(&spec);
    let dim = layout.dim();
    let agg_vars = layout.vars.clone();
    let engine = apps::covar_engine(tree_of(&spec, EliminationHeuristic::MinDegree)).unwrap();
    let spec_for_ref = spec.clone();
    run_stream(
        &spec,
        engine,
        move |shadow| {
            shadow.aggregate::<Cofactor>(&spec_for_ref, |vars, t| {
                let mut acc = Cofactor::one();
                for (idx, &v) in agg_vars.iter().enumerate() {
                    let x = value_of(vars, t, v).as_f64().unwrap();
                    acc = acc.mul(&Cofactor::lift(dim, idx, x));
                }
                acc
            })
        },
        7,
        200,
    );
}

#[test]
fn gen_covar_matches_reevaluation_under_random_streams() {
    let spec = star_query_mixed();
    let layout = fivm_core::AggregateLayout::of(&spec);
    let dim = layout.dim();
    let agg_vars = layout.vars.clone();
    let kinds = layout.kinds.clone();
    let engine = apps::gen_covar_engine(tree_of(&spec, EliminationHeuristic::MinFill)).unwrap();
    let spec_for_ref = spec.clone();
    // The reference encodes categories through its own context; every
    // categorical value in this workload is an integer, which encodes
    // identically under any dictionary, so reference and engine payloads
    // compare directly.
    let ref_ctx = RingCtx::new();
    run_stream(
        &spec,
        engine,
        move |shadow| {
            shadow.aggregate::<GenCofactor>(&spec_for_ref, |vars, t| {
                let mut acc = GenCofactor::one();
                for (idx, &v) in agg_vars.iter().enumerate() {
                    let val = value_of(vars, t, v);
                    let lifted = if kinds[idx].is_categorical() {
                        GenCofactor::lift_categorical(dim, idx, idx, ref_ctx.encode_value(&val))
                    } else {
                        GenCofactor::lift_continuous(dim, idx, val.as_f64().unwrap())
                    };
                    acc = acc.mul(&lifted);
                }
                acc
            })
        },
        11,
        160,
    );
}

#[test]
fn different_variable_orders_agree() {
    // The maintained result must be independent of the chosen variable order.
    let spec = star_query();
    let mut engines: Vec<_> = [
        EliminationHeuristic::MinDegree,
        EliminationHeuristic::MinFill,
    ]
    .into_iter()
    .map(|h| apps::covar_engine(tree_of(&spec, h)).unwrap())
    .collect();
    // Also include an explicit chain order A-C-B-D-E.
    let by_name = |n: &str| spec.var_id(n).unwrap();
    let chain = [by_name("E"), by_name("D"), by_name("B"), by_name("C"), by_name("A")];
    let vo = VariableOrder::from_elimination_order(&spec, &chain).unwrap();
    engines.push(apps::covar_engine(ViewTree::new(spec.clone(), vo).unwrap()).unwrap());

    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..150 {
        let rel = rng.gen_range(0..spec.num_relations());
        let row = random_row(&mut rng, &spec, rel);
        let mult = if rng.gen_bool(0.25) { -1 } else { 1 };
        for e in &mut engines {
            e.apply_rows(rel, vec![(row.clone(), mult)]).unwrap();
        }
    }
    let first = engines[0].result();
    for e in &engines[1..] {
        assert!(e.result().approx_eq(&first, 1e-7));
    }
}

#[test]
fn full_deletion_returns_every_view_to_empty() {
    let spec = star_query();
    let mut engine = apps::covar_engine(tree_of(&spec, EliminationHeuristic::MinDegree)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut inserted: Vec<(usize, Tuple)> = Vec::new();
    for _ in 0..120 {
        let rel = rng.gen_range(0..spec.num_relations());
        let row = random_row(&mut rng, &spec, rel);
        inserted.push((rel, row.clone()));
        engine.apply_rows(rel, vec![(row, 1)]).unwrap();
    }
    assert!(engine.total_view_entries() > 0);
    for (rel, row) in inserted.into_iter().rev() {
        engine.apply_rows(rel, vec![(row, -1)]).unwrap();
    }
    // Exact cancellation: every key disappears from every view.
    assert_eq!(engine.total_view_entries(), 0);
    assert!(engine.result().is_zero());
}

#[test]
fn grouped_query_result_relation_matches_reevaluation() {
    // A query with a free (group-by) variable: COUNT(*) GROUP BY C.
    let mut b = QuerySpec::builder("grouped");
    let a = b.key("A");
    let c = b.key("C");
    let x = b.continuous_feature("X");
    b.relation("R", &[a, x]);
    b.relation("S", &[a, c]);
    b.group_by(&[c]);
    let spec = b.build().unwrap();
    let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
    let tree = ViewTree::new(spec.clone(), vo).unwrap();
    let mut engine = apps::count_engine(tree).unwrap();

    let mut shadow = Shadow::new(&spec);
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..150 {
        let rel = rng.gen_range(0..2);
        let row = random_row(&mut rng, &spec, rel);
        let mult = if rng.gen_bool(0.2) { -1 } else { 1 };
        shadow.apply(rel, &row, mult);
        engine.apply_rows(rel, vec![(row, mult)]).unwrap();
    }
    let expected = shadow.join().marginalize(&[c]);
    let got = engine.result_relation().marginalize(&[c]);
    assert_eq!(got.len(), expected.len());
    for (k, v) in expected.iter() {
        assert_eq!(got.get(k), Some(v), "mismatch for group {k:?}");
    }
}

#[test]
fn batched_updates_equal_row_at_a_time_updates() {
    let spec = star_query();
    let tree = tree_of(&spec, EliminationHeuristic::MinDegree);
    let mut batched = apps::covar_engine(tree.clone()).unwrap();
    let mut single = apps::covar_engine(tree).unwrap();

    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..10 {
        for rel in 0..spec.num_relations() {
            let rows: Vec<(Tuple, i64)> = (0..50)
                .map(|_| {
                    let row = random_row(&mut rng, &spec, rel);
                    let mult = if rng.gen_bool(0.2) { -1 } else { 1 };
                    (row, mult)
                })
                .collect();
            for (row, mult) in &rows {
                single.apply_rows(rel, vec![(row.clone(), *mult)]).unwrap();
            }
            batched.apply_rows(rel, rows).unwrap();
        }
    }
    assert!(batched.result().approx_eq(&single.result(), 1e-7));
    let stats = batched.stats();
    assert!(stats.updates_applied > 0);
    assert!(stats.rows_applied >= 1500);
}
