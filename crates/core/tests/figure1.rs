//! Reproduces the worked example of Figure 1 of the paper: the query
//! `SUM(g_B(B) * g_C(C) * g_D(D))` over `R(A,B) ⋈ S(A,C,D)` on the toy
//! database, under the Z ring (counts), the degree-3 cofactor ring (COVAR
//! over continuous B, C, D), the generalized ring (COVAR with categorical C)
//! and the MI payload (all attributes categorical), plus the delta
//! propagation for updates to R shown on the right of the figure.

use fivm_common::{EncodedValue, Value};
use fivm_core::apps;
use fivm_query::spec::figure1_query;
use fivm_query::ViewTree;
use fivm_relation::tuple;
use std::collections::HashMap;

/// The Figure 1 variable order: A at the root, B under A (with R), C under A
/// and D under C (with S).
fn figure1_tree(categorical_c: bool) -> ViewTree {
    let spec = figure1_query(categorical_c);
    let a = spec.var_id("A").unwrap();
    let c = spec.var_id("C").unwrap();
    let mut parents = vec![None; 4];
    parents[spec.var_id("B").unwrap()] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").unwrap()] = Some(c);
    ViewTree::from_parent_vars(spec, &parents).unwrap()
}

/// The toy database of Figure 1.  Values follow the paper's convention
/// `b_i = c_i = d_i = i`; A-values are 1 and 2.
/// R = {(a1,b1), (a2,b2)},  S = {(a1,c1,d1), (a1,c2,d3), (a2,c2,d2)}.
fn r_rows() -> Vec<(fivm_relation::Tuple, i64)> {
    vec![
        (tuple([Value::int(1), Value::int(1)]), 1),
        (tuple([Value::int(2), Value::int(2)]), 1),
    ]
}

fn s_rows() -> Vec<(fivm_relation::Tuple, i64)> {
    vec![
        (tuple([Value::int(1), Value::int(1), Value::int(1)]), 1),
        (tuple([Value::int(1), Value::int(2), Value::int(3)]), 1),
        (tuple([Value::int(2), Value::int(2), Value::int(2)]), 1),
    ]
}

/// For the categorical scenarios the C column uses string categories `c1`,
/// `c2` as in the figure.
fn s_rows_categorical() -> Vec<(fivm_relation::Tuple, i64)> {
    vec![
        (tuple([Value::int(1), Value::str("c1"), Value::int(1)]), 1),
        (tuple([Value::int(1), Value::str("c2"), Value::int(3)]), 1),
        (tuple([Value::int(2), Value::str("c2"), Value::int(2)]), 1),
    ]
}

#[test]
fn count_aggregate_matches_figure() {
    let mut engine = apps::count_engine(figure1_tree(false)).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();
    // |R ⋈ S| = 3 (a1 joins two S tuples, a2 joins one).
    assert_eq!(engine.result(), 3);

    // The intermediate views hold the per-A partial counts of the figure:
    // V_R(a1)=1, V_R(a2)=1; V_S(a1)=2, V_S(a2)=1.
    let spec = engine.tree().spec().clone();
    let b_node = engine.tree().vorder().node_of(spec.var_id("B").unwrap());
    let vr = engine.view_relation(b_node);
    assert_eq!(vr.get(&tuple([Value::int(1)])), Some(&1));
    assert_eq!(vr.get(&tuple([Value::int(2)])), Some(&1));
    let c_node = engine.tree().vorder().node_of(spec.var_id("C").unwrap());
    let vs = engine.view_relation(c_node);
    assert_eq!(vs.get(&tuple([Value::int(1)])), Some(&2));
    assert_eq!(vs.get(&tuple([Value::int(2)])), Some(&1));
}

#[test]
fn count_aggregate_under_updates_to_r() {
    // Right-hand side of Figure 1: maintain under updates δR.
    let mut engine = apps::count_engine(figure1_tree(false)).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();
    assert_eq!(engine.result(), 0);

    // Insert (a1, b1): joins the two S tuples with A = a1.
    engine
        .apply_rows(0, vec![(tuple([Value::int(1), Value::int(1)]), 1)])
        .unwrap();
    assert_eq!(engine.result(), 2);

    // Insert (a2, b2): one more joining tuple.
    engine
        .apply_rows(0, vec![(tuple([Value::int(2), Value::int(2)]), 1)])
        .unwrap();
    assert_eq!(engine.result(), 3);

    // Delete (a1, b1) again: back to 1.
    engine
        .apply_rows(0, vec![(tuple([Value::int(1), Value::int(1)]), -1)])
        .unwrap();
    assert_eq!(engine.result(), 1);
}

#[test]
fn covar_continuous_matches_hand_computation() {
    // COVAR payload for continuous B, C, D with b_i = c_i = d_i = i.
    // Join result (B, C, D) rows: (1,1,1), (1,2,3), (2,2,2).
    let mut engine = apps::covar_engine(figure1_tree(false)).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();
    let q = engine.result();

    assert_eq!(q.count(), 3.0);
    // Batch order is (B, C, D).
    assert_eq!(q.sum(0), 1.0 + 1.0 + 2.0); // SUM(B) = 4
    assert_eq!(q.sum(1), 1.0 + 2.0 + 2.0); // SUM(C) = 5
    assert_eq!(q.sum(2), 1.0 + 3.0 + 2.0); // SUM(D) = 6
    assert_eq!(q.prod(0, 0), 1.0 + 1.0 + 4.0); // SUM(B*B) = 6
    assert_eq!(q.prod(0, 1), 1.0 + 2.0 + 4.0); // SUM(B*C) = 7
    assert_eq!(q.prod(0, 2), 1.0 + 3.0 + 4.0); // SUM(B*D) = 8
    assert_eq!(q.prod(1, 1), 1.0 + 4.0 + 4.0); // SUM(C*C) = 9
    assert_eq!(q.prod(1, 2), 1.0 + 6.0 + 4.0); // SUM(C*D) = 11
    assert_eq!(q.prod(2, 2), 1.0 + 9.0 + 4.0); // SUM(D*D) = 14
}

#[test]
fn covar_continuous_is_maintained_under_deletes() {
    let mut engine = apps::covar_engine(figure1_tree(false)).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();

    // Delete the S tuple (a1, c2, d3) and check SUM(C*D) drops by 6.
    engine
        .apply_rows(
            1,
            vec![(tuple([Value::int(1), Value::int(2), Value::int(3)]), -1)],
        )
        .unwrap();
    let q = engine.result();
    assert_eq!(q.count(), 2.0);
    assert_eq!(q.prod(1, 2), 1.0 + 4.0);

    // Delete everything else: the result becomes zero.
    engine
        .apply_rows(
            1,
            vec![
                (tuple([Value::int(1), Value::int(1), Value::int(1)]), -1),
                (tuple([Value::int(2), Value::int(2), Value::int(2)]), -1),
            ],
        )
        .unwrap();
    assert!(fivm_ring::Ring::is_zero(&engine.result()));
}

#[test]
fn covar_with_categorical_c_matches_figure() {
    // COVAR with categorical C and continuous B, D (paper's middle payload
    // column).  Batch order is (B, C, D) with indices (0, 1, 2).
    let mut engine = apps::gen_covar_engine(figure1_tree(true)).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows_categorical()).unwrap();
    let q = engine.result();
    // Categories are strings — encoded through the engine's context.
    let c1 = engine.ctx().encode_value(&Value::str("c1"));
    let c2 = engine.ctx().encode_value(&Value::str("c2"));

    assert_eq!(q.count(), 3.0);
    // s_B = SUM(B) = 4 (continuous → scalar relation).
    assert_eq!(q.sum(0).scalar_part(), 4.0);
    // s_C = SUM(1) GROUP BY C = {c1 -> 1, c2 -> 2}.
    assert_eq!(q.sum(1).get(&[(1, c1)]), 1.0);
    assert_eq!(q.sum(1).get(&[(1, c2)]), 2.0);
    // s_D = SUM(D) = 6.
    assert_eq!(q.sum(2).scalar_part(), 6.0);
    // Q_BC = SUM(B) GROUP BY C = {c1 -> 1, c2 -> 3}.
    assert_eq!(q.prod(0, 1).get(&[(1, c1)]), 1.0);
    assert_eq!(q.prod(0, 1).get(&[(1, c2)]), 3.0);
    // Q_BD = SUM(B*D) = 1 + 3 + 4 = 8.
    assert_eq!(q.prod(0, 2).scalar_part(), 8.0);
    // Q_CD = SUM(D) GROUP BY C = {c1 -> 1, c2 -> 5}.
    assert_eq!(q.prod(1, 2).get(&[(1, c1)]), 1.0);
    assert_eq!(q.prod(1, 2).get(&[(1, c2)]), 5.0);
    // Q_CC = SUM(1) GROUP BY C.
    assert_eq!(q.prod(1, 1).get(&[(1, c2)]), 2.0);
}

#[test]
fn mi_payload_matches_figure() {
    // MI payload: all of B, C, D categorical (paper's last payload column).
    // We reuse the mixed-ring engine with a query declaring them categorical.
    let spec = {
        let mut b = fivm_query::QuerySpec::builder("figure1_mi");
        let a = b.key("A");
        let bb = b.categorical_feature("B");
        let c = b.categorical_feature("C");
        let d = b.categorical_feature("D");
        b.relation("R", &[a, bb]);
        b.relation("S", &[a, c, d]);
        b.build().unwrap()
    };
    let a = spec.var_id("A").unwrap();
    let c = spec.var_id("C").unwrap();
    let mut parents = vec![None; 4];
    parents[spec.var_id("B").unwrap()] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").unwrap()] = Some(c);
    let tree = ViewTree::from_parent_vars(spec, &parents).unwrap();
    let mut engine = apps::mi_engine(tree, &HashMap::new()).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();
    let q = engine.result();

    // C_∅ = 3.
    assert_eq!(q.count(), 3.0);
    // C_B = SUM(1) GROUP BY B = {1 -> 2, 2 -> 1}.
    assert_eq!(q.sum(0).get(&[(0, EncodedValue::int(1))]), 2.0);
    assert_eq!(q.sum(0).get(&[(0, EncodedValue::int(2))]), 1.0);
    // C_BC = SUM(1) GROUP BY (B, C): (1,1)->1, (1,2)->1, (2,2)->1.
    assert_eq!(
        q.prod(0, 1).get(&[(0, EncodedValue::int(1)), (1, EncodedValue::int(1))]),
        1.0
    );
    assert_eq!(
        q.prod(0, 1).get(&[(0, EncodedValue::int(1)), (1, EncodedValue::int(2))]),
        1.0
    );
    assert_eq!(
        q.prod(0, 1).get(&[(0, EncodedValue::int(2)), (1, EncodedValue::int(2))]),
        1.0
    );
    // C_CD = SUM(1) GROUP BY (C, D): (1,1)->1, (2,3)->1, (2,2)->1.
    assert_eq!(
        q.prod(1, 2).get(&[(1, EncodedValue::int(2)), (2, EncodedValue::int(3))]),
        1.0
    );
}

#[test]
fn factorized_evaluation_lists_the_join_result() {
    // The relation ring maintains the listing of the join projected onto the
    // aggregate variables (B, C, D).
    let mut engine = apps::relational_engine(figure1_tree(false)).unwrap();
    engine.apply_rows(0, r_rows()).unwrap();
    engine.apply_rows(1, s_rows()).unwrap();
    let listing = engine.result();
    let spec = figure1_query(false);
    let b = spec.var_id("B").unwrap() as u32;
    let c = spec.var_id("C").unwrap() as u32;
    let d = spec.var_id("D").unwrap() as u32;
    assert_eq!(listing.len(), 3);
    assert_eq!(
        listing.get(&[(b, EncodedValue::int(1)), (c, EncodedValue::int(1)), (d, EncodedValue::int(1))]),
        1.0
    );
    assert_eq!(
        listing.get(&[(b, EncodedValue::int(1)), (c, EncodedValue::int(2)), (d, EncodedValue::int(3))]),
        1.0
    );
    assert_eq!(
        listing.get(&[(b, EncodedValue::int(2)), (c, EncodedValue::int(2)), (d, EncodedValue::int(2))]),
        1.0
    );
}

#[test]
fn view_tree_m3_rendering_mentions_every_view() {
    let tree = figure1_tree(false);
    let text = fivm_query::m3::render_all_views(&tree, "RingCofactor<double, 3>");
    for name in ["V@A", "V@B", "V@C", "V@D"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    let ascii = fivm_query::m3::render_tree_ascii(&tree);
    assert!(ascii.contains("V@A[]"));
}
