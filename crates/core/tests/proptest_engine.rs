//! Randomized property tests of the maintenance engine: for arbitrary
//! update sequences over the Figure-1 join, the incrementally maintained
//! result equals the result computed from scratch, applying a sequence
//! followed by its inverse is a no-op, and batched (grouped, in-place)
//! propagation is ring-equivalent to one-row-at-a-time propagation.
//!
//! (The environment has no crates.io access, so this uses a seeded RNG
//! harness instead of `proptest`; every case is deterministic and
//! reproducible from the printed seed.)

use fivm_common::Value;
use fivm_core::apps;
use fivm_query::spec::figure1_query;
use fivm_query::{EliminationHeuristic, VariableOrder, ViewTree};
use fivm_relation::{tuple, Relation, Tuple};
use fivm_ring::{ApproxEq, Cofactor, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One update in a generated stream.
#[derive(Clone, Debug)]
struct Step {
    rel: usize,
    row: Vec<i64>,
    mult: i64,
}

fn rand_step(rng: &mut StdRng) -> Step {
    let rel = rng.gen_range(0..2usize);
    let a = rng.gen_range(0..4i64);
    let x = rng.gen_range(1..6i64);
    let y = rng.gen_range(1..6i64);
    let row = if rel == 0 { vec![a, x] } else { vec![a, x, y] };
    Step {
        rel,
        row,
        mult: if rng.gen_bool(0.5) { -1 } else { 1 },
    }
}

fn rand_steps(rng: &mut StdRng, max: usize) -> Vec<Step> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| rand_step(rng)).collect()
}

/// Runs `body` once per case with a per-case RNG, labelling failures with
/// the case seed.
fn for_cases(test: &str, cases: u64, body: impl Fn(&mut StdRng)) {
    for case in 0..cases {
        let seed = 0xE46 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(err) = result {
            eprintln!("{test}: failing case seed = {seed}");
            std::panic::resume_unwind(err);
        }
    }
}

fn as_tuple(row: &[i64]) -> Tuple {
    tuple(row.iter().map(|&v| Value::int(v)))
}

fn figure1_tree(heuristic: EliminationHeuristic) -> ViewTree {
    let spec = figure1_query(false);
    let vo = VariableOrder::heuristic(&spec, heuristic).unwrap();
    ViewTree::new(spec, vo).unwrap()
}

/// From-scratch COVAR over the current multiset state of R and S.
fn reference(r: &Relation<i64>, s: &Relation<i64>) -> Cofactor {
    let join = r.natural_join(s);
    let vars = join.vars().to_vec();
    let pos = |v: usize| vars.iter().position(|&x| x == v).unwrap();
    let (b, c, d) = (pos(1), pos(2), pos(3));
    let mut acc = Cofactor::zero();
    for (t, m) in join.iter() {
        let term = Cofactor::lift(3, 0, t[b].as_f64().unwrap())
            .mul(&Cofactor::lift(3, 1, t[c].as_f64().unwrap()))
            .mul(&Cofactor::lift(3, 2, t[d].as_f64().unwrap()));
        acc.add_assign(&term.scale_int(*m));
    }
    acc
}

#[test]
fn maintained_covar_equals_reevaluation() {
    for_cases("maintained_covar_equals_reevaluation", 24, |rng| {
        let mut engine = apps::covar_engine(figure1_tree(EliminationHeuristic::MinDegree)).unwrap();
        let mut r: Relation<i64> = Relation::new(vec![0, 1]);
        let mut s: Relation<i64> = Relation::new(vec![0, 2, 3]);

        for step in rand_steps(rng, 40) {
            let row = as_tuple(&step.row);
            if step.rel == 0 {
                r.add(row.clone(), step.mult);
            } else {
                s.add(row.clone(), step.mult);
            }
            engine.apply_rows(step.rel, vec![(row, step.mult)]).unwrap();
        }
        let expected = reference(&r, &s);
        assert!(
            engine.result().approx_eq(&expected, 1e-7),
            "engine={:?} expected={:?}",
            engine.result(),
            expected
        );
    });
}

#[test]
fn applying_a_stream_and_its_inverse_is_a_noop() {
    for_cases("applying_a_stream_and_its_inverse_is_a_noop", 24, |rng| {
        let mut engine = apps::covar_engine(figure1_tree(EliminationHeuristic::MinFill)).unwrap();

        // Seed with a couple of fixed rows so the initial state is
        // non-trivial.
        engine.apply_rows(0, vec![(as_tuple(&[1, 2]), 1)]).unwrap();
        engine.apply_rows(1, vec![(as_tuple(&[1, 3, 4]), 1)]).unwrap();
        let before = engine.result();
        let entries_before = engine.total_view_entries();

        let steps = rand_steps(rng, 30);
        for step in &steps {
            engine
                .apply_rows(step.rel, vec![(as_tuple(&step.row), step.mult)])
                .unwrap();
        }
        for step in steps.iter().rev() {
            engine
                .apply_rows(step.rel, vec![(as_tuple(&step.row), -step.mult)])
                .unwrap();
        }
        assert!(engine.result().approx_eq(&before, 1e-7));
        assert_eq!(engine.total_view_entries(), entries_before);
    });
}

#[test]
fn count_never_goes_negative_for_insert_only_streams() {
    for_cases("count_never_goes_negative", 24, |rng| {
        let mut engine = apps::count_engine(figure1_tree(EliminationHeuristic::MinDegree)).unwrap();
        for step in rand_steps(rng, 40) {
            engine
                .apply_rows(step.rel, vec![(as_tuple(&step.row), step.mult.abs())])
                .unwrap();
            assert!(engine.result() >= 0);
        }
    });
}

/// The tentpole property of the batched hot path: applying a whole batch at
/// once (grouped by key, propagated with the in-place ring ops) must be
/// ring-equivalent to applying the same rows one at a time, including
/// insert/delete interleavings that cancel to zero inside one batch.
#[test]
fn batched_propagation_equals_row_at_a_time() {
    for_cases("batched_propagation_equals_row_at_a_time", 32, |rng| {
        let mut batched = apps::covar_engine(figure1_tree(EliminationHeuristic::MinDegree)).unwrap();
        let mut row_wise = apps::covar_engine(figure1_tree(EliminationHeuristic::MinDegree)).unwrap();

        // A few batches per case; each batch mixes relations, duplicates and
        // exact insert/delete cancellations.
        for _ in 0..rng.gen_range(1..4usize) {
            let mut steps = rand_steps(rng, 24);
            // Force some exact cancellations within the batch: append the
            // inverse of a random prefix of the batch.
            let cancel = rng.gen_range(0..=steps.len());
            let inverses: Vec<Step> = steps[..cancel]
                .iter()
                .map(|s| Step {
                    rel: s.rel,
                    row: s.row.clone(),
                    mult: -s.mult,
                })
                .collect();
            steps.extend(inverses);

            // Batched: group the batch per relation (apply_rows applies one
            // relation's rows as a single grouped delta).
            for rel in 0..2usize {
                let rows: Vec<(Tuple, i64)> = steps
                    .iter()
                    .filter(|s| s.rel == rel)
                    .map(|s| (as_tuple(&s.row), s.mult))
                    .collect();
                if !rows.is_empty() {
                    batched.apply_rows(rel, rows).unwrap();
                }
            }
            // Row-at-a-time, same per-relation order as the batched variant.
            for rel in 0..2usize {
                for s in steps.iter().filter(|s| s.rel == rel) {
                    row_wise
                        .apply_rows(s.rel, vec![(as_tuple(&s.row), s.mult)])
                        .unwrap();
                }
            }

            assert!(
                batched.result().approx_eq(&row_wise.result(), 1e-7),
                "batched={:?} row_wise={:?}",
                batched.result(),
                row_wise.result()
            );
            // Every materialized view must agree, not just the root result.
            assert_eq!(
                batched.total_view_entries(),
                row_wise.total_view_entries(),
                "view sizes diverge between batched and row-at-a-time"
            );
        }
    });
}
