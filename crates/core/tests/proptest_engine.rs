//! Property-based tests of the maintenance engine: for arbitrary update
//! sequences over the Figure-1 join, the incrementally maintained result
//! equals the result computed from scratch, and applying a sequence followed
//! by its inverse is a no-op.

use fivm_common::Value;
use fivm_core::apps;
use fivm_query::spec::figure1_query;
use fivm_query::{EliminationHeuristic, VariableOrder, ViewTree};
use fivm_relation::{tuple, Relation, Tuple};
use fivm_ring::{ApproxEq, Cofactor, Ring};
use proptest::prelude::*;

/// One update in a generated stream.
#[derive(Clone, Debug)]
struct Step {
    rel: usize,
    row: Vec<i64>,
    mult: i64,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0usize..2, 0i64..4, 1i64..6, 1i64..6, prop::bool::ANY).prop_map(|(rel, a, x, y, delete)| {
        let row = if rel == 0 { vec![a, x] } else { vec![a, x, y] };
        Step {
            rel,
            row,
            mult: if delete { -1 } else { 1 },
        }
    })
}

fn as_tuple(row: &[i64]) -> Tuple {
    tuple(row.iter().map(|&v| Value::int(v)))
}

/// From-scratch COVAR over the current multiset state of R and S.
fn reference(r: &Relation<i64>, s: &Relation<i64>) -> Cofactor {
    let join = r.natural_join(s);
    let vars = join.vars().to_vec();
    let pos = |v: usize| vars.iter().position(|&x| x == v).unwrap();
    let (b, c, d) = (pos(1), pos(2), pos(3));
    let mut acc = Cofactor::zero();
    for (t, m) in join.iter() {
        let term = Cofactor::lift(3, 0, t[b].as_f64().unwrap())
            .mul(&Cofactor::lift(3, 1, t[c].as_f64().unwrap()))
            .mul(&Cofactor::lift(3, 2, t[d].as_f64().unwrap()));
        acc.add_assign(&term.scale_int(*m));
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn maintained_covar_equals_reevaluation(steps in prop::collection::vec(arb_step(), 1..40)) {
        let spec = figure1_query(false);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        let tree = ViewTree::new(spec, vo).unwrap();
        let mut engine = apps::covar_engine(tree).unwrap();
        let mut r: Relation<i64> = Relation::new(vec![0, 1]);
        let mut s: Relation<i64> = Relation::new(vec![0, 2, 3]);

        for step in &steps {
            let row = as_tuple(&step.row);
            if step.rel == 0 {
                r.add(row.clone(), step.mult);
            } else {
                s.add(row.clone(), step.mult);
            }
            engine.apply_rows(step.rel, vec![(row, step.mult)]).unwrap();
        }
        let expected = reference(&r, &s);
        prop_assert!(
            engine.result().approx_eq(&expected, 1e-7),
            "engine={:?} expected={:?}",
            engine.result(),
            expected
        );
    }

    #[test]
    fn applying_a_stream_and_its_inverse_is_a_noop(steps in prop::collection::vec(arb_step(), 1..30)) {
        let spec = figure1_query(false);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinFill).unwrap();
        let tree = ViewTree::new(spec, vo).unwrap();
        let mut engine = apps::covar_engine(tree).unwrap();

        // Seed with a couple of fixed rows so the initial state is non-trivial.
        engine.apply_rows(0, vec![(as_tuple(&[1, 2]), 1)]).unwrap();
        engine.apply_rows(1, vec![(as_tuple(&[1, 3, 4]), 1)]).unwrap();
        let before = engine.result();
        let entries_before = engine.total_view_entries();

        for step in &steps {
            engine.apply_rows(step.rel, vec![(as_tuple(&step.row), step.mult)]).unwrap();
        }
        for step in steps.iter().rev() {
            engine.apply_rows(step.rel, vec![(as_tuple(&step.row), -step.mult)]).unwrap();
        }
        prop_assert!(engine.result().approx_eq(&before, 1e-7));
        prop_assert_eq!(engine.total_view_entries(), entries_before);
    }

    #[test]
    fn count_never_goes_negative_for_insert_only_streams(
        steps in prop::collection::vec(arb_step(), 1..40)
    ) {
        let spec = figure1_query(false);
        let vo = VariableOrder::heuristic(&spec, EliminationHeuristic::MinDegree).unwrap();
        let tree = ViewTree::new(spec, vo).unwrap();
        let mut engine = apps::count_engine(tree).unwrap();
        for step in &steps {
            engine.apply_rows(step.rel, vec![(as_tuple(&step.row), step.mult.abs())]).unwrap();
            prop_assert!(engine.result() >= 0);
        }
    }
}
