//! Pins the engine's probe-volume counters so regressions fail loudly.
//!
//! The hash-once contract says every delta key is hashed (and each sibling
//! probed) at most once per propagation level; with batch grouping, probe
//! volume is bounded by *distinct* keys, not input rows.  These tests
//! assert exact `probes`/`probe_hits` counts on the Figure-1 join under a
//! hand-picked view tree, so any change that re-probes (or re-hashes via
//! extra probes) shows up as a counter mismatch, and `rehashes` tracks
//! table growth.

use fivm_common::Value;
use fivm_core::apps;
use fivm_query::spec::figure1_query;
use fivm_query::ViewTree;
use fivm_relation::{tuple, Tuple};

/// The paper's Figure-1 tree: A root over B and C, D under C;
/// R(A, B) attaches below B, S(A, C, D) below D.
fn figure1_tree() -> ViewTree {
    let spec = figure1_query(false);
    let a = spec.var_id("A").unwrap();
    let c = spec.var_id("C").unwrap();
    let mut parents = vec![None; 4];
    parents[spec.var_id("B").unwrap()] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").unwrap()] = Some(c);
    ViewTree::from_parent_vars(spec, &parents).unwrap()
}

fn t(vals: &[i64]) -> Tuple {
    tuple(vals.iter().map(|&v| Value::int(v)))
}

#[test]
fn probe_counts_are_exact_per_propagation_level() {
    let mut engine = apps::count_engine(figure1_tree()).unwrap();
    assert_eq!(engine.stats().probes, 0);
    assert_eq!(engine.stats().probe_hits, 0);

    // R(1, 2): B's level is probe-free (single child); at the root the
    // sibling C-view is probed once and missed (it is empty).
    engine.apply_rows(0, vec![(t(&[1, 2]), 1)]).unwrap();
    let s = engine.stats();
    assert_eq!((s.probes, s.probe_hits), (1, 0));

    // S(1, 3, 4): D and C levels are probe-free; at the root the sibling
    // B-view is probed once and hits (it holds A=1).
    engine.apply_rows(1, vec![(t(&[1, 3, 4]), 1)]).unwrap();
    let s = engine.stats();
    assert_eq!((s.probes, s.probe_hits), (2, 1));

    // R(2, 5): the root probes the C-view for A=2 — a miss.
    engine.apply_rows(0, vec![(t(&[2, 5]), 1)]).unwrap();
    let s = engine.stats();
    assert_eq!((s.probes, s.probe_hits), (3, 1));

    // R(1, 7): the root probes the C-view for A=1 — a hit.
    engine.apply_rows(0, vec![(t(&[1, 7]), 1)]).unwrap();
    let s = engine.stats();
    assert_eq!((s.probes, s.probe_hits), (4, 2));
    assert_eq!(engine.result(), 2);
}

#[test]
fn grouped_batches_probe_once_per_distinct_key() {
    let mut engine = apps::count_engine(figure1_tree()).unwrap();
    engine.apply_rows(1, vec![(t(&[1, 3, 4]), 1)]).unwrap();
    let before = engine.stats();

    // 10 rows, all with join key A=1 and the same B: grouping collapses
    // them to ONE delta entry, so the root's sibling is probed exactly
    // once — probe volume scales with distinct keys, not rows.
    let rows: Vec<(Tuple, i64)> = (0..10).map(|_| (t(&[1, 2]), 1)).collect();
    engine.apply_rows(0, rows).unwrap();
    let delta = engine.stats().delta_since(&before);
    assert_eq!(delta.rows_applied, 10);
    assert_eq!(delta.probes, 1, "grouped batch must probe once per distinct key");
    assert_eq!(delta.probe_hits, 1);

    // Rows that cancel inside a batch never reach a probe.
    let before = engine.stats();
    engine
        .apply_rows(0, vec![(t(&[5, 5]), 1), (t(&[5, 5]), -1)])
        .unwrap();
    let delta = engine.stats().delta_since(&before);
    assert_eq!((delta.probes, delta.delta_entries), (0, 0));
}

#[test]
fn rehashes_count_table_growth_and_stay_flat_at_steady_state() {
    let mut engine = apps::count_engine(figure1_tree()).unwrap();
    assert_eq!(engine.stats().rehashes, 0);

    // Loading plenty of distinct keys forces the view tables to grow.
    let rows: Vec<(Tuple, i64)> = (0..2_000).map(|i| (t(&[i % 50, i]), 1)).collect();
    engine.apply_rows(0, rows).unwrap();
    let grown = engine.stats().rehashes;
    assert!(grown > 0, "2000 distinct keys must grow some view table");

    // Re-touching existing keys rehashes nothing.
    let before = engine.stats();
    let rows: Vec<(Tuple, i64)> = (0..100).map(|i| (t(&[i % 50, i]), 1)).collect();
    engine.apply_rows(0, rows).unwrap();
    assert_eq!(
        engine.stats().delta_since(&before).rehashes,
        0,
        "steady-state updates must not rehash"
    );
}

#[test]
fn deferred_index_builds_fire_once_per_probed_index() {
    // Star query R(A,B) ⋈ S(A,C,D) ⋈ T(C,E): propagating an S delta binds
    // A and C and probes the sibling leaves on key *subsets*, which the
    // plan serves with secondary indexes.  Those indexes are deferred:
    // they cost nothing until the first S update forces a build, and each
    // index builds exactly once.
    let spec = {
        let mut b = fivm_query::QuerySpec::builder("star");
        let a = b.key("A");
        let bb = b.continuous_feature("B");
        let c = b.key("C");
        let d = b.continuous_feature("D");
        let e = b.continuous_feature("E");
        b.relation("R", &[a, bb]);
        b.relation("S", &[a, c, d]);
        b.relation("T", &[c, e]);
        b.build().unwrap()
    };
    let vo = fivm_query::VariableOrder::heuristic(&spec, fivm_query::EliminationHeuristic::MinDegree)
        .unwrap();
    let tree = ViewTree::new(spec, vo).unwrap();
    let planned_indexes: usize = fivm_core::ExecutionPlan::compile(tree.clone())
        .unwrap()
        .index_requirements()
        .iter()
        .map(Vec::len)
        .sum();
    assert!(planned_indexes > 0, "the star query must plan index probes");

    let mut engine = apps::count_engine(tree).unwrap();
    assert_eq!(engine.stats().deferred_index_builds, 0);

    // The first pass over every relation forces the probed indexes to
    // build (each exactly once, lazily, at the level that probes it).
    engine
        .apply_rows(0, (0..20).map(|i| (t(&[i % 6, i]), 1)))
        .unwrap();
    engine
        .apply_rows(2, (0..20).map(|i| (t(&[i % 5, i]), 1)))
        .unwrap();
    engine
        .apply_rows(1, (0..10).map(|i| (t(&[i % 6, i % 5, i]), 1)))
        .unwrap();
    let built = engine.stats().deferred_index_builds;
    assert!(built > 0, "the update pattern must have probed an index");
    assert!(
        built <= planned_indexes,
        "each planned index builds at most once ({built} builds, {planned_indexes} planned)"
    );

    // Further batches maintain the built indexes incrementally: the
    // deferred-build counter stays flat.
    engine
        .apply_rows(1, (10..30).map(|i| (t(&[i % 6, i % 5, i]), 1)))
        .unwrap();
    engine
        .apply_rows(0, (20..30).map(|i| (t(&[i % 6, i]), 1)))
        .unwrap();
    assert_eq!(engine.stats().deferred_index_builds, built);

    // ...and the lazily built indexes serve a non-trivial join result (the
    // equivalence suite covers exact correctness under mixed streams).
    assert!(engine.result() > 0);
}

#[test]
fn stats_merge_sums_every_counter() {
    // Two engines fed disjoint slices of the same workload: merged
    // counters must equal the counters of one engine fed everything —
    // `merge` is how a sharded deployment aggregates its shards.
    let mut whole = apps::count_engine(figure1_tree()).unwrap();
    let mut left = apps::count_engine(figure1_tree()).unwrap();
    let mut right = apps::count_engine(figure1_tree()).unwrap();

    let rows: Vec<(Tuple, i64)> = (0..40).map(|i| (t(&[i, i]), 1)).collect();
    let (l, r) = rows.split_at(20);
    whole.apply_rows(0, rows.clone()).unwrap();
    left.apply_rows(0, l.to_vec()).unwrap();
    right.apply_rows(0, r.to_vec()).unwrap();

    let merged = left.stats().merge(&right.stats());
    assert_eq!(merged.rows_applied, whole.stats().rows_applied);
    assert_eq!(merged.delta_entries, whole.stats().delta_entries);
    assert_eq!(merged.ring_adds, whole.stats().ring_adds);
    assert_eq!(merged.updates_applied, 2);

    // Field-wise sum holds for every counter, probes/rehashes included.
    let a = fivm_core::EngineStats {
        updates_applied: 1,
        rows_applied: 2,
        delta_entries: 3,
        ring_adds: 4,
        ring_muls: 5,
        probes: 6,
        probe_hits: 7,
        rehashes: 8,
        ring_rehashes: 9,
        deferred_index_builds: 1,
        table_bytes: 100,
    };
    let b = fivm_core::EngineStats {
        updates_applied: 10,
        rows_applied: 20,
        delta_entries: 30,
        ring_adds: 40,
        ring_muls: 50,
        probes: 60,
        probe_hits: 70,
        rehashes: 80,
        ring_rehashes: 90,
        deferred_index_builds: 10,
        table_bytes: 1000,
    };
    let m = a.merge(&b);
    assert_eq!(
        m,
        fivm_core::EngineStats {
            updates_applied: 11,
            rows_applied: 22,
            delta_entries: 33,
            ring_adds: 44,
            ring_muls: 55,
            probes: 66,
            probe_hits: 77,
            rehashes: 88,
            ring_rehashes: 99,
            deferred_index_builds: 11,
            table_bytes: 1100,
        }
    );
    // merge and delta_since are inverses for the counters; the byte gauge
    // is not differenced — delta_since carries the later snapshot's
    // footprint through (a difference of a shrinkable gauge is
    // meaningless, and consumers always want the resident footprint).
    assert_eq!(
        m.delta_since(&b),
        fivm_core::EngineStats { table_bytes: m.table_bytes, ..a }
    );
    let shrunk = fivm_core::EngineStats { table_bytes: 5, ..a };
    assert_eq!(shrunk.delta_since(&a).table_bytes, 5);
}

#[test]
fn table_bytes_tracks_view_growth() {
    let mut engine = apps::count_engine(figure1_tree()).unwrap();
    let empty = engine.stats().table_bytes;
    let rows: Vec<(Tuple, i64)> = (0..2_000).map(|i| (t(&[i % 50, i]), 1)).collect();
    engine.apply_rows(0, rows.clone()).unwrap();
    let grown = engine.stats().table_bytes;
    assert!(
        grown > empty,
        "2000 distinct keys must grow the byte footprint ({empty} -> {grown})"
    );
    // Deleting every row shrinks the live key set.  The retained table
    // capacity (parked slots keep their buffers) means the gauge does not
    // return to the empty footprint, and the freed-slot bookkeeping (the
    // view free list) may add a few KB — but deletes must not grow the
    // footprint beyond that bookkeeping.
    let deletes: Vec<(Tuple, i64)> = rows.iter().map(|(r, _)| (r.clone(), -1)).collect();
    engine.apply_rows(0, deletes).unwrap();
    let after = engine.stats().table_bytes;
    let free_list_slack = 2 * rows.len() * std::mem::size_of::<u32>();
    assert!(
        after <= grown + free_list_slack,
        "deletes ballooned the footprint: {grown} -> {after}"
    );
}

#[test]
fn outcome_merge_sums_rows_and_delta_entries() {
    let mut left = apps::count_engine(figure1_tree()).unwrap();
    let mut right = apps::count_engine(figure1_tree()).unwrap();
    let a = left
        .apply_rows(0, vec![(t(&[1, 2]), 1), (t(&[2, 3]), 1)])
        .unwrap();
    let b = right.apply_rows(0, vec![(t(&[3, 4]), 1)]).unwrap();
    let m = a.merge(&b);
    assert_eq!(m.input_rows, 3);
    assert_eq!(m.delta_entries, a.delta_entries + b.delta_entries);
}
