//! CdcService-style smoke test for the durable registry: a fleet of
//! queries journals its stream to a CDC changelog; after a simulated
//! crash, a freshly re-registered registry replays the changelog **once**
//! and every sink converges bit-identically to an uninterrupted twin.

use fivm_core::{AggregateLayout, BinSpec};
use fivm_dag::{DurableRegistry, QueryId, QueryKind, QueryRegistry};
use fivm_data::retailer::{retailer_query_continuous, retailer_tree};
use fivm_data::{RetailerConfig, StreamConfig};
use fivm_query::QuerySpec;
use std::collections::HashMap;

fn mi_binnings(spec: &QuerySpec) -> HashMap<usize, BinSpec> {
    let layout = AggregateLayout::of(spec);
    let mut bins = HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, BinSpec::new(0.0, 1_000.0, 8));
        }
    }
    bins
}

/// The fleet under test: a scalar COUNT and an MI matrix over the same
/// Retailer tree (both exact rings, so recovery must be bit-for-bit).
fn build_fleet() -> (QueryRegistry, QueryId, QueryId) {
    let spec = retailer_query_continuous();
    let bins = mi_binnings(&spec);
    let mut registry = QueryRegistry::new();
    let count_id = registry
        .register(retailer_tree(spec.clone()), QueryKind::Count, None)
        .unwrap();
    let mi_id = registry
        .register(retailer_tree(spec.clone()), QueryKind::Mi(bins), None)
        .unwrap();
    (registry, count_id, mi_id)
}

#[test]
fn recovered_fleet_replays_the_changelog_once_and_converges() {
    let dir = std::env::temp_dir().join(format!("fivm_dag_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("registry.cdclog");

    let cfg = RetailerConfig::tiny();
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 100,
            delete_fraction: 0.2,
            seed: 13,
        })
        .into_bulks();
    let (first, second) = updates.split_at(updates.len() / 2);

    // Primary: load, journal + apply half the stream, then "crash" (drop
    // without any clean shutdown — every acknowledged batch was fsynced).
    let (mut registry, count_id, mi_id) = build_fleet();
    registry.load_database(&db).unwrap();
    let mut durable = DurableRegistry::create(registry, &log_path).unwrap();
    let mut logged_rows = 0usize;
    for u in first {
        let outcome = durable.apply_update(u).unwrap();
        logged_rows += outcome.input_rows;
    }
    let count_before = durable.registry().count_result_relation(count_id).unwrap();
    let mi_before = durable.registry().gen_result_relation(mi_id).unwrap();
    drop(durable);

    // Recovery: same registrations (metadata, not journaled), same initial
    // database, one replay of the changelog.
    let (fresh, count_id2, mi_id2) = build_fleet();
    let mut recovered = DurableRegistry::recover(fresh, &db, &log_path).unwrap();
    let replayed = recovered.registry().stats();
    // `logged_rows` already counts both ring groups (the outcome merges
    // them); the load is counted once per group's five leaves.
    assert_eq!(
        replayed.rows_applied,
        db.tables().iter().map(|t| t.rows.len()).sum::<usize>() * 2 + logged_rows,
        "replay must process the initial load plus each logged batch exactly once per ring group"
    );
    assert!(
        recovered.registry().count_result_relation(count_id2).unwrap() == count_before,
        "recovered COUNT sink diverged from the pre-crash fleet"
    );
    assert!(
        recovered.registry().gen_result_relation(mi_id2).unwrap() == mi_before,
        "recovered MI sink diverged from the pre-crash fleet"
    );

    // The recovered fleet keeps journaling and tracks an uninterrupted twin
    // bit-for-bit through the rest of the stream.
    let (mut twin, twin_count, twin_mi) = build_fleet();
    twin.load_database(&db).unwrap();
    for u in first {
        twin.apply_update(u).unwrap();
    }
    for u in second {
        recovered.apply_update(u).unwrap();
        twin.apply_update(u).unwrap();
    }
    assert!(
        recovered.registry().count_result_relation(count_id2).unwrap()
            == twin.count_result_relation(twin_count).unwrap(),
        "post-recovery COUNT maintenance diverged"
    );
    assert!(
        recovered.registry().gen_result_relation(mi_id2).unwrap()
            == twin.gen_result_relation(twin_mi).unwrap(),
        "post-recovery MI maintenance diverged"
    );

    // A second crash/recovery over the longer log still converges.
    let final_count = recovered.registry().count_result_relation(count_id2).unwrap();
    drop(recovered);
    let (fresh, count_id3, _) = build_fleet();
    let recovered2 = DurableRegistry::recover(fresh, &db, &log_path).unwrap();
    assert!(
        recovered2.registry().count_result_relation(count_id3).unwrap() == final_count,
        "second recovery diverged"
    );

    std::fs::remove_dir_all(&dir).ok();
}
