//! Seeded differential tests: a shared multi-query DAG against standalone
//! single-tree engines, on Retailer and Favorita update streams.
//!
//! Every configuration registers K ≥ 3 overlapping queries (same relations
//! and variable order, different group-bys and aggregates) in one
//! registry, feeds both sides byte-identical update sequences, and
//! compares each query's result to its own standalone engine at several
//! points of the stream — including after a mid-stream `register` (backed
//! by shared-prefix backfill, no stream replay) and a mid-stream
//! `unregister`.
//!
//! # Exactness
//!
//! The DAG runs the same propagation kernel as the single-tree engine,
//! but a query registered mid-stream is *backfilled* from materialized
//! state, which re-associates ring additions relative to the standalone
//! replay; the shared dictionary also changes hash iteration orders.
//! Exactly as in the sharded differential suite:
//!
//! * COUNT (`i64`) and MI (integer-count `f64`s) are asserted
//!   **bit-for-bit**;
//! * COVAR over *quantized* streams (every continuous value an integer)
//!   is exact in any addition order, so it is asserted bit-for-bit too;
//! * COVAR over raw float streams is asserted to a tight relative
//!   tolerance.

use fivm_core::{apps, AggregateLayout, BinSpec, Engine};
use fivm_common::Value;
use fivm_dag::{QueryId, QueryKind, QueryRegistry};
use fivm_data::retailer::{retailer_query_continuous, retailer_tree};
use fivm_data::{FavoritaConfig, RetailerConfig, StreamConfig};
use fivm_query::QuerySpec;
use fivm_relation::{BaseTable, Database, Relation, Tuple, Update};
use fivm_ring::{ApproxEq, Ring};
use std::collections::HashMap;

// ---------------------------------------------------------------- helpers

fn quantize_value(v: &Value) -> Value {
    match v {
        Value::Double(d) => Value::double(d.get().round()),
        other => other.clone(),
    }
}

fn quantize_tuple(t: &[Value]) -> Tuple {
    t.iter().map(quantize_value).collect::<Vec<_>>().into_boxed_slice()
}

fn quantize_updates(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            Update::with_multiplicities(
                u.table.clone(),
                u.rows.iter().map(|(r, m)| (quantize_tuple(r), *m)).collect(),
            )
        })
        .collect()
}

fn quantize_database(db: &Database) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(quantize_tuple(row), *mult);
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

fn sorted_entries<R: Ring>(rel: &Relation<R>) -> Vec<(Tuple, R)> {
    let mut entries: Vec<(Tuple, R)> = rel.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[derive(Clone, Copy)]
enum Agreement {
    Exact,
    Approx(f64),
}

fn assert_agrees<R: Ring + ApproxEq>(
    got: &Relation<R>,
    expected: &Relation<R>,
    agreement: Agreement,
    ctx: &str,
) {
    let got = sorted_entries(got);
    let expected = sorted_entries(expected);
    assert_eq!(got.len(), expected.len(), "{ctx}: result cardinality diverged");
    for ((gk, gp), (ek, ep)) in got.iter().zip(expected.iter()) {
        assert_eq!(gk, ek, "{ctx}: decoded keys diverged");
        match agreement {
            Agreement::Exact => {
                assert!(gp == ep, "{ctx}: payload not bit-for-bit equal at key {gk:?}")
            }
            Agreement::Approx(tol) => assert!(
                gp.approx_eq(ep, tol),
                "{ctx}: payload outside tolerance at key {gk:?}"
            ),
        }
    }
}

/// The Retailer continuous-feature query with an explicit group-by: same
/// declarations (hence same fingerprints below the group-by divergence) as
/// `retailer_query_continuous`, grouped by the named key variables.
fn retailer_grouped(group_by: &[&str]) -> QuerySpec {
    let mut b = QuerySpec::builder(format!("retailer_continuous_by_{}", group_by.join("_")));
    let locn = b.key("locn");
    let dateid = b.key("dateid");
    let ksn = b.key("ksn");
    let zip = b.key("zip");
    let units = b.label("inventoryunits");
    let price = b.continuous_feature("price");
    let avghhi = b.continuous_feature("avghhi");
    let dist = b.continuous_feature("competitordistance");
    let population = b.continuous_feature("population");
    let medianage = b.continuous_feature("medianage");
    let maxtemp = b.continuous_feature("maxtemp");
    let mintemp = b.continuous_feature("mintemp");
    b.relation("Inventory", &[locn, dateid, ksn, units]);
    b.relation("Location", &[locn, zip, avghhi, dist]);
    b.relation("Census", &[zip, population, medianage]);
    b.relation("Item", &[ksn, price]);
    b.relation("Weather", &[locn, dateid, maxtemp, mintemp]);
    let by: Vec<usize> = group_by
        .iter()
        .map(|n| match *n {
            "locn" => locn,
            "dateid" => dateid,
            "ksn" => ksn,
            "zip" => zip,
            other => panic!("unknown group-by key {other}"),
        })
        .collect();
    b.group_by(&by);
    b.build().expect("grouped retailer query is valid")
}

fn mi_binnings(spec: &QuerySpec) -> HashMap<usize, BinSpec> {
    let layout = AggregateLayout::of(spec);
    let mut bins = HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, BinSpec::new(0.0, 1_000.0, 8));
        }
    }
    bins
}

fn retailer_workload() -> (Database, Vec<Update>) {
    let cfg = RetailerConfig {
        locations: 8,
        dates: 12,
        items: 16,
        zips: 4,
        inventory_density: 0.2,
        seed: 11,
    };
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 6,
            bulk_size: 150,
            delete_fraction: 0.25,
            seed: 5,
        })
        .into_bulks();
    (db, updates)
}

/// Folds applied updates into a copy of the database — the "full history"
/// a backfill source must carry for relations new to the DAG.
fn fold_updates(db: &Database, updates: &[Update]) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(row.clone(), *mult);
        }
        for u in updates.iter().filter(|u| u.table == table.name) {
            for (row, mult) in &u.rows {
                t.push_with_multiplicity(row.clone(), *mult);
            }
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

// ----------------------------------------------------------------- tests

/// K=4 COUNT queries (scalar, by locn, by locn+zip, by dateid) share one
/// DAG; each must stay bit-identical to its own standalone engine across
/// the whole stream, and the DAG must actually share nodes.
#[test]
fn overlapping_count_queries_are_bit_identical_to_standalone_engines() {
    let (db, updates) = retailer_workload();
    let groupings: Vec<Vec<&str>> = vec![vec![], vec!["locn"], vec!["locn", "zip"], vec!["dateid"]];

    let mut registry = QueryRegistry::new();
    let mut ids: Vec<QueryId> = Vec::new();
    let mut singles: Vec<Engine<i64>> = Vec::new();
    let mut solo_nodes = 0usize;
    for g in &groupings {
        let tree = retailer_tree(retailer_grouped(g));
        solo_nodes += tree.len() + tree.spec().num_relations();
        ids.push(registry.register(tree.clone(), QueryKind::Count, None).unwrap());
        let mut e = apps::count_engine(tree).unwrap();
        e.load_database(&db).unwrap();
        singles.push(e);
    }
    assert!(
        registry.total_live_nodes() < solo_nodes,
        "no sharing: DAG holds {} nodes, standalone plans total {}",
        registry.total_live_nodes(),
        solo_nodes
    );
    registry.load_database(&db).unwrap();

    for (i, u) in updates.iter().enumerate() {
        let outcome = registry.apply_update(u).unwrap();
        assert_eq!(outcome.input_rows, u.len());
        for e in singles.iter_mut() {
            e.apply_update(u).unwrap();
        }
        // Compare at the start, middle and end of the stream.
        if i == 0 || i == updates.len() / 2 || i == updates.len() - 1 {
            for (q, (id, e)) in ids.iter().zip(singles.iter()).enumerate() {
                assert_agrees(
                    &registry.count_result_relation(*id).unwrap(),
                    &e.result_relation(),
                    Agreement::Exact,
                    &format!("Retailer/COUNT q{q} after bulk {i}"),
                );
            }
        }
    }
}

/// Mixed aggregates under one registry: COUNT, COVAR (quantized stream,
/// bit-exact) and MI share the input batches; each ring group runs its own
/// DAG and each query matches its standalone engine.
#[test]
fn mixed_count_covar_mi_fleet_matches_standalone_engines() {
    let (db, updates) = retailer_workload();
    let db = quantize_database(&db);
    let updates = quantize_updates(&updates);
    let spec = retailer_query_continuous();
    let bins = mi_binnings(&spec);

    let mut registry = QueryRegistry::new();
    let count_id = registry
        .register(retailer_tree(retailer_grouped(&["locn"])), QueryKind::Count, None)
        .unwrap();
    let covar_id = registry
        .register(retailer_tree(spec.clone()), QueryKind::Covar, None)
        .unwrap();
    let mi_id = registry
        .register(retailer_tree(spec.clone()), QueryKind::Mi(bins.clone()), None)
        .unwrap();
    registry.load_database(&db).unwrap();

    let mut count_single = apps::count_engine(retailer_tree(retailer_grouped(&["locn"]))).unwrap();
    let mut covar_single = apps::covar_engine(retailer_tree(spec.clone())).unwrap();
    let mut mi_single = apps::mi_engine(retailer_tree(spec.clone()), &bins).unwrap();
    count_single.load_database(&db).unwrap();
    covar_single.load_database(&db).unwrap();
    mi_single.load_database(&db).unwrap();

    for u in &updates {
        registry.apply_update(u).unwrap();
        count_single.apply_update(u).unwrap();
        covar_single.apply_update(u).unwrap();
        mi_single.apply_update(u).unwrap();
    }

    assert_agrees(
        &registry.count_result_relation(count_id).unwrap(),
        &count_single.result_relation(),
        Agreement::Exact,
        "Retailer/COUNT in mixed fleet",
    );
    assert_agrees(
        &registry.covar_result_relation(covar_id).unwrap(),
        &covar_single.result_relation(),
        Agreement::Exact,
        "Retailer/COVAR-quantized in mixed fleet",
    );
    assert_agrees(
        &registry.gen_result_relation(mi_id).unwrap(),
        &mi_single.result_relation(),
        Agreement::Exact,
        "Retailer/MI in mixed fleet",
    );

    // Steady-state hash-once contract holds across the whole DAG fleet.
    let fact_rows: Vec<(Tuple, i64)> = db
        .table("Inventory")
        .unwrap()
        .rows
        .iter()
        .take(100)
        .map(|(r, _)| (r.clone(), 1))
        .collect();
    let plus = Update::with_multiplicities("Inventory", fact_rows.clone());
    let minus = Update::with_multiplicities(
        "Inventory",
        fact_rows.iter().map(|(r, _)| (r.clone(), -1)).collect(),
    );
    let before = registry.stats();
    registry.apply_update(&plus).unwrap();
    registry.apply_update(&minus).unwrap();
    let after = registry.stats();
    assert_eq!(after.rehashes, before.rehashes, "DAG rehashed a view in steady state");
    assert_eq!(
        after.ring_rehashes, before.ring_rehashes,
        "DAG rehashed a ring-interior table in steady state"
    );
}

/// COVAR on the raw (unquantized) float stream agrees to tolerance.
#[test]
fn covar_on_raw_floats_agrees_to_tolerance() {
    let (db, updates) = retailer_workload();
    let spec = retailer_query_continuous();
    let mut registry = QueryRegistry::new();
    let covar_id = registry
        .register(retailer_tree(spec.clone()), QueryKind::Covar, None)
        .unwrap();
    // A second overlapping COVAR query so the shared pass is exercised.
    let grouped_id = registry
        .register(retailer_tree(retailer_grouped(&["locn"])), QueryKind::Covar, None)
        .unwrap();
    registry.load_database(&db).unwrap();

    let mut single = apps::covar_engine(retailer_tree(spec.clone())).unwrap();
    let mut grouped_single = apps::covar_engine(retailer_tree(retailer_grouped(&["locn"]))).unwrap();
    single.load_database(&db).unwrap();
    grouped_single.load_database(&db).unwrap();

    for u in &updates {
        registry.apply_update(u).unwrap();
        single.apply_update(u).unwrap();
        grouped_single.apply_update(u).unwrap();
    }
    assert_agrees(
        &registry.covar_result_relation(covar_id).unwrap(),
        &single.result_relation(),
        Agreement::Approx(1e-9),
        "Retailer/COVAR-raw scalar",
    );
    assert_agrees(
        &registry.covar_result_relation(grouped_id).unwrap(),
        &grouped_single.result_relation(),
        Agreement::Approx(1e-9),
        "Retailer/COVAR-raw by locn",
    );
}

/// Favorita: COUNT and gen-COVAR (quantized) share a registry.
#[test]
fn favorita_count_and_gen_covar_match_standalone_engines() {
    let cfg = FavoritaConfig::tiny();
    let db = quantize_database(&cfg.generate());
    let updates = quantize_updates(
        &cfg.update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 120,
            delete_fraction: 0.25,
            seed: 9,
        })
        .into_bulks(),
    );
    let spec = fivm_data::favorita::favorita_query();
    let tree = fivm_data::favorita::favorita_tree(spec.clone());

    let mut registry = QueryRegistry::new();
    let count_id = registry.register(tree.clone(), QueryKind::Count, None).unwrap();
    let gen_id = registry.register(tree.clone(), QueryKind::GenCovar, None).unwrap();
    registry.load_database(&db).unwrap();

    let mut count_single = apps::count_engine(tree.clone()).unwrap();
    let mut gen_single = apps::gen_covar_engine(tree.clone()).unwrap();
    count_single.load_database(&db).unwrap();
    gen_single.load_database(&db).unwrap();

    for u in &updates {
        registry.apply_update(u).unwrap();
        count_single.apply_update(u).unwrap();
        gen_single.apply_update(u).unwrap();
    }
    assert_agrees(
        &registry.count_result_relation(count_id).unwrap(),
        &count_single.result_relation(),
        Agreement::Exact,
        "Favorita/COUNT",
    );
    assert_agrees(
        &registry.gen_result_relation(gen_id).unwrap(),
        &gen_single.result_relation(),
        Agreement::Exact,
        "Favorita/gen-COVAR-quantized",
    );
}

/// A query registered mid-stream — its relations already live in the DAG —
/// is backfilled from shared materialized state (no replay) and then
/// converges bit-identically to a standalone engine that saw the whole
/// stream. Unregistering a sibling mid-stream must not disturb survivors.
#[test]
fn mid_stream_register_and_unregister_converge_bit_identically() {
    let (db, updates) = retailer_workload();
    let (first, second) = updates.split_at(updates.len() / 2);

    let mut registry = QueryRegistry::new();
    let scalar_id = registry
        .register(retailer_tree(retailer_grouped(&[])), QueryKind::Count, None)
        .unwrap();
    let locn_id = registry
        .register(retailer_tree(retailer_grouped(&["locn"])), QueryKind::Count, None)
        .unwrap();
    registry.load_database(&db).unwrap();
    for u in first {
        registry.apply_update(u).unwrap();
    }

    // Mid-stream: a new grouping over the same relations — every leaf is
    // shared, so no backfill database is needed; new inner nodes evaluate
    // from the shared leaves' materialized history.
    let late_id = registry
        .register(retailer_tree(retailer_grouped(&["locn", "zip"])), QueryKind::Count, None)
        .unwrap();
    // And mid-stream retirement of a sibling that shares the prefix.
    registry.unregister(locn_id).unwrap();

    for u in second {
        registry.apply_update(u).unwrap();
    }

    for (name, id, group) in [
        ("scalar", scalar_id, vec![]),
        ("late locn+zip", late_id, vec!["locn", "zip"]),
    ] {
        let mut single = apps::count_engine(retailer_tree(retailer_grouped(&group))).unwrap();
        single.load_database(&db).unwrap();
        for u in &updates {
            single.apply_update(u).unwrap();
        }
        assert_agrees(
            &registry.count_result_relation(id).unwrap(),
            &single.result_relation(),
            Agreement::Exact,
            &format!("mid-stream churn, {name} query"),
        );
    }
    // The retired handle is gone.
    assert!(registry.count_result_relation(locn_id).is_err());
}

/// Registering a query whose relations are **new** to a DAG that already
/// applied data demands a backfill database carrying their full history —
/// without one it is a typed `state` error; with one, results converge
/// bit-identically.
#[test]
fn new_relations_need_full_history_backfill() {
    let (retailer_db, retailer_updates) = retailer_workload();

    // Start the registry on Favorita so Retailer's relations are new later.
    let fav = FavoritaConfig::tiny();
    let fav_db = fav.generate();
    let fav_updates = fav
        .update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 100,
            delete_fraction: 0.2,
            seed: 7,
        })
        .into_bulks();
    let (fav_first, fav_second) = fav_updates.split_at(fav_updates.len() / 2);
    let fav_tree = fivm_data::favorita::favorita_tree(fivm_data::favorita::favorita_query());
    let mut registry = QueryRegistry::new();
    let fav_id = registry.register(fav_tree.clone(), QueryKind::Count, None).unwrap();
    // Merge both datasets into one database (disjoint table names) so the
    // late Retailer query's base state is available to both sides.
    let mut merged = Database::new();
    for t in fav_db.tables().iter().chain(retailer_db.tables()) {
        let mut copy = BaseTable::new(t.name.clone(), t.schema.clone());
        for (row, mult) in &t.rows {
            copy.push_with_multiplicity(row.clone(), *mult);
        }
        merged.add_table(copy).unwrap();
    }
    registry.load_database(&merged).unwrap();
    for u in fav_first {
        registry.apply_update(u).unwrap();
    }

    let retailer = retailer_tree(retailer_grouped(&["locn"]));
    let err = registry
        .register(retailer.clone(), QueryKind::Count, None)
        .expect_err("new relations after data flowed must demand a backfill");
    assert_eq!(err.kind(), "state", "wrong error kind: {err}");

    // Backfill = initial database + every already-applied batch.
    let history = fold_updates(&merged, fav_first);
    let late_id = registry
        .register(retailer, QueryKind::Count, Some(&history))
        .unwrap();
    for u in retailer_updates.iter().chain(fav_second) {
        registry.apply_update(u).unwrap();
    }

    let mut single = apps::count_engine(retailer_tree(retailer_grouped(&["locn"]))).unwrap();
    single.load_database(&retailer_db).unwrap();
    for u in &retailer_updates {
        single.apply_update(u).unwrap();
    }
    assert_agrees(
        &registry.count_result_relation(late_id).unwrap(),
        &single.result_relation(),
        Agreement::Exact,
        "backfilled new-relation query",
    );
    // The original Favorita query sees only its own stream.
    let mut fav_single = apps::count_engine(fav_tree).unwrap();
    fav_single.load_database(&fav_db).unwrap();
    for u in &fav_updates {
        fav_single.apply_update(u).unwrap();
    }
    assert_agrees(
        &registry.count_result_relation(fav_id).unwrap(),
        &fav_single.result_relation(),
        Agreement::Exact,
        "resident query after sibling registration",
    );
}
