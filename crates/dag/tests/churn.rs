//! Runtime registration churn: refcounted node retirement, memory release,
//! re-registration after retirement, and the registry's typed error
//! surface (unknown handles, ring-group mismatches, the sharded gate).

use fivm_core::apps;
use fivm_dag::{DagEngine, DagError, QueryKind, QueryRegistry};
use fivm_data::retailer::retailer_tree;
use fivm_data::{RetailerConfig, StreamConfig};
use fivm_query::QuerySpec;
use fivm_relation::Database;

fn retailer_grouped(group_by: &[&str]) -> QuerySpec {
    let mut b = QuerySpec::builder(format!("retailer_by_{}", group_by.join("_")));
    let locn = b.key("locn");
    let dateid = b.key("dateid");
    let ksn = b.key("ksn");
    let zip = b.key("zip");
    let units = b.label("inventoryunits");
    let price = b.continuous_feature("price");
    let avghhi = b.continuous_feature("avghhi");
    let dist = b.continuous_feature("competitordistance");
    let population = b.continuous_feature("population");
    let medianage = b.continuous_feature("medianage");
    let maxtemp = b.continuous_feature("maxtemp");
    let mintemp = b.continuous_feature("mintemp");
    b.relation("Inventory", &[locn, dateid, ksn, units]);
    b.relation("Location", &[locn, zip, avghhi, dist]);
    b.relation("Census", &[zip, population, medianage]);
    b.relation("Item", &[ksn, price]);
    b.relation("Weather", &[locn, dateid, maxtemp, mintemp]);
    let by: Vec<usize> = group_by
        .iter()
        .map(|n| match *n {
            "locn" => locn,
            "dateid" => dateid,
            "ksn" => ksn,
            "zip" => zip,
            other => panic!("unknown group-by key {other}"),
        })
        .collect();
    b.group_by(&by);
    b.build().expect("grouped retailer query is valid")
}

fn tiny_workload() -> (Database, Vec<fivm_relation::Update>) {
    let cfg = RetailerConfig::tiny();
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 3,
            bulk_size: 80,
            delete_fraction: 0.2,
            seed: 3,
        })
        .into_bulks();
    (db, updates)
}

/// Two queries sharing a prefix: unregistering the one that *created* the
/// shared nodes must leave them alive for the sibling (refcount 1), retire
/// only its exclusive nodes, and release their view bytes.
#[test]
fn unregistering_the_prefix_owner_keeps_shared_nodes_alive() {
    let (db, updates) = tiny_workload();
    let mut dag: DagEngine<i64> = DagEngine::new();
    let spec = retailer_grouped(&["locn"]);
    let lifts = apps::count_lifts(&spec);
    let owner = dag.register(retailer_tree(spec), lifts, None).unwrap();
    let spec2 = retailer_grouped(&["locn", "zip"]);
    let lifts2 = apps::count_lifts(&spec2);
    let sibling = dag.register(retailer_tree(spec2), lifts2, None).unwrap();

    let owner_nodes = dag.query_nodes(owner).unwrap();
    let sibling_nodes = dag.query_nodes(sibling).unwrap();
    let shared: Vec<usize> = owner_nodes
        .iter()
        .copied()
        .filter(|id| sibling_nodes.contains(id))
        .collect();
    let exclusive: Vec<usize> = owner_nodes
        .iter()
        .copied()
        .filter(|id| !sibling_nodes.contains(id))
        .collect();
    assert!(!shared.is_empty(), "the two groupings must share a prefix");
    assert!(!exclusive.is_empty(), "the two groupings must diverge somewhere");
    for &id in &shared {
        assert_eq!(dag.node_refcount(id), Some(2));
    }
    for &id in &exclusive {
        assert_eq!(dag.node_refcount(id), Some(1));
    }

    dag.load_database(&db).unwrap();
    for u in &updates {
        dag.apply_update(u).unwrap();
    }
    let bytes_before = dag.stats().table_bytes;

    dag.unregister(owner).unwrap();
    for &id in &shared {
        assert_eq!(dag.node_refcount(id), Some(1), "shared node lost by retirement");
    }
    for &id in &exclusive {
        assert_eq!(dag.node_refcount(id), None, "exclusive node survived retirement");
    }
    assert!(
        dag.stats().table_bytes < bytes_before,
        "retiring exclusive views must release bytes ({} -> {})",
        bytes_before,
        dag.stats().table_bytes
    );

    // The sibling keeps answering, and keeps maintaining.
    for u in &updates {
        dag.apply_update(u).unwrap();
    }
    assert!(dag.result_relation(sibling).is_ok());
    assert!(matches!(dag.result_relation(owner), Err(DagError::State(_))));
}

/// Register/unregister cycles drain the DAG completely (`live_nodes` back
/// to 0, bytes released) and retired ids/state never leak into the next
/// generation — which must still produce correct results.
#[test]
fn full_churn_cycles_drain_and_rebuild_cleanly() {
    let (db, updates) = tiny_workload();
    let mut dag: DagEngine<i64> = DagEngine::new();

    // Reference result computed once on a standalone engine.
    let spec = retailer_grouped(&["locn"]);
    let mut single = apps::count_engine(retailer_tree(spec.clone())).unwrap();
    single.load_database(&db).unwrap();
    for u in &updates {
        single.apply_update(u).unwrap();
    }
    let expected = single.result_relation();

    for round in 0..3 {
        let lifts = apps::count_lifts(&spec);
        // After round 0 the DAG has applied data, so the (retired, hence
        // new again) relations need the full history as backfill.
        let history = {
            let mut merged = Database::new();
            for t in db.tables() {
                let mut copy =
                    fivm_relation::BaseTable::new(t.name.clone(), t.schema.clone());
                for (row, mult) in &t.rows {
                    copy.push_with_multiplicity(row.clone(), *mult);
                }
                for u in updates.iter().filter(|u| u.table == t.name) {
                    if round > 0 {
                        for (row, mult) in &u.rows {
                            copy.push_with_multiplicity(row.clone(), *mult);
                        }
                    }
                }
                merged.add_table(copy).unwrap();
            }
            merged
        };
        // Round 0 loads and streams normally; later rounds re-register
        // against full-history backfill (load + backfill would double).
        let backfill = if round == 0 { None } else { Some(&history) };
        let q = dag
            .register(retailer_tree(spec.clone()), lifts, backfill)
            .unwrap();
        if round == 0 {
            dag.load_database(&db).unwrap();
            for u in &updates {
                dag.apply_update(u).unwrap();
            }
        }
        let got = dag.result_relation(q).unwrap();
        assert!(got == expected, "round {round}: churned DAG diverged from reference");

        dag.unregister(q).unwrap();
        assert_eq!(dag.live_nodes(), 0, "round {round}: nodes leaked");
        assert_eq!(dag.live_queries(), 0, "round {round}: queries leaked");
        assert_eq!(
            dag.stats().table_bytes,
            0,
            "round {round}: view bytes leaked after full retirement"
        );
    }
}

/// Register mid-churn reuses retired slot ids without aliasing: a handle
/// retired in one generation stays invalid even after its slot is reused.
#[test]
fn retired_handles_stay_invalid_after_slot_reuse() {
    let mut dag: DagEngine<i64> = DagEngine::new();
    let spec = retailer_grouped(&[]);
    let lifts = apps::count_lifts(&spec);
    let q1 = dag.register(retailer_tree(spec.clone()), lifts.clone(), None).unwrap();
    dag.unregister(q1).unwrap();
    let q2 = dag.register(retailer_tree(spec), lifts, None).unwrap();
    // Slot reuse is an implementation detail; what matters is that the new
    // handle works and double-unregister of the old one fails cleanly.
    assert!(dag.result_relation(q2).is_ok());
    if q1 != q2 {
        assert!(dag.unregister(q1).is_err());
    }
    assert!(dag.unregister(q2).is_ok());
    assert!(dag.unregister(q2).is_err(), "double unregister must fail");
}

/// The registry's typed error surface: ring-group mismatches on result
/// accessors and the deliberately unwired sharded combination.
#[test]
fn registry_errors_are_typed() {
    let mut registry = QueryRegistry::new();
    let spec = retailer_grouped(&["locn"]);
    let id = registry
        .register(retailer_tree(spec), QueryKind::Count, None)
        .unwrap();

    // Asking for a COUNT query through the COVAR accessor is a state error.
    let err = registry.covar_result_relation(id).expect_err("wrong group");
    assert_eq!(err.kind(), "state");

    // ShardedEngine parity: the registry-over-shards combination is a
    // typed `Unsupported`, not a panic or a silent degradation.
    assert!(QueryRegistry::sharded(1).is_ok());
    let err = QueryRegistry::sharded(4).expect_err("sharded registry is unwired");
    assert_eq!(err.kind(), "unsupported");
    assert!(
        matches!(err, DagError::Unsupported(_)),
        "wrong variant: {err:?}"
    );
}
